//! Leader election over the coordination service: two application masters
//! compete for leadership of a job; when the leader's session expires (a
//! simulated crash or network partition), the standby's predecessor watch
//! fires and it takes over — without a thundering herd, since each candidate
//! watches only the node directly ahead of it.
//!
//! Run with: `cargo run --example leader_election`

use samzasql::coord::recipes::LeaderElection;
use samzasql::coord::Coord;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() {
    let coord = Coord::new();
    let election = LeaderElection::new(coord.clone(), "/samza/jobs/demo/leader").unwrap();

    // Two AMs, each with its own session (30s timeout on the manual clock).
    let am1_session = coord.create_session(30_000);
    let am2_session = coord.create_session(30_000);

    let am1 = election.enter(am1_session, "am-1").unwrap();
    let am2 = election.enter(am2_session, "am-2").unwrap();

    println!("am-1 entered at {}", am1.path());
    println!("am-2 entered at {}", am2.path());
    println!("initial leader: {:?}", election.leader().unwrap());
    assert!(am1.is_leader(), "first entrant leads");
    assert!(!am2.is_leader(), "second entrant stands by");

    // The standby arms a watch on its predecessor; the callback fires with
    // `true` the moment it becomes leader.
    let promoted = Arc::new(AtomicBool::new(false));
    let flag = promoted.clone();
    am2.watch(move |is_leader| {
        if is_leader {
            println!("am-2 watch fired: promoted to leader");
            flag.store(true, Ordering::SeqCst);
        }
    })
    .unwrap();

    // Simulate the leader's AM dying: its session expires after 30s with no
    // heartbeat. The ephemeral election node dies with the session, the
    // standby's watch fires, and leadership moves — no polling anywhere.
    println!("\nadvancing the clock 31s with am-2 heartbeating and am-1 silent...");
    for _ in 0..31 {
        coord.advance(1_000);
        let _ = coord.heartbeat(am2_session);
    }

    assert!(!coord.session_alive(am1_session), "am-1's session expired");
    assert!(promoted.load(Ordering::SeqCst), "am-2 was notified");
    assert!(am2.is_leader(), "am-2 now leads");
    println!("leader after failover: {:?}", election.leader().unwrap());

    let m = coord.metrics();
    println!(
        "\ncoordination metrics: {} session(s) expired, {} watch(es) fired, {} ephemeral(s) reaped",
        m.sessions_expired, m.watches_fired, m.ephemerals_reaped
    );
}
