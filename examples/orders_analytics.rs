//! Orders analytics — the paper's §3 walkthrough as one program:
//!
//! * the `HourlyOrderTotals` view (Listing 3),
//! * tumbling-window order counts with START bounds (Listing 4),
//! * per-product sliding-window unit sums (Listing 6),
//! * enrichment against the Products relation (Listing 8),
//! * a user-defined aggregate (the §7 extension, implemented here).
//!
//! ```text
//! cargo run --example orders_analytics
//! ```

use samzasql::core::udaf::GeometricMean;
use samzasql::prelude::*;
use samzasql::workload::{
    orders_schema, products_schema, OrdersGenerator, OrdersSpec, ProductsGenerator, ProductsSpec,
};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let broker = Broker::new();
    broker
        .create_topic("orders", TopicConfig::with_partitions(4))
        .unwrap();
    broker
        .create_topic("products-changelog", TopicConfig::with_partitions(4))
        .unwrap();

    let mut shell = SamzaSqlShell::new(broker.clone());
    shell
        .register_stream("Orders", "orders", orders_schema(), "rowtime")
        .unwrap();
    shell.set_partition_key("Orders", "productId").unwrap();
    shell
        .register_table(
            "Products",
            "products-changelog",
            products_schema(),
            "productId",
        )
        .unwrap();
    shell.register_udaf("GEO_MEAN", Arc::new(GeometricMean));

    // Load the Products relation snapshot and a few thousand orders.
    let mut products = ProductsGenerator::new(ProductsSpec {
        products: 20,
        ..Default::default()
    });
    for m in products.snapshot() {
        let p = samzasql::kafka::partitioner::hash_bytes(m.key.as_ref().unwrap()) % 4;
        broker.produce("products-changelog", p, m).unwrap();
    }
    let mut orders = OrdersGenerator::new(OrdersSpec {
        products: 20,
        inter_arrival_ms: 30_000, // one order every 30s of event time
        ..Default::default()
    });
    for m in orders.messages(2_000) {
        let p = samzasql::kafka::partitioner::hash_bytes(m.key.as_ref().unwrap()) % 4;
        broker.produce("orders", p, m).unwrap();
    }

    // --- Listing 3: the HourlyOrderTotals view, consumed bounded. --------
    shell
        .execute_ddl(
            "CREATE VIEW HourlyOrderTotals (rowtime, productId, c, su) AS \
             SELECT FLOOR(rowtime TO HOUR), productId, COUNT(*), SUM(units) \
             FROM Orders GROUP BY FLOOR(rowtime TO HOUR), productId",
        )
        .unwrap();
    let hot = shell
        .query("SELECT rowtime, productId, c, su FROM HourlyOrderTotals WHERE c > 2 OR su > 10 ORDER BY rowtime LIMIT 5")
        .unwrap();
    println!("HourlyOrderTotals (first {} qualifying rows):", hot.len());
    for r in &hot {
        println!("  {r}");
    }

    // --- A user-defined aggregate over the same history. ------------------
    let gm = shell
        .query("SELECT productId, GEO_MEAN(units) AS gm FROM Orders GROUP BY productId ORDER BY productId LIMIT 3")
        .unwrap();
    println!("\ngeometric mean of units (UDAF) for first 3 products:");
    for r in &gm {
        println!("  {r}");
    }

    // --- Listing 4: tumbling hourly counts, continuous. -------------------
    let mut tumble = shell
        .submit(
            "SELECT STREAM START(rowtime), END(rowtime), COUNT(*) FROM Orders \
             GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)",
        )
        .unwrap();
    let windows = tumble.await_outputs(5, Duration::from_secs(10)).unwrap();
    println!("\nfirst {} closed hourly windows:", windows.len().min(5));
    for w in windows.iter().take(5) {
        println!("  {w}");
    }
    tumble.stop().unwrap();

    // --- Listing 6 + Listing 8 composed: enriched sliding-window sums. ----
    let mut enriched = shell
        .submit(
            "SELECT STREAM Orders.rowtime, Orders.productId, Orders.units, Products.supplierId \
             FROM Orders JOIN Products ON Orders.productId = Products.productId",
        )
        .unwrap();
    let joined = enriched
        .await_outputs(2_000, Duration::from_secs(30))
        .unwrap();
    println!(
        "\njoined {} orders with suppliers; sample: {}",
        joined.len(),
        joined[0]
    );
    enriched.stop().unwrap();

    let mut sliding = shell
        .submit(
            "SELECT STREAM rowtime, productId, units, \
             SUM(units) OVER (PARTITION BY productId ORDER BY rowtime \
             RANGE INTERVAL '1' HOUR PRECEDING) unitsLastHour FROM Orders",
        )
        .unwrap();
    let sums = sliding
        .await_outputs(2_000, Duration::from_secs(30))
        .unwrap();
    println!(
        "\nsliding hourly sums for {} orders; sample: {}",
        sums.len(),
        sums.last().unwrap()
    );
    sliding.stop().unwrap();
}
