//! A Kappa-architecture pipeline (§1): everything is a stream, queries
//! compose by consuming each other's output topics, and a failed container
//! recovers from its changelog without losing window state.
//!
//! Pipeline:
//!
//! ```text
//! Orders ──q1: filter big orders──▶ q1-output ──q2: per-product running
//!        count over 1h──▶ q2-output ──(this program tails it)
//! ```
//!
//! Midway we kill q2's container; the cluster reschedules it, its window
//! state restores from the changelog, and the running counts continue
//! exactly where they left off.
//!
//! ```text
//! cargo run --example kappa_pipeline
//! ```

use samzasql::prelude::*;
use samzasql::workload::orders_schema;
use std::time::Duration;

fn produce_orders(shell: &SamzaSqlShell, range: std::ops::Range<i64>) {
    for i in range {
        shell
            .produce(
                "Orders",
                Value::record(vec![
                    ("rowtime", Value::Timestamp(i * 1_000)),
                    ("productId", Value::Int((i % 2) as i32)),
                    ("orderId", Value::Long(i)),
                    ("units", Value::Int(if i % 3 == 0 { 100 } else { 10 })),
                    ("pad", Value::String("~".into())),
                ]),
            )
            .unwrap();
    }
}

fn main() {
    let broker = Broker::new();
    broker
        .create_topic("orders", TopicConfig::with_partitions(2))
        .unwrap();
    // A two-node cluster so the killed container can move.
    let cluster = ClusterSim::new(
        broker.clone(),
        vec![NodeConfig::new("node-a", 8), NodeConfig::new("node-b", 8)],
    );
    let mut shell = SamzaSqlShell::with_cluster(broker, cluster);
    shell
        .register_stream("Orders", "orders", orders_schema(), "rowtime")
        .unwrap();

    // Stage 1: keep only big orders.
    let q1 = shell
        .submit("SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 50")
        .unwrap();

    // Its output topic is a first-class stream: register and build on it.
    shell
        .register_stream(
            "BigOrders",
            q1.output_topic(),
            Schema::record(
                "BigOrders",
                vec![
                    ("rowtime", Schema::Timestamp),
                    ("productId", Schema::Int),
                    ("units", Schema::Int),
                ],
            ),
            "rowtime",
        )
        .unwrap();

    // Stage 2: per-product running count of big orders over the last hour.
    let mut q2 = shell
        .submit(
            "SELECT STREAM rowtime, productId, \
             COUNT(*) OVER (PARTITION BY productId ORDER BY rowtime \
             RANGE INTERVAL '1' HOUR PRECEDING) bigOrdersLastHour FROM BigOrders",
        )
        .unwrap();

    // Feed the pipeline; orders divisible by 3 are "big" (units=100).
    produce_orders(&shell, 0..60);
    let first = q2.await_outputs(20, Duration::from_secs(15)).unwrap();
    println!(
        "before failure: {} windowed rows, last = {}",
        first.len(),
        first.last().unwrap()
    );

    // Inject a failure into stage 2: kill its container. The application
    // master reschedules it; window state restores from the changelog.
    println!("\n*** killing q2's container ***\n");
    q2.kill_container(0).unwrap();

    produce_orders(&shell, 60..120);
    let second = q2.await_outputs(20, Duration::from_secs(20)).unwrap();
    println!(
        "after recovery: {} windowed rows, last = {}",
        second.len(),
        second.last().unwrap()
    );

    // The running count never reset: the last row's count reflects both
    // pre- and post-failure big orders inside the hour window.
    let final_count = second
        .last()
        .and_then(|r| r.field("bigOrdersLastHour"))
        .and_then(|v| v.as_i64())
        .unwrap_or(0);
    println!(
        "\nfinal per-product running count = {final_count} \
         (continuous across the failure — §4.3's determinism)"
    );

    q2.stop().unwrap();
    q1.stop().unwrap();
}
