//! Quickstart: stand up a broker, register a stream, run one historical and
//! one continuous query.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use samzasql::prelude::*;
use std::time::Duration;

fn main() {
    // 1. An in-process "Kafka cluster" with a 4-partition orders topic.
    let broker = Broker::new();
    broker
        .create_topic("orders", TopicConfig::with_partitions(4))
        .unwrap();

    // 2. The SamzaSQL shell: catalog + planner + YARN-sim cluster.
    let mut shell = SamzaSqlShell::new(broker);
    shell
        .register_stream(
            "Orders",
            "orders",
            Schema::record(
                "Orders",
                vec![
                    ("rowtime", Schema::Timestamp),
                    ("productId", Schema::Int),
                    ("orderId", Schema::Long),
                    ("units", Schema::Int),
                ],
            ),
            "rowtime",
        )
        .unwrap();

    // 3. Publish some orders (Avro-encoded under the hood).
    for i in 0..10i64 {
        shell
            .produce(
                "Orders",
                Value::record(vec![
                    ("rowtime", Value::Timestamp(i * 1_000)),
                    ("productId", Value::Int((i % 3) as i32)),
                    ("orderId", Value::Long(i)),
                    ("units", Value::Int((i * 10) as i32)),
                ]),
            )
            .unwrap();
    }

    // 4. EXPLAIN shows the logical and physical plan.
    println!(
        "{}",
        shell
            .explain("SELECT STREAM * FROM Orders WHERE units > 50")
            .unwrap()
    );

    // 5. Without STREAM, the stream is queried as a table of its history
    //    (§3.3) and the query returns synchronously.
    let rows = shell
        .query("SELECT productId, COUNT(*) AS c, SUM(units) AS su FROM Orders GROUP BY productId")
        .unwrap();
    println!("historical aggregate over {} product groups:", rows.len());
    for r in &rows {
        println!("  {r}");
    }

    // 6. With STREAM, the query runs continuously as a Samza job.
    let mut handle = shell
        .submit("SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 50")
        .unwrap();
    for i in 10..16i64 {
        shell
            .produce(
                "Orders",
                Value::record(vec![
                    ("rowtime", Value::Timestamp(i * 1_000)),
                    ("productId", Value::Int((i % 3) as i32)),
                    ("orderId", Value::Long(i)),
                    ("units", Value::Int((i * 10) as i32)),
                ]),
            )
            .unwrap();
    }
    let streamed = handle.await_outputs(6, Duration::from_secs(5)).unwrap();
    println!(
        "continuous filter emitted {} rows, e.g. {}",
        streamed.len(),
        streamed[0]
    );
    handle.stop().unwrap();
}
