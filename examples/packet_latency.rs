//! Packet latency — the paper's Listing 7: join the same packet's
//! observations at two routers within a ±2-second sliding window and compute
//! its travel time.
//!
//! ```text
//! cargo run --example packet_latency
//! ```

use samzasql::prelude::*;
use samzasql::workload::{packets_schema, PacketsGenerator, PacketsSpec};
use std::time::Duration;

fn main() {
    let broker = Broker::new();
    broker
        .create_topic("packetsr1", TopicConfig::with_partitions(2))
        .unwrap();
    broker
        .create_topic("packetsr2", TopicConfig::with_partitions(2))
        .unwrap();

    let mut shell = SamzaSqlShell::new(broker.clone());
    shell
        .register_stream(
            "PacketsR1",
            "packetsr1",
            packets_schema("PacketsR1"),
            "rowtime",
        )
        .unwrap();
    shell
        .register_stream(
            "PacketsR2",
            "packetsr2",
            packets_schema("PacketsR2"),
            "rowtime",
        )
        .unwrap();

    // Listing 7, verbatim modulo stream names.
    let mut handle = shell
        .submit(
            "SELECT STREAM \
             GREATEST(PacketsR1.rowtime, PacketsR2.rowtime) AS rowtime, \
             PacketsR1.sourcetime, \
             PacketsR1.packetId, \
             PacketsR2.rowtime - PacketsR1.rowtime AS timeToTravel \
             FROM PacketsR1 JOIN PacketsR2 ON \
             PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND \
             AND PacketsR2.rowtime + INTERVAL '2' SECOND \
             AND PacketsR1.packetId = PacketsR2.packetId",
        )
        .unwrap();

    // Generate correlated packet observations; delays 100–1500 ms, so every
    // pair falls inside the 2-second window.
    let mut generator = PacketsGenerator::new(PacketsSpec::default());
    let n = 1_000;
    for _ in 0..n {
        let (r1, r2) = generator.next_messages();
        broker.produce("packetsr1", 0, r1).unwrap();
        broker.produce("packetsr2", 0, r2).unwrap();
    }

    let rows = handle.await_outputs(n, Duration::from_secs(30)).unwrap();
    let latencies: Vec<i64> = rows
        .iter()
        .filter_map(|r| r.field("timeToTravel").and_then(|v| v.as_i64()))
        .collect();
    let (min, max) = (
        latencies.iter().min().copied().unwrap_or(0),
        latencies.iter().max().copied().unwrap_or(0),
    );
    let mean = latencies.iter().sum::<i64>() as f64 / latencies.len().max(1) as f64;
    println!("joined {} packet pairs", rows.len());
    println!("travel time: min {min} ms, mean {mean:.0} ms, max {max} ms");
    println!("sample row: {}", rows[0]);
    handle.stop().unwrap();
}
