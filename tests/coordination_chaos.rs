//! Chaos-style integration tests for the coordination service: the broker's
//! group coordinator, the cluster simulation's application masters, and the
//! SQL shell all share one [`Coord`] znode tree, and fault injection on it
//! (forced session expiry, manual clock advance) must drive the same
//! recovery paths a real ZooKeeper outage would — container rescheduling
//! with changelog-restored state, and consumer-group rebalances.

use samzasql::coord::Coord;
use samzasql::kafka::{Assignor, Broker, Message, TopicConfig};
use samzasql::prelude::*;
use samzasql::samza::{
    IncomingMessageEnvelope, InputStreamConfig, JobConfig, MessageCollector,
    OutgoingMessageEnvelope, OutputStreamConfig, Result as SamzaResult, StoreConfig, StreamTask,
    TaskContext, TaskCoordinator, TaskFactory,
};
use samzasql::serde::SerdeFormat;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn wait_for<F: Fn() -> bool>(cond: F, timeout: Duration, what: &str) {
    let start = Instant::now();
    while !cond() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Stateful counter: per-key running count held in a changelog-backed store,
/// so a rescheduled container must restore state to keep the count exact.
struct Counter;
impl StreamTask for Counter {
    fn process(
        &mut self,
        envelope: &IncomingMessageEnvelope,
        ctx: &mut TaskContext,
        collector: &mut MessageCollector,
        _coordinator: &mut TaskCoordinator,
    ) -> SamzaResult<()> {
        let key = envelope.key.clone().expect("keyed input");
        let store = ctx.store_mut("c")?;
        let n = store
            .get(&key)
            .map(|b| u64::from_le_bytes(b.as_ref().try_into().expect("8 bytes")))
            .unwrap_or(0)
            + 1;
        store.put(&key, bytes::Bytes::copy_from_slice(&n.to_le_bytes()))?;
        collector.send(OutgoingMessageEnvelope::new("out", format!("{n}")).keyed(key));
        Ok(())
    }
}

struct CounterFactory;
impl TaskFactory for CounterFactory {
    fn create(&self, _partition: u32) -> Box<dyn StreamTask> {
        Box::new(Counter)
    }
}

fn last_output(broker: &Broker) -> Option<String> {
    let mut last = None;
    let mut off = 0;
    loop {
        let batch = broker.fetch("out", 0, off, 1024).unwrap();
        if batch.records.is_empty() {
            return last;
        }
        for r in batch.records {
            off = r.offset + 1;
            last = Some(String::from_utf8(r.message.value.to_vec()).unwrap());
        }
    }
}

/// The acceptance scenario: one shared coordination service under broker and
/// cluster; force-expiring a container's session fires the AM's liveness
/// watch and reschedules the container with changelog-restored state, and
/// clock-driven expiry of a silent consumer triggers a group rebalance —
/// with the coordination metrics reflecting both.
#[test]
fn forced_session_expiry_reschedules_container_and_rebalances_group() {
    let coord = Coord::new();
    let broker = Broker::with_coord(coord.clone());
    let cluster = ClusterSim::with_coord(
        broker.clone(),
        vec![NodeConfig::new("n0", 4), NodeConfig::new("n1", 4)],
        coord.clone(),
    );

    // --- stateful job whose container we will "partition away" ---
    broker
        .create_topic("in", TopicConfig::with_partitions(1))
        .unwrap();
    broker
        .create_topic("out", TopicConfig::with_partitions(1))
        .unwrap();
    let mut cfg = JobConfig::new("counter")
        .input(InputStreamConfig::avro("in"))
        .output(OutputStreamConfig::avro("out"))
        .store(StoreConfig::with_changelog(
            "c",
            "counter",
            SerdeFormat::Object,
        ));
    cfg.commit_interval_messages = 1;
    let handle = cluster.submit(cfg, Arc::new(CounterFactory)).unwrap();

    // --- consumer group on the same coordination service ---
    broker
        .create_topic("events", TopicConfig::with_partitions(8))
        .unwrap();
    let gc = broker.group_coordinator();
    gc.join(&broker, "analytics", "m1", &["events"], Assignor::Range)
        .unwrap();
    let m2 = gc
        .join(&broker, "analytics", "m2", &["events"], Assignor::Range)
        .unwrap();
    let a1 = gc.assignment("analytics", "m1", m2.generation).unwrap();
    assert_eq!(
        a1.len() + m2.assignment.len(),
        8,
        "both members share the topic"
    );
    assert!(
        !m2.assignment.is_empty(),
        "m2 owns partitions before the chaos"
    );
    let generation_before = m2.generation;

    for _ in 0..50 {
        broker.produce("in", 0, Message::keyed("k", "x")).unwrap();
    }
    wait_for(
        || handle.processed() >= 50,
        Duration::from_secs(10),
        "first 50 processed",
    );

    let before = coord.metrics();
    let session = cluster
        .container_session("counter", 0)
        .expect("container registered");
    assert!(
        coord.exists("/samza/jobs/counter/containers/0").is_some(),
        "liveness znode"
    );

    // --- chaos #1: the container's session dies (ZK partition / GC pause) ---
    coord.force_expire(session).unwrap();
    wait_for(
        || cluster.container_generation("counter", 0) == Some(1),
        Duration::from_secs(10),
        "AM watch fires and reschedules the container",
    );
    let new_session = cluster
        .container_session("counter", 0)
        .expect("rescheduled");
    assert_ne!(
        new_session, session,
        "replacement container owns a fresh session"
    );
    assert!(
        coord.exists("/samza/jobs/counter/containers/0").is_some(),
        "replacement re-registers its ephemeral liveness znode"
    );

    for _ in 0..50 {
        broker.produce("in", 0, Message::keyed("k", "x")).unwrap();
    }
    wait_for(
        || handle.processed() >= 100,
        Duration::from_secs(10),
        "remaining 50 processed",
    );
    // Exactly 100: the replacement restored its store from the changelog and
    // resumed from the last checkpoint.
    assert_eq!(last_output(&broker).as_deref(), Some("100"));

    // --- chaos #2: m2 stops heartbeating; the clock rolls past its timeout ---
    // (container sessions use a 60s timeout and their threads heartbeat
    // continuously, so an 11s advance only reaps the silent consumer)
    coord.advance(5_000);
    gc.heartbeat(&broker, "analytics", "m1").unwrap();
    coord.advance(6_000);

    let gen = gc.heartbeat(&broker, "analytics", "m1").unwrap();
    assert!(gen > generation_before, "eviction bumps the generation");
    let owned = gc.assignment("analytics", "m1", gen).unwrap();
    assert_eq!(owned.len(), 8, "survivor inherits every partition");
    assert!(
        gc.heartbeat(&broker, "analytics", "m2").is_err(),
        "expired member is refused"
    );

    let after = coord.metrics();
    assert!(
        after.sessions_expired >= before.sessions_expired + 2,
        "container + consumer expired"
    );
    assert!(
        after.watches_fired > before.watches_fired,
        "liveness/membership watches fired"
    );
    assert!(
        after.ephemerals_reaped >= before.ephemerals_reaped + 2,
        "ephemerals reaped"
    );

    handle.stop().unwrap();
}

/// Deliberate restarts go through the same coordination machinery without
/// double-respawning: the AM closes the old session (watch fires, but the
/// handler sees the container already detached) and the replacement
/// re-registers.
#[test]
fn deliberate_restart_coexists_with_liveness_watches() {
    let broker = Broker::new();
    broker
        .create_topic("in", TopicConfig::with_partitions(2))
        .unwrap();
    let cluster = ClusterSim::single_node(broker.clone());
    let handle = cluster
        .submit(
            JobConfig::new("echo")
                .input(InputStreamConfig::avro("in"))
                .containers(2),
            Arc::new(CounterFactoryLess),
        )
        .unwrap();
    let s0 = cluster.container_session("echo", 0).unwrap();
    handle.kill_container(0).unwrap();
    let s0b = cluster.container_session("echo", 0).unwrap();
    assert_ne!(s0, s0b);
    assert_eq!(cluster.container_generation("echo", 0), Some(1));
    assert_eq!(
        cluster.container_generation("echo", 1),
        Some(0),
        "other container untouched"
    );
    let m = cluster.coord().metrics();
    assert_eq!(
        m.sessions_expired, 0,
        "deliberate restart closes, never expires"
    );
    handle.stop().unwrap();
    assert!(
        cluster.coord().exists("/samza/jobs/echo").is_none(),
        "stop_job clears the job subtree"
    );
}

struct CounterFactoryLess;
impl TaskFactory for CounterFactoryLess {
    fn create(&self, _partition: u32) -> Box<dyn StreamTask> {
        struct Noop;
        impl StreamTask for Noop {
            fn process(
                &mut self,
                _envelope: &IncomingMessageEnvelope,
                _ctx: &mut TaskContext,
                _collector: &mut MessageCollector,
                _coordinator: &mut TaskCoordinator,
            ) -> SamzaResult<()> {
                Ok(())
            }
        }
        Box::new(Noop)
    }
}

/// Step one / step two of two-step planning (§4.2) through the coordination
/// service: the shell stores the SQL and schema references under
/// `/samzasql/queries/<job>/…`, and the job's tasks re-plan from exactly
/// those znodes at init.
#[test]
fn shell_publishes_query_metadata_to_coordination_service() {
    let broker = Broker::new();
    broker
        .create_topic("orders", TopicConfig::with_partitions(2))
        .unwrap();
    let mut shell = SamzaSqlShell::new(broker.clone());
    shell
        .register_stream(
            "Orders",
            "orders",
            Schema::record(
                "Orders",
                vec![
                    ("rowtime", Schema::Timestamp),
                    ("productId", Schema::Int),
                    ("units", Schema::Int),
                ],
            ),
            "rowtime",
        )
        .unwrap();

    let sql = "SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 50";
    let mut handle = shell.submit(sql).unwrap();

    let coord = shell.coord();
    let jobs = coord.children("/samzasql/queries").unwrap();
    assert_eq!(jobs.len(), 1, "one job registered");
    let base = format!("/samzasql/queries/{}", jobs[0]);
    assert_eq!(coord.get(format!("{base}/sql")).unwrap().0, sql);
    assert!(coord
        .get(format!("{base}/schema"))
        .unwrap()
        .0
        .ends_with("-value"));
    // The AM published the job model alongside.
    let job_base = format!("/samza/jobs/{}", jobs[0]);
    assert!(coord
        .get(format!("{job_base}/model"))
        .unwrap()
        .0
        .contains("\"containers\""));
    assert!(
        coord.exists(format!("{job_base}/containers/0")).is_some(),
        "container liveness registered"
    );

    shell
        .produce(
            "Orders",
            Value::record(vec![
                ("rowtime", Value::Timestamp(1_000)),
                ("productId", Value::Int(7)),
                ("units", Value::Int(75)),
            ]),
        )
        .unwrap();
    let rows = handle.await_outputs(1, Duration::from_secs(5)).unwrap();
    assert_eq!(rows[0].field("units"), Some(&Value::Int(75)));
    handle.stop().unwrap();
}
