//! Workspace-level integration tests exercising the facade crate the way a
//! downstream user would: broker + shell + SQL across all subsystems.

use samzasql::prelude::*;
use samzasql::workload::{
    orders_schema, products_schema, OrdersGenerator, OrdersSpec, ProductsGenerator, ProductsSpec,
};
use std::time::Duration;

fn load_workload(broker: &Broker, orders: usize) {
    broker
        .create_topic("orders", TopicConfig::with_partitions(4))
        .unwrap();
    broker
        .create_topic("products-changelog", TopicConfig::with_partitions(4))
        .unwrap();
    let mut pg = ProductsGenerator::new(ProductsSpec::default());
    for m in pg.snapshot() {
        let p = samzasql::kafka::partitioner::hash_bytes(m.key.as_ref().unwrap()) % 4;
        broker.produce("products-changelog", p, m).unwrap();
    }
    let mut og = OrdersGenerator::new(OrdersSpec::default());
    for m in og.messages(orders) {
        let p = samzasql::kafka::partitioner::hash_bytes(m.key.as_ref().unwrap()) % 4;
        broker.produce("orders", p, m).unwrap();
    }
}

fn shell(broker: &Broker) -> SamzaSqlShell {
    let mut shell = SamzaSqlShell::new(broker.clone());
    shell
        .register_stream("Orders", "orders", orders_schema(), "rowtime")
        .unwrap();
    shell.set_partition_key("Orders", "productId").unwrap();
    shell
        .register_table(
            "Products",
            "products-changelog",
            products_schema(),
            "productId",
        )
        .unwrap();
    shell
}

#[test]
fn generated_workload_through_filter_and_join() {
    let broker = Broker::new();
    load_workload(&broker, 1_000);
    let mut sh = shell(&broker);

    // Bounded sanity: selectivity of units > 50 is ~50%.
    let filtered = sh
        .query("SELECT orderId, units FROM Orders WHERE units > 50")
        .unwrap();
    assert!(
        (350..=650).contains(&filtered.len()),
        "~50% selectivity expected, got {}",
        filtered.len()
    );

    // Continuous join: every order finds its product.
    let mut handle = sh
        .submit(
            "SELECT STREAM Orders.rowtime, Orders.orderId, Orders.units, Products.supplierId \
             FROM Orders JOIN Products ON Orders.productId = Products.productId",
        )
        .unwrap();
    let rows = handle
        .await_outputs(1_000, Duration::from_secs(30))
        .unwrap();
    assert_eq!(rows.len(), 1_000);
    handle.stop().unwrap();
}

#[test]
fn streaming_and_bounded_answers_agree() {
    // The paper's semantics goal: "produce the same results on a stream as
    // if the same data were in a table". Run the same filter both ways.
    let broker = Broker::new();
    load_workload(&broker, 500);
    let mut sh = shell(&broker);

    let bounded = sh
        .query("SELECT orderId FROM Orders WHERE units > 80")
        .unwrap();
    let mut streaming = sh
        .submit("SELECT STREAM orderId FROM Orders WHERE units > 80")
        .unwrap();
    let streamed = streaming
        .await_outputs(bounded.len(), Duration::from_secs(20))
        .unwrap();
    streaming.stop().unwrap();

    let mut a: Vec<i64> = bounded
        .iter()
        .map(|r| r.field("orderId").unwrap().as_i64().unwrap())
        .collect();
    let mut b: Vec<i64> = streamed
        .iter()
        .map(|r| r.field("orderId").unwrap().as_i64().unwrap())
        .collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "stream and table runs must agree on the same data");
}

#[test]
fn multi_container_join_is_correct_under_copartitioning() {
    let broker = Broker::new();
    load_workload(&broker, 2_000);
    let mut sh = shell(&broker);
    sh.default_containers = 4;
    let mut handle = sh
        .submit(
            "SELECT STREAM Orders.orderId, Orders.productId, Products.supplierId \
             FROM Orders JOIN Products ON Orders.productId = Products.productId",
        )
        .unwrap();
    let rows = handle
        .await_outputs(2_000, Duration::from_secs(30))
        .unwrap();
    assert_eq!(
        rows.len(),
        2_000,
        "co-partitioned join loses nothing across 4 containers"
    );
    // Verify a few joins against the relation.
    let mut pg = ProductsGenerator::new(ProductsSpec::default());
    let products: Vec<Value> = (0..100).map(|pid| pg.row(pid)).collect();
    for r in rows.iter().take(50) {
        let pid = r.field("productId").unwrap().as_i64().unwrap() as usize;
        let expected = products[pid].field("supplierId").unwrap();
        assert_eq!(r.field("supplierId"), Some(expected), "row {r}");
    }
    handle.stop().unwrap();
}

#[test]
fn facade_reexports_compose() {
    // The prelude + module re-exports cover the full stack.
    use samzasql::parser::parse_statement;
    use samzasql::planner::{Catalog, Planner};
    use samzasql::serde::Schema as S;

    let stmt = parse_statement("SELECT STREAM * FROM Orders WHERE units > 50").unwrap();
    assert!(stmt.as_query().unwrap().stream);

    let mut catalog = Catalog::new();
    catalog
        .register_stream(
            "Orders",
            "orders",
            S::record("Orders", vec![("rowtime", S::Timestamp), ("units", S::Int)]),
            "rowtime",
        )
        .unwrap();
    let planner = Planner::new(catalog);
    let planned = planner
        .plan("SELECT STREAM * FROM Orders WHERE units > 50")
        .unwrap();
    assert!(planned.is_stream);
}
