//! Metadata-handoff semantics (§4.2): the planner stores query text and
//! schemas under a path tree and tasks read them back. These tests came from
//! the old `samzasql_samza::coordination::MetadataStore` shim and pin the
//! behaviors its callers relied on, now expressed directly against `Coord`.

use samzasql_coord::{Coord, CoordError, CreateMode};

#[test]
fn set_get_normalizes_paths() {
    let c = Coord::new();
    c.upsert("jobs/q1/query", "SELECT 1").unwrap();
    assert_eq!(c.get("/jobs/q1/query").unwrap().0, "SELECT 1");
    assert_eq!(c.get("jobs/q1/query/").unwrap().0, "SELECT 1");
    assert!(matches!(c.get("missing"), Err(CoordError::NoNode(_))));
}

#[test]
fn interior_empty_segments_collapse() {
    // The pre-coord standalone store only trimmed edge slashes, so "/a//b"
    // silently addressed a different entry than "/a/b".
    let c = Coord::new();
    c.upsert("/a/b", "v").unwrap();
    assert_eq!(c.get("/a//b").unwrap().0, "v");
    c.upsert("/x//y", "w").unwrap();
    assert_eq!(c.get("/x/y").unwrap().0, "w");
    assert_eq!(c.children("//x").unwrap(), vec!["y".to_string()]);
}

#[test]
fn versions_increment() {
    let c = Coord::new();
    assert_eq!(c.upsert("/a", "1").unwrap(), 1);
    assert_eq!(c.upsert("/a", "2").unwrap(), 2);
    assert_eq!(c.get("/a").unwrap().1.version, 2);
}

#[test]
fn compare_and_set_enforces_version() {
    // CAS at "version 0" is a plain create; afterwards a versioned set only
    // succeeds when the caller's expected version matches.
    let c = Coord::new();
    assert!(c.create(None, "/a", "init", CreateMode::Persistent).is_ok());
    assert!(matches!(
        c.create(None, "/a", "stale", CreateMode::Persistent),
        Err(CoordError::NodeExists(_))
    ));
    assert!(matches!(
        c.set("/a", "stale", Some(7)),
        Err(CoordError::BadVersion { .. })
    ));
    assert!(c.set("/a", "next", Some(1)).is_ok());
    assert_eq!(c.get("/a").unwrap().0, "next");
}

#[test]
fn children_lists_one_level() {
    let c = Coord::new();
    c.upsert("/jobs/q1/query", "x").unwrap();
    c.upsert("/jobs/q1/schema", "y").unwrap();
    c.upsert("/jobs/q2/query", "z").unwrap();
    c.upsert("/other", "w").unwrap();
    assert_eq!(
        c.children("/jobs").unwrap(),
        vec!["q1".to_string(), "q2".to_string()]
    );
    assert_eq!(
        c.children("/jobs/q1").unwrap(),
        vec!["query".to_string(), "schema".to_string()]
    );
    assert!(matches!(c.children("/jobs/q3"), Err(CoordError::NoNode(_))));
}

#[test]
fn delete_removes_entry() {
    let c = Coord::new();
    c.upsert("/a", "1").unwrap();
    assert!(c.exists("/a").is_some());
    c.delete_recursive("/a").unwrap();
    assert!(c.exists("/a").is_none());
    assert!(matches!(c.get("/a"), Err(CoordError::NoNode(_))));
}

#[test]
fn handles_share_one_tree() {
    // Clones of a Coord are handles onto the same znode tree — the property
    // the shell/task metadata handoff depends on.
    let a = Coord::new();
    let b = a.clone();
    b.upsert("/shared/k", "v").unwrap();
    assert_eq!(a.get("/shared/k").unwrap().0, "v");
    a.upsert("/shared/k", "v2").unwrap();
    assert_eq!(b.get("/shared/k").unwrap().0, "v2");
}
