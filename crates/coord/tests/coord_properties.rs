//! Property-style tests for the coordination service.
//!
//! Hand-rolled rather than `proptest`-based so the crate stays
//! dependency-free: each property runs many randomized trials driven by a
//! seeded LCG (deterministic across runs), several of them with real thread
//! interleaving on the shared service.

use samzasql_coord::{Coord, CoordError, CreateMode, EventKind};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

/// Deterministic splitmix64-style generator; good enough spread for choosing
/// ops and paths, and fully reproducible.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_add(0x9e3779b97f4a7c15))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Property: a znode's version increases by exactly one per successful write,
/// and is never observed to move backwards — even with writers racing on the
/// same paths from multiple threads.
#[test]
fn versions_are_monotonic_per_path() {
    let coord = Coord::new();
    let paths: Vec<String> = (0..4).map(|i| format!("/prop/v{i}")).collect();
    for p in &paths {
        coord
            .create(None, p.as_str(), "0", CreateMode::Persistent)
            .unwrap();
    }

    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let coord = coord.clone();
            let paths = paths.clone();
            thread::spawn(move || {
                let mut rng = Rng::new(t);
                let mut observed: Vec<Vec<u64>> = vec![Vec::new(); paths.len()];
                for i in 0..200 {
                    let pi = rng.below(paths.len());
                    let path = paths[pi].as_str();
                    match rng.below(3) {
                        0 => {
                            let v = coord.set(path, format!("t{t}-{i}"), None).unwrap();
                            observed[pi].push(v);
                        }
                        1 => {
                            // CAS from a freshly-read version: may lose races,
                            // but a success must land on expected + 1.
                            let (_, stat) = coord.get(path).unwrap();
                            match coord.set(path, format!("cas{t}-{i}"), Some(stat.version)) {
                                Ok(v) => {
                                    assert_eq!(v, stat.version + 1);
                                    observed[pi].push(v);
                                }
                                Err(CoordError::BadVersion {
                                    expected, actual, ..
                                }) => {
                                    assert!(actual > expected, "version moved backwards");
                                }
                                Err(e) => panic!("unexpected error: {e}"),
                            }
                        }
                        _ => {
                            let (_, stat) = coord.get(path).unwrap();
                            observed[pi].push(stat.version);
                        }
                    }
                }
                observed
            })
        })
        .collect();

    let per_thread: Vec<Vec<Vec<u64>>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Within one thread's timeline, versions of a given path never decrease.
    for observed in &per_thread {
        for versions in observed {
            for pair in versions.windows(2) {
                assert!(
                    pair[0] <= pair[1],
                    "observed regression: {} -> {}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }
    // Globally: every successful write got a distinct version (no two writes
    // share one), so the final version equals 1 + number of successful sets.
    for (pi, p) in paths.iter().enumerate() {
        let writes: Vec<u64> = per_thread
            .iter()
            .flat_map(|obs| obs[pi].iter().copied())
            .collect();
        let final_version = coord.get(p.as_str()).unwrap().1.version;
        assert!(writes.iter().all(|v| *v <= final_version));
    }
}

/// Property: sequential creates under one parent hand out strictly
/// increasing, gap-free-from-the-service's-view suffixes, even when issued
/// concurrently; all resulting names are distinct.
#[test]
fn sequential_suffixes_strictly_increase_under_concurrency() {
    let coord = Coord::new();
    coord
        .create(None, "/seq", "", CreateMode::Persistent)
        .unwrap();

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let coord = coord.clone();
            thread::spawn(move || {
                (0..50)
                    .map(|_| {
                        coord
                            .create(None, "/seq/n-", "", CreateMode::PersistentSequential)
                            .unwrap()
                            .as_str()
                            .to_string()
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    let mut all: Vec<String> = Vec::new();
    for h in handles {
        let own = h.join().unwrap();
        // Each thread saw its own creations in strictly increasing order.
        for pair in own.windows(2) {
            assert!(
                pair[0] < pair[1],
                "per-thread order violated: {} then {}",
                pair[0],
                pair[1]
            );
        }
        all.extend(own);
    }
    assert_eq!(all.len(), 400);
    all.sort();
    all.dedup();
    assert_eq!(all.len(), 400, "duplicate sequential names handed out");
    // The service handed out exactly suffixes 1..=400.
    assert_eq!(all.first().map(String::as_str), Some("/seq/n-0000000001"));
    assert_eq!(all.last().map(String::as_str), Some("/seq/n-0000000400"));
}

/// Property: a one-shot watch fires exactly once no matter how many
/// subsequent changes hit the node, across randomized op sequences.
#[test]
fn one_shot_watches_fire_exactly_once() {
    let mut rng = Rng::new(42);
    for trial in 0..50 {
        let coord = Coord::new();
        let path = format!("/w/{trial}");
        coord
            .create(None, path.as_str(), "0", CreateMode::Persistent)
            .unwrap();
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = fired.clone();
        coord
            .watch_data_cb(path.as_str(), move |_| {
                fired2.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();

        let mutations = 1 + rng.below(10);
        for i in 0..mutations {
            if rng.below(4) == 0 && i + 1 == mutations {
                coord.delete(path.as_str(), None).unwrap();
            } else {
                coord.set(path.as_str(), format!("{i}"), None).unwrap();
            }
        }
        assert_eq!(
            fired.load(Ordering::SeqCst),
            1,
            "trial {trial}: one-shot watch fired more (or less) than once over {mutations} mutations"
        );
    }
}

/// Property: when a session ends — by timeout, force-expiry, or graceful
/// close — every ephemeral it owned disappears, and nothing owned by other
/// sessions is touched.
#[test]
fn session_end_reaps_exactly_its_ephemerals() {
    let mut rng = Rng::new(7);
    for trial in 0..30 {
        let coord = Coord::new();
        let sessions: Vec<_> = (0..4).map(|_| coord.create_session(1_000)).collect();
        let mut owned: Vec<Vec<String>> = vec![Vec::new(); sessions.len()];
        for i in 0..40 {
            let si = rng.below(sessions.len());
            let path = format!("/eph/s{si}-n{i}");
            coord
                .create(Some(sessions[si]), path.as_str(), "", CreateMode::Ephemeral)
                .unwrap();
            owned[si].push(path);
        }

        // End a random subset, one session per mechanism the trial picks.
        let mut ended = vec![false; sessions.len()];
        for (si, session) in sessions.iter().enumerate() {
            match rng.below(4) {
                0 => {
                    coord.force_expire(*session).unwrap();
                    ended[si] = true;
                }
                1 => {
                    coord.close_session(*session).unwrap();
                    ended[si] = true;
                }
                2 => {
                    coord.set_drop_heartbeats(*session, true).unwrap();
                    ended[si] = true; // will expire at the advance below
                }
                _ => {}
            }
        }
        // Keep survivors alive across the expiry sweep: move the clock to
        // t=500 so their heartbeat actually refreshes `last_heartbeat`, then
        // push past the timeout of everyone who did not refresh.
        coord.advance(500);
        for (si, session) in sessions.iter().enumerate() {
            if !ended[si] {
                coord.heartbeat(*session).unwrap();
            }
        }
        coord.advance(501);

        for (si, paths) in owned.iter().enumerate() {
            for path in paths {
                let node = coord.exists(path.as_str());
                if ended[si] {
                    assert!(node.is_none(), "trial {trial}: {path} survived its session");
                } else {
                    assert!(
                        node.is_some(),
                        "trial {trial}: {path} lost while session alive"
                    );
                }
            }
            assert_eq!(coord.session_alive(sessions[si]), !ended[si]);
        }
    }
}

/// Property: watch events for one session arrive in the order the
/// corresponding mutations were applied.
#[test]
fn session_events_arrive_in_mutation_order() {
    let coord = Coord::new();
    let session = coord.create_session(60_000);
    coord
        .create(None, "/ord", "", CreateMode::Persistent)
        .unwrap();
    let mut expected = Vec::new();
    let mut rng = Rng::new(1234);
    for i in 0..100 {
        let path = format!("/ord/n{i}");
        coord.watch_exists(session, path.as_str()).unwrap();
        coord
            .create(None, path.as_str(), "", CreateMode::Persistent)
            .unwrap();
        expected.push((path.clone(), EventKind::NodeCreated));
        if rng.below(2) == 0 {
            coord.watch_data(session, path.as_str()).unwrap();
            coord.set(path.as_str(), "x", None).unwrap();
            expected.push((path, EventKind::NodeDataChanged));
        }
    }
    let events = coord.poll_events(session).unwrap();
    let got: Vec<(String, EventKind)> = events
        .into_iter()
        .map(|e| (e.path.as_str().to_string(), e.kind))
        .collect();
    assert_eq!(got, expected);
}
