//! Coordination recipes: higher-level patterns built purely on the znode /
//! session / watch primitives, mirroring Apache Curator's recipe layer.
//!
//! * [`GroupMembership`] — ephemeral children under a base path; the live
//!   children *are* the group.
//! * [`LeaderElection`] — ephemeral-sequential candidates; the lowest
//!   sequence number leads, and each candidate watches only its predecessor
//!   (no thundering herd on failover).

mod election;
mod membership;

pub use election::{Candidate, LeaderElection};
pub use membership::GroupMembership;
