//! Leader election over ephemeral-sequential znodes.
//!
//! The classic ZooKeeper recipe: each candidate creates an
//! ephemeral-sequential node under the election path; the candidate owning
//! the lowest sequence number is the leader. Every other candidate watches
//! only its immediate *predecessor* — when that node vanishes the candidate
//! re-checks, either becoming leader or watching the new predecessor. Since
//! nobody watches the leader directly there is no thundering herd on
//! failover.

use crate::error::{CoordError, Result};
use crate::path::ZnodePath;
use crate::service::{Coord, CreateMode, SessionId};
use std::sync::Arc;

/// An election rooted at a base znode.
#[derive(Clone)]
pub struct LeaderElection {
    coord: Coord,
    base: ZnodePath,
}

/// One candidate's ticket in an election.
pub struct Candidate {
    coord: Coord,
    base: ZnodePath,
    /// This candidate's ephemeral-sequential node.
    my_path: ZnodePath,
}

impl LeaderElection {
    /// Open (creating the base node if needed) the election at `base`.
    pub fn new(coord: Coord, base: impl Into<ZnodePath>) -> Result<LeaderElection> {
        let base = base.into();
        match coord.create(None, base.clone(), "", CreateMode::Persistent) {
            Ok(_) | Err(CoordError::NodeExists(_)) => {}
            Err(e) => return Err(e),
        }
        Ok(LeaderElection { coord, base })
    }

    /// Enter the election: creates an ephemeral-sequential candidate node
    /// whose data is `id` (the candidate's announced identity).
    pub fn enter(&self, session: SessionId, id: impl Into<String>) -> Result<Candidate> {
        let my_path = self.coord.create(
            Some(session),
            self.base.child("n-"),
            id,
            CreateMode::EphemeralSequential,
        )?;
        Ok(Candidate {
            coord: self.coord.clone(),
            base: self.base.clone(),
            my_path,
        })
    }

    /// The current leader's announced id, if any candidate is present.
    pub fn leader(&self) -> Result<Option<String>> {
        let mut names = self.coord.children(self.base.clone())?;
        names.sort();
        match names.first() {
            Some(first) => Ok(Some(self.coord.get(self.base.child(first))?.0)),
            None => Ok(None),
        }
    }
}

impl Candidate {
    /// The candidate's own znode path.
    pub fn path(&self) -> &ZnodePath {
        &self.my_path
    }

    /// Whether this candidate currently leads (owns the lowest sequence
    /// number). `false` once its node is gone (resigned or session expired).
    pub fn is_leader(&self) -> bool {
        match self.coord.children(self.base.clone()) {
            Ok(mut names) => {
                names.sort();
                names.first().map(|n| self.base.child(n)) == Some(self.my_path.clone())
            }
            Err(_) => false,
        }
    }

    /// Withdraw from the election, deleting the candidate node (the session
    /// stays alive).
    pub fn resign(&self) -> Result<()> {
        self.coord.delete(self.my_path.clone(), None)
    }

    /// Watch for leadership changes affecting this candidate: `callback`
    /// receives `true` when the candidate becomes (or already is) leader.
    /// While not leading, the candidate watches only its predecessor node;
    /// each predecessor death re-evaluates and re-arms.
    pub fn watch(&self, callback: impl Fn(bool) + Send + Sync + 'static) -> Result<()> {
        let cb: Arc<dyn Fn(bool) + Send + Sync> = Arc::new(callback);
        check_and_arm(&self.coord, &self.base, &self.my_path, &cb);
        Ok(())
    }
}

/// Evaluate this candidate's standing; if not leader, arm a watch on the
/// predecessor and recurse when it fires. Named function (not a closure) so
/// it can re-invoke itself from inside the watch callback.
fn check_and_arm(
    coord: &Coord,
    base: &ZnodePath,
    my_path: &ZnodePath,
    cb: &Arc<dyn Fn(bool) + Send + Sync>,
) {
    loop {
        let Ok(mut names) = coord.children(base.clone()) else {
            return;
        };
        names.sort();
        let my_name = my_path.basename().to_string();
        if !names.contains(&my_name) {
            // Our node is gone (resigned / expired): we can never lead.
            cb(false);
            return;
        }
        if names.first() == Some(&my_name) {
            cb(true);
            return;
        }
        // Watch the candidate immediately ahead of us.
        let pred = names[names.iter().position(|n| *n == my_name).expect("contains") - 1].clone();
        let pred_path = base.child(&pred);
        let coord2 = coord.clone();
        let base2 = base.clone();
        let my2 = my_path.clone();
        let cb2 = cb.clone();
        let (watch_id, stat) = coord.watch_exists_cb(pred_path, move |_| {
            check_and_arm(&coord2, &base2, &my2, &cb2);
        });
        if stat.is_some() {
            // Predecessor alive at arm time: the watch will fire on its
            // deletion. Done for now.
            return;
        }
        // Predecessor vanished between listing and arming; retract the watch
        // (it would fire on an unrelated re-creation) and re-evaluate.
        coord.cancel_watch(watch_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn first_entrant_leads() {
        let coord = Coord::new();
        let election = LeaderElection::new(coord.clone(), "/election").unwrap();
        let s1 = coord.create_session(10_000);
        let s2 = coord.create_session(10_000);
        let c1 = election.enter(s1, "am-1").unwrap();
        let c2 = election.enter(s2, "am-2").unwrap();
        assert!(c1.is_leader());
        assert!(!c2.is_leader());
        assert_eq!(election.leader().unwrap().as_deref(), Some("am-1"));
    }

    #[test]
    fn resignation_promotes_successor() {
        let coord = Coord::new();
        let election = LeaderElection::new(coord.clone(), "/e").unwrap();
        let s1 = coord.create_session(10_000);
        let s2 = coord.create_session(10_000);
        let c1 = election.enter(s1, "one").unwrap();
        let c2 = election.enter(s2, "two").unwrap();

        let promoted = Arc::new(AtomicBool::new(false));
        let promoted2 = promoted.clone();
        c2.watch(move |leading| promoted2.store(leading, Ordering::SeqCst))
            .unwrap();
        assert!(!promoted.load(Ordering::SeqCst));

        c1.resign().unwrap();
        assert!(
            promoted.load(Ordering::SeqCst),
            "watch fired on predecessor death"
        );
        assert!(c2.is_leader());
        assert_eq!(election.leader().unwrap().as_deref(), Some("two"));
    }

    #[test]
    fn session_expiry_promotes_successor() {
        let coord = Coord::new();
        let election = LeaderElection::new(coord.clone(), "/e").unwrap();
        let s1 = coord.create_session(1_000);
        let s2 = coord.create_session(60_000);
        let _c1 = election.enter(s1, "one").unwrap();
        let c2 = election.enter(s2, "two").unwrap();

        let promoted = Arc::new(AtomicBool::new(false));
        let promoted2 = promoted.clone();
        c2.watch(move |leading| promoted2.store(leading, Ordering::SeqCst))
            .unwrap();

        coord.heartbeat(s2).unwrap();
        coord.advance(1_001);
        assert!(promoted.load(Ordering::SeqCst));
        assert!(c2.is_leader());
    }

    #[test]
    fn middle_candidate_death_rewires_watch_chain() {
        let coord = Coord::new();
        let election = LeaderElection::new(coord.clone(), "/e").unwrap();
        let s = [
            coord.create_session(60_000),
            coord.create_session(60_000),
            coord.create_session(60_000),
        ];
        let c1 = election.enter(s[0], "a").unwrap();
        let c2 = election.enter(s[1], "b").unwrap();
        let c3 = election.enter(s[2], "c").unwrap();

        let c3_fires = Arc::new(AtomicUsize::new(0));
        let c3_leading = Arc::new(AtomicBool::new(false));
        let (fires, leading) = (c3_fires.clone(), c3_leading.clone());
        c3.watch(move |l| {
            fires.fetch_add(1, Ordering::SeqCst);
            leading.store(l, Ordering::SeqCst);
        })
        .unwrap();

        // The middle candidate dies: c3's predecessor watch fires, but c3
        // still trails c1, so it re-arms on c1 without claiming leadership.
        c2.resign().unwrap();
        assert_eq!(
            c3_fires.load(Ordering::SeqCst),
            0,
            "not leader yet: no callback"
        );
        assert!(!c3.is_leader());

        c1.resign().unwrap();
        assert_eq!(c3_fires.load(Ordering::SeqCst), 1);
        assert!(c3_leading.load(Ordering::SeqCst));
        assert!(c3.is_leader());
    }
}
