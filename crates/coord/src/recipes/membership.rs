//! Group membership over ephemeral znodes.
//!
//! Each member joins by creating an ephemeral child of the group's base path;
//! the set of live children *is* the membership. When a member's session
//! expires (crash, dropped heartbeats, force-expiry) its node vanishes and
//! children-watchers hear about it — this is what drives consumer-group
//! rebalances in the Kafka layer.

use crate::error::{CoordError, Result};
use crate::path::ZnodePath;
use crate::service::{Coord, CreateMode, SessionId, WatchEvent};

/// A membership group rooted at a base znode.
#[derive(Clone)]
pub struct GroupMembership {
    coord: Coord,
    base: ZnodePath,
}

impl GroupMembership {
    /// Open (creating the base node if needed) the group at `base`.
    pub fn new(coord: Coord, base: impl Into<ZnodePath>) -> Result<GroupMembership> {
        let base = base.into();
        match coord.create(None, base.clone(), "", CreateMode::Persistent) {
            Ok(_) | Err(CoordError::NodeExists(_)) => {}
            Err(e) => return Err(e),
        }
        Ok(GroupMembership { coord, base })
    }

    /// The base path the group lives under.
    pub fn base(&self) -> &ZnodePath {
        &self.base
    }

    /// Join the group: creates an ephemeral `base/member` node carrying
    /// `data`, tied to `session`. Re-joining with the same live session is
    /// idempotent (the data is refreshed).
    pub fn join(
        &self,
        session: SessionId,
        member: &str,
        data: impl Into<String>,
    ) -> Result<ZnodePath> {
        let path = self.base.child(member);
        let data = data.into();
        match self.coord.create(
            Some(session),
            path.clone(),
            data.clone(),
            CreateMode::Ephemeral,
        ) {
            Ok(p) => Ok(p),
            Err(CoordError::NodeExists(_)) => {
                // Same member re-announcing itself: only legal if the node is
                // still owned by this very session.
                let (_, stat) = self.coord.get(path.clone())?;
                if stat.ephemeral_owner == Some(session) {
                    self.coord.set(path.clone(), data, None)?;
                    Ok(path)
                } else {
                    Err(CoordError::NodeExists(path.to_string()))
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Leave the group explicitly (session stays alive).
    pub fn leave(&self, member: &str) -> Result<()> {
        self.coord.delete(self.base.child(member), None)
    }

    /// Current member names, sorted.
    pub fn members(&self) -> Result<Vec<String>> {
        self.coord.children(self.base.clone())
    }

    /// Current members with their announced data, sorted by name.
    pub fn member_data(&self) -> Result<Vec<(String, String)>> {
        let mut out = Vec::new();
        for name in self.members()? {
            // A member may vanish between listing and reading; skip it.
            if let Ok((data, _)) = self.coord.get(self.base.child(&name)) {
                out.push((name, data));
            }
        }
        Ok(out)
    }

    /// Watch the membership: `callback` is invoked with the member list after
    /// every change, re-arming itself each time (the underlying children
    /// watch is one-shot). The watch is re-armed *before* the list is read so
    /// changes racing the callback are never lost.
    pub fn watch(&self, callback: impl Fn(Vec<String>) + Send + Sync + 'static) -> Result<()> {
        let group = self.clone();
        let callback = std::sync::Arc::new(callback);
        arm(&group, callback)
    }
}

fn arm(
    group: &GroupMembership,
    callback: std::sync::Arc<dyn Fn(Vec<String>) + Send + Sync>,
) -> Result<()> {
    let rearm_group = group.clone();
    let rearm_cb = callback.clone();
    group
        .coord
        .watch_children_cb(group.base.clone(), move |_event: WatchEvent| {
            // Re-arm first: a change landing while we read/notify will queue a
            // fresh event rather than slip by unobserved. If the base node is
            // gone (group torn down) the re-arm fails and the chain ends.
            let _ = arm(&rearm_group, rearm_cb.clone());
            rearm_cb(rearm_group.members().unwrap_or_default());
        })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn join_members_leave() {
        let coord = Coord::new();
        let group = GroupMembership::new(coord.clone(), "/groups/g1").unwrap();
        let s1 = coord.create_session(10_000);
        let s2 = coord.create_session(10_000);
        group.join(s1, "a", "host-a").unwrap();
        group.join(s2, "b", "host-b").unwrap();
        assert_eq!(group.members().unwrap(), vec!["a", "b"]);
        assert_eq!(
            group.member_data().unwrap(),
            vec![("a".into(), "host-a".into()), ("b".into(), "host-b".into())]
        );
        group.leave("a").unwrap();
        assert_eq!(group.members().unwrap(), vec!["b"]);
    }

    #[test]
    fn rejoin_same_session_refreshes_data() {
        let coord = Coord::new();
        let group = GroupMembership::new(coord.clone(), "/g").unwrap();
        let s = coord.create_session(10_000);
        group.join(s, "m", "v1").unwrap();
        group.join(s, "m", "v2").unwrap();
        assert_eq!(
            group.member_data().unwrap(),
            vec![("m".into(), "v2".into())]
        );
        // A different session cannot steal the name while the owner lives.
        let other = coord.create_session(10_000);
        assert!(matches!(
            group.join(other, "m", "x"),
            Err(CoordError::NodeExists(_))
        ));
    }

    #[test]
    fn expiry_removes_member_and_notifies_watch() {
        let coord = Coord::new();
        let group = GroupMembership::new(coord.clone(), "/g").unwrap();
        let s1 = coord.create_session(1_000);
        let s2 = coord.create_session(60_000);
        group.join(s1, "doomed", "").unwrap();
        group.join(s2, "survivor", "").unwrap();

        let seen: Arc<Mutex<Vec<Vec<String>>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        group
            .watch(move |members| seen2.lock().unwrap().push(members))
            .unwrap();

        coord.heartbeat(s2).unwrap();
        coord.advance(1_001); // s1 expires, s2 heartbeated
        let snapshots = seen.lock().unwrap().clone();
        assert_eq!(snapshots.last().unwrap(), &vec!["survivor".to_string()]);
        assert_eq!(group.members().unwrap(), vec!["survivor"]);
    }

    #[test]
    fn watch_rearms_across_many_changes() {
        let coord = Coord::new();
        let group = GroupMembership::new(coord.clone(), "/g").unwrap();
        let count = Arc::new(Mutex::new(0usize));
        let count2 = count.clone();
        group.watch(move |_| *count2.lock().unwrap() += 1).unwrap();
        let s = coord.create_session(10_000);
        for i in 0..5 {
            group.join(s, &format!("m{i}"), "").unwrap();
        }
        assert_eq!(*count.lock().unwrap(), 5);
    }
}
