//! # samzasql-coord — in-process coordination service
//!
//! A ZooKeeper-style coordination substrate for the SamzaSQL stack. The
//! paper's deployment (§4.2) leans on ZooKeeper twice: the interactive shell
//! stores streaming-query text and schema references under a well-known path
//! so query workers can re-plan locally, and Samza/Kafka use sessions and
//! ephemeral nodes for container liveness and consumer-group membership.
//! This crate reproduces those semantics in-process and deterministically:
//!
//! * a hierarchical **znode tree** with per-node versions and CAS
//!   ([`Coord::set`] with an expected version),
//! * **sessions** with heartbeats and timeout-driven expiry on a manual
//!   clock ([`ManualClock`]) — ephemeral znodes die with their session,
//! * **one-shot watches** (data / children / existence) delivered in order,
//! * **recipes** ([`recipes::LeaderElection`], [`recipes::GroupMembership`])
//!   built purely on the primitives,
//! * **fault injection** ([`Coord::force_expire`],
//!   [`Coord::set_drop_heartbeats`], [`Coord::pause_delivery`]) and a
//!   [`CoordMetrics`] snapshot for chaos-style tests.
//!
//! The crate is dependency-free (pure `std`) so any layer of the stack can
//! embed it.
//!
//! ```
//! use samzasql_coord::{Coord, CreateMode};
//!
//! let coord = Coord::new();
//! let session = coord.create_session(10_000);
//! coord.create(Some(session), "/samza/containers/0", "alive", CreateMode::Ephemeral).unwrap();
//! assert_eq!(coord.children("/samza/containers").unwrap(), vec!["0"]);
//! coord.advance(10_001); // no heartbeat: the session expires
//! assert!(coord.children("/samza/containers").unwrap().is_empty());
//! ```

mod clock;
mod error;
mod path;
pub mod recipes;
mod service;

pub use clock::ManualClock;
pub use error::{CoordError, Result};
pub use path::ZnodePath;
pub use service::{
    Coord, CoordMetrics, CreateMode, EventKind, SessionId, Stat, WatchEvent, WatchId, WatchKind,
};
