//! Znode path type.
//!
//! A [`ZnodePath`] is an absolute, `/`-separated hierarchical name, stored in
//! canonical form: leading slash, no trailing slash, and **no empty interior
//! segments** (`/a//b` and `/a/b/` both canonicalize to `/a/b`). The old
//! `MetadataStore` only trimmed leading/trailing slashes, so `get("/a//b")`
//! and `get("/a/b")` silently addressed different nodes; canonicalizing every
//! segment closes that hole.

/// An absolute, canonicalized znode path.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ZnodePath(String);

impl ZnodePath {
    /// The root path `/`.
    pub fn root() -> Self {
        ZnodePath("/".to_string())
    }

    /// Parse any slash-separated string into canonical form. Empty segments
    /// (doubled, leading, or trailing slashes) are collapsed; an empty or
    /// all-slash input is the root.
    pub fn parse(raw: &str) -> Self {
        let mut out = String::with_capacity(raw.len() + 1);
        for segment in raw.split('/').filter(|s| !s.is_empty()) {
            out.push('/');
            out.push_str(segment);
        }
        if out.is_empty() {
            out.push('/');
        }
        ZnodePath(out)
    }

    /// The canonical string form.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Whether this is the root path.
    pub fn is_root(&self) -> bool {
        self.0 == "/"
    }

    /// The parent path, or `None` for the root.
    pub fn parent(&self) -> Option<ZnodePath> {
        if self.is_root() {
            return None;
        }
        match self.0.rfind('/') {
            Some(0) => Some(ZnodePath::root()),
            Some(i) => Some(ZnodePath(self.0[..i].to_string())),
            None => None,
        }
    }

    /// The final path segment (empty string for the root).
    pub fn basename(&self) -> &str {
        if self.is_root() {
            ""
        } else {
            &self.0[self.0.rfind('/').map_or(0, |i| i + 1)..]
        }
    }

    /// A child of this path. The child name is itself canonicalized, so
    /// nested names (`"a/b"`) extend the path by multiple segments.
    pub fn child(&self, name: &str) -> ZnodePath {
        ZnodePath::parse(&format!("{}/{}", self.0, name))
    }

    /// Whether `other` is a direct child of `self`.
    pub fn is_parent_of(&self, other: &ZnodePath) -> bool {
        other.parent().as_ref() == Some(self)
    }
}

impl std::fmt::Display for ZnodePath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ZnodePath {
    fn from(raw: &str) -> Self {
        ZnodePath::parse(raw)
    }
}

impl From<String> for ZnodePath {
    fn from(raw: String) -> Self {
        ZnodePath::parse(&raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_slashes() {
        assert_eq!(ZnodePath::parse("/a/b").as_str(), "/a/b");
        assert_eq!(ZnodePath::parse("a/b").as_str(), "/a/b");
        assert_eq!(ZnodePath::parse("/a/b/").as_str(), "/a/b");
        // The MetadataStore bug: interior empty segments must collapse too.
        assert_eq!(ZnodePath::parse("/a//b").as_str(), "/a/b");
        assert_eq!(ZnodePath::parse("//a///b//").as_str(), "/a/b");
        assert_eq!(ZnodePath::parse("/a//b"), ZnodePath::parse("a/b"));
    }

    #[test]
    fn empty_and_slashes_are_root() {
        assert_eq!(ZnodePath::parse("").as_str(), "/");
        assert_eq!(ZnodePath::parse("/").as_str(), "/");
        assert_eq!(ZnodePath::parse("///").as_str(), "/");
        assert!(ZnodePath::parse("//").is_root());
    }

    #[test]
    fn parent_chain_reaches_root() {
        let p = ZnodePath::parse("/a/b/c");
        let b = p.parent().unwrap();
        assert_eq!(b.as_str(), "/a/b");
        let a = b.parent().unwrap();
        assert_eq!(a.as_str(), "/a");
        let root = a.parent().unwrap();
        assert!(root.is_root());
        assert_eq!(root.parent(), None);
    }

    #[test]
    fn basename_and_child() {
        assert_eq!(ZnodePath::parse("/a/b").basename(), "b");
        assert_eq!(ZnodePath::root().basename(), "");
        assert_eq!(ZnodePath::parse("/a").child("b").as_str(), "/a/b");
        assert_eq!(ZnodePath::root().child("x").as_str(), "/x");
        assert_eq!(ZnodePath::parse("/a").child("b/c").as_str(), "/a/b/c");
    }

    #[test]
    fn direct_child_relation() {
        let a = ZnodePath::parse("/a");
        assert!(a.is_parent_of(&ZnodePath::parse("/a/b")));
        assert!(!a.is_parent_of(&ZnodePath::parse("/a/b/c")));
        assert!(!a.is_parent_of(&ZnodePath::parse("/b")));
        assert!(ZnodePath::root().is_parent_of(&a));
    }
}
