//! Manual clock.
//!
//! Session expiry is driven by a millisecond counter that only moves when
//! told to ([`Coord::advance`](crate::Coord::advance)), never by wall time.
//! Tests are therefore fully deterministic: a session expires exactly when a
//! test advances the clock past its timeout (or force-expires it), and never
//! because a CI machine stalled.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, manually-advanced millisecond clock.
#[derive(Clone, Default)]
pub struct ManualClock {
    now_ms: Arc<AtomicU64>,
}

impl ManualClock {
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Current time in milliseconds since the clock's epoch.
    pub fn now_ms(&self) -> u64 {
        self.now_ms.load(Ordering::SeqCst)
    }

    /// Move the clock forward, returning the new now. (Use
    /// [`Coord::advance`](crate::Coord::advance) instead when the clock backs
    /// a coordination service, so expiry checks run.)
    pub fn advance(&self, ms: u64) -> u64 {
        self.now_ms.fetch_add(ms, Ordering::SeqCst) + ms
    }
}

impl std::fmt::Debug for ManualClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ManualClock({}ms)", self.now_ms())
    }
}
