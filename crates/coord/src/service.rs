//! The coordination service: znode tree, sessions, watches, fault injection.
//!
//! An in-process, thread-safe stand-in for the ZooKeeper ensemble of the
//! paper's deployment (§4.2 stores query text and schemas in ZooKeeper;
//! Samza-style liveness leans on its sessions and ephemeral nodes):
//!
//! * **Znodes** — a hierarchical tree of string-valued nodes addressed by
//!   [`ZnodePath`]s, each carrying a version counter ([`Stat`]) for
//!   compare-and-set updates. Nodes are *persistent* or *ephemeral* (deleted
//!   when the owning session ends), optionally *sequential* (the service
//!   appends a per-parent, strictly increasing counter to the name).
//! * **Sessions** — clients hold a [`SessionId`] and heartbeat it; a session
//!   whose heartbeat is older than its timeout is expired when the manual
//!   clock advances, deleting all its ephemeral nodes. Expiry is
//!   deterministic: the clock only moves via [`Coord::advance`].
//! * **Watches** — one-shot triggers on data changes, children changes, or
//!   node existence, delivered **in order** either to a session's event queue
//!   (polled) or to a registered callback (invoked synchronously by the
//!   thread that performed the mutation, after it released internal locks).
//! * **Fault injection** — [`Coord::force_expire`] kills a session now,
//!   [`Coord::set_drop_heartbeats`] silently discards a client's heartbeats
//!   (the client keeps believing it is alive), and
//!   [`Coord::pause_delivery`] holds queued watch events until resumed.

use crate::clock::ManualClock;
use crate::error::{CoordError, Result};
use crate::path::ZnodePath;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard};

/// Identifies a client session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// How a znode is created.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreateMode {
    Persistent,
    Ephemeral,
    PersistentSequential,
    EphemeralSequential,
}

impl CreateMode {
    pub fn is_ephemeral(self) -> bool {
        matches!(
            self,
            CreateMode::Ephemeral | CreateMode::EphemeralSequential
        )
    }

    pub fn is_sequential(self) -> bool {
        matches!(
            self,
            CreateMode::PersistentSequential | CreateMode::EphemeralSequential
        )
    }
}

/// Znode metadata returned alongside reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stat {
    /// Data version: 1 at creation, +1 per set.
    pub version: u64,
    /// Clock time of creation (ms).
    pub created_at_ms: u64,
    /// Clock time of the last data write (ms).
    pub modified_at_ms: u64,
    /// Owning session for ephemeral nodes.
    pub ephemeral_owner: Option<SessionId>,
    /// Number of direct children.
    pub num_children: usize,
}

/// What a watch observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchKind {
    /// Data writes and deletion of the node.
    Data,
    /// Child create/delete under the node, and deletion of the node.
    Children,
    /// Creation, data writes, and deletion of the (possibly absent) node.
    Exists,
}

/// What happened at a watched path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    NodeCreated,
    NodeDeleted,
    NodeDataChanged,
    NodeChildrenChanged,
}

/// A delivered watch notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEvent {
    pub path: ZnodePath,
    pub kind: EventKind,
}

/// Identifies a registered (not yet fired) watch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WatchId(u64);

/// Counters exposed by [`Coord::metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoordMetrics {
    /// Current znode count, including the root.
    pub znodes: usize,
    /// Sessions currently alive.
    pub live_sessions: usize,
    /// Sessions ever created.
    pub sessions_created: u64,
    /// Sessions that ended by expiry (timeout or force).
    pub sessions_expired: u64,
    /// Sessions ended gracefully via close.
    pub sessions_closed: u64,
    /// Watches ever registered.
    pub watches_registered: u64,
    /// Watch events delivered (to queues or callbacks).
    pub watches_fired: u64,
    /// Ephemeral znodes deleted because their session ended.
    pub ephemerals_reaped: u64,
    /// Events queued but not yet delivered (e.g. while paused).
    pub pending_deliveries: usize,
}

type WatchCallback = Arc<dyn Fn(WatchEvent) + Send + Sync>;

enum Delivery {
    /// Append to the session's event queue, drained by `poll_events`.
    Session(SessionId),
    /// Invoke a callback on the delivering thread (no locks held).
    Callback(WatchCallback),
}

struct Watch {
    path: ZnodePath,
    kind: WatchKind,
    delivery: Delivery,
}

struct Znode {
    data: String,
    version: u64,
    created_at_ms: u64,
    modified_at_ms: u64,
    owner: Option<SessionId>,
    /// Monotone counter for sequential children of this node.
    seq_counter: u64,
    /// Names of direct children. Kept explicitly (rather than derived from a
    /// map prefix scan) because path strings with bytes below `/` would break
    /// a scan's contiguity (`/q-x` sorts between `/q` and `/q/child`).
    children: BTreeSet<String>,
}

impl Znode {
    fn new(data: String, now_ms: u64, owner: Option<SessionId>) -> Znode {
        Znode {
            data,
            version: 1,
            created_at_ms: now_ms,
            modified_at_ms: now_ms,
            owner,
            seq_counter: 0,
            children: BTreeSet::new(),
        }
    }
}

struct Session {
    timeout_ms: u64,
    last_heartbeat_ms: u64,
    /// Fault injection: silently discard heartbeats.
    drop_heartbeats: bool,
    /// Paths of ephemeral nodes owned by this session.
    ephemerals: BTreeSet<ZnodePath>,
    /// Queued watch events for `poll_events`.
    events: VecDeque<WatchEvent>,
}

#[derive(Default)]
struct Counters {
    sessions_created: u64,
    sessions_expired: u64,
    sessions_closed: u64,
    watches_registered: u64,
    watches_fired: u64,
    ephemerals_reaped: u64,
}

struct Inner {
    nodes: BTreeMap<ZnodePath, Znode>,
    sessions: BTreeMap<SessionId, Session>,
    watches: BTreeMap<WatchId, Watch>,
    queue: VecDeque<(Delivery, WatchEvent)>,
    next_session: u64,
    next_watch: u64,
    paused: bool,
    /// Re-entrancy guard: exactly one thread drains the queue at a time.
    delivering: bool,
    counters: Counters,
}

impl Inner {
    fn node(&self, path: &ZnodePath) -> Result<&Znode> {
        self.nodes
            .get(path)
            .ok_or_else(|| CoordError::NoNode(path.to_string()))
    }

    fn stat_of(&self, node: &Znode) -> Stat {
        Stat {
            version: node.version,
            created_at_ms: node.created_at_ms,
            modified_at_ms: node.modified_at_ms,
            ephemeral_owner: node.owner,
            num_children: node.children.len(),
        }
    }

    /// Insert a node and register it with its parent's child set.
    fn insert_node(&mut self, path: ZnodePath, node: Znode) {
        if let Some(parent) = path.parent() {
            if let Some(parent_node) = self.nodes.get_mut(&parent) {
                parent_node.children.insert(path.basename().to_string());
            }
        }
        self.nodes.insert(path, node);
    }

    /// Move matching one-shot watches into the delivery queue.
    fn trigger(&mut self, path: &ZnodePath, kinds: &[WatchKind], event: EventKind) {
        let ids: Vec<WatchId> = self
            .watches
            .iter()
            .filter(|(_, w)| w.path == *path && kinds.contains(&w.kind))
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            let watch = self.watches.remove(&id).expect("collected id");
            self.queue.push_back((
                watch.delivery,
                WatchEvent {
                    path: path.clone(),
                    kind: event,
                },
            ));
        }
    }

    /// Remove a node (which must exist and have no children), triggering the
    /// full delete notification set.
    fn remove_node(&mut self, path: &ZnodePath) {
        let node = self.nodes.remove(path).expect("caller checked existence");
        if let Some(parent) = path.parent() {
            if let Some(parent_node) = self.nodes.get_mut(&parent) {
                parent_node.children.remove(path.basename());
            }
        }
        if let Some(owner) = node.owner {
            if let Some(session) = self.sessions.get_mut(&owner) {
                session.ephemerals.remove(path);
            }
        }
        self.trigger(
            path,
            &[WatchKind::Data, WatchKind::Exists, WatchKind::Children],
            EventKind::NodeDeleted,
        );
        if let Some(parent) = path.parent() {
            self.trigger(
                &parent,
                &[WatchKind::Children],
                EventKind::NodeChildrenChanged,
            );
        }
    }

    /// End a session: delete its ephemerals (firing watches), cancel its
    /// queue-delivered watches, drop it.
    fn end_session(&mut self, id: SessionId, expired: bool) {
        let Some(session) = self.sessions.remove(&id) else {
            return;
        };
        for path in session.ephemerals.iter().rev() {
            // rev(): children sort after parents, so delete deepest-first.
            if self.nodes.contains_key(path) {
                self.counters.ephemerals_reaped += 1;
                self.remove_node(path);
            }
        }
        let cancelled: Vec<WatchId> = self
            .watches
            .iter()
            .filter(|(_, w)| matches!(w.delivery, Delivery::Session(s) if s == id))
            .map(|(wid, _)| *wid)
            .collect();
        for wid in cancelled {
            self.watches.remove(&wid);
        }
        if expired {
            self.counters.sessions_expired += 1;
        } else {
            self.counters.sessions_closed += 1;
        }
    }
}

/// Shared handle to the coordination service. Cloning shares the tree.
#[derive(Clone)]
pub struct Coord {
    inner: Arc<Mutex<Inner>>,
    clock: ManualClock,
}

impl Default for Coord {
    fn default() -> Self {
        Coord::new()
    }
}

impl Coord {
    pub fn new() -> Self {
        let mut nodes = BTreeMap::new();
        nodes.insert(ZnodePath::root(), Znode::new(String::new(), 0, None));
        Coord {
            inner: Arc::new(Mutex::new(Inner {
                nodes,
                sessions: BTreeMap::new(),
                watches: BTreeMap::new(),
                queue: VecDeque::new(),
                next_session: 0,
                next_watch: 0,
                paused: false,
                delivering: false,
                counters: Counters::default(),
            })),
            clock: ManualClock::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().expect("coord lock poisoned")
    }

    // ------------------------------------------------------------- clock

    /// The manual clock backing session expiry (read-only use; advance via
    /// [`Coord::advance`]).
    pub fn clock(&self) -> &ManualClock {
        &self.clock
    }

    /// Current clock time in ms.
    pub fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// Advance the clock, expire overdue sessions, deliver resulting events.
    pub fn advance(&self, ms: u64) {
        let now = self.clock.advance(ms);
        {
            let mut inner = self.lock();
            let overdue: Vec<SessionId> = inner
                .sessions
                .iter()
                .filter(|(_, s)| now.saturating_sub(s.last_heartbeat_ms) > s.timeout_ms)
                .map(|(id, _)| *id)
                .collect();
            for id in overdue {
                inner.end_session(id, true);
            }
        }
        self.deliver();
    }

    // ---------------------------------------------------------- sessions

    /// Open a session that must heartbeat at least every `timeout_ms` of
    /// clock time.
    pub fn create_session(&self, timeout_ms: u64) -> SessionId {
        let mut inner = self.lock();
        inner.next_session += 1;
        let id = SessionId(inner.next_session);
        let now = self.clock.now_ms();
        inner.counters.sessions_created += 1;
        inner.sessions.insert(
            id,
            Session {
                timeout_ms,
                last_heartbeat_ms: now,
                drop_heartbeats: false,
                ephemerals: BTreeSet::new(),
                events: VecDeque::new(),
            },
        );
        id
    }

    /// Refresh a session's liveness. Errs if the session no longer exists
    /// (closed or expired) — the client's cue that its ephemerals are gone.
    pub fn heartbeat(&self, id: SessionId) -> Result<()> {
        let now = self.clock.now_ms();
        let mut inner = self.lock();
        let session = inner
            .sessions
            .get_mut(&id)
            .ok_or(CoordError::NoSession(id))?;
        if !session.drop_heartbeats {
            session.last_heartbeat_ms = now;
        }
        Ok(())
    }

    /// Gracefully close a session, deleting its ephemeral nodes. Not counted
    /// as an expiry.
    pub fn close_session(&self, id: SessionId) -> Result<()> {
        {
            let mut inner = self.lock();
            if !inner.sessions.contains_key(&id) {
                return Err(CoordError::NoSession(id));
            }
            inner.end_session(id, false);
        }
        self.deliver();
        Ok(())
    }

    /// Whether the session is still alive.
    pub fn session_alive(&self, id: SessionId) -> bool {
        self.lock().sessions.contains_key(&id)
    }

    // ----------------------------------------------------- fault injection

    /// Expire a session immediately, exactly as a timeout would (deletes
    /// ephemerals, fires watches, counts as an expiry).
    pub fn force_expire(&self, id: SessionId) -> Result<()> {
        {
            let mut inner = self.lock();
            if !inner.sessions.contains_key(&id) {
                return Err(CoordError::NoSession(id));
            }
            inner.end_session(id, true);
        }
        self.deliver();
        Ok(())
    }

    /// Silently discard (or stop discarding) a session's heartbeats: the
    /// client keeps heartbeating successfully but the service stops seeing
    /// them, so the session expires once the clock advances past its timeout.
    pub fn set_drop_heartbeats(&self, id: SessionId, drop: bool) -> Result<()> {
        let mut inner = self.lock();
        let session = inner
            .sessions
            .get_mut(&id)
            .ok_or(CoordError::NoSession(id))?;
        session.drop_heartbeats = drop;
        Ok(())
    }

    /// Hold queued watch events (they accumulate in order) until
    /// [`Coord::resume_delivery`].
    pub fn pause_delivery(&self) {
        self.lock().paused = true;
    }

    /// Resume delivery, draining everything queued while paused.
    pub fn resume_delivery(&self) {
        self.lock().paused = false;
        self.deliver();
    }

    // ------------------------------------------------------------- znodes

    /// Create a znode. Missing parents are created as persistent nodes
    /// (ZooKeeper's `creatingParentsIfNeeded`). Sequential modes append a
    /// per-parent, strictly increasing 10-digit counter to the name. Returns
    /// the actual (canonical) path.
    pub fn create(
        &self,
        session: Option<SessionId>,
        path: impl Into<ZnodePath>,
        data: impl Into<String>,
        mode: CreateMode,
    ) -> Result<ZnodePath> {
        let requested: ZnodePath = path.into();
        if requested.is_root() {
            return Err(CoordError::RootReadOnly);
        }
        let owner = if mode.is_ephemeral() {
            let id =
                session.ok_or_else(|| CoordError::EphemeralNeedsSession(requested.to_string()))?;
            Some(id)
        } else {
            None
        };
        let now = self.clock.now_ms();
        let created = {
            let mut inner = self.lock();
            if let Some(id) = owner {
                if !inner.sessions.contains_key(&id) {
                    return Err(CoordError::NoSession(id));
                }
            }
            let parent = requested.parent().expect("non-root path has a parent");
            // Materialize missing ancestors as persistent znodes.
            let mut ancestors = Vec::new();
            let mut cursor = Some(parent.clone());
            while let Some(p) = cursor {
                if inner.nodes.contains_key(&p) {
                    break;
                }
                ancestors.push(p.clone());
                cursor = p.parent();
            }
            for p in ancestors.into_iter().rev() {
                inner.insert_node(p.clone(), Znode::new(String::new(), now, None));
                inner.trigger(&p, &[WatchKind::Exists], EventKind::NodeCreated);
                if let Some(gp) = p.parent() {
                    inner.trigger(&gp, &[WatchKind::Children], EventKind::NodeChildrenChanged);
                }
            }
            if inner.node(&parent)?.owner.is_some() {
                return Err(CoordError::NoChildrenForEphemerals(parent.to_string()));
            }
            let actual = if mode.is_sequential() {
                let parent_node = inner.nodes.get_mut(&parent).expect("parent ensured");
                parent_node.seq_counter += 1;
                let seq = parent_node.seq_counter;
                ZnodePath::parse(&format!("{}{:010}", requested.as_str(), seq))
            } else {
                requested.clone()
            };
            if inner.nodes.contains_key(&actual) {
                return Err(CoordError::NodeExists(actual.to_string()));
            }
            inner.insert_node(actual.clone(), Znode::new(data.into(), now, owner));
            if let Some(id) = owner {
                inner
                    .sessions
                    .get_mut(&id)
                    .expect("session checked above")
                    .ephemerals
                    .insert(actual.clone());
            }
            inner.trigger(&actual, &[WatchKind::Exists], EventKind::NodeCreated);
            inner.trigger(
                &parent,
                &[WatchKind::Children],
                EventKind::NodeChildrenChanged,
            );
            actual
        };
        self.deliver();
        Ok(created)
    }

    /// Read a znode's data and stat.
    pub fn get(&self, path: impl Into<ZnodePath>) -> Result<(String, Stat)> {
        let path = path.into();
        let inner = self.lock();
        let node = inner.node(&path)?;
        Ok((node.data.clone(), inner.stat_of(node)))
    }

    /// Write a znode's data. With `expected_version` set, fails unless the
    /// current version matches (compare-and-set). Returns the new version.
    pub fn set(
        &self,
        path: impl Into<ZnodePath>,
        data: impl Into<String>,
        expected_version: Option<u64>,
    ) -> Result<u64> {
        let path = path.into();
        if path.is_root() {
            return Err(CoordError::RootReadOnly);
        }
        let now = self.clock.now_ms();
        let version = {
            let mut inner = self.lock();
            let node = inner
                .nodes
                .get_mut(&path)
                .ok_or_else(|| CoordError::NoNode(path.to_string()))?;
            if let Some(expected) = expected_version {
                if node.version != expected {
                    return Err(CoordError::BadVersion {
                        path: path.to_string(),
                        expected,
                        actual: node.version,
                    });
                }
            }
            node.data = data.into();
            node.version += 1;
            node.modified_at_ms = now;
            let version = node.version;
            inner.trigger(
                &path,
                &[WatchKind::Data, WatchKind::Exists],
                EventKind::NodeDataChanged,
            );
            version
        };
        self.deliver();
        Ok(version)
    }

    /// Create-or-overwrite a persistent znode (parents created as needed).
    /// Returns the node's new version.
    pub fn upsert(&self, path: impl Into<ZnodePath>, data: impl Into<String>) -> Result<u64> {
        let path: ZnodePath = path.into();
        let data: String = data.into();
        match self.create(None, path.clone(), data.clone(), CreateMode::Persistent) {
            Ok(_) => Ok(1),
            Err(CoordError::NodeExists(_)) => self.set(path, data, None),
            Err(e) => Err(e),
        }
    }

    /// Delete a znode. Fails with [`CoordError::NotEmpty`] if it has
    /// children; with `expected_version` set, fails on version mismatch.
    pub fn delete(&self, path: impl Into<ZnodePath>, expected_version: Option<u64>) -> Result<()> {
        let path = path.into();
        if path.is_root() {
            return Err(CoordError::RootReadOnly);
        }
        {
            let mut inner = self.lock();
            let node = inner.node(&path)?;
            if let Some(expected) = expected_version {
                if node.version != expected {
                    return Err(CoordError::BadVersion {
                        path: path.to_string(),
                        expected,
                        actual: node.version,
                    });
                }
            }
            if !inner.node(&path)?.children.is_empty() {
                return Err(CoordError::NotEmpty(path.to_string()));
            }
            inner.remove_node(&path);
        }
        self.deliver();
        Ok(())
    }

    /// Delete a znode and everything under it (deepest first). A no-op if
    /// the node does not exist.
    pub fn delete_recursive(&self, path: impl Into<ZnodePath>) -> Result<()> {
        let path = path.into();
        if path.is_root() {
            return Err(CoordError::RootReadOnly);
        }
        {
            let mut inner = self.lock();
            let prefix = format!("{}/", path.as_str());
            let mut doomed: Vec<ZnodePath> = inner
                .nodes
                .keys()
                .filter(|p| **p == path || p.as_str().starts_with(&prefix))
                .cloned()
                .collect();
            doomed.reverse(); // children sort after parents
            for p in doomed {
                inner.remove_node(&p);
            }
        }
        self.deliver();
        Ok(())
    }

    /// The node's stat, or `None` if it does not exist.
    pub fn exists(&self, path: impl Into<ZnodePath>) -> Option<Stat> {
        let path = path.into();
        let inner = self.lock();
        inner.nodes.get(&path).map(|n| inner.stat_of(n))
    }

    /// Names of the direct children of a znode, sorted.
    pub fn children(&self, path: impl Into<ZnodePath>) -> Result<Vec<String>> {
        let path = path.into();
        let inner = self.lock();
        Ok(inner.node(&path)?.children.iter().cloned().collect())
    }

    // ------------------------------------------------------------ watches

    fn register_watch(&self, watch: Watch, require_node: bool) -> Result<WatchId> {
        let mut inner = self.lock();
        if require_node {
            inner.node(&watch.path)?;
        }
        inner.next_watch += 1;
        let id = WatchId(inner.next_watch);
        inner.counters.watches_registered += 1;
        inner.watches.insert(id, watch);
        Ok(id)
    }

    /// One-shot watch on a node's data, delivered to the session's queue.
    pub fn watch_data(&self, session: SessionId, path: impl Into<ZnodePath>) -> Result<WatchId> {
        self.session_watch(session, path.into(), WatchKind::Data, true)
    }

    /// One-shot watch on a node's children, delivered to the session's queue.
    pub fn watch_children(
        &self,
        session: SessionId,
        path: impl Into<ZnodePath>,
    ) -> Result<WatchId> {
        self.session_watch(session, path.into(), WatchKind::Children, true)
    }

    /// One-shot existence watch (the node need not exist yet), delivered to
    /// the session's queue.
    pub fn watch_exists(&self, session: SessionId, path: impl Into<ZnodePath>) -> Result<WatchId> {
        self.session_watch(session, path.into(), WatchKind::Exists, false)
    }

    fn session_watch(
        &self,
        session: SessionId,
        path: ZnodePath,
        kind: WatchKind,
        require_node: bool,
    ) -> Result<WatchId> {
        if !self.session_alive(session) {
            return Err(CoordError::NoSession(session));
        }
        self.register_watch(
            Watch {
                path,
                kind,
                delivery: Delivery::Session(session),
            },
            require_node,
        )
    }

    /// One-shot data watch invoking `callback` on delivery.
    pub fn watch_data_cb(
        &self,
        path: impl Into<ZnodePath>,
        callback: impl Fn(WatchEvent) + Send + Sync + 'static,
    ) -> Result<WatchId> {
        self.register_watch(
            Watch {
                path: path.into(),
                kind: WatchKind::Data,
                delivery: Delivery::Callback(Arc::new(callback)),
            },
            true,
        )
    }

    /// One-shot children watch invoking `callback` on delivery.
    pub fn watch_children_cb(
        &self,
        path: impl Into<ZnodePath>,
        callback: impl Fn(WatchEvent) + Send + Sync + 'static,
    ) -> Result<WatchId> {
        self.register_watch(
            Watch {
                path: path.into(),
                kind: WatchKind::Children,
                delivery: Delivery::Callback(Arc::new(callback)),
            },
            true,
        )
    }

    /// One-shot existence watch invoking `callback` on delivery; returns the
    /// watch id plus the node's stat at registration time (atomically), so
    /// callers can act on "did it exist when I armed the watch".
    pub fn watch_exists_cb(
        &self,
        path: impl Into<ZnodePath>,
        callback: impl Fn(WatchEvent) + Send + Sync + 'static,
    ) -> (WatchId, Option<Stat>) {
        let path: ZnodePath = path.into();
        let mut inner = self.lock();
        let stat = inner.nodes.get(&path).map(|n| inner.stat_of(n));
        inner.next_watch += 1;
        let id = WatchId(inner.next_watch);
        inner.counters.watches_registered += 1;
        inner.watches.insert(
            id,
            Watch {
                path,
                kind: WatchKind::Exists,
                delivery: Delivery::Callback(Arc::new(callback)),
            },
        );
        (id, stat)
    }

    /// Cancel a registered watch before it fires. Returns whether it was
    /// still registered.
    pub fn cancel_watch(&self, id: WatchId) -> bool {
        self.lock().watches.remove(&id).is_some()
    }

    /// Drain the queued watch events for a session, in delivery order.
    pub fn poll_events(&self, session: SessionId) -> Result<Vec<WatchEvent>> {
        let mut inner = self.lock();
        let s = inner
            .sessions
            .get_mut(&session)
            .ok_or(CoordError::NoSession(session))?;
        Ok(s.events.drain(..).collect())
    }

    /// Deliver queued events in order. Exactly one thread drains at a time;
    /// callbacks run without internal locks held, so they may freely call
    /// back into the service (nested mutations enqueue and are picked up by
    /// the same drain).
    fn deliver(&self) {
        let mut inner = self.lock();
        if inner.delivering {
            return;
        }
        inner.delivering = true;
        loop {
            if inner.paused || inner.queue.is_empty() {
                inner.delivering = false;
                return;
            }
            let (delivery, event) = inner.queue.pop_front().expect("checked non-empty");
            inner.counters.watches_fired += 1;
            match delivery {
                Delivery::Session(sid) => {
                    if let Some(session) = inner.sessions.get_mut(&sid) {
                        session.events.push_back(event);
                    }
                }
                Delivery::Callback(cb) => {
                    drop(inner);
                    cb(event);
                    inner = self.lock();
                }
            }
        }
    }

    // ------------------------------------------------------------ metrics

    /// A point-in-time snapshot of service counters.
    pub fn metrics(&self) -> CoordMetrics {
        let inner = self.lock();
        CoordMetrics {
            znodes: inner.nodes.len(),
            live_sessions: inner.sessions.len(),
            sessions_created: inner.counters.sessions_created,
            sessions_expired: inner.counters.sessions_expired,
            sessions_closed: inner.counters.sessions_closed,
            watches_registered: inner.counters.watches_registered,
            watches_fired: inner.counters.watches_fired,
            ephemerals_reaped: inner.counters.ephemerals_reaped,
            pending_deliveries: inner.queue.len(),
        }
    }
}

impl std::fmt::Debug for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = self.metrics();
        f.debug_struct("Coord")
            .field("znodes", &m.znodes)
            .field("live_sessions", &m.live_sessions)
            .field("now_ms", &self.now_ms())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn create_get_set_delete_roundtrip() {
        let c = Coord::new();
        let p = c
            .create(None, "/a/b", "v1", CreateMode::Persistent)
            .unwrap();
        assert_eq!(p.as_str(), "/a/b");
        let (data, stat) = c.get("/a/b").unwrap();
        assert_eq!(data, "v1");
        assert_eq!(stat.version, 1);
        assert_eq!(c.set("/a/b", "v2", None).unwrap(), 2);
        assert_eq!(
            c.get("/a//b").unwrap().0,
            "v2",
            "normalization: /a//b is /a/b"
        );
        c.delete("/a/b", None).unwrap();
        assert!(c.exists("/a/b").is_none());
        // parent /a was auto-created and survives.
        assert!(c.exists("/a").is_some());
    }

    #[test]
    fn cas_set_enforces_version() {
        let c = Coord::new();
        c.create(None, "/x", "0", CreateMode::Persistent).unwrap();
        assert_eq!(c.set("/x", "1", Some(1)).unwrap(), 2);
        assert!(matches!(
            c.set("/x", "stale", Some(1)),
            Err(CoordError::BadVersion {
                expected: 1,
                actual: 2,
                ..
            })
        ));
    }

    #[test]
    fn delete_refuses_non_empty() {
        let c = Coord::new();
        c.create(None, "/a/b", "", CreateMode::Persistent).unwrap();
        assert!(matches!(c.delete("/a", None), Err(CoordError::NotEmpty(_))));
        c.delete_recursive("/a").unwrap();
        assert!(c.exists("/a").is_none());
        assert!(c.exists("/a/b").is_none());
    }

    #[test]
    fn sequential_nodes_get_increasing_suffixes() {
        let c = Coord::new();
        let p1 = c
            .create(None, "/q/item-", "", CreateMode::PersistentSequential)
            .unwrap();
        let p2 = c
            .create(None, "/q/item-", "", CreateMode::PersistentSequential)
            .unwrap();
        assert_eq!(p1.as_str(), "/q/item-0000000001");
        assert_eq!(p2.as_str(), "/q/item-0000000002");
        // Deleting does not reset the counter.
        c.delete(p1, None).unwrap();
        let p3 = c
            .create(None, "/q/item-", "", CreateMode::PersistentSequential)
            .unwrap();
        assert_eq!(p3.as_str(), "/q/item-0000000003");
    }

    #[test]
    fn ephemeral_needs_session_and_dies_with_it() {
        let c = Coord::new();
        assert!(matches!(
            c.create(None, "/e", "", CreateMode::Ephemeral),
            Err(CoordError::EphemeralNeedsSession(_))
        ));
        let s = c.create_session(1_000);
        c.create(Some(s), "/live/e1", "", CreateMode::Ephemeral)
            .unwrap();
        c.create(Some(s), "/live/e2", "", CreateMode::Ephemeral)
            .unwrap();
        assert_eq!(c.children("/live").unwrap(), vec!["e1", "e2"]);
        c.close_session(s).unwrap();
        assert_eq!(c.children("/live").unwrap(), Vec::<String>::new());
        assert!(!c.session_alive(s));
    }

    #[test]
    fn ephemerals_cannot_have_children() {
        let c = Coord::new();
        let s = c.create_session(1_000);
        c.create(Some(s), "/e", "", CreateMode::Ephemeral).unwrap();
        assert!(matches!(
            c.create(None, "/e/child", "", CreateMode::Persistent),
            Err(CoordError::NoChildrenForEphemerals(_))
        ));
    }

    #[test]
    fn session_expires_without_heartbeat() {
        let c = Coord::new();
        let s = c.create_session(1_000);
        c.create(Some(s), "/e", "", CreateMode::Ephemeral).unwrap();
        c.advance(900);
        c.heartbeat(s).unwrap();
        c.advance(900);
        assert!(c.session_alive(s), "heartbeat kept it alive");
        c.advance(1_001);
        assert!(!c.session_alive(s));
        assert!(c.exists("/e").is_none(), "ephemeral reaped on expiry");
        assert!(matches!(c.heartbeat(s), Err(CoordError::NoSession(_))));
        let m = c.metrics();
        assert_eq!(m.sessions_expired, 1);
        assert_eq!(m.ephemerals_reaped, 1);
    }

    #[test]
    fn dropped_heartbeats_expire_the_session() {
        let c = Coord::new();
        let s = c.create_session(1_000);
        c.set_drop_heartbeats(s, true).unwrap();
        c.advance(600);
        c.heartbeat(s).unwrap(); // client thinks it succeeded
        c.advance(600);
        assert!(!c.session_alive(s), "dropped heartbeats did not refresh");
    }

    #[test]
    fn one_shot_data_watch_fires_once_in_session_queue() {
        let c = Coord::new();
        let s = c.create_session(10_000);
        c.create(None, "/w", "0", CreateMode::Persistent).unwrap();
        c.watch_data(s, "/w").unwrap();
        c.set("/w", "1", None).unwrap();
        c.set("/w", "2", None).unwrap(); // no watch armed any more
        let events = c.poll_events(s).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::NodeDataChanged);
        assert_eq!(events[0].path.as_str(), "/w");
        assert!(c.poll_events(s).unwrap().is_empty());
    }

    #[test]
    fn children_watch_sees_create_and_delete() {
        let c = Coord::new();
        let s = c.create_session(10_000);
        c.create(None, "/d", "", CreateMode::Persistent).unwrap();
        c.watch_children(s, "/d").unwrap();
        c.create(None, "/d/k", "", CreateMode::Persistent).unwrap();
        c.watch_children(s, "/d").unwrap();
        c.delete("/d/k", None).unwrap();
        let events = c.poll_events(s).unwrap();
        assert_eq!(
            events.iter().map(|e| e.kind).collect::<Vec<_>>(),
            vec![
                EventKind::NodeChildrenChanged,
                EventKind::NodeChildrenChanged
            ]
        );
    }

    #[test]
    fn exists_watch_fires_on_creation() {
        let c = Coord::new();
        let s = c.create_session(10_000);
        c.watch_exists(s, "/later").unwrap();
        c.create(None, "/later", "", CreateMode::Persistent)
            .unwrap();
        let events = c.poll_events(s).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::NodeCreated);
    }

    #[test]
    fn callback_watch_runs_and_may_rearm() {
        let c = Coord::new();
        c.create(None, "/cb", "0", CreateMode::Persistent).unwrap();
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = fired.clone();
        let c2 = c.clone();
        c.watch_data_cb("/cb", move |_| {
            fired2.fetch_add(1, Ordering::SeqCst);
            // Nested mutation from inside a callback must not deadlock.
            let _ = c2.upsert("/cb-echo", "x");
        })
        .unwrap();
        c.set("/cb", "1", None).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert!(c.exists("/cb-echo").is_some());
        c.set("/cb", "2", None).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1, "one-shot");
    }

    #[test]
    fn paused_delivery_holds_events_in_order() {
        let c = Coord::new();
        let s = c.create_session(10_000);
        c.create(None, "/p", "0", CreateMode::Persistent).unwrap();
        c.pause_delivery();
        c.watch_data(s, "/p").unwrap();
        c.set("/p", "1", None).unwrap();
        c.watch_data(s, "/p").unwrap();
        c.set("/p", "2", None).unwrap();
        assert!(c.poll_events(s).unwrap().is_empty(), "held while paused");
        assert_eq!(c.metrics().pending_deliveries, 2);
        c.resume_delivery();
        let events = c.poll_events(s).unwrap();
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn force_expire_reaps_and_counts() {
        let c = Coord::new();
        let s = c.create_session(60_000);
        c.create(Some(s), "/f/e", "", CreateMode::Ephemeral)
            .unwrap();
        let watcher = c.create_session(60_000);
        c.watch_exists(watcher, "/f/e").unwrap();
        c.force_expire(s).unwrap();
        assert!(c.exists("/f/e").is_none());
        let events = c.poll_events(watcher).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::NodeDeleted);
        assert_eq!(c.metrics().sessions_expired, 1);
    }

    #[test]
    fn watch_exists_cb_reports_stat_atomically() {
        let c = Coord::new();
        c.create(None, "/armed", "", CreateMode::Persistent)
            .unwrap();
        let (id, stat) = c.watch_exists_cb("/armed", |_| {});
        assert!(stat.is_some());
        assert!(c.cancel_watch(id));
        assert!(!c.cancel_watch(id));
        let (_, stat) = c.watch_exists_cb("/not-there", |_| {});
        assert!(stat.is_none());
    }

    #[test]
    fn upsert_creates_then_bumps() {
        let c = Coord::new();
        assert_eq!(c.upsert("/u/v", "1").unwrap(), 1);
        assert_eq!(c.upsert("/u/v", "2").unwrap(), 2);
        assert_eq!(c.get("/u/v").unwrap().0, "2");
    }

    #[test]
    fn metrics_snapshot_counts() {
        let c = Coord::new();
        assert_eq!(c.metrics().znodes, 1, "root only");
        c.create(None, "/m/a", "", CreateMode::Persistent).unwrap();
        assert_eq!(c.metrics().znodes, 3, "root + /m + /m/a");
        let _s = c.create_session(1_000);
        assert_eq!(c.metrics().live_sessions, 1);
        assert_eq!(c.metrics().sessions_created, 1);
    }
}
