//! Coordination-service error type.

use crate::service::SessionId;
use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoordError>;

/// Errors surfaced by the coordination service, modeled on ZooKeeper's
/// `KeeperException` codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordError {
    /// The referenced znode does not exist.
    NoNode(String),
    /// A create collided with an existing znode.
    NodeExists(String),
    /// A versioned set/delete saw a different version than expected.
    BadVersion {
        path: String,
        expected: u64,
        actual: u64,
    },
    /// Delete refused: the znode still has children.
    NotEmpty(String),
    /// Ephemeral znodes cannot have children.
    NoChildrenForEphemerals(String),
    /// The referenced session does not exist (never created, closed, or
    /// already expired).
    NoSession(SessionId),
    /// An ephemeral create was attempted without a session.
    EphemeralNeedsSession(String),
    /// The root znode cannot be created, deleted, or written.
    RootReadOnly,
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::NoNode(p) => write!(f, "no node: {p}"),
            CoordError::NodeExists(p) => write!(f, "node already exists: {p}"),
            CoordError::BadVersion {
                path,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "bad version for {path}: expected {expected}, actual {actual}"
                )
            }
            CoordError::NotEmpty(p) => write!(f, "node not empty: {p}"),
            CoordError::NoChildrenForEphemerals(p) => {
                write!(f, "ephemeral nodes cannot have children: {p}")
            }
            CoordError::NoSession(s) => write!(f, "no such session: {s}"),
            CoordError::EphemeralNeedsSession(p) => {
                write!(f, "ephemeral create without a session: {p}")
            }
            CoordError::RootReadOnly => write!(f, "the root znode is read-only"),
        }
    }
}

impl std::error::Error for CoordError {}
