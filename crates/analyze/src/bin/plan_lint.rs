//! `plan-lint`: run the static plan analyzer over a SQL corpus, for CI.
//!
//! ```text
//! plan-lint [--deny] [--json] [DIR_OR_FILE ...]
//! ```
//!
//! Default (expectation) mode: every fixture's emitted diagnostic codes must
//! match its `-- expect:` header exactly (`-- expect: clean` or no header
//! means zero diagnostics); any mismatch exits non-zero. This is the CI
//! gate: seeded-bug fixtures must keep firing and clean fixtures must stay
//! clean.
//!
//! `--deny` mode ignores headers and exits non-zero when any fixture
//! produces an Error-severity diagnostic — the mode for linting a directory
//! of production queries, and proof that the seeded corpus fails a plain
//! error gate.
//!
//! `--json` prints diagnostics as line-oriented JSON instead of rustc-style
//! text. With no paths, the committed corpus directory is used.

use samzasql_analyze::corpus::{self, FixtureResult};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: plan-lint [--deny] [--json] [DIR_OR_FILE ...]");
                return ExitCode::SUCCESS;
            }
            other => paths.push(PathBuf::from(other)),
        }
    }
    if paths.is_empty() {
        paths.push(corpus::default_corpus_dir());
    }

    let planner = corpus::paper_planner();
    let mut results: Vec<FixtureResult> = Vec::new();
    for p in &paths {
        let run = if p.is_dir() {
            corpus::run_corpus(&planner, p)
        } else {
            corpus::run_fixture(&planner, p).map(|r| vec![r])
        };
        match run {
            Ok(mut rs) => results.append(&mut rs),
            Err(e) => {
                eprintln!("plan-lint: {}: {e}", p.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let mut failed = 0usize;
    for r in &results {
        let bad = if deny {
            r.diagnostics.has_errors()
        } else {
            !r.matches()
        };
        let label = if bad { "FAIL" } else { "ok" };
        eprintln!(
            "[{label}] {} — expected [{}], got [{}]",
            r.path.display(),
            r.expected.join(", "),
            r.actual.join(", "),
        );
        if bad {
            failed += 1;
            if json {
                print!("{}", r.diagnostics.render_json());
            } else {
                print!("{}", r.diagnostics.render());
            }
        }
    }
    eprintln!(
        "plan-lint: {} fixture{} checked, {failed} failed ({} mode)",
        results.len(),
        if results.len() == 1 { "" } else { "s" },
        if deny { "deny-errors" } else { "expectation" },
    );
    if failed > 0 || results.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
