//! Pass 3 (SSQL003): physical type-flow re-verification.
//!
//! The optimizer (`rules.rs`) rewrites expression trees — constant folding,
//! predicate pushdown, projection merging — and a buggy rewrite can leave an
//! `InputRef` pointing at the wrong column or carrying a stale type. In the
//! spirit of Calcite's `RelNode.isValid`, this pass recomputes every node's
//! schema bottom-up over the *optimized physical* plan and errors on any
//! reference the rewritten tree no longer satisfies. The executor trusts
//! recorded types ("downstream operators never re-infer"), so a mismatch
//! here is a wrong answer or a decode panic at runtime, not a compile error.

use super::AnalysisContext;
use crate::diag::{codes, Diagnostics, Severity, Span};
use samzasql_planner::{PhysicalPlan, ScalarExpr};
use samzasql_serde::Schema;

pub fn run(ctx: &AnalysisContext<'_>, plan: &PhysicalPlan, out: &mut Diagnostics) {
    check(ctx, plan, out);
}

/// Strip `Optional` wrappers for comparison; nullability does not change
/// which column a ref reads.
fn base(s: &Schema) -> &Schema {
    match s {
        Schema::Optional(inner) => base(inner),
        other => other,
    }
}

/// Type compatibility for re-verification: equal modulo nullability, with
/// Timestamp/Long interchangeable (timestamps encode as longs).
fn compat(declared: &Schema, actual: &Schema) -> bool {
    let (d, a) = (base(declared), base(actual));
    d == a
        || matches!(
            (d, a),
            (Schema::Timestamp, Schema::Long) | (Schema::Long, Schema::Timestamp)
        )
}

/// True when a column of this type can carry an event timestamp.
fn time_like(s: &Schema) -> bool {
    matches!(base(s), Schema::Timestamp | Schema::Long)
}

fn whole_or(ctx: &AnalysisContext<'_>, needle: &str) -> Span {
    Span::locate_or_whole(ctx.sql, needle)
}

/// Verify every `InputRef` in `expr` against the recomputed input schema.
fn verify_expr(
    ctx: &AnalysisContext<'_>,
    expr: &ScalarExpr,
    input_names: &[String],
    input_types: &[Schema],
    site: &str,
    out: &mut Diagnostics,
) {
    expr.visit(&mut |e| {
        if let ScalarExpr::InputRef { index, ty } = e {
            match input_types.get(*index) {
                None => out.report(
                    codes::TYPE_FLOW,
                    Severity::Error,
                    Span::whole(ctx.sql),
                    format!(
                        "{site} references input column #{index}, but its input has only \
                         {} columns — an optimizer rewrite left a dangling reference",
                        input_types.len()
                    ),
                    None,
                ),
                Some(actual) => {
                    if !compat(ty, actual) {
                        let name = input_names
                            .get(*index)
                            .cloned()
                            .unwrap_or_else(|| format!("#{index}"));
                        out.report(
                            codes::TYPE_FLOW,
                            Severity::Error,
                            whole_or(ctx, &name),
                            format!(
                                "{site} reads column `{name}` as {ty:?}, but the input \
                                 produces {actual:?}; the recorded type is stale"
                            ),
                            None,
                        );
                    }
                }
            }
        }
    });
}

/// Recompute this node's output types bottom-up, reporting any mismatch.
fn check(ctx: &AnalysisContext<'_>, plan: &PhysicalPlan, out: &mut Diagnostics) -> Vec<Schema> {
    match plan {
        PhysicalPlan::Scan {
            topic,
            names,
            types,
            ..
        } => {
            // Re-verify the scan against the schema registry when the topic
            // has a registered record schema.
            if let Ok(reg) = ctx.catalog.registry().latest(&format!("{topic}-value")) {
                if let Schema::Record { fields, .. } = &reg.schema {
                    if fields.len() == names.len() {
                        for (i, f) in fields.iter().enumerate() {
                            if !compat(&types[i], &f.schema) {
                                out.report(
                                    codes::TYPE_FLOW,
                                    Severity::Error,
                                    whole_or(ctx, &names[i]),
                                    format!(
                                        "scan of `{topic}` declares column `{}` as {:?} but \
                                         the registry schema says {:?}",
                                        names[i], types[i], f.schema
                                    ),
                                    None,
                                );
                            }
                        }
                    } else {
                        out.report(
                            codes::TYPE_FLOW,
                            Severity::Error,
                            Span::whole(ctx.sql),
                            format!(
                                "scan of `{topic}` declares {} columns but the registry \
                                 schema has {}",
                                names.len(),
                                fields.len()
                            ),
                            None,
                        );
                    }
                }
            }
            types.clone()
        }
        PhysicalPlan::Filter { input, predicate } => {
            let names = input.output_names();
            let tys = check(ctx, input, out);
            verify_expr(ctx, predicate, &names, &tys, "filter predicate", out);
            if base(&predicate.ty()) != &Schema::Boolean {
                out.report(
                    codes::TYPE_FLOW,
                    Severity::Error,
                    whole_or(ctx, "WHERE"),
                    format!(
                        "filter predicate has type {:?}, expected BOOLEAN",
                        predicate.ty()
                    ),
                    None,
                );
            }
            tys
        }
        PhysicalPlan::Project { input, exprs, .. } => {
            let names = input.output_names();
            let tys = check(ctx, input, out);
            for e in exprs {
                verify_expr(ctx, e, &names, &tys, "projection", out);
            }
            exprs.iter().map(|e| e.ty()).collect()
        }
        PhysicalPlan::WindowAggregate {
            input,
            window,
            keys,
            aggs,
            ..
        } => {
            let names = input.output_names();
            let tys = check(ctx, input, out);
            for k in keys {
                verify_expr(ctx, k, &names, &tys, "group key", out);
            }
            for a in aggs {
                if let Some(arg) = &a.arg {
                    verify_expr(ctx, arg, &names, &tys, "aggregate argument", out);
                }
            }
            if let Some(ts) = window_ts_index(window) {
                check_ts_column(ctx, ts, &names, &tys, "GROUP BY window", out);
            }
            let mut result: Vec<Schema> = keys.iter().map(|k| k.ty()).collect();
            result.extend(aggs.iter().map(|a| a.result_type()));
            result
        }
        PhysicalPlan::SlidingWindow {
            input,
            partition_by,
            ts_index,
            aggs,
            ..
        } => {
            let names = input.output_names();
            let tys = check(ctx, input, out);
            for k in partition_by {
                verify_expr(ctx, k, &names, &tys, "PARTITION BY key", out);
            }
            for a in aggs {
                if let Some(arg) = &a.arg {
                    verify_expr(ctx, arg, &names, &tys, "window aggregate argument", out);
                }
            }
            check_ts_column(ctx, *ts_index, &names, &tys, "OVER window ORDER BY", out);
            let mut result = tys;
            result.extend(aggs.iter().map(|a| a.result_type()));
            result
        }
        PhysicalPlan::StreamToStreamJoin {
            left,
            right,
            equi,
            time_bound,
            residual,
            ..
        } => {
            let lnames = left.output_names();
            let rnames = right.output_names();
            let ltys = check(ctx, left, out);
            let rtys = check(ctx, right, out);
            for &(l, r) in equi {
                check_equi_pair(ctx, l, &lnames, &ltys, r, &rnames, &rtys, out);
            }
            check_ts_column(
                ctx,
                time_bound.left_ts,
                &lnames,
                &ltys,
                "join time bound (left)",
                out,
            );
            check_ts_column(
                ctx,
                time_bound.right_ts,
                &rnames,
                &rtys,
                "join time bound (right)",
                out,
            );
            let mut names = lnames;
            names.extend(rnames);
            let mut tys = ltys;
            tys.extend(rtys);
            if let Some(res) = residual {
                verify_expr(ctx, res, &names, &tys, "join residual predicate", out);
            }
            tys
        }
        PhysicalPlan::StreamToRelationJoin {
            stream,
            relation_names,
            relation_types,
            relation_key,
            equi,
            stream_is_left,
            residual,
            ..
        } => {
            let snames = stream.output_names();
            let stys = check(ctx, stream, out);
            if *relation_key >= relation_types.len() {
                out.report(
                    codes::TYPE_FLOW,
                    Severity::Error,
                    Span::whole(ctx.sql),
                    format!(
                        "relation cache key #{relation_key} is out of range for a \
                         {}-column relation",
                        relation_types.len()
                    ),
                    None,
                );
            }
            for &(s, r) in equi {
                check_equi_pair(
                    ctx,
                    s,
                    &snames,
                    &stys,
                    r,
                    relation_names,
                    relation_types,
                    out,
                );
            }
            let (mut names, mut tys) = if *stream_is_left {
                (snames, stys)
            } else {
                (relation_names.clone(), relation_types.clone())
            };
            if *stream_is_left {
                names.extend(relation_names.clone());
                tys.extend(relation_types.clone());
            } else {
                names.extend(stream.output_names());
                tys.extend(stream.output_types());
            }
            if let Some(res) = residual {
                verify_expr(ctx, res, &names, &tys, "join residual predicate", out);
            }
            tys
        }
        PhysicalPlan::Repartition { input, key_index } => {
            let tys = check(ctx, input, out);
            if *key_index >= tys.len() {
                out.report(
                    codes::TYPE_FLOW,
                    Severity::Error,
                    Span::whole(ctx.sql),
                    format!(
                        "repartition key #{key_index} is out of range for a {}-column \
                         input",
                        tys.len()
                    ),
                    None,
                );
            }
            tys
        }
    }
}

fn window_ts_index(window: &samzasql_planner::GroupWindow) -> Option<usize> {
    match window {
        samzasql_planner::GroupWindow::None => None,
        samzasql_planner::GroupWindow::Tumble { ts_index, .. }
        | samzasql_planner::GroupWindow::Hop { ts_index, .. } => Some(*ts_index),
    }
}

fn check_ts_column(
    ctx: &AnalysisContext<'_>,
    index: usize,
    names: &[String],
    types: &[Schema],
    site: &str,
    out: &mut Diagnostics,
) {
    match types.get(index) {
        None => out.report(
            codes::TYPE_FLOW,
            Severity::Error,
            Span::whole(ctx.sql),
            format!(
                "{site} points at column #{index}, but the input has only {} columns",
                types.len()
            ),
            None,
        ),
        Some(t) if !time_like(t) => {
            let name = names
                .get(index)
                .cloned()
                .unwrap_or_else(|| format!("#{index}"));
            out.report(
                codes::TYPE_FLOW,
                Severity::Error,
                whole_or(ctx, &name),
                format!("{site} column `{name}` has type {t:?}, expected TIMESTAMP"),
                None,
            );
        }
        Some(_) => {}
    }
}

#[allow(clippy::too_many_arguments)]
fn check_equi_pair(
    ctx: &AnalysisContext<'_>,
    l: usize,
    lnames: &[String],
    ltys: &[Schema],
    r: usize,
    rnames: &[String],
    rtys: &[Schema],
    out: &mut Diagnostics,
) {
    let lt = ltys.get(l);
    let rt = rtys.get(r);
    if lt.is_none() || rt.is_none() {
        out.report(
            codes::TYPE_FLOW,
            Severity::Error,
            Span::whole(ctx.sql),
            format!(
                "join equi key ({l}, {r}) is out of range for inputs of {} and {} columns",
                ltys.len(),
                rtys.len()
            ),
            None,
        );
        return;
    }
    let (lt, rt) = (lt.unwrap(), rt.unwrap());
    let numeric = |s: &Schema| {
        matches!(
            base(s),
            Schema::Int | Schema::Long | Schema::Float | Schema::Double
        )
    };
    if !(compat(lt, rt) || (numeric(lt) && numeric(rt))) {
        let ln = lnames.get(l).cloned().unwrap_or_else(|| format!("#{l}"));
        let rn = rnames.get(r).cloned().unwrap_or_else(|| format!("#{r}"));
        out.report(
            codes::TYPE_FLOW,
            Severity::Error,
            whole_or(ctx, &ln),
            format!(
                "join compares `{ln}` ({lt:?}) with `{rn}` ({rt:?}); the key types are \
                 not comparable"
            ),
            None,
        );
    }
}
