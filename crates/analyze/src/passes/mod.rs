//! The analyzer passes.
//!
//! Each pass is a function over a plan tree pushing findings into a
//! [`Diagnostics`](crate::diag::Diagnostics); `lib.rs` sequences them. The
//! passes never panic and never mutate the plan — they are pure inspectors,
//! runnable on plans the planner produced *or* on hand-mutated plans in
//! seeded-bug tests.

pub mod deadcol;
pub mod partition;
pub mod state;
pub mod typeflow;
pub mod window;

use samzasql_planner::{Catalog, PhysicalPlan};

/// Shared per-statement context handed to every pass.
pub struct AnalysisContext<'a> {
    /// The original SQL text spans index into.
    pub sql: &'a str,
    /// Catalog at planning time (partition keys, registry schemas).
    pub catalog: &'a Catalog,
}

/// True when the subtree consumes at least one continuous (unbounded) scan.
/// State-growth and partitioning findings only matter on continuous inputs;
/// bounded historical scans drain and stop.
pub fn is_continuous(plan: &PhysicalPlan) -> bool {
    match plan {
        PhysicalPlan::Scan { bounded, .. } => !bounded,
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::WindowAggregate { input, .. }
        | PhysicalPlan::SlidingWindow { input, .. }
        | PhysicalPlan::Repartition { input, .. } => is_continuous(input),
        PhysicalPlan::StreamToStreamJoin { left, right, .. } => {
            is_continuous(left) || is_continuous(right)
        }
        PhysicalPlan::StreamToRelationJoin { stream, .. } => is_continuous(stream),
    }
}

/// Visit every node of a physical plan, parents before children.
pub fn walk_physical<'a>(plan: &'a PhysicalPlan, f: &mut dyn FnMut(&'a PhysicalPlan)) {
    f(plan);
    match plan {
        PhysicalPlan::Scan { .. } => {}
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::WindowAggregate { input, .. }
        | PhysicalPlan::SlidingWindow { input, .. }
        | PhysicalPlan::Repartition { input, .. } => walk_physical(input, f),
        PhysicalPlan::StreamToStreamJoin { left, right, .. } => {
            walk_physical(left, f);
            walk_physical(right, f);
        }
        PhysicalPlan::StreamToRelationJoin { stream, .. } => walk_physical(stream, f),
    }
}
