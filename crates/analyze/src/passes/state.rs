//! Pass 2 (SSQL002): unbounded-state detection.
//!
//! Continuous queries run forever, so any operator whose retention is not
//! bounded by its window spec grows its task store without limit: an OVER
//! frame with no preceding bound, a relational GROUP BY that never retires
//! groups, or a join cache whose time bound overflows. Errors here are the
//! "silently wrong at scale" class the paper's SQL layer is meant to prevent.

use super::{is_continuous, walk_physical, AnalysisContext};
use crate::diag::{codes, Diagnostics, Severity, Span};
use samzasql_planner::{GroupWindow, PhysicalPlan, ScalarExpr};

/// Join caches retaining more than a day of both streams get a warning even
/// though they are technically bounded.
const LARGE_RETENTION_MS: i64 = 24 * 3600 * 1000;

pub fn run(ctx: &AnalysisContext<'_>, plan: &PhysicalPlan, out: &mut Diagnostics) {
    walk_physical(plan, &mut |node| check_node(ctx, node, out));
}

fn check_node(ctx: &AnalysisContext<'_>, node: &PhysicalPlan, out: &mut Diagnostics) {
    match node {
        PhysicalPlan::SlidingWindow {
            input,
            range_ms: None,
            rows: None,
            ..
        } if is_continuous(input) => {
            out.report(
                codes::UNBOUNDED_STATE,
                Severity::Error,
                Span::locate_or_whole(ctx.sql, "OVER"),
                "OVER window with an unbounded frame on a continuous stream; the window \
                 state retains every row ever seen"
                    .to_string(),
                Some(
                    "bound the frame: `RANGE INTERVAL '…' PRECEDING` (time) or \
                     `ROWS n PRECEDING` (count)"
                        .into(),
                ),
            );
        }
        PhysicalPlan::WindowAggregate {
            input,
            window: GroupWindow::None,
            keys,
            ..
        } if is_continuous(input) => {
            // FLOOR(ts TO unit) keys retire naturally in event time (one
            // group per unit); anything else accumulates groups forever.
            let floored = keys
                .iter()
                .any(|k| matches!(k, ScalarExpr::FloorTime { .. }));
            if floored {
                out.report(
                    codes::UNBOUNDED_STATE,
                    Severity::Warning,
                    Span::locate_or_whole(ctx.sql, "GROUP BY"),
                    "relational GROUP BY over a continuous stream never retires group \
                     state; the FLOOR(ts TO unit) key bounds growth per unit but old \
                     groups are kept forever"
                        .to_string(),
                    Some("prefer `GROUP BY TUMBLE(ts, INTERVAL …)`, which expires windows".into()),
                );
            } else {
                out.report(
                    codes::UNBOUNDED_STATE,
                    Severity::Error,
                    Span::locate_or_whole(ctx.sql, "GROUP BY"),
                    "relational GROUP BY over a continuous stream retains every group \
                     forever; state grows without bound"
                        .to_string(),
                    Some(
                        "group by a window — `TUMBLE(ts, INTERVAL …)` or `HOP(ts, …)` — \
                         or by `FLOOR(ts TO unit)`"
                            .into(),
                    ),
                );
            }
        }
        PhysicalPlan::StreamToStreamJoin { time_bound, .. } => {
            let lower = time_bound.lower_ms;
            let upper = time_bound.upper_ms;
            let retention = lower.checked_add(upper);
            if lower == i64::MAX || upper == i64::MAX || retention.is_none() {
                out.report(
                    codes::UNBOUNDED_STATE,
                    Severity::Error,
                    Span::locate_or_whole(ctx.sql, "BETWEEN"),
                    "unbounded join cache: the join's time bound does not limit how long \
                     either side's rows are retained"
                        .to_string(),
                    Some(
                        "use a finite sliding window in the join condition \
                         (`a.ts BETWEEN b.ts - INTERVAL '…' AND b.ts + INTERVAL '…'`)"
                            .into(),
                    ),
                );
            } else if let Some(r) = retention {
                if r > LARGE_RETENTION_MS {
                    out.report(
                        codes::UNBOUNDED_STATE,
                        Severity::Warning,
                        Span::locate_or_whole(ctx.sql, "BETWEEN"),
                        format!(
                            "join cache retains {:.1} hours of both streams in task-local \
                             state",
                            r as f64 / 3_600_000.0
                        ),
                        Some("narrow the join window if the use case allows".into()),
                    );
                }
            }
        }
        _ => {}
    }
}
