//! Pass 5 (SSQL005): dead-column lint.
//!
//! Every scanned column is deserialized from Avro for every message (§5.1
//! represents tuples as full arrays), so columns nothing downstream reads are
//! pure decode cost. This pass runs over the **logical** plan (scans still
//! carry their object names there, which makes for better spans and fix
//! hints), propagating a required-column set top-down and warning at each
//! scan whose columns are never referenced. The stream's event-time column is
//! exempt: the runtime needs it even when the query never mentions it.

use super::AnalysisContext;
use crate::diag::{codes, Diagnostics, Severity, Span};
use samzasql_planner::LogicalPlan;

pub fn run(ctx: &AnalysisContext<'_>, plan: &LogicalPlan, out: &mut Diagnostics) {
    let all = vec![true; plan.output_names().len()];
    mark(ctx, plan, &all, out);
}

fn req(required: &[bool], i: usize) -> bool {
    required.get(i).copied().unwrap_or(true)
}

fn mark(ctx: &AnalysisContext<'_>, plan: &LogicalPlan, required: &[bool], out: &mut Diagnostics) {
    match plan {
        LogicalPlan::Scan {
            object,
            names,
            ts_index,
            ..
        } => {
            let dead: Vec<String> = names
                .iter()
                .enumerate()
                .filter(|(i, _)| !req(required, *i) && Some(*i) != *ts_index)
                .map(|(_, n)| n.clone())
                .collect();
            if dead.is_empty() {
                return;
            }
            let used: Vec<String> = names
                .iter()
                .enumerate()
                .filter(|(i, _)| req(required, *i) || Some(*i) == *ts_index)
                .map(|(_, n)| n.clone())
                .collect();
            let plural = if dead.len() == 1 { "column" } else { "columns" };
            out.report(
                codes::DEAD_COLUMNS,
                Severity::Warning,
                Span::locate_or_whole(ctx.sql, object),
                format!(
                    "{plural} `{}` of `{object}` {} deserialized for every row but never \
                     referenced by the query",
                    dead.join("`, `"),
                    if dead.len() == 1 { "is" } else { "are" },
                ),
                Some(format!(
                    "project only what the query needs at the source: \
                     `SELECT {} FROM {object}`",
                    used.join(", ")
                )),
            );
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut r = resize(required, input.arity());
            for i in predicate.input_refs() {
                set(&mut r, i);
            }
            mark(ctx, input, &r, out);
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let mut r = vec![false; input.arity()];
            for (j, e) in exprs.iter().enumerate() {
                if req(required, j) {
                    for i in e.input_refs() {
                        set(&mut r, i);
                    }
                }
            }
            mark(ctx, input, &r, out);
        }
        LogicalPlan::Aggregate {
            input,
            window,
            keys,
            aggs,
            ..
        } => {
            // Aggregation state consumes keys, agg arguments, and the window
            // timestamp regardless of which outputs survive upstream.
            let mut r = vec![false; input.arity()];
            for k in keys {
                for i in k.input_refs() {
                    set(&mut r, i);
                }
            }
            for a in aggs {
                if let Some(arg) = &a.arg {
                    for i in arg.input_refs() {
                        set(&mut r, i);
                    }
                }
            }
            match window {
                samzasql_planner::GroupWindow::None => {}
                samzasql_planner::GroupWindow::Tumble { ts_index, .. }
                | samzasql_planner::GroupWindow::Hop { ts_index, .. } => set(&mut r, *ts_index),
            }
            mark(ctx, input, &r, out);
        }
        LogicalPlan::SlidingWindow {
            input,
            partition_by,
            ts_index,
            aggs,
            ..
        } => {
            // Output is input columns followed by one column per agg call.
            let mut r = resize(required, input.arity());
            for k in partition_by {
                for i in k.input_refs() {
                    set(&mut r, i);
                }
            }
            for a in aggs {
                if let Some(arg) = &a.arg {
                    for i in arg.input_refs() {
                        set(&mut r, i);
                    }
                }
            }
            set(&mut r, *ts_index);
            mark(ctx, input, &r, out);
        }
        LogicalPlan::Join {
            left,
            right,
            equi,
            time_bound,
            residual,
            ..
        } => {
            let ln = left.arity();
            let mut lr = resize(required, ln);
            let mut rr: Vec<bool> = (0..right.arity()).map(|i| req(required, ln + i)).collect();
            for &(l, r) in equi {
                set(&mut lr, l);
                set(&mut rr, r);
            }
            if let Some(tb) = time_bound {
                set(&mut lr, tb.left_ts);
                set(&mut rr, tb.right_ts);
            }
            if let Some(res) = residual {
                for i in res.input_refs() {
                    if i < ln {
                        set(&mut lr, i);
                    } else {
                        set(&mut rr, i - ln);
                    }
                }
            }
            mark(ctx, left, &lr, out);
            mark(ctx, right, &rr, out);
        }
    }
}

fn set(v: &mut [bool], i: usize) {
    if let Some(slot) = v.get_mut(i) {
        *slot = true;
    }
}

fn resize(required: &[bool], n: usize) -> Vec<bool> {
    (0..n).map(|i| req(required, i)).collect()
}
