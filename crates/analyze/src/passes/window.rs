//! Pass 4 (SSQL004): window sanity.
//!
//! Windows that are syntactically valid can still be operationally absurd:
//! a HOP that advances further than it retains silently drops events, a
//! zero-width join window only matches exactly-equal timestamps, and a
//! negative-width window can never match at all.

use super::{walk_physical, AnalysisContext};
use crate::diag::{codes, Diagnostics, Severity, Span};
use samzasql_planner::{GroupWindow, PhysicalPlan};

pub fn run(ctx: &AnalysisContext<'_>, plan: &PhysicalPlan, out: &mut Diagnostics) {
    walk_physical(plan, &mut |node| check_node(ctx, node, out));
}

fn check_node(ctx: &AnalysisContext<'_>, node: &PhysicalPlan, out: &mut Diagnostics) {
    match node {
        PhysicalPlan::WindowAggregate { window, .. } => match window {
            GroupWindow::None => {}
            GroupWindow::Tumble { size_ms, .. } => {
                if *size_ms <= 0 {
                    out.report(
                        codes::WINDOW_SANITY,
                        Severity::Error,
                        Span::locate_or_whole(ctx.sql, "TUMBLE"),
                        format!("TUMBLE window size is {size_ms}ms; it must be positive"),
                        None,
                    );
                }
            }
            GroupWindow::Hop {
                emit_ms, retain_ms, ..
            } => {
                if *emit_ms <= 0 || *retain_ms <= 0 {
                    out.report(
                        codes::WINDOW_SANITY,
                        Severity::Error,
                        Span::locate_or_whole(ctx.sql, "HOP"),
                        format!(
                            "HOP window has emit={emit_ms}ms, retain={retain_ms}ms; both \
                             must be positive"
                        ),
                        None,
                    );
                } else if emit_ms > retain_ms {
                    // Advance > size: windows are emitted every `emit` ms
                    // but each only covers the trailing `retain` ms, so
                    // events in the gap never appear in any window.
                    out.report(
                        codes::WINDOW_SANITY,
                        Severity::Warning,
                        Span::locate_or_whole(ctx.sql, "HOP"),
                        format!(
                            "HOP advances {emit_ms}ms per emission but each window only \
                             retains {retain_ms}ms; events in the {}ms gap are never \
                             aggregated into any window",
                            emit_ms - retain_ms
                        ),
                        Some(format!(
                            "retain at least as long as the advance (retain >= {emit_ms}ms), \
                             or use TUMBLE for non-overlapping windows"
                        )),
                    );
                }
            }
        },
        PhysicalPlan::SlidingWindow { range_ms, rows, .. } => match (range_ms, rows) {
            (Some(r), _) if *r < 0 => out.report(
                codes::WINDOW_SANITY,
                Severity::Error,
                Span::locate_or_whole(ctx.sql, "OVER"),
                format!("OVER frame RANGE of {r}ms is negative; the frame is empty"),
                None,
            ),
            (Some(0), _) => out.report(
                codes::WINDOW_SANITY,
                Severity::Warning,
                Span::locate_or_whole(ctx.sql, "OVER"),
                "OVER frame RANGE of 0ms covers only rows with exactly the current \
                     timestamp"
                    .to_string(),
                Some("widen the frame, or use ROWS if per-row framing was intended".into()),
            ),
            (None, Some(0)) => out.report(
                codes::WINDOW_SANITY,
                Severity::Warning,
                Span::locate_or_whole(ctx.sql, "OVER"),
                "OVER frame of ROWS 0 PRECEDING covers only the current row; the \
                     aggregate equals its argument"
                    .to_string(),
                None,
            ),
            _ => {}
        },
        PhysicalPlan::StreamToStreamJoin { time_bound, .. } => {
            // Window [t-lower, t+upper] is non-empty iff lower+upper >= 0.
            let width = time_bound.lower_ms.saturating_add(time_bound.upper_ms);
            if width < 0 {
                out.report(
                    codes::WINDOW_SANITY,
                    Severity::Error,
                    Span::locate_or_whole(ctx.sql, "BETWEEN"),
                    format!(
                        "join window [-{}ms, +{}ms] is empty; no pair of rows can ever \
                         satisfy the time bound",
                        time_bound.lower_ms, time_bound.upper_ms
                    ),
                    Some("fix the window bounds so lower + upper >= 0".into()),
                );
            } else if width == 0 {
                out.report(
                    codes::WINDOW_SANITY,
                    Severity::Warning,
                    Span::locate_or_whole(ctx.sql, "BETWEEN"),
                    "zero-width join window: rows match only when their timestamps are \
                     exactly equal"
                        .to_string(),
                    Some("widen the window if approximate-time matching was intended".into()),
                );
            }
        }
        _ => {}
    }
}
