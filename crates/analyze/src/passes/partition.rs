//! Pass 1 (SSQL001): partition-alignment / key-provenance.
//!
//! Samza gives a task only the co-partitioned slices of its input topics, so
//! any stateful operator keyed on a column must consume a stream *partitioned*
//! by that column. The planner inserts [`PhysicalPlan::Repartition`] where it
//! detects a mismatch (`physical.rs`); this pass re-derives key provenance
//! bottom-up from the catalog and **re-verifies** that decision instead of
//! trusting it — a stripped or mis-keyed repartition stage is an Error here.
//!
//! Provenance is `None` when the producer never declared a partition key; the
//! pass stays silent rather than guessing.

use super::{is_continuous, walk_physical, AnalysisContext};
use crate::diag::{codes, Diagnostics, Severity, Span};
use samzasql_planner::{PhysicalPlan, ScalarExpr};

pub fn run(ctx: &AnalysisContext<'_>, plan: &PhysicalPlan, out: &mut Diagnostics) {
    walk_physical(plan, &mut |node| check_node(ctx, node, out));
}

fn key_is(expr: &ScalarExpr, index: usize) -> bool {
    matches!(expr, ScalarExpr::InputRef { index: i, .. } if *i == index)
}

fn check_node(ctx: &AnalysisContext<'_>, node: &PhysicalPlan, out: &mut Diagnostics) {
    match node {
        PhysicalPlan::StreamToRelationJoin {
            stream,
            relation_topic,
            relation_names,
            relation_key,
            equi,
            ..
        } => {
            let Some(&(stream_key, _)) = equi.first() else {
                return;
            };
            // Stream side: the probe key must be the stream's partition
            // column, or the task-local relation cache misses rows that
            // hashed to other tasks.
            if let Some((idx, pcol)) = stream.partition_column(ctx.catalog) {
                if idx != stream_key {
                    let names = stream.output_names();
                    let join_col = names
                        .get(stream_key)
                        .cloned()
                        .unwrap_or_else(|| format!("#{stream_key}"));
                    out.report(
                        codes::PARTITION_MISALIGNED,
                        Severity::Error,
                        Span::locate_or_whole(ctx.sql, &join_col),
                        format!(
                            "stream side of the join is partitioned by `{pcol}` but probes \
                             the relation on `{join_col}`; rows with equal join keys land on \
                             different tasks and miss the task-local cache"
                        ),
                        Some(format!(
                            "repartition the stream on `{join_col}` before the join (the \
                             planner inserts a RepartitionOp for this; the plan is missing it)"
                        )),
                    );
                }
            }
            // Relation side: the bootstrap cache is keyed by the declared
            // table key; joining on any other column probes the wrong key.
            if let Some(obj) = ctx.catalog.object_by_topic(relation_topic) {
                if let Some(pk) = &obj.partition_key {
                    let pk_idx = relation_names
                        .iter()
                        .position(|n| n.eq_ignore_ascii_case(pk));
                    if let Some(pk_idx) = pk_idx {
                        if pk_idx != *relation_key {
                            let join_col = relation_names
                                .get(*relation_key)
                                .cloned()
                                .unwrap_or_else(|| format!("#{relation_key}"));
                            out.report(
                                codes::PARTITION_MISALIGNED,
                                Severity::Error,
                                Span::locate_or_whole(ctx.sql, &join_col),
                                format!(
                                    "relation `{}` is keyed by `{pk}` but the join probes it \
                                     on `{join_col}`; the bootstrap cache lookup would always \
                                     miss",
                                    obj.name
                                ),
                                Some(format!(
                                    "join on `{pk}`, or declare `{join_col}` as the table's \
                                     key when registering it"
                                )),
                            );
                        }
                    }
                }
            }
        }
        PhysicalPlan::StreamToStreamJoin {
            left, right, equi, ..
        } => {
            // Symmetric join state is task-local: each side must arrive
            // partitioned by (one of) its equi columns. The planner never
            // repartitions stream-to-stream joins — this is exactly the kind
            // of gap the analyzer exists to catch.
            if equi.is_empty() {
                return;
            }
            for (side, plan_side, pick) in [("left", left, 0usize), ("right", right, 1usize)] {
                if let Some((idx, pcol)) = plan_side.partition_column(ctx.catalog) {
                    let aligned = equi
                        .iter()
                        .any(|&(l, r)| if pick == 0 { l == idx } else { r == idx });
                    if !aligned {
                        let names = plan_side.output_names();
                        let want = equi
                            .iter()
                            .map(|&(l, r)| {
                                let i = if pick == 0 { l } else { r };
                                names.get(i).cloned().unwrap_or_else(|| format!("#{i}"))
                            })
                            .collect::<Vec<_>>()
                            .join("`, `");
                        out.report(
                            codes::PARTITION_MISALIGNED,
                            Severity::Error,
                            Span::locate_or_whole(ctx.sql, &want),
                            format!(
                                "{side} side of the stream-to-stream join is partitioned by \
                                 `{pcol}` but joins on `{want}`; matching rows can be on \
                                 different tasks and will never meet"
                            ),
                            Some(format!(
                                "repartition the {side} input on `{want}` (stage it through \
                                 a keyed topic) or partition the producer by `{want}`"
                            )),
                        );
                    }
                }
            }
        }
        PhysicalPlan::WindowAggregate { input, keys, .. } => {
            // Grouped streaming aggregation shards groups by task; the
            // stream's partition column must be one of the group keys or a
            // group's rows split across tasks and every task emits partial
            // aggregates. Global aggregates (no keys) intentionally run
            // per-task and are out of scope.
            if keys.is_empty() || !is_continuous(input) {
                return;
            }
            if let Some((idx, pcol)) = input.partition_column(ctx.catalog) {
                if !keys.iter().any(|k| key_is(k, idx)) {
                    out.report(
                        codes::PARTITION_MISALIGNED,
                        Severity::Error,
                        Span::locate_or_whole(ctx.sql, "GROUP BY"),
                        format!(
                            "grouped streaming aggregation over a stream partitioned by \
                             `{pcol}`, but `{pcol}` is not among the group keys; each \
                             group's rows are split across tasks and the aggregate is \
                             computed per-task, not per-group"
                        ),
                        Some(format!(
                            "include `{pcol}` in GROUP BY, or repartition the stream on \
                             the group key before aggregating"
                        )),
                    );
                }
            }
        }
        PhysicalPlan::SlidingWindow {
            input,
            partition_by,
            ..
        } => {
            if partition_by.is_empty() || !is_continuous(input) {
                return;
            }
            if let Some((idx, pcol)) = input.partition_column(ctx.catalog) {
                if !partition_by.iter().any(|k| key_is(k, idx)) {
                    out.report(
                        codes::PARTITION_MISALIGNED,
                        Severity::Error,
                        Span::locate_or_whole(ctx.sql, "PARTITION BY"),
                        format!(
                            "sliding window PARTITION BY does not include the stream's \
                             partition column `{pcol}`; a window partition's rows are \
                             spread over tasks and each task sees a partial window"
                        ),
                        Some(format!(
                            "partition the window by `{pcol}`, or repartition the stream \
                             on the window key"
                        )),
                    );
                }
            }
        }
        _ => {}
    }
}
