//! The structured diagnostics engine.
//!
//! Every finding the analyzer (or the planner front end, routed through
//! [`Diagnostic::from_plan_error`]) reports is a [`Diagnostic`]: a stable
//! code, a severity, a message, a span into the original SQL text, and an
//! optional fix hint. [`Diagnostics`] collects them per statement and knows
//! how to render rustc-style text for humans and line-oriented JSON for
//! machines.

use samzasql_planner::PlanError;
use std::fmt;

/// Stable diagnostic codes. `SSQL0xx` are analyzer passes, `SSQL1xx` are
/// planner front-end errors routed through the diagnostics engine so
/// EXPLAIN/ANALYZE and plan errors render identically.
pub mod codes {
    /// Partition-alignment / key-provenance violations.
    pub const PARTITION_MISALIGNED: &str = "SSQL001";
    /// Operator state grows without bound.
    pub const UNBOUNDED_STATE: &str = "SSQL002";
    /// Physical type-flow re-verification failed (optimizer self-check).
    pub const TYPE_FLOW: &str = "SSQL003";
    /// Window sanity: advance > size, zero-width or empty windows.
    pub const WINDOW_SANITY: &str = "SSQL004";
    /// Columns deserialized but never referenced.
    pub const DEAD_COLUMNS: &str = "SSQL005";

    /// SQL failed to parse.
    pub const PARSE: &str = "SSQL100";
    /// Unknown stream/table/view.
    pub const UNKNOWN_RELATION: &str = "SSQL101";
    /// Unknown column.
    pub const UNKNOWN_COLUMN: &str = "SSQL102";
    /// Ambiguous unqualified column.
    pub const AMBIGUOUS_COLUMN: &str = "SSQL103";
    /// Expression type error.
    pub const TYPE_ERROR: &str = "SSQL104";
    /// Valid SQL this engine does not support.
    pub const UNSUPPORTED: &str = "SSQL105";
    /// Semantic violation.
    pub const SEMANTIC: &str = "SSQL106";
    /// Catalog problem.
    pub const CATALOG: &str = "SSQL107";
    /// Analysis re-entry (an Error-bearing plan reached planning again).
    pub const ANALYSIS: &str = "SSQL108";
}

/// Diagnostic severity, ordered most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The plan must not run; planning aborts.
    Error,
    /// The plan runs but is probably not what the author meant.
    Warning,
    /// Informational.
    Note,
}

impl Severity {
    /// Lowercase label used in renderings.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// A byte range into the original SQL text, with 1-based line/column of its
/// start. Every diagnostic carries one — errors that cannot be localized
/// span the whole statement rather than going spanless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first spanned byte.
    pub start: usize,
    /// Byte offset one past the last spanned byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column of `start`.
    pub column: u32,
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

impl Span {
    /// Span over `start..end` of `sql`, computing line/column.
    pub fn at(sql: &str, start: usize, end: usize) -> Span {
        let start = start.min(sql.len());
        let end = end.clamp(start, sql.len());
        let prefix = &sql[..start];
        let line = prefix.bytes().filter(|&b| b == b'\n').count() as u32 + 1;
        let column = (start - prefix.rfind('\n').map_or(0, |p| p + 1)) as u32 + 1;
        Span {
            start,
            end,
            line,
            column,
        }
    }

    /// Span over the whole (trimmed) statement — the fallback when a
    /// diagnostic cannot be localized to an identifier.
    pub fn whole(sql: &str) -> Span {
        let start = sql.len() - sql.trim_start().len();
        let end = start + sql.trim().len();
        Span::at(sql, start, end.max(start))
    }

    /// Best-effort location of `needle` in `sql`: case-insensitive, on
    /// identifier boundaries, skipping string literals. Qualified names
    /// (`Orders.productId`) match as written; a bare column name also
    /// matches the tail of a qualified occurrence.
    pub fn locate(sql: &str, needle: &str) -> Option<Span> {
        if needle.is_empty() {
            return None;
        }
        let hay = sql.as_bytes();
        let lower_sql = sql.to_ascii_lowercase();
        let lower_needle = needle.to_ascii_lowercase();
        let n = lower_needle.len();
        let mut in_string = false;
        let mut i = 0;
        while i + n <= hay.len() {
            if hay[i] == b'\'' {
                in_string = !in_string;
                i += 1;
                continue;
            }
            if !in_string && lower_sql[i..].starts_with(lower_needle.as_str()) {
                let before_ok = i == 0 || !is_ident_char(hay[i - 1]);
                let after_ok = i + n >= hay.len() || !is_ident_char(hay[i + n]);
                if before_ok && after_ok {
                    return Some(Span::at(sql, i, i + n));
                }
            }
            i += 1;
        }
        None
    }

    /// Locate `needle`, falling back to the whole statement.
    pub fn locate_or_whole(sql: &str, needle: &str) -> Span {
        Span::locate(sql, needle).unwrap_or_else(|| Span::whole(sql))
    }

    /// Span starting at a 1-based line/column (as reported by the parser),
    /// extending to the end of the offending token.
    pub fn from_line_col(sql: &str, line: u32, column: u32) -> Span {
        let mut offset = 0usize;
        for (ln, text) in sql.split('\n').enumerate() {
            if ln as u32 + 1 == line {
                let col = (column.max(1) as usize - 1).min(text.len());
                let start = offset + col;
                let rest = &sql.as_bytes()[start..];
                let len = rest
                    .iter()
                    .take_while(|&&b| is_ident_char(b))
                    .count()
                    .max(1)
                    .min(sql.len() - start);
                return Span::at(sql, start, start + len);
            }
            offset += text.len() + 1;
        }
        Span::whole(sql)
    }
}

/// One analyzer or planner finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code from [`codes`].
    pub code: &'static str,
    pub severity: Severity,
    /// One-line statement of the problem.
    pub message: String,
    /// Location in the original SQL text.
    pub span: Span,
    /// Suggested fix, when the analyzer can name one.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Route a planner front-end error through the diagnostics engine so
    /// plan errors and ANALYZE output render identically, always with a
    /// real span.
    pub fn from_plan_error(sql: &str, err: &PlanError) -> Diagnostic {
        let (code, span) = match err {
            PlanError::Parse(p) => (codes::PARSE, Span::from_line_col(sql, p.line, p.column)),
            PlanError::UnknownRelation(_) => (codes::UNKNOWN_RELATION, hint_span(sql, err)),
            PlanError::UnknownColumn { .. } => (codes::UNKNOWN_COLUMN, hint_span(sql, err)),
            PlanError::AmbiguousColumn(_) => (codes::AMBIGUOUS_COLUMN, hint_span(sql, err)),
            PlanError::Type(_) => (codes::TYPE_ERROR, Span::whole(sql)),
            PlanError::Unsupported(_) => (codes::UNSUPPORTED, Span::whole(sql)),
            PlanError::Semantic(_) => (codes::SEMANTIC, Span::whole(sql)),
            PlanError::Catalog(_) => (codes::CATALOG, Span::whole(sql)),
            PlanError::Analysis(_) => (codes::ANALYSIS, Span::whole(sql)),
        };
        Diagnostic {
            code,
            severity: Severity::Error,
            message: err.to_string(),
            span,
            hint: None,
        }
    }

    fn render_json_into(&self, out: &mut String) {
        out.push_str("{\"code\":");
        json_string(self.code, out);
        out.push_str(",\"severity\":");
        json_string(self.severity.label(), out);
        out.push_str(",\"message\":");
        json_string(&self.message, out);
        out.push_str(&format!(
            ",\"span\":{{\"start\":{},\"end\":{},\"line\":{},\"column\":{}}}",
            self.span.start, self.span.end, self.span.line, self.span.column
        ));
        if let Some(h) = &self.hint {
            out.push_str(",\"hint\":");
            json_string(h, out);
        }
        out.push('}');
    }
}

fn hint_span(sql: &str, err: &PlanError) -> Span {
    match err.span_hint() {
        Some(ident) => Span::locate(sql, ident)
            .or_else(|| {
                // A qualified name may appear unqualified (or vice versa);
                // retry with the last path segment.
                Span::locate(sql, ident.rsplit('.').next().unwrap_or(ident))
            })
            .unwrap_or_else(|| Span::whole(sql)),
        None => Span::whole(sql),
    }
}

fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// All diagnostics for one statement, with the SQL they point into.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    sql: String,
    diags: Vec<Diagnostic>,
}

impl Diagnostics {
    pub fn new(sql: &str) -> Diagnostics {
        Diagnostics {
            sql: sql.to_string(),
            diags: Vec::new(),
        }
    }

    /// The SQL text the spans index into.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    pub fn push(&mut self, diag: Diagnostic) {
        self.diags.push(diag);
    }

    /// Convenience: push a new diagnostic from parts.
    pub fn report(
        &mut self,
        code: &'static str,
        severity: Severity,
        span: Span,
        message: impl Into<String>,
        hint: Option<String>,
    ) {
        self.push(Diagnostic {
            code,
            severity,
            message: message.into(),
            span,
            hint,
        });
    }

    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter()
    }

    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    pub fn len(&self) -> usize {
        self.diags.len()
    }

    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    pub fn error_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    pub fn warning_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// All codes, in emission order (for golden tests).
    pub fn codes(&self) -> Vec<&'static str> {
        self.diags.iter().map(|d| d.code).collect()
    }

    /// Sort most-severe-first, keeping emission order within a severity.
    pub fn sort(&mut self) {
        self.diags.sort_by_key(|d| d.severity);
    }

    /// Rustc-style human rendering: message, source line, caret underline,
    /// and fix hint per diagnostic.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&format!(
                "{}[{}]: {}\n",
                d.severity.label(),
                d.code,
                d.message
            ));
            let line_text = self
                .sql
                .split('\n')
                .nth(d.span.line as usize - 1)
                .unwrap_or("");
            let gutter = format!("{:>4}", d.span.line);
            out.push_str(&format!(
                "{} --> line {}, column {}\n",
                " ".repeat(gutter.len()),
                d.span.line,
                d.span.column
            ));
            out.push_str(&format!("{gutter} | {line_text}\n"));
            let col = d.span.column as usize - 1;
            // Underline within this line only; multi-line spans underline to
            // the end of the first line.
            let span_on_line = (d.span.end - d.span.start).min(line_text.len().saturating_sub(col));
            let carets = "^".repeat(span_on_line.max(1));
            out.push_str(&format!(
                "{} | {}{}\n",
                " ".repeat(gutter.len()),
                " ".repeat(col),
                carets
            ));
            if let Some(h) = &d.hint {
                out.push_str(&format!("{} = help: {}\n", " ".repeat(gutter.len()), h));
            }
        }
        if !self.diags.is_empty() {
            out.push_str(&format!("{self}\n"));
        }
        out
    }

    /// Machine-readable rendering: one JSON object per line.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            d.render_json_into(&mut out);
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Diagnostics {
    /// One-line summary: `2 errors, 1 warning`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let e = self.error_count();
        let w = self.warning_count();
        let n = self.len() - e - w;
        let mut parts = Vec::new();
        if e > 0 {
            parts.push(format!("{e} error{}", if e == 1 { "" } else { "s" }));
        }
        if w > 0 {
            parts.push(format!("{w} warning{}", if w == 1 { "" } else { "s" }));
        }
        if n > 0 {
            parts.push(format!("{n} note{}", if n == 1 { "" } else { "s" }));
        }
        if parts.is_empty() {
            write!(f, "no diagnostics")
        } else {
            write!(f, "{}", parts.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_is_case_insensitive_and_word_bounded() {
        let sql = "SELECT STREAM units FROM Orders WHERE units > 50";
        let s = Span::locate(sql, "orders").unwrap();
        assert_eq!(&sql[s.start..s.end], "Orders");
        assert_eq!((s.line, s.column), (1, 26));
        // "unit" must not match inside "units".
        assert!(Span::locate(sql, "unit").is_none());
    }

    #[test]
    fn locate_skips_string_literals() {
        let sql = "SELECT 'Orders' FROM Orders";
        let s = Span::locate(sql, "Orders").unwrap();
        assert_eq!(s.start, 21);
    }

    #[test]
    fn whole_span_trims_whitespace() {
        let s = Span::whole("  SELECT 1  ");
        assert_eq!((s.start, s.end), (2, 10));
    }

    #[test]
    fn from_line_col_spans_the_token() {
        let sql = "SELECT *\nFROM Nowhere";
        let s = Span::from_line_col(sql, 2, 6);
        assert_eq!(&sql[s.start..s.end], "Nowhere");
    }

    #[test]
    fn render_shows_caret_and_hint() {
        let sql = "SELECT units FROM Orders";
        let mut d = Diagnostics::new(sql);
        d.report(
            codes::DEAD_COLUMNS,
            Severity::Warning,
            Span::locate(sql, "Orders").unwrap(),
            "demo",
            Some("do the thing".into()),
        );
        let text = d.render();
        assert!(text.contains("warning[SSQL005]: demo"), "{text}");
        assert!(text.contains("^^^^^^"), "{text}");
        assert!(text.contains("= help: do the thing"), "{text}");
        assert!(text.contains("1 warning"), "{text}");
    }

    #[test]
    fn json_rendering_escapes() {
        let sql = "SELECT 1";
        let mut d = Diagnostics::new(sql);
        d.report(
            codes::TYPE_FLOW,
            Severity::Error,
            Span::whole(sql),
            "has \"quotes\"\nand newline",
            None,
        );
        let json = d.render_json();
        assert!(json.contains("\\\"quotes\\\""), "{json}");
        assert!(json.contains("\\n"), "{json}");
        assert!(json.contains("\"code\":\"SSQL003\""), "{json}");
    }
}
