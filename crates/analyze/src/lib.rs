//! # samzasql-analyze
//!
//! Static plan analysis for SamzaSQL: a multi-pass linter over the planner's
//! logical **and** physical plans, built on a structured diagnostics engine
//! (stable `SSQL…` codes, severities, SQL source spans, machine-readable
//! rendering). It is the pipeline stage between optimization and submission:
//!
//! ```text
//! parse ─▶ validate ─▶ optimize ─▶ to_physical ─▶ ANALYZE ─▶ submit
//! ```
//!
//! A query that survives the validator can still compile into a physical
//! plan that is silently wrong at scale — a join whose probe side is not
//! co-partitioned with its cache, a window whose state grows without bound,
//! an optimizer rewrite that left a stale type. Calcite guards this class of
//! bug with post-optimization plan validity checks; these passes are that
//! layer for SamzaSQL:
//!
//! | code      | pass                                         | severity |
//! |-----------|----------------------------------------------|----------|
//! | `SSQL001` | partition alignment / key provenance         | Error    |
//! | `SSQL002` | unbounded state (joins, windows, GROUP BY)   | Error/Warning |
//! | `SSQL003` | physical type-flow re-verification           | Error    |
//! | `SSQL004` | window sanity (advance > size, zero width)   | Error/Warning |
//! | `SSQL005` | dead columns (decoded but never referenced)  | Warning  |
//!
//! `SSQL1xx` codes route the planner front end's own errors through the same
//! diagnostics type so EXPLAIN/ANALYZE output and plan errors render
//! identically, every one with a real source span.
//!
//! Wiring: [`GatingAnalyzer`] implements the planner's
//! [`PlanCheck`](samzasql_planner::PlanCheck) hook (deny-by-default — Error
//! diagnostics abort planning before any job exists, warnings attach to the
//! plan as lints); the shell's `ANALYZE <sql>` command pretty-prints
//! diagnostics; the `plan-lint` binary runs a SQL corpus for CI.

pub mod corpus;
pub mod diag;
pub mod passes;

pub use diag::{codes, Diagnostic, Diagnostics, Severity, Span};

use passes::AnalysisContext;
use samzasql_planner::{Catalog, LogicalPlan, PhysicalPlan, PlanCheck, PlanError, PlannedQuery};
use samzasql_planner::{Planner, Result as PlanResult};

/// Analyze a planned query: all five passes over its logical and physical
/// plans, plus a cross-plan consistency check.
pub fn analyze_planned(planned: &PlannedQuery, catalog: &Catalog) -> Diagnostics {
    let mut out = Diagnostics::new(&planned.sql);
    let ctx = AnalysisContext {
        sql: &planned.sql,
        catalog,
    };
    run_physical_passes(&ctx, &planned.physical, &mut out);
    passes::deadcol::run(&ctx, &planned.logical, &mut out);
    check_plan_consistency(&ctx, &planned.logical, &planned.physical, &mut out);
    out.sort();
    out
}

/// Analyze a bare physical plan (no logical counterpart) — used by
/// seeded-bug tests that hand-mutate plans the way a buggy rewrite would.
pub fn analyze_physical(sql: &str, physical: &PhysicalPlan, catalog: &Catalog) -> Diagnostics {
    let mut out = Diagnostics::new(sql);
    let ctx = AnalysisContext { sql, catalog };
    run_physical_passes(&ctx, physical, &mut out);
    out.sort();
    out
}

/// Plan (unchecked) and analyze one statement. Planner front-end errors are
/// routed through the diagnostics engine instead of surfacing as `Err`, so
/// ANALYZE renders parse/validation failures and analyzer findings
/// identically.
pub fn analyze_sql(planner: &Planner, sql: &str) -> Diagnostics {
    match planner.plan_unchecked(sql) {
        Ok(planned) => analyze_planned(&planned, planner.catalog()),
        Err(err) => {
            let mut out = Diagnostics::new(sql);
            out.push(Diagnostic::from_plan_error(sql, &err));
            out
        }
    }
}

fn run_physical_passes(ctx: &AnalysisContext<'_>, plan: &PhysicalPlan, out: &mut Diagnostics) {
    passes::partition::run(ctx, plan, out);
    passes::state::run(ctx, plan, out);
    passes::typeflow::run(ctx, plan, out);
    passes::window::run(ctx, plan, out);
}

/// Optimizer self-check across layers: physical conversion must preserve the
/// logical plan's output row shape exactly.
fn check_plan_consistency(
    ctx: &AnalysisContext<'_>,
    logical: &LogicalPlan,
    physical: &PhysicalPlan,
    out: &mut Diagnostics,
) {
    if logical.output_types() != physical.output_types()
        || logical.output_names() != physical.output_names()
    {
        out.report(
            codes::TYPE_FLOW,
            Severity::Error,
            Span::whole(ctx.sql),
            format!(
                "physical plan output ({:?}) does not match the logical plan output \
                 ({:?}); physical conversion changed the row shape",
                physical.output_names(),
                logical.output_names()
            ),
            None,
        );
    }
}

/// The deny-by-default [`PlanCheck`] installed into the shell's planner.
///
/// Error diagnostics abort planning (no job can be created from the plan);
/// Warning/Note diagnostics become one-line lints on
/// [`PlannedQuery::lints`].
#[derive(Debug, Clone, Copy, Default)]
pub struct GatingAnalyzer;

impl PlanCheck for GatingAnalyzer {
    fn name(&self) -> &str {
        "samzasql-analyze"
    }

    fn check(&self, planned: &PlannedQuery, catalog: &Catalog) -> PlanResult<Vec<String>> {
        let diags = analyze_planned(planned, catalog);
        if diags.has_errors() {
            return Err(PlanError::Analysis(diags.render()));
        }
        Ok(diags
            .iter()
            .map(|d| {
                format!(
                    "[{}] {}{}",
                    d.code,
                    d.message,
                    d.hint
                        .as_deref()
                        .map(|h| format!(" (help: {h})"))
                        .unwrap_or_default()
                )
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn gating_analyzer_blocks_error_bearing_plans() {
        let mut planner = Planner::new(corpus::paper_catalog());
        planner.add_check(Arc::new(GatingAnalyzer));
        // Group keys exclude the declared partition key (productId): SSQL001.
        let err = planner
            .plan(
                "SELECT STREAM units, COUNT(*) AS c FROM Orders \
                 GROUP BY TUMBLE(rowtime, INTERVAL '1' MINUTE), units",
            )
            .unwrap_err();
        match err {
            PlanError::Analysis(msg) => assert!(msg.contains("SSQL001"), "{msg}"),
            other => panic!("expected Analysis error, got {other:?}"),
        }
        // plan_unchecked still returns the plan for inspection.
        assert!(planner
            .plan_unchecked(
                "SELECT STREAM units, COUNT(*) AS c FROM Orders \
                 GROUP BY TUMBLE(rowtime, INTERVAL '1' MINUTE), units",
            )
            .is_ok());
    }

    #[test]
    fn gating_analyzer_attaches_lints_on_clean_plans() {
        let mut planner = Planner::new(corpus::paper_catalog());
        planner.add_check(Arc::new(GatingAnalyzer));
        // `units` is never referenced: SSQL005 warning, not an error.
        let planned = planner
            .plan("SELECT STREAM rowtime, productId FROM Orders")
            .unwrap();
        assert!(
            planned.lints.iter().any(|l| l.contains("SSQL005")),
            "{:?}",
            planned.lints
        );
        assert!(
            planned.warnings.is_empty(),
            "lints must not leak into warnings"
        );
    }
}
