//! SQL fixture corpus support: the catalog fixtures plan against, expected-
//! diagnostic headers, and the runner shared by the golden tests and the
//! `plan-lint` binary.
//!
//! A fixture is a `.sql` file whose leading comment lines declare what the
//! analyzer must report:
//!
//! ```sql
//! -- expect: SSQL001
//! SELECT STREAM ...
//! ```
//!
//! `-- expect: clean` (or no header) means zero diagnostics. Multiple codes
//! may be comma-separated or repeated on separate `-- expect:` lines; the
//! fixture's emitted code multiset must match exactly.

use crate::{analyze_sql, Diagnostics};
use samzasql_planner::{Catalog, Planner};
use samzasql_serde::Schema;
use std::fs;
use std::path::{Path, PathBuf};

/// The catalog fixtures plan against: the paper's evaluation relations
/// (§6) with declared partition keys so the alignment pass has provenance.
pub fn paper_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register_stream(
        "Orders",
        "orders",
        Schema::record(
            "Orders",
            vec![
                ("rowtime", Schema::Timestamp),
                ("productId", Schema::Int),
                ("units", Schema::Int),
            ],
        ),
        "rowtime",
    )
    .expect("register Orders");
    c.set_partition_key("Orders", "productId")
        .expect("Orders key");
    c.register_table(
        "Products",
        "products-changelog",
        Schema::record(
            "Products",
            vec![
                ("productId", Schema::Int),
                ("name", Schema::String),
                ("supplierId", Schema::Int),
            ],
        ),
    )
    .expect("register Products");
    c.set_partition_key("Products", "productId")
        .expect("Products key");
    for name in ["PacketsR1", "PacketsR2"] {
        c.register_stream(
            name,
            name.to_ascii_lowercase(),
            Schema::record(
                name,
                vec![
                    ("rowtime", Schema::Timestamp),
                    ("sourcetime", Schema::Long),
                    ("packetId", Schema::Int),
                ],
            ),
            "rowtime",
        )
        .unwrap_or_else(|_| panic!("register {name}"));
    }
    c
}

/// A planner over [`paper_catalog`], without gating checks (the corpus
/// deliberately contains Error-bearing statements).
pub fn paper_planner() -> Planner {
    Planner::new(paper_catalog())
}

/// Expected codes parsed from `-- expect:` headers. Empty means clean.
pub fn parse_expectations(src: &str) -> Vec<String> {
    let mut codes = Vec::new();
    for line in src.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("-- expect:") else {
            continue;
        };
        for item in rest.split(',') {
            let item = item.trim();
            if item.is_empty() || item.eq_ignore_ascii_case("clean") {
                continue;
            }
            codes.push(item.to_string());
        }
    }
    codes.sort();
    codes
}

/// The statement text with comment lines removed (the lexer does not skip
/// `--` comments; fixtures keep their headers out of the parser's view).
pub fn strip_comments(src: &str) -> String {
    src.lines()
        .filter(|l| !l.trim_start().starts_with("--"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// One fixture's outcome.
#[derive(Debug)]
pub struct FixtureResult {
    pub path: PathBuf,
    /// Codes the header demands (sorted).
    pub expected: Vec<String>,
    /// Codes the analyzer emitted (sorted).
    pub actual: Vec<String>,
    /// Full diagnostics, for rendering.
    pub diagnostics: Diagnostics,
}

impl FixtureResult {
    /// True when emitted codes match the header exactly (as multisets).
    pub fn matches(&self) -> bool {
        self.expected == self.actual
    }
}

/// Run a single fixture file against a planner.
pub fn run_fixture(planner: &Planner, path: &Path) -> std::io::Result<FixtureResult> {
    let src = fs::read_to_string(path)?;
    let expected = parse_expectations(&src);
    let sql = strip_comments(&src);
    let diagnostics = analyze_sql(planner, sql.trim());
    let mut actual: Vec<String> = diagnostics.codes().iter().map(|c| c.to_string()).collect();
    actual.sort();
    Ok(FixtureResult {
        path: path.to_path_buf(),
        expected,
        actual,
        diagnostics,
    })
}

/// Run every `.sql` file under `dir` (sorted for stable output).
pub fn run_corpus(planner: &Planner, dir: &Path) -> std::io::Result<Vec<FixtureResult>> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "sql"))
        .collect();
    files.sort();
    files.iter().map(|p| run_fixture(planner, p)).collect()
}

/// The corpus directory committed with this crate.
pub fn default_corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}
