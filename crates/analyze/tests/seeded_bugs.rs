//! Seeded-bug detection: take a correct planner-produced physical plan,
//! mutate it the way a buggy optimizer rewrite would, and prove the analyzer
//! catches each class of corruption with the right code.

use samzasql_analyze::corpus::{paper_catalog, paper_planner};
use samzasql_analyze::{analyze_physical, codes, Severity};
use samzasql_planner::{PhysicalPlan, ScalarExpr};
use samzasql_serde::Schema;

/// Apply `f` to every node of the plan, parents before children.
fn visit_mut(plan: &mut PhysicalPlan, f: &mut impl FnMut(&mut PhysicalPlan)) {
    f(plan);
    match plan {
        PhysicalPlan::Scan { .. } => {}
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::WindowAggregate { input, .. }
        | PhysicalPlan::SlidingWindow { input, .. }
        | PhysicalPlan::Repartition { input, .. }
        | PhysicalPlan::StreamToRelationJoin { stream: input, .. } => visit_mut(input, f),
        PhysicalPlan::StreamToStreamJoin { left, right, .. } => {
            visit_mut(left, f);
            visit_mut(right, f);
        }
    }
}

fn count_nodes(plan: &PhysicalPlan, pred: impl Fn(&PhysicalPlan) -> bool) -> usize {
    let mut n = 0;
    let mut plan = plan.clone();
    visit_mut(&mut plan, &mut |node| {
        if pred(node) {
            n += 1;
        }
    });
    n
}

fn placeholder() -> PhysicalPlan {
    PhysicalPlan::Scan {
        topic: String::new(),
        names: Vec::new(),
        types: Vec::new(),
        format: samzasql_serde::SerdeFormat::Json,
        bounded: true,
        ts_index: None,
    }
}

/// Remove every Repartition node, splicing its input into its place — the
/// seeded bug: a rewrite that forgets the planner's re-keying stage.
fn strip_repartitions(plan: &mut PhysicalPlan) {
    while let PhysicalPlan::Repartition { input, .. } = plan {
        *plan = std::mem::replace(&mut **input, placeholder());
    }
    match plan {
        PhysicalPlan::Scan { .. } => {}
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::WindowAggregate { input, .. }
        | PhysicalPlan::SlidingWindow { input, .. }
        | PhysicalPlan::Repartition { input, .. }
        | PhysicalPlan::StreamToRelationJoin { stream: input, .. } => strip_repartitions(input),
        PhysicalPlan::StreamToStreamJoin { left, right, .. } => {
            strip_repartitions(left);
            strip_repartitions(right);
        }
    }
}

fn error_codes(diags: &samzasql_analyze::Diagnostics) -> Vec<&'static str> {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.code)
        .collect()
}

#[test]
fn stripped_repartition_is_caught_as_ssql001() {
    let planner = paper_planner();
    let catalog = paper_catalog();
    // Orders is partitioned by productId but joins on units: the planner
    // must insert a Repartition to re-key the probe side.
    let sql = "SELECT STREAM Orders.rowtime, Orders.units, Products.name \
               FROM Orders JOIN Products ON Orders.units = Products.productId";
    let planned = planner.plan_unchecked(sql).unwrap();
    assert!(
        count_nodes(&planned.physical, |n| matches!(
            n,
            PhysicalPlan::Repartition { .. }
        )) > 0,
        "precondition: planner inserts a Repartition for this query:\n{}",
        planned.physical.explain()
    );

    // The planner's own output is alignment-clean.
    let before = analyze_physical(sql, &planned.physical, &catalog);
    assert!(
        !before.has_errors(),
        "planner output must analyze clean:\n{}",
        before.render()
    );

    // Seed the bug: drop the re-keying stage.
    let mut broken = planned.physical.clone();
    strip_repartitions(&mut broken);
    assert_eq!(
        count_nodes(&broken, |n| matches!(n, PhysicalPlan::Repartition { .. })),
        0
    );
    let after = analyze_physical(sql, &broken, &catalog);
    assert!(
        error_codes(&after).contains(&codes::PARTITION_MISALIGNED),
        "expected SSQL001 Error, got:\n{}",
        after.render()
    );
}

#[test]
fn unbounded_join_cache_is_caught_as_ssql002() {
    let planner = paper_planner();
    let catalog = paper_catalog();
    let sql = "SELECT STREAM PacketsR1.packetId AS p1, PacketsR2.packetId AS p2, \
               PacketsR1.sourcetime AS t1, PacketsR2.sourcetime AS t2, \
               PacketsR1.rowtime AS r1, PacketsR2.rowtime AS r2 \
               FROM PacketsR1 JOIN PacketsR2 \
               ON PacketsR1.packetId = PacketsR2.packetId \
               AND PacketsR2.rowtime BETWEEN PacketsR1.rowtime - INTERVAL '2' SECOND \
               AND PacketsR1.rowtime + INTERVAL '2' SECOND";
    let planned = planner.plan_unchecked(sql).unwrap();
    let before = analyze_physical(sql, &planned.physical, &catalog);
    assert!(
        !before.has_errors(),
        "planner output must analyze clean:\n{}",
        before.render()
    );

    // Seed the bug: a rewrite that loses the retention bound, so the join
    // cache retains every row forever.
    let mut broken = planned.physical.clone();
    visit_mut(&mut broken, &mut |node| {
        if let PhysicalPlan::StreamToStreamJoin { time_bound, .. } = node {
            time_bound.upper_ms = i64::MAX;
        }
    });
    let after = analyze_physical(sql, &broken, &catalog);
    assert!(
        error_codes(&after).contains(&codes::UNBOUNDED_STATE),
        "expected SSQL002 Error, got:\n{}",
        after.render()
    );
}

#[test]
fn type_mismatched_rewrite_is_caught_as_ssql003() {
    let planner = paper_planner();
    let catalog = paper_catalog();
    // Reordered (non-identity) projection so the optimizer keeps the
    // Project node.
    let sql = "SELECT STREAM productId, units, rowtime FROM Orders";
    let planned = planner.plan_unchecked(sql).unwrap();
    assert!(
        count_nodes(&planned.physical, |n| matches!(
            n,
            PhysicalPlan::Project { .. }
        )) > 0,
        "precondition: plan keeps a Project node:\n{}",
        planned.physical.explain()
    );
    let before = analyze_physical(sql, &planned.physical, &catalog);
    assert!(!before.has_errors(), "{}", before.render());

    // Seed bug #1: a rewrite records a stale type for a projected column
    // (productId is Int in the scan, String in the projection).
    let mut stale_ty = planned.physical.clone();
    visit_mut(&mut stale_ty, &mut |node| {
        if let PhysicalPlan::Project { exprs, .. } = node {
            exprs[1] = ScalarExpr::InputRef {
                index: 1,
                ty: Schema::String,
            };
        }
    });
    let after = analyze_physical(sql, &stale_ty, &catalog);
    assert!(
        error_codes(&after).contains(&codes::TYPE_FLOW),
        "expected SSQL003 Error for stale type, got:\n{}",
        after.render()
    );

    // Seed bug #2: a rewrite leaves a dangling column reference.
    let mut dangling = planned.physical.clone();
    visit_mut(&mut dangling, &mut |node| {
        if let PhysicalPlan::Project { exprs, .. } = node {
            exprs[2] = ScalarExpr::InputRef {
                index: 99,
                ty: Schema::Int,
            };
        }
    });
    let after = analyze_physical(sql, &dangling, &catalog);
    assert!(
        error_codes(&after).contains(&codes::TYPE_FLOW),
        "expected SSQL003 Error for dangling input ref, got:\n{}",
        after.render()
    );
}
