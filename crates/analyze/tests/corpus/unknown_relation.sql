-- Planner front-end error routed through diagnostics: unknown relation.
-- expect: SSQL101
SELECT STREAM * FROM Nowhere
