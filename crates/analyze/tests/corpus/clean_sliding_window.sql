-- Paper query shape 3 (Fig. 6): sliding-window aggregation, aligned with
-- the stream's declared partition key.
-- expect: clean
SELECT STREAM rowtime, productId, units,
  SUM(units) OVER (PARTITION BY productId ORDER BY rowtime
                   RANGE INTERVAL '5' MINUTE PRECEDING) AS totalUnits
FROM Orders
