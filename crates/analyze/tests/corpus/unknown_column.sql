-- Planner front-end error routed through diagnostics: unknown column, with
-- a span pointing at the identifier.
-- expect: SSQL102
SELECT STREAM quantity FROM Orders
