-- Seeded lint: `units` is deserialized for every row but never referenced.
-- expect: SSQL005
SELECT STREAM rowtime, productId FROM Orders
