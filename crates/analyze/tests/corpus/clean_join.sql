-- Paper query shape 4 (Fig. 5c): stream-to-relation join on the declared
-- key of both sides.
-- expect: clean
SELECT STREAM Orders.rowtime, Orders.productId, Orders.units,
       Products.name, Products.supplierId
FROM Orders
JOIN Products ON Orders.productId = Products.productId
