-- Seeded bug: unbounded OVER frame on a continuous stream — window state
-- retains every row ever seen.
-- expect: SSQL002
SELECT STREAM rowtime, productId, units,
  SUM(units) OVER (PARTITION BY productId ORDER BY rowtime
                   RANGE UNBOUNDED PRECEDING) AS total
FROM Orders
