-- Seeded bug: the relation is keyed by productId but the join probes its
-- supplierId column — the bootstrap cache lookup would always miss.
-- expect: SSQL001
SELECT STREAM Orders.rowtime, Orders.units,
       Products.productId, Products.name
FROM Orders
JOIN Products ON Orders.productId = Products.supplierId
