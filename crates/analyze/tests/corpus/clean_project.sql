-- Paper query shape 2 (Fig. 5b): streaming projection.
-- expect: clean
SELECT STREAM rowtime, productId, units FROM Orders
