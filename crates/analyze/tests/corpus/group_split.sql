-- Seeded bug: grouped streaming aggregation whose keys exclude the
-- stream's partition key (productId) — groups split across tasks.
-- expect: SSQL001
SELECT STREAM units, COUNT(productId) AS orders
FROM Orders
GROUP BY TUMBLE(rowtime, INTERVAL '1' MINUTE), units
