-- Seeded bug: HOP advances 10s per emission but retains only 5s — events
-- in the gap never appear in any window.
-- expect: SSQL004
SELECT STREAM productId, COUNT(units) AS orders
FROM Orders
GROUP BY HOP(rowtime, INTERVAL '10' SECOND, INTERVAL '5' SECOND), productId
