-- Planner front-end error routed through diagnostics: parse failure, with
-- the parser's line/column converted to a span.
-- expect: SSQL100
SELECT STREAM units FORM Orders
