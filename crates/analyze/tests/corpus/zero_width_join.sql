-- Seeded bug: zero-width stream-to-stream join window — rows only match on
-- exactly equal timestamps.
-- expect: SSQL004
SELECT STREAM PacketsR1.rowtime, PacketsR1.sourcetime, PacketsR1.packetId,
       PacketsR2.rowtime AS rowtime2, PacketsR2.sourcetime AS sourcetime2,
       PacketsR2.packetId AS packetId2
FROM PacketsR1
JOIN PacketsR2 ON PacketsR1.packetId = PacketsR2.packetId
AND PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '0' SECOND
                          AND PacketsR2.rowtime + INTERVAL '0' SECOND
