-- Paper query shape 1 (Fig. 5a): streaming filter.
-- expect: clean
SELECT STREAM * FROM Orders WHERE units > 50
