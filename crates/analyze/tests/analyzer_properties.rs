//! Property tests for the analyzer: over generated *valid, well-partitioned*
//! queries, analysis must never panic, never emit an Error-severity
//! diagnostic on the planner's own output, and must be deterministic.

use proptest::prelude::*;
use samzasql_analyze::corpus::paper_catalog;
use samzasql_analyze::{analyze_planned, analyze_sql, Severity};
use samzasql_planner::Planner;

/// Valid-by-construction queries over the paper catalog, restricted to
/// shapes the planner compiles into correctly partitioned plans: filters,
/// projections, TUMBLE/HOP aggregates keyed by the partition key, bounded
/// OVER windows partitioned by the partition key, and equi joins on the
/// relation's key.
fn clean_sql_strategy() -> impl Strategy<Value = String> {
    let num_col = prop_oneof![Just("productId"), Just("units")];
    let projection = prop_oneof![
        Just("rowtime, productId, units"),
        Just("units, productId, rowtime"),
        Just("productId, units"),
        Just("rowtime, productId"),
        Just("*"),
    ];
    let filter = (projection, num_col, -1000i64..1000, any::<bool>()).prop_map(
        |(cols, col, n, with_pred)| {
            let mut q = format!("SELECT STREAM {cols} FROM Orders");
            if with_pred {
                q.push_str(&format!(" WHERE {col} > {n}"));
            }
            q
        },
    );
    let tumble = (1i64..120, any::<bool>()).prop_map(|(secs, count_star)| {
        let agg = if count_star { "COUNT(*)" } else { "SUM(units)" };
        format!(
            "SELECT STREAM productId, {agg} AS agg FROM Orders \
             GROUP BY TUMBLE(rowtime, INTERVAL '{secs}' SECOND), productId"
        )
    });
    // emit <= retain so no gap warning escalates anywhere near an error.
    let hop = (1i64..60, 0i64..60).prop_map(|(emit, extra)| {
        let retain = emit + extra;
        format!(
            "SELECT STREAM productId, COUNT(units) AS c FROM Orders \
             GROUP BY HOP(rowtime, INTERVAL '{emit}' SECOND, INTERVAL '{retain}' SECOND), \
             productId"
        )
    });
    let sliding = (1i64..30,).prop_map(|(mins,)| {
        format!(
            "SELECT STREAM rowtime, productId, units, \
             SUM(units) OVER (PARTITION BY productId ORDER BY rowtime \
             RANGE INTERVAL '{mins}' MINUTE PRECEDING) AS total FROM Orders"
        )
    });
    let join = (any::<bool>(), any::<bool>()).prop_map(|(flip, rekey)| {
        // `rekey` joins on a non-key stream column, forcing the planner to
        // insert a Repartition — still clean after analysis.
        let stream_col = if rekey { "units" } else { "productId" };
        let cond = if flip {
            format!("Products.productId = Orders.{stream_col}")
        } else {
            format!("Orders.{stream_col} = Products.productId")
        };
        format!(
            "SELECT STREAM Orders.rowtime, Orders.productId, Orders.units, \
             Products.name, Products.supplierId FROM Orders JOIN Products ON {cond}"
        )
    });
    prop_oneof![filter, tumble, hop, sliding, join]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The analyzer never emits an Error on a plan the planner itself
    /// produced from a valid, well-partitioned query — the gate must not
    /// reject correct plans.
    #[test]
    fn analyzer_accepts_planner_output(sql in clean_sql_strategy()) {
        let planner = Planner::new(paper_catalog());
        let planned = planner.plan_unchecked(&sql).unwrap();
        let diags = analyze_planned(&planned, planner.catalog());
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        prop_assert!(
            errors.is_empty(),
            "false positive on {sql}:\n{}",
            diags.render()
        );
    }

    /// Analysis never panics, renders, and is deterministic — even on
    /// queries that fail planning (those route through SSQL1xx codes).
    #[test]
    fn analysis_is_total_and_deterministic(sql in clean_sql_strategy(), mangle in any::<bool>()) {
        let planner = Planner::new(paper_catalog());
        // Half the cases are corrupted into likely-invalid statements to
        // exercise the front-end error path.
        let sql = if mangle { sql.replace("FROM", "FORM") } else { sql };
        let first = analyze_sql(&planner, &sql);
        let second = analyze_sql(&planner, &sql);
        prop_assert_eq!(first.codes(), second.codes());
        let rendered = first.render();
        prop_assert!(first.is_empty() || !rendered.is_empty());
        for d in first.iter() {
            prop_assert!(d.span.end <= sql.len());
            prop_assert!(d.span.start <= d.span.end);
        }
    }
}
