//! Golden-diagnostics corpus: every `.sql` fixture under `tests/corpus/`
//! declares the exact diagnostic codes it must produce (`-- expect:`), and
//! the paper's four canonical query shapes must analyze completely clean.

use samzasql_analyze::corpus::{self, paper_planner};
use samzasql_analyze::{analyze_sql, codes, Severity};

#[test]
fn every_fixture_matches_its_expectation_header() {
    let planner = paper_planner();
    let results = corpus::run_corpus(&planner, &corpus::default_corpus_dir()).unwrap();
    assert!(
        results.len() >= 12,
        "corpus shrank: only {} fixtures",
        results.len()
    );
    for r in &results {
        assert!(
            r.matches(),
            "{}: expected [{}], got [{}]\n{}",
            r.path.display(),
            r.expected.join(", "),
            r.actual.join(", "),
            r.diagnostics.render()
        );
    }
}

#[test]
fn paper_canonical_queries_are_clean() {
    let planner = paper_planner();
    let results = corpus::run_corpus(&planner, &corpus::default_corpus_dir()).unwrap();
    let clean: Vec<_> = results
        .iter()
        .filter(|r| {
            r.path
                .file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("clean_"))
        })
        .collect();
    assert_eq!(clean.len(), 4, "the four paper shapes must be present");
    for r in clean {
        assert!(
            r.diagnostics.is_empty(),
            "{} must produce zero diagnostics, got:\n{}",
            r.path.display(),
            r.diagnostics.render()
        );
    }
}

#[test]
fn corpus_covers_each_front_line_pass() {
    let planner = paper_planner();
    let results = corpus::run_corpus(&planner, &corpus::default_corpus_dir()).unwrap();
    let all: Vec<String> = results.iter().flat_map(|r| r.actual.clone()).collect();
    for code in [
        codes::PARTITION_MISALIGNED,
        codes::UNBOUNDED_STATE,
        codes::WINDOW_SANITY,
        codes::DEAD_COLUMNS,
        codes::PARSE,
        codes::UNKNOWN_RELATION,
        codes::UNKNOWN_COLUMN,
    ] {
        assert!(
            all.iter().any(|c| c == code),
            "no fixture exercises {code}; corpus = {all:?}"
        );
    }
}

#[test]
fn seeded_corpus_fails_a_plain_error_gate() {
    // `plan-lint --deny` must exit non-zero on this corpus: the seeded-bug
    // fixtures carry Error-severity diagnostics.
    let planner = paper_planner();
    let results = corpus::run_corpus(&planner, &corpus::default_corpus_dir()).unwrap();
    assert!(
        results.iter().any(|r| r.diagnostics.has_errors()),
        "the corpus must contain Error-bearing fixtures for the deny gate"
    );
}

#[test]
fn diagnostics_carry_real_spans() {
    let planner = paper_planner();
    // Unknown column: the span must point exactly at the identifier.
    let d = analyze_sql(&planner, "SELECT STREAM quantity FROM Orders");
    let diag = d.iter().next().expect("one diagnostic");
    assert_eq!(diag.code, codes::UNKNOWN_COLUMN);
    assert_eq!(diag.severity, Severity::Error);
    assert_eq!(&d.sql()[diag.span.start..diag.span.end], "quantity");
    let rendered = d.render();
    assert!(rendered.contains("^^^^^^^^"), "{rendered}");

    // Parse error: line/column converts to a span at the offending token.
    let d = analyze_sql(&planner, "SELECT STREAM units\nFORM Orders");
    let diag = d.iter().next().expect("one diagnostic");
    assert_eq!(diag.code, codes::PARSE);
    assert!(diag.span.start > 0, "parse errors must not span byte 0..0");
    assert_eq!(diag.span.line, 2, "error is on line 2");

    // Every planner error path yields a non-degenerate span.
    for sql in [
        "SELECT STREAM * FROM Nowhere",
        "SELECT DISTINCT * FROM Orders WHERE units > 'x'",
        "SELECT STREAM units + name FROM Orders JOIN Products ON Orders.productId = Products.productId",
    ] {
        let d = analyze_sql(&planner, sql);
        for diag in d.iter() {
            assert!(
                diag.span.end > diag.span.start,
                "{sql}: degenerate span {:?}",
                diag.span
            );
        }
    }
}

#[test]
fn json_rendering_is_one_object_per_line() {
    let planner = paper_planner();
    let d = analyze_sql(&planner, "SELECT STREAM rowtime, productId FROM Orders");
    let json = d.render_json();
    assert_eq!(json.trim().lines().count(), d.len());
    for line in json.trim().lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"span\""), "{line}");
    }
}
