//! Parse every SQL listing from the paper (§3, §5.1) and check the shapes
//! the planner depends on, plus round-trip printing stability.

use samzasql_parser::ast::*;
use samzasql_parser::interval::TimeUnit;
use samzasql_parser::printer::print_statement;
use samzasql_parser::{parse_statement, Statement};

fn parse(sql: &str) -> Statement {
    parse_statement(sql).unwrap_or_else(|e| panic!("failed to parse {sql:?}: {e}"))
}

fn query(sql: &str) -> Query {
    match parse(sql) {
        Statement::Query(q) => *q,
        other => panic!("expected query, got {other:?}"),
    }
}

/// Re-parsing the printed form must yield the same AST (print∘parse fixpoint).
fn assert_roundtrip(sql: &str) {
    let first = parse(sql);
    let printed = print_statement(&first);
    let second = parse_statement(&printed)
        .unwrap_or_else(|e| panic!("printed SQL failed to re-parse: {printed:?}: {e}"));
    assert_eq!(
        first, second,
        "round-trip changed the AST for {sql:?} -> {printed:?}"
    );
}

#[test]
fn listing1_select_all_from_stream() {
    let q = query("SELECT STREAM * FROM Orders");
    assert!(q.stream);
    assert_eq!(q.projections, vec![SelectItem::Wildcard]);
    assert_eq!(
        q.from,
        TableRef::Named {
            name: "Orders".into(),
            alias: None
        }
    );
    assert_roundtrip("SELECT STREAM * FROM Orders");
}

#[test]
fn listing2_filter_projection() {
    let sql = "SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 25";
    let q = query(sql);
    assert_eq!(q.projections.len(), 3);
    assert!(matches!(
        q.where_clause,
        Some(Expr::Binary {
            op: BinaryOp::Gt,
            ..
        })
    ));
    assert_roundtrip(sql);
}

#[test]
fn listing3_create_view_with_floor_and_aggregates() {
    let sql = "CREATE VIEW HourlyOrderTotals (rowtime, productId, c, su) AS \
               SELECT FLOOR(rowtime TO HOUR), productId, COUNT(*), SUM(units) \
               FROM Orders \
               GROUP BY FLOOR(rowtime TO HOUR), productId";
    match parse(sql) {
        Statement::CreateView {
            name,
            columns,
            query,
        } => {
            assert_eq!(name, "HourlyOrderTotals");
            assert_eq!(columns, vec!["rowtime", "productId", "c", "su"]);
            assert!(!query.stream);
            assert_eq!(query.group_by.len(), 2);
            assert!(matches!(
                &query.projections[0],
                SelectItem::Expr {
                    expr: Expr::FloorTo {
                        unit: TimeUnit::Hour,
                        ..
                    },
                    ..
                }
            ));
            assert!(matches!(
                &query.projections[2],
                SelectItem::Expr {
                    expr: Expr::CountStar,
                    ..
                }
            ));
        }
        other => panic!("expected view: {other:?}"),
    }
    assert_roundtrip(sql);
}

#[test]
fn listing3_view_consumer_query() {
    let sql = "SELECT STREAM rowtime, productId FROM HourlyOrderTotals WHERE c > 2 OR su > 10";
    let q = query(sql);
    assert!(matches!(
        q.where_clause,
        Some(Expr::Binary {
            op: BinaryOp::Or,
            ..
        })
    ));
    assert_roundtrip(sql);
}

#[test]
fn listing3_subquery_form() {
    let sql = "SELECT STREAM rowtime, productId FROM (\
               SELECT FLOOR(rowtime TO HOUR) AS rowtime, productId, \
               COUNT(*) AS c, SUM(units) AS su \
               FROM Orders GROUP BY FLOOR(rowtime TO HOUR), productId) \
               WHERE c > 2 OR su > 10";
    let q = query(sql);
    match &q.from {
        TableRef::Subquery {
            query: inner,
            alias,
        } => {
            assert!(alias.is_none());
            assert_eq!(inner.group_by.len(), 2);
            assert!(
                !inner.stream,
                "STREAM in subqueries has no effect / is absent here"
            );
        }
        other => panic!("expected subquery: {other:?}"),
    }
    assert_roundtrip(sql);
}

#[test]
fn listing4_tumbling_window() {
    let sql = "SELECT STREAM START(rowtime), COUNT(*) FROM Orders \
               GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)";
    let q = query(sql);
    assert_eq!(q.group_by.len(), 1);
    match &q.group_by[0] {
        Expr::Function { name, args, .. } => {
            assert_eq!(name, "TUMBLE");
            assert_eq!(args.len(), 2);
            assert!(matches!(
                args[1],
                Expr::Literal(Literal::Interval {
                    millis: 3_600_000,
                    ..
                })
            ));
        }
        other => panic!("expected TUMBLE: {other:?}"),
    }
    match &q.projections[0] {
        SelectItem::Expr {
            expr: Expr::Function { name, .. },
            ..
        } => assert_eq!(name, "START"),
        other => panic!("expected START(rowtime): {other:?}"),
    }
    assert_roundtrip(sql);
}

#[test]
fn listing5_hopping_window_with_alignment() {
    let sql = "SELECT STREAM START(rowtime), COUNT(*) FROM Orders \
               GROUP BY HOP(rowtime, INTERVAL '1:30' HOUR TO MINUTE, INTERVAL '2' HOUR, TIME '0:30')";
    let q = query(sql);
    match &q.group_by[0] {
        Expr::Function { name, args, .. } => {
            assert_eq!(name, "HOP");
            assert_eq!(args.len(), 4);
            // emit every 90 min
            assert!(matches!(
                args[1],
                Expr::Literal(Literal::Interval {
                    millis: 5_400_000,
                    ..
                })
            ));
            // retain 2 h
            assert!(matches!(
                args[2],
                Expr::Literal(Literal::Interval {
                    millis: 7_200_000,
                    ..
                })
            ));
            // align 30 min past the hour
            assert!(matches!(
                args[3],
                Expr::Literal(Literal::Time {
                    millis: 1_800_000,
                    ..
                })
            ));
        }
        other => panic!("expected HOP: {other:?}"),
    }
    assert_roundtrip(sql);
}

#[test]
fn listing6_sliding_window_analytic() {
    let sql = "SELECT STREAM rowtime, productId, units, \
               SUM(units) OVER (PARTITION BY productId ORDER BY rowtime \
               RANGE INTERVAL '1' HOUR PRECEDING) unitsLastHour FROM Orders";
    let q = query(sql);
    match &q.projections[3] {
        SelectItem::Expr {
            expr: Expr::Over { func, window },
            alias,
        } => {
            assert_eq!(alias.as_deref(), Some("unitsLastHour"));
            assert!(matches!(&**func, Expr::Function { name, .. } if name == "SUM"));
            assert_eq!(window.partition_by.len(), 1);
            assert_eq!(window.order_by.len(), 1);
            assert_eq!(window.units, FrameUnits::Range);
            match &window.start {
                FrameBound::Preceding(e) => assert!(matches!(
                    &**e,
                    Expr::Literal(Literal::Interval {
                        millis: 3_600_000,
                        ..
                    })
                )),
                other => panic!("expected interval frame: {other:?}"),
            }
        }
        other => panic!("expected OVER: {other:?}"),
    }
    assert_roundtrip(sql);
}

#[test]
fn listing7_stream_to_stream_window_join() {
    let sql = "SELECT STREAM \
               GREATEST(PacketsR1.rowtime, PacketsR2.rowtime) AS rowtime, \
               PacketsR1.sourcetime, PacketsR1.packetId, \
               PacketsR2.rowtime - PacketsR1.rowtime AS timeToTravel \
               FROM PacketsR1 JOIN PacketsR2 ON \
               PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND \
               AND PacketsR2.rowtime + INTERVAL '2' SECOND \
               AND PacketsR1.packetId = PacketsR2.packetId";
    let q = query(sql);
    match &q.from {
        TableRef::Join {
            kind: JoinKind::Inner,
            condition,
            ..
        } => {
            // Top of the condition is AND(BETWEEN(...), Eq(...)).
            match &**condition {
                Expr::Binary {
                    op: BinaryOp::And,
                    left,
                    right,
                } => {
                    assert!(matches!(&**left, Expr::Between { .. }));
                    assert!(matches!(
                        &**right,
                        Expr::Binary {
                            op: BinaryOp::Eq,
                            ..
                        }
                    ));
                }
                other => panic!("expected AND condition: {other:?}"),
            }
        }
        other => panic!("expected join: {other:?}"),
    }
    assert_roundtrip(sql);
}

#[test]
fn listing8_stream_to_relation_join() {
    let sql = "SELECT STREAM Orders.rowtime, Orders.orderId, Orders.productId, \
               Orders.units, Products.supplierId \
               FROM Orders JOIN Products ON Orders.productId = Products.productId";
    let q = query(sql);
    assert!(q.stream);
    match &q.from {
        TableRef::Join { left, right, .. } => {
            assert_eq!(left.binding_name(), Some("Orders"));
            assert_eq!(right.binding_name(), Some("Products"));
        }
        other => panic!("expected join: {other:?}"),
    }
    assert_roundtrip(sql);
}

#[test]
fn evaluation_filter_query() {
    let q = query("SELECT STREAM * FROM Orders WHERE units > 50");
    assert!(q.stream && q.where_clause.is_some());
}

#[test]
fn evaluation_sliding_window_query() {
    let sql = "SELECT STREAM rowtime, productId, units, \
               SUM(units) OVER (PARTITION BY productId ORDER BY rowtime \
               RANGE INTERVAL '5' MINUTE PRECEDING) unitsLastFiveMinutes FROM Orders";
    let q = query(sql);
    assert_eq!(q.projections.len(), 4);
    assert_roundtrip(sql);
}

// ------------------------------------------------------- dialect behaviours

#[test]
fn having_clause_parses() {
    let sql = "SELECT productId, COUNT(*) FROM Orders GROUP BY productId HAVING COUNT(*) > 2";
    let q = query(sql);
    assert!(q.having.is_some());
    assert_roundtrip(sql);
}

#[test]
fn explain_statement() {
    match parse("EXPLAIN SELECT STREAM * FROM Orders") {
        Statement::Explain(q) => assert!(q.stream),
        other => panic!("expected explain: {other:?}"),
    }
}

#[test]
fn case_expression() {
    let sql = "SELECT CASE WHEN units > 10 THEN 'big' ELSE 'small' END FROM Orders";
    let q = query(sql);
    assert!(matches!(
        &q.projections[0],
        SelectItem::Expr {
            expr: Expr::Case { .. },
            ..
        }
    ));
    assert_roundtrip(sql);
}

#[test]
fn operator_precedence() {
    use samzasql_parser::parse_expression;
    // a + b * c parses as a + (b * c)
    let e = parse_expression("a + b * c").unwrap();
    match e {
        Expr::Binary {
            op: BinaryOp::Plus,
            right,
            ..
        } => {
            assert!(matches!(
                *right,
                Expr::Binary {
                    op: BinaryOp::Multiply,
                    ..
                }
            ))
        }
        other => panic!("{other:?}"),
    }
    // NOT binds tighter than AND
    let e = parse_expression("NOT a AND b").unwrap();
    assert!(matches!(
        e,
        Expr::Binary {
            op: BinaryOp::And,
            ..
        }
    ));
    // comparison binds tighter than AND, AND tighter than OR
    let e = parse_expression("a = 1 OR b = 2 AND c = 3").unwrap();
    match e {
        Expr::Binary {
            op: BinaryOp::Or,
            right,
            ..
        } => {
            assert!(matches!(
                *right,
                Expr::Binary {
                    op: BinaryOp::And,
                    ..
                }
            ))
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn qualified_wildcard() {
    let q = query("SELECT Orders.* FROM Orders");
    assert_eq!(
        q.projections,
        vec![SelectItem::QualifiedWildcard("Orders".into())]
    );
}

#[test]
fn table_alias_forms() {
    let q = query("SELECT o.units FROM Orders AS o");
    assert_eq!(
        q.from,
        TableRef::Named {
            name: "Orders".into(),
            alias: Some("o".into())
        }
    );
    let q = query("SELECT o.units FROM Orders o");
    assert_eq!(
        q.from,
        TableRef::Named {
            name: "Orders".into(),
            alias: Some("o".into())
        }
    );
}

#[test]
fn rows_frame_tuple_domain_window() {
    let sql = "SELECT SUM(units) OVER (PARTITION BY productId ORDER BY rowtime \
               ROWS 10 PRECEDING) FROM Orders";
    let q = query(sql);
    match &q.projections[0] {
        SelectItem::Expr {
            expr: Expr::Over { window, .. },
            ..
        } => {
            assert_eq!(window.units, FrameUnits::Rows);
        }
        other => panic!("{other:?}"),
    }
    assert_roundtrip(sql);
}

#[test]
fn left_join_parses() {
    let sql = "SELECT STREAM a.x FROM A a LEFT JOIN B b ON a.k = b.k";
    let q = query(sql);
    assert!(matches!(
        q.from,
        TableRef::Join {
            kind: JoinKind::Left,
            ..
        }
    ));
    assert_roundtrip(sql);
}

#[test]
fn order_by_and_limit_for_historical_queries() {
    let sql = "SELECT units FROM Orders ORDER BY rowtime DESC LIMIT 10";
    let q = query(sql);
    assert!(!q.stream);
    assert_eq!(q.order_by.len(), 1);
    assert!(!q.order_by[0].1, "DESC");
    assert_eq!(q.limit, Some(10));
    assert_roundtrip(sql);
}

#[test]
fn errors_carry_positions() {
    let err = parse_statement("SELECT STREAM FROM Orders").unwrap_err();
    assert!(err.line >= 1 && err.column > 1, "{err}");
    let err = parse_statement("SELECT * Orders").unwrap_err();
    assert!(err.to_string().contains("expected"), "{err}");
}

#[test]
fn unsupported_subquery_forms_are_explicit_errors() {
    assert!(parse_statement("SELECT * FROM Orders WHERE EXISTS (SELECT 1 FROM X)").is_err());
}

#[test]
fn end_keyword_doubles_as_window_bound_aggregate() {
    // END(ts) from §3.6 must parse even though END also closes CASE.
    let sql = "SELECT STREAM START(rowtime), END(rowtime), COUNT(*) FROM Orders \
               GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)";
    let q = query(sql);
    match &q.projections[1] {
        SelectItem::Expr {
            expr: Expr::Function { name, args, .. },
            ..
        } => {
            assert_eq!(name, "END");
            assert_eq!(args.len(), 1);
        }
        other => panic!("{other:?}"),
    }
    assert_roundtrip(sql);
}

#[test]
fn not_between() {
    use samzasql_parser::parse_expression;
    let e = parse_expression("x NOT BETWEEN 1 AND 5").unwrap();
    assert!(matches!(e, Expr::Between { negated: true, .. }));
}

#[test]
fn is_null_forms() {
    use samzasql_parser::parse_expression;
    assert!(matches!(
        parse_expression("x IS NULL").unwrap(),
        Expr::IsNull { negated: false, .. }
    ));
    assert!(matches!(
        parse_expression("x IS NOT NULL").unwrap(),
        Expr::IsNull { negated: true, .. }
    ));
}

#[test]
fn cast_expression() {
    use samzasql_parser::parse_expression;
    match parse_expression("CAST(units AS bigint)").unwrap() {
        Expr::Cast { type_name, .. } => assert_eq!(type_name, "bigint"),
        other => panic!("{other:?}"),
    }
}
