//! Property tests for the parser: print∘parse is the identity on generated
//! queries, and the lexer/parser never panic on arbitrary input.

use proptest::prelude::*;
use samzasql_parser::printer::print_statement;
use samzasql_parser::{parse_statement, Statement};

/// Generate random (valid) SELECT queries from a small grammar.
fn query_strategy() -> impl Strategy<Value = String> {
    let ident = prop_oneof![
        Just("Orders".to_string()),
        Just("rowtime".to_string()),
        Just("productId".to_string()),
        Just("units".to_string()),
        Just("orderId".to_string()),
    ];
    let atom = prop_oneof![
        ident.clone(),
        (-1000i64..1000).prop_map(|n| n.to_string()),
        Just("'text'".to_string()),
        Just("TRUE".to_string()),
        Just("NULL".to_string()),
        Just("INTERVAL '5' MINUTE".to_string()),
    ];
    // Arithmetic-only expressions: used both in projections and (compared
    // against 0) in WHERE, so no chained comparisons are generated.
    let expr = (
        atom.clone(),
        prop_oneof![Just("+"), Just("-"), Just("*")],
        atom,
    )
        .prop_map(|(l, op, r)| format!("{l} {op} {r}"));
    let projection = prop::collection::vec(
        prop_oneof![
            ident.clone().prop_map(|i| i.to_string()),
            expr.clone().prop_map(|e| format!("{e} AS x")),
            Just("COUNT(*) AS c".to_string()),
        ],
        1..4,
    )
    .prop_map(|items| items.join(", "));
    (
        any::<bool>(),
        projection,
        prop::option::of(expr),
        any::<bool>(),
    )
        .prop_map(|(stream, proj, where_clause, group)| {
            let mut q = String::from("SELECT ");
            if stream && !group {
                q.push_str("STREAM ");
            }
            if group {
                q = "SELECT productId, COUNT(*) AS c".to_string();
            } else {
                q.push_str(&proj);
            }
            q.push_str(" FROM Orders");
            if let Some(w) = where_clause {
                q.push_str(&format!(" WHERE {w} > 0"));
            }
            if group {
                q.push_str(" GROUP BY productId");
            }
            q
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print(parse(q)) re-parses to the same AST.
    #[test]
    fn print_parse_fixpoint(q in query_strategy()) {
        let first: Statement = parse_statement(&q).unwrap();
        let printed = print_statement(&first);
        let second = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("printed form failed to parse: {printed:?}: {e}"));
        prop_assert_eq!(first, second);
    }

    /// The parser returns Ok or Err but never panics, on arbitrary ASCII.
    #[test]
    fn parser_never_panics_on_ascii(input in "[ -~]{0,200}") {
        let _ = parse_statement(&input);
    }

    /// Nor on arbitrary unicode.
    #[test]
    fn parser_never_panics_on_unicode(input in "\\PC{0,100}") {
        let _ = parse_statement(&input);
    }

    /// Keyword case-insensitivity: upper/lower/mixed case parse identically
    /// (identifiers preserved, keywords normalized).
    #[test]
    fn keyword_case_insensitive(upper in any::<bool>()) {
        let sql = if upper {
            "SELECT STREAM ROWTIME FROM Orders WHERE UNITS > 50"
        } else {
            "select stream ROWTIME from Orders where UNITS > 50"
        };
        let stmt = parse_statement(sql).unwrap();
        prop_assert!(stmt.as_query().unwrap().stream);
    }
}
