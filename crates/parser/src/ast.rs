//! Abstract syntax tree for the SamzaSQL dialect.

use crate::interval::TimeUnit;

/// A parsed top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A (possibly streaming) query.
    Query(Box<Query>),
    /// `CREATE VIEW name [(col, …)] AS query` (§3.5).
    CreateView {
        name: String,
        columns: Vec<String>,
        query: Box<Query>,
    },
    /// `EXPLAIN query` — surfaced by the shell to print plans.
    Explain(Box<Query>),
}

impl Statement {
    /// The inner query, when this statement has one.
    pub fn as_query(&self) -> Option<&Query> {
        match self {
            Statement::Query(q) | Statement::Explain(q) => Some(q),
            Statement::CreateView { query, .. } => Some(query),
        }
    }
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `SELECT STREAM …` — continuous query over arriving tuples (§3.3).
    pub stream: bool,
    /// `SELECT DISTINCT …`.
    pub distinct: bool,
    pub projections: Vec<SelectItem>,
    pub from: TableRef,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    /// `ORDER BY` items (expr, ascending).
    pub order_by: Vec<(Expr, bool)>,
    /// `LIMIT n` — only meaningful for non-stream (historical) queries.
    pub limit: Option<u64>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `rel.*`
    QualifiedWildcard(String),
    /// An expression with an optional alias.
    Expr { expr: Expr, alias: Option<String> },
}

/// Join types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Full,
}

/// A FROM-clause relation.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named stream, table, or view.
    Named { name: String, alias: Option<String> },
    /// A parenthesized subquery with an optional alias.
    Subquery {
        query: Box<Query>,
        alias: Option<String>,
    },
    /// A join; window bounds for stream-to-stream joins live inside
    /// `condition` (§3.8.1).
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        condition: Box<Expr>,
    },
}

impl TableRef {
    /// The effective name this relation binds in scope.
    pub fn binding_name(&self) -> Option<&str> {
        match self {
            TableRef::Named { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Subquery { alias, .. } => alias.as_deref(),
            TableRef::Join { .. } => None,
        }
    }
}

/// Binary operators in precedence order (lowest first is OR).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Or,
    And,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    Multiply,
    Divide,
    Modulo,
    Like,
}

impl BinaryOp {
    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Or => "OR",
            BinaryOp::And => "AND",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Multiply => "*",
            BinaryOp::Divide => "/",
            BinaryOp::Modulo => "%",
            BinaryOp::Like => "LIKE",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Not,
    Neg,
}

/// Literal values.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Int(i64),
    Decimal(f64),
    String(String),
    Bool(bool),
    Null,
    /// Interval normalized to milliseconds, with its source unit preserved
    /// for printing.
    Interval {
        millis: i64,
        from: TimeUnit,
        to: Option<TimeUnit>,
        text: String,
    },
    /// TIME literal normalized to milliseconds past midnight.
    Time {
        millis: i64,
        text: String,
    },
}

/// A window frame bound for OVER clauses.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameBound {
    /// `UNBOUNDED PRECEDING`
    UnboundedPreceding,
    /// `<expr> PRECEDING` — for RANGE frames the expr is typically an
    /// interval (time window); for ROWS a count (tuple window).
    Preceding(Box<Expr>),
    /// `CURRENT ROW`
    CurrentRow,
}

/// Frame unit: time-domain or tuple-domain windows (§3.7 "Grouping of rows is
/// done based on a window expressed over the time domain or tuple domain").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameUnits {
    Range,
    Rows,
}

/// An OVER window specification.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSpec {
    pub partition_by: Vec<Expr>,
    pub order_by: Vec<(Expr, bool)>,
    pub units: FrameUnits,
    pub start: FrameBound,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Possibly qualified column reference: `units` or `Orders.units`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Literal(Literal),
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    /// Function call: scalar (`GREATEST`), aggregate (`SUM`, `COUNT`,
    /// `START`, `END`), or windowing (`TUMBLE`, `HOP`, `FLOOR(x TO unit)`).
    Function {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
    },
    /// `COUNT(*)`.
    CountStar,
    /// `FLOOR(expr TO unit)` — time rounding (§3.5 example).
    FloorTo {
        expr: Box<Expr>,
        unit: TimeUnit,
    },
    /// Analytic function over a window: `SUM(units) OVER (…)` (§3.7).
    Over {
        func: Box<Expr>,
        window: WindowSpec,
    },
    /// `expr BETWEEN low AND high` (possibly `NOT BETWEEN`).
    Between {
        expr: Box<Expr>,
        negated: bool,
        low: Box<Expr>,
        high: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// `CASE WHEN … THEN … [ELSE …] END`.
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_result: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type-name)`.
    Cast {
        expr: Box<Expr>,
        type_name: String,
    },
    /// Parenthesized scalar subquery is out of dialect scope; `EXISTS` and
    /// `IN` likewise — kept as explicit unsupported markers by the parser.
    Nested(Box<Expr>),
}

impl Expr {
    /// Shorthand for an unqualified column.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_string(),
        }
    }

    /// Shorthand for a qualified column.
    pub fn qcol(qualifier: &str, name: &str) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.to_string()),
            name: name.to_string(),
        }
    }

    /// Walk the expression tree, calling `f` on every node (pre-order).
    pub fn visit<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Unary { expr, .. }
            | Expr::FloorTo { expr, .. }
            | Expr::IsNull { expr, .. }
            | Expr::Cast { expr, .. }
            | Expr::Nested(expr) => expr.visit(f),
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Over { func, window } => {
                func.visit(f);
                for p in &window.partition_by {
                    p.visit(f);
                }
                for (o, _) in &window.order_by {
                    o.visit(f);
                }
                if let FrameBound::Preceding(e) = &window.start {
                    e.visit(f);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            Expr::Case {
                operand,
                branches,
                else_result,
            } => {
                if let Some(op) = operand {
                    op.visit(f);
                }
                for (w, t) in branches {
                    w.visit(f);
                    t.visit(f);
                }
                if let Some(e) = else_result {
                    e.visit(f);
                }
            }
            Expr::Column { .. } | Expr::Literal(_) | Expr::CountStar => {}
        }
    }

    /// All column references in the expression.
    pub fn columns(&self) -> Vec<(Option<&str>, &str)> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Column { qualifier, name } = e {
                out.push((qualifier.as_deref(), name.as_str()));
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visit_reaches_all_columns() {
        let e = Expr::Binary {
            left: Box::new(Expr::col("a")),
            op: BinaryOp::Plus,
            right: Box::new(Expr::Function {
                name: "GREATEST".into(),
                args: vec![Expr::qcol("t", "b"), Expr::col("c")],
                distinct: false,
            }),
        };
        let cols = e.columns();
        assert_eq!(cols, vec![(None, "a"), (Some("t"), "b"), (None, "c")]);
    }

    #[test]
    fn binding_names() {
        let named = TableRef::Named {
            name: "Orders".into(),
            alias: Some("o".into()),
        };
        assert_eq!(named.binding_name(), Some("o"));
        let plain = TableRef::Named {
            name: "Orders".into(),
            alias: None,
        };
        assert_eq!(plain.binding_name(), Some("Orders"));
    }
}
