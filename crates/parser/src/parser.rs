//! Recursive-descent parser for the SamzaSQL dialect.

use crate::ast::*;
use crate::error::{ParseError, Result};
use crate::interval::{parse_interval, parse_time, TimeUnit};
use crate::lexer::tokenize;
use crate::token::{Keyword, SpannedToken, Token};

/// Parse a single statement (a trailing semicolon is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.statement()?;
    p.accept(&Token::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a standalone scalar expression (used by tests and the shell).
pub fn parse_expression(sql: &str) -> Result<Expr> {
    let mut p = Parser::new(sql)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// The parser state: a token buffer and a cursor.
pub struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    /// Tokenize and wrap.
    pub fn new(sql: &str) -> Result<Parser> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].token
    }

    fn peek_at(&self, n: usize) -> &Token {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].token
    }

    fn here(&self) -> (u32, u32) {
        let t = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        (t.line, t.column)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .token
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        let (line, column) = self.here();
        ParseError::new(msg, line, column)
    }

    fn accept(&mut self, token: &Token) -> bool {
        if self.peek() == token {
            self.bump();
            true
        } else {
            false
        }
    }

    fn accept_kw(&mut self, kw: Keyword) -> bool {
        self.accept(&Token::Keyword(kw))
    }

    fn expect(&mut self, token: &Token) -> Result<()> {
        if self.accept(token) {
            Ok(())
        } else {
            Err(self.error(format!("expected {token}, found {}", self.peek())))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<()> {
        self.expect(&Token::Keyword(kw))
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            Err(self.error(format!("unexpected trailing input: {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    // ------------------------------------------------------------ statements

    /// Parse one statement.
    pub fn statement(&mut self) -> Result<Statement> {
        if self.accept_kw(Keyword::Explain) {
            return Ok(Statement::Explain(Box::new(self.query()?)));
        }
        if self.accept_kw(Keyword::Create) {
            self.expect_kw(Keyword::View)?;
            let name = self.ident()?;
            let mut columns = Vec::new();
            if self.accept(&Token::LParen) {
                loop {
                    columns.push(self.ident()?);
                    if !self.accept(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            }
            self.expect_kw(Keyword::As)?;
            let query = Box::new(self.query()?);
            return Ok(Statement::CreateView {
                name,
                columns,
                query,
            });
        }
        Ok(Statement::Query(Box::new(self.query()?)))
    }

    /// Parse a SELECT query.
    pub fn query(&mut self) -> Result<Query> {
        self.expect_kw(Keyword::Select)?;
        let stream = self.accept_kw(Keyword::Stream);
        let distinct = if self.accept_kw(Keyword::Distinct) {
            true
        } else {
            self.accept_kw(Keyword::All);
            false
        };
        let mut projections = vec![self.select_item()?];
        while self.accept(&Token::Comma) {
            projections.push(self.select_item()?);
        }
        self.expect_kw(Keyword::From)?;
        let from = self.table_ref()?;
        let where_clause = if self.accept_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.accept_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            group_by.push(self.expr()?);
            while self.accept(&Token::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.accept_kw(Keyword::Having) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.accept_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let e = self.expr()?;
                let asc = if self.accept_kw(Keyword::Desc) {
                    false
                } else {
                    self.accept_kw(Keyword::Asc);
                    true
                };
                order_by.push((e, asc));
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.accept_kw(Keyword::Limit) {
            match self.bump() {
                Token::Number(n) if n >= 0 => Some(n as u64),
                other => return Err(self.error(format!("expected LIMIT count, found {other}"))),
            }
        } else {
            None
        };
        Ok(Query {
            stream,
            distinct,
            projections,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.accept(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // rel.* — identifier, dot, star.
        if matches!(self.peek(), Token::Ident(_))
            && matches!(self.peek_at(1), Token::Dot)
            && matches!(self.peek_at(2), Token::Star)
        {
            let rel = self.ident()?;
            self.bump(); // dot
            self.bump(); // star
            return Ok(SelectItem::QualifiedWildcard(rel));
        }
        let expr = self.expr()?;
        let alias = if self.accept_kw(Keyword::As) {
            Some(self.ident()?)
        } else if let Token::Ident(_) = self.peek() {
            // Bare alias (e.g. `… unitsLastHour`).
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    // ----------------------------------------------------------- table refs

    fn table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.table_primary()?;
        loop {
            let kind = if self.accept_kw(Keyword::Join) || self.accept_kw(Keyword::Inner) {
                // `INNER` may be followed by JOIN; plain JOIN already consumed.
                if matches!(
                    self.tokens[self.pos.saturating_sub(1)].token,
                    Token::Keyword(Keyword::Inner)
                ) {
                    self.expect_kw(Keyword::Join)?;
                }
                JoinKind::Inner
            } else if self.accept_kw(Keyword::Left) {
                self.accept_kw(Keyword::Outer);
                self.expect_kw(Keyword::Join)?;
                JoinKind::Left
            } else if self.accept_kw(Keyword::Right) {
                self.accept_kw(Keyword::Outer);
                self.expect_kw(Keyword::Join)?;
                JoinKind::Right
            } else if self.accept_kw(Keyword::Full) {
                self.accept_kw(Keyword::Outer);
                self.expect_kw(Keyword::Join)?;
                JoinKind::Full
            } else {
                return Ok(left);
            };
            let right = self.table_primary()?;
            self.expect_kw(Keyword::On)?;
            let condition = Box::new(self.expr()?);
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                condition,
            };
        }
    }

    fn table_primary(&mut self) -> Result<TableRef> {
        if self.accept(&Token::LParen) {
            let query = Box::new(self.query()?);
            self.expect(&Token::RParen)?;
            let alias = if self.accept_kw(Keyword::As) {
                Some(self.ident()?)
            } else if let Token::Ident(_) = self.peek() {
                Some(self.ident()?)
            } else {
                None
            };
            return Ok(TableRef::Subquery { query, alias });
        }
        let name = self.ident()?;
        let alias = if self.accept_kw(Keyword::As) {
            Some(self.ident()?)
        } else if let Token::Ident(_) = self.peek() {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef::Named { name, alias })
    }

    // ---------------------------------------------------------- expressions

    /// Parse an expression (entry at OR precedence).
    pub fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.accept_kw(Keyword::Or) {
            let right = self.and_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.accept_kw(Keyword::And) {
            let right = self.not_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.accept_kw(Keyword::Not) {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // BETWEEN / NOT BETWEEN / IS [NOT] NULL / LIKE
        if self.accept_kw(Keyword::Between) {
            let low = self.additive()?;
            self.expect_kw(Keyword::And)?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                negated: false,
                low: Box::new(low),
                high: Box::new(high),
            });
        }
        if matches!(self.peek(), Token::Keyword(Keyword::Not))
            && matches!(self.peek_at(1), Token::Keyword(Keyword::Between))
        {
            self.bump();
            self.bump();
            let low = self.additive()?;
            self.expect_kw(Keyword::And)?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                negated: true,
                low: Box::new(low),
                high: Box::new(high),
            });
        }
        if self.accept_kw(Keyword::Is) {
            let negated = self.accept_kw(Keyword::Not);
            self.expect_kw(Keyword::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        if self.accept_kw(Keyword::Like) {
            let right = self.additive()?;
            return Ok(Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Like,
                right: Box::new(right),
            });
        }
        let op = match self.peek() {
            Token::Eq => BinaryOp::Eq,
            Token::NotEq => BinaryOp::NotEq,
            Token::Lt => BinaryOp::Lt,
            Token::LtEq => BinaryOp::LtEq,
            Token::Gt => BinaryOp::Gt,
            Token::GtEq => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.additive()?;
        Ok(Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        })
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinaryOp::Plus,
                Token::Minus => BinaryOp::Minus,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinaryOp::Multiply,
                Token::Slash => BinaryOp::Divide,
                Token::Percent => BinaryOp::Modulo,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.accept(&Token::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        if self.accept(&Token::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        let (line, col) = self.here();
        match self.peek().clone() {
            Token::Number(n) => {
                self.bump();
                Ok(Expr::Literal(Literal::Int(n)))
            }
            Token::Decimal(d) => {
                self.bump();
                Ok(Expr::Literal(Literal::Decimal(d)))
            }
            Token::String(s) => {
                self.bump();
                Ok(Expr::Literal(Literal::String(s)))
            }
            Token::Keyword(Keyword::True) => {
                self.bump();
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            Token::Keyword(Keyword::False) => {
                self.bump();
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            Token::Keyword(Keyword::Null) => {
                self.bump();
                Ok(Expr::Literal(Literal::Null))
            }
            Token::Keyword(Keyword::Interval) => {
                self.bump();
                let text = match self.bump() {
                    Token::String(s) => s,
                    other => {
                        return Err(self.error(format!("expected interval string, found {other}")))
                    }
                };
                let from = self.time_unit()?;
                let to = if self.accept_kw(Keyword::To) {
                    Some(self.time_unit()?)
                } else {
                    None
                };
                let millis = parse_interval(&text, from, to, line, col)?;
                Ok(Expr::Literal(Literal::Interval {
                    millis,
                    from,
                    to,
                    text,
                }))
            }
            Token::Keyword(Keyword::Time) => {
                self.bump();
                let text = match self.bump() {
                    Token::String(s) => s,
                    other => return Err(self.error(format!("expected TIME string, found {other}"))),
                };
                let millis = parse_time(&text, line, col)?;
                Ok(Expr::Literal(Literal::Time { millis, text }))
            }
            Token::Keyword(Keyword::Case) => self.case_expr(),
            Token::Keyword(Keyword::Cast) => {
                self.bump();
                self.expect(&Token::LParen)?;
                let expr = self.expr()?;
                self.expect_kw(Keyword::As)?;
                let type_name = self.ident()?;
                self.expect(&Token::RParen)?;
                Ok(Expr::Cast {
                    expr: Box::new(expr),
                    type_name,
                })
            }
            Token::Keyword(Keyword::Exists) | Token::Keyword(Keyword::In) => {
                Err(self.error("EXISTS/IN subqueries are not supported in this dialect"))
            }
            // END is a keyword (CASE … END) but the paper also defines an
            // END(ts) aggregate for window bounds; disambiguate by the
            // following '('.
            Token::Keyword(Keyword::End) if matches!(self.peek_at(1), Token::LParen) => {
                self.bump();
                self.function_call("END".to_string())
            }
            Token::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(Expr::Nested(Box::new(inner)))
            }
            Token::Ident(name) => {
                self.bump();
                if self.peek() == &Token::LParen {
                    return self.function_call(name);
                }
                if self.accept(&Token::Dot) {
                    let field = self.ident()?;
                    return Ok(Expr::Column {
                        qualifier: Some(name),
                        name: field,
                    });
                }
                Ok(Expr::Column {
                    qualifier: None,
                    name,
                })
            }
            other => Err(self.error(format!("unexpected token in expression: {other}"))),
        }
    }

    fn time_unit(&mut self) -> Result<TimeUnit> {
        match self.bump() {
            Token::Keyword(k) => TimeUnit::from_keyword(k)
                .ok_or_else(|| self.error(format!("expected time unit, found {k:?}"))),
            other => Err(self.error(format!("expected time unit, found {other}"))),
        }
    }

    fn case_expr(&mut self) -> Result<Expr> {
        self.expect_kw(Keyword::Case)?;
        let operand = if matches!(self.peek(), Token::Keyword(Keyword::When)) {
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        let mut branches = Vec::new();
        while self.accept_kw(Keyword::When) {
            let cond = self.expr()?;
            self.expect_kw(Keyword::Then)?;
            let result = self.expr()?;
            branches.push((cond, result));
        }
        if branches.is_empty() {
            return Err(self.error("CASE requires at least one WHEN branch"));
        }
        let else_result = if self.accept_kw(Keyword::Else) {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw(Keyword::End)?;
        Ok(Expr::Case {
            operand,
            branches,
            else_result,
        })
    }

    fn function_call(&mut self, name: String) -> Result<Expr> {
        self.expect(&Token::LParen)?;
        // COUNT(*)
        if name.eq_ignore_ascii_case("count") && self.accept(&Token::Star) {
            self.expect(&Token::RParen)?;
            return self.maybe_over(Expr::CountStar);
        }
        let distinct = self.accept_kw(Keyword::Distinct);
        let mut args = Vec::new();
        if self.peek() != &Token::RParen {
            args.push(self.expr()?);
            // FLOOR(expr TO unit)
            if name.eq_ignore_ascii_case("floor") && self.accept_kw(Keyword::To) {
                let unit = self.time_unit()?;
                self.expect(&Token::RParen)?;
                return Ok(Expr::FloorTo {
                    expr: Box::new(args.remove(0)),
                    unit,
                });
            }
            while self.accept(&Token::Comma) {
                args.push(self.expr()?);
            }
        }
        self.expect(&Token::RParen)?;
        self.maybe_over(Expr::Function {
            name: name.to_uppercase(),
            args,
            distinct,
        })
    }

    fn maybe_over(&mut self, func: Expr) -> Result<Expr> {
        if !self.accept_kw(Keyword::Over) {
            return Ok(func);
        }
        self.expect(&Token::LParen)?;
        let mut partition_by = Vec::new();
        if self.accept_kw(Keyword::Partition) {
            self.expect_kw(Keyword::By)?;
            partition_by.push(self.expr()?);
            while self.accept(&Token::Comma) {
                partition_by.push(self.expr()?);
            }
        }
        let mut order_by = Vec::new();
        if self.accept_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let e = self.expr()?;
                let asc = if self.accept_kw(Keyword::Desc) {
                    false
                } else {
                    self.accept_kw(Keyword::Asc);
                    true
                };
                order_by.push((e, asc));
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
        }
        let units = if self.accept_kw(Keyword::Range) {
            FrameUnits::Range
        } else if self.accept_kw(Keyword::Rows) {
            FrameUnits::Rows
        } else {
            // No frame: default RANGE UNBOUNDED PRECEDING per SQL standard.
            self.expect(&Token::RParen)?;
            return Ok(Expr::Over {
                func: Box::new(func),
                window: WindowSpec {
                    partition_by,
                    order_by,
                    units: FrameUnits::Range,
                    start: FrameBound::UnboundedPreceding,
                },
            });
        };
        let start = if self.accept_kw(Keyword::Unbounded) {
            self.expect_kw(Keyword::Preceding)?;
            FrameBound::UnboundedPreceding
        } else if self.accept_kw(Keyword::Current) {
            self.expect_kw(Keyword::Row)?;
            FrameBound::CurrentRow
        } else {
            let e = self.expr()?;
            self.expect_kw(Keyword::Preceding)?;
            FrameBound::Preceding(Box::new(e))
        };
        self.expect(&Token::RParen)?;
        Ok(Expr::Over {
            func: Box::new(func),
            window: WindowSpec {
                partition_by,
                order_by,
                units,
                start,
            },
        })
    }
}
