//! Parse errors with source positions.

use std::fmt;

pub type Result<T> = std::result::Result<T, ParseError>;

/// A lexing or parsing failure, pointing at the offending position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub column: u32,
}

impl ParseError {
    pub fn new(message: impl Into<String>, line: u32, column: u32) -> Self {
        ParseError {
            message: message.into(),
            line,
            column,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new("unexpected token", 3, 14);
        assert_eq!(e.to_string(), "parse error at 3:14: unexpected token");
    }
}
