//! # samzasql-parser
//!
//! A SQL lexer and recursive-descent parser implementing the SamzaSQL dialect:
//! standard SQL plus the paper's streaming extensions (§3):
//!
//! * `SELECT STREAM …` — the primary extension; marks a continuous query.
//! * `GROUP BY TUMBLE(ts, emit)` / `HOP(ts, emit, retain[, align])` —
//!   hopping/tumbling windows, plus the `START`/`END` window-bound
//!   aggregates.
//! * Analytic functions with `OVER (PARTITION BY … ORDER BY … RANGE INTERVAL
//!   '5' MINUTE PRECEDING)` — sliding windows (§3.7).
//! * `INTERVAL '…' <unit> [TO <unit>]` and `TIME '…'` literals.
//! * `FLOOR(ts TO HOUR)` time-rounding syntax.
//! * `CREATE VIEW name [(cols)] AS query` (§3.5).
//! * Joins whose window bounds live in the join condition (`BETWEEN …
//!   PRECEDING/ FOLLOWING`-free; plain `BETWEEN x - INTERVAL … AND x +
//!   INTERVAL …`), per §3.8.
//!
//! The parser produces a plain AST (`ast` module); validation and planning
//! live in `samzasql-planner`.
//!
//! ```
//! use samzasql_parser::parse_statement;
//!
//! let stmt = parse_statement(
//!     "SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 25"
//! ).unwrap();
//! assert!(stmt.as_query().unwrap().stream);
//! ```

pub mod ast;
pub mod error;
pub mod interval;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod token;

pub use ast::{Expr, Literal, Query, SelectItem, Statement, TableRef};
pub use error::{ParseError, Result};
pub use parser::{parse_expression, parse_statement, Parser};
