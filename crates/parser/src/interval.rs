//! INTERVAL and TIME literal parsing.
//!
//! The dialect supports the forms the paper uses:
//!
//! * `INTERVAL '2' HOUR` — single-unit value
//! * `INTERVAL '1:30' HOUR TO MINUTE` — range form; the string carries one
//!   colon-separated field per unit between the bounds
//! * `INTERVAL '5' MINUTE`, `INTERVAL '2' SECOND`
//! * `TIME '0:30'` — time-of-day used as a window alignment offset
//!
//! All normalize to milliseconds.

use crate::error::{ParseError, Result};
use crate::token::Keyword;

/// A calendar/time unit usable in interval literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TimeUnit {
    Year,
    Month,
    Day,
    Hour,
    Minute,
    Second,
}

impl TimeUnit {
    /// Milliseconds per unit. Years/months use fixed civil approximations
    /// (365 d / 30 d), which is what Calcite's `INTERVAL` arithmetic does for
    /// sub-query windowing purposes.
    pub fn millis(self) -> i64 {
        match self {
            TimeUnit::Year => 365 * 24 * 3_600_000,
            TimeUnit::Month => 30 * 24 * 3_600_000,
            TimeUnit::Day => 24 * 3_600_000,
            TimeUnit::Hour => 3_600_000,
            TimeUnit::Minute => 60_000,
            TimeUnit::Second => 1_000,
        }
    }

    /// Map from a lexer keyword.
    pub fn from_keyword(k: Keyword) -> Option<TimeUnit> {
        Some(match k {
            Keyword::Year => TimeUnit::Year,
            Keyword::Month => TimeUnit::Month,
            Keyword::Day => TimeUnit::Day,
            Keyword::Hour => TimeUnit::Hour,
            Keyword::Minute => TimeUnit::Minute,
            Keyword::Second => TimeUnit::Second,
            _ => return None,
        })
    }

    /// The next-finer unit, used to walk `HOUR TO MINUTE` ranges.
    pub fn finer(self) -> Option<TimeUnit> {
        Some(match self {
            TimeUnit::Year => TimeUnit::Month,
            TimeUnit::Month => TimeUnit::Day,
            TimeUnit::Day => TimeUnit::Hour,
            TimeUnit::Hour => TimeUnit::Minute,
            TimeUnit::Minute => TimeUnit::Second,
            TimeUnit::Second => return None,
        })
    }

    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            TimeUnit::Year => "YEAR",
            TimeUnit::Month => "MONTH",
            TimeUnit::Day => "DAY",
            TimeUnit::Hour => "HOUR",
            TimeUnit::Minute => "MINUTE",
            TimeUnit::Second => "SECOND",
        }
    }
}

/// Parse the body of `INTERVAL '<text>' <from> [TO <to>]` to milliseconds.
pub fn parse_interval(
    text: &str,
    from: TimeUnit,
    to: Option<TimeUnit>,
    line: u32,
    col: u32,
) -> Result<i64> {
    let err = |msg: String| ParseError::new(msg, line, col);
    let (negative, body) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let to = to.unwrap_or(from);
    if to < from {
        return Err(err(format!(
            "interval range {} TO {} is inverted",
            from.name(),
            to.name()
        )));
    }
    // Collect the unit ladder from..=to.
    let mut units = vec![from];
    let mut u = from;
    while u != to {
        u = u
            .finer()
            .ok_or_else(|| err(format!("no unit finer than {}", u.name())))?;
        units.push(u);
    }
    // Fields: leading unit may also carry a fractional seconds part when the
    // finest unit is SECOND (e.g. '1.5' SECOND).
    let fields: Vec<&str> = body.split(':').collect();
    if fields.len() != units.len() {
        return Err(err(format!(
            "interval '{body}' has {} fields but {} units ({} TO {})",
            fields.len(),
            units.len(),
            from.name(),
            to.name()
        )));
    }
    let mut total: f64 = 0.0;
    for (field, unit) in fields.iter().zip(&units) {
        let v: f64 = field
            .parse()
            .map_err(|_| err(format!("invalid interval field {field:?}")))?;
        if v < 0.0 {
            return Err(err("interval fields must be non-negative".into()));
        }
        total += v * unit.millis() as f64;
    }
    let ms = total.round() as i64;
    Ok(if negative { -ms } else { ms })
}

/// Parse `TIME 'H:MM[:SS]'` to milliseconds past midnight.
pub fn parse_time(text: &str, line: u32, col: u32) -> Result<i64> {
    let err = |msg: String| ParseError::new(msg, line, col);
    let parts: Vec<&str> = text.split(':').collect();
    if parts.is_empty() || parts.len() > 3 {
        return Err(err(format!("invalid TIME literal '{text}'")));
    }
    let mut ms: i64 = 0;
    let scales = [3_600_000i64, 60_000, 1_000];
    for (i, p) in parts.iter().enumerate() {
        let v: i64 = p
            .parse()
            .map_err(|_| err(format!("invalid TIME field {p:?}")))?;
        if v < 0 {
            return Err(err("TIME fields must be non-negative".into()));
        }
        if i > 0 && v >= 60 {
            return Err(err(format!("TIME field {v} out of range")));
        }
        ms += v * scales[i];
    }
    Ok(ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(text: &str, from: TimeUnit, to: Option<TimeUnit>) -> i64 {
        parse_interval(text, from, to, 1, 1).unwrap()
    }

    #[test]
    fn single_unit_intervals() {
        assert_eq!(iv("2", TimeUnit::Hour, None), 2 * 3_600_000);
        assert_eq!(iv("5", TimeUnit::Minute, None), 300_000);
        assert_eq!(iv("2", TimeUnit::Second, None), 2_000);
        assert_eq!(iv("1", TimeUnit::Day, None), 86_400_000);
    }

    #[test]
    fn range_interval_hour_to_minute() {
        // The paper's Listing 5: INTERVAL '1:30' HOUR TO MINUTE = 90 min.
        assert_eq!(
            iv("1:30", TimeUnit::Hour, Some(TimeUnit::Minute)),
            90 * 60_000
        );
    }

    #[test]
    fn fractional_seconds() {
        assert_eq!(iv("1.5", TimeUnit::Second, None), 1_500);
    }

    #[test]
    fn negative_interval() {
        assert_eq!(iv("-2", TimeUnit::Hour, None), -2 * 3_600_000);
    }

    #[test]
    fn field_count_mismatch_rejected() {
        assert!(parse_interval("1:30", TimeUnit::Hour, None, 1, 1).is_err());
        assert!(parse_interval("1", TimeUnit::Hour, Some(TimeUnit::Minute), 1, 1).is_err());
    }

    #[test]
    fn inverted_range_rejected() {
        assert!(parse_interval("1:1", TimeUnit::Minute, Some(TimeUnit::Hour), 1, 1).is_err());
    }

    #[test]
    fn time_literals() {
        assert_eq!(parse_time("0:30", 1, 1).unwrap(), 30 * 60_000);
        assert_eq!(
            parse_time("2:15:30", 1, 1).unwrap(),
            2 * 3_600_000 + 15 * 60_000 + 30_000
        );
        assert!(parse_time("0:99", 1, 1).is_err());
        assert!(parse_time("a:b", 1, 1).is_err());
    }
}
