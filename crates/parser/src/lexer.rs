//! Hand-written SQL lexer.

use crate::error::{ParseError, Result};
use crate::token::{Keyword, SpannedToken, Token};

/// Tokenize `input` into a vector ending with an `Eof` token.
pub fn tokenize(input: &str) -> Result<Vec<SpannedToken>> {
    Lexer::new(input).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    column: u32,
    input: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            chars: input.chars().collect(),
            pos: 0,
            line: 1,
            column: 1,
            input,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.line, self.column)
    }

    fn run(mut self) -> Result<Vec<SpannedToken>> {
        let mut out = Vec::new();
        loop {
            self.skip_whitespace_and_comments()?;
            let (line, column) = (self.line, self.column);
            let Some(c) = self.peek() else {
                out.push(SpannedToken {
                    token: Token::Eof,
                    line,
                    column,
                });
                return Ok(out);
            };
            let token = match c {
                '(' => {
                    self.bump();
                    Token::LParen
                }
                ')' => {
                    self.bump();
                    Token::RParen
                }
                ',' => {
                    self.bump();
                    Token::Comma
                }
                '.' => {
                    self.bump();
                    Token::Dot
                }
                '*' => {
                    self.bump();
                    Token::Star
                }
                '+' => {
                    self.bump();
                    Token::Plus
                }
                '-' => {
                    self.bump();
                    Token::Minus
                }
                '/' => {
                    self.bump();
                    Token::Slash
                }
                '%' => {
                    self.bump();
                    Token::Percent
                }
                ';' => {
                    self.bump();
                    Token::Semicolon
                }
                '=' => {
                    self.bump();
                    Token::Eq
                }
                '<' => {
                    self.bump();
                    match self.peek() {
                        Some('=') => {
                            self.bump();
                            Token::LtEq
                        }
                        Some('>') => {
                            self.bump();
                            Token::NotEq
                        }
                        _ => Token::Lt,
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Token::GtEq
                    } else {
                        Token::Gt
                    }
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Token::NotEq
                    } else {
                        return Err(self.error("expected '=' after '!'"));
                    }
                }
                '\'' => self.lex_string()?,
                '"' => self.lex_quoted_ident()?,
                c if c.is_ascii_digit() => self.lex_number()?,
                c if c.is_alphabetic() || c == '_' => self.lex_word(),
                other => return Err(self.error(format!("unexpected character {other:?}"))),
            };
            out.push(SpannedToken {
                token,
                line,
                column,
            });
        }
    }

    fn skip_whitespace_and_comments(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('-') if self.peek2() == Some('-') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some('*') if self.peek() == Some('/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => return Err(self.error("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_string(&mut self) -> Result<Token> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('\'') => {
                    if self.peek() == Some('\'') {
                        self.bump();
                        s.push('\'');
                    } else {
                        return Ok(Token::String(s));
                    }
                }
                Some(c) => s.push(c),
                None => return Err(self.error("unterminated string literal")),
            }
        }
    }

    fn lex_quoted_ident(&mut self) -> Result<Token> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(Token::Ident(s)),
                Some(c) => s.push(c),
                None => return Err(self.error("unterminated quoted identifier")),
            }
        }
    }

    fn lex_number(&mut self) -> Result<Token> {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Decimal part only when a digit follows the dot ("1." is "1" then ".").
        if self.peek() == Some('.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            text.push('.');
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            text.parse::<f64>()
                .map(Token::Decimal)
                .map_err(|_| self.error(format!("invalid decimal literal {text}")))
        } else {
            text.parse::<i64>()
                .map(Token::Number)
                .map_err(|_| self.error(format!("integer literal out of range: {text}")))
        }
    }

    fn lex_word(&mut self) -> Token {
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                word.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let _ = self.input; // lifetime anchor
        match Keyword::from_word(&word) {
            Some(k) => Token::Keyword(k),
            None => Token::Ident(word),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Keyword as K;

    fn toks(input: &str) -> Vec<Token> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn lexes_simple_query() {
        assert_eq!(
            toks("SELECT STREAM * FROM Orders"),
            vec![
                Token::Keyword(K::Select),
                Token::Keyword(K::Stream),
                Token::Star,
                Token::Keyword(K::From),
                Token::Ident("Orders".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators_and_numbers() {
        assert_eq!(
            toks("a >= 25 AND b <> 1.5"),
            vec![
                Token::Ident("a".into()),
                Token::GtEq,
                Token::Number(25),
                Token::Keyword(K::And),
                Token::Ident("b".into()),
                Token::NotEq,
                Token::Decimal(1.5),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            toks("'it''s'"),
            vec![Token::String("it's".into()), Token::Eof]
        );
    }

    #[test]
    fn lexes_interval_literal_tokens() {
        assert_eq!(
            toks("INTERVAL '1:30' HOUR TO MINUTE"),
            vec![
                Token::Keyword(K::Interval),
                Token::String("1:30".into()),
                Token::Keyword(K::Hour),
                Token::Keyword(K::To),
                Token::Keyword(K::Minute),
                Token::Eof
            ]
        );
    }

    #[test]
    fn quoted_identifiers_bypass_keywords() {
        assert_eq!(
            toks("\"select\""),
            vec![Token::Ident("select".into()), Token::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("SELECT -- trailing\n/* block\ncomment */ 1"),
            vec![Token::Keyword(K::Select), Token::Number(1), Token::Eof]
        );
    }

    #[test]
    fn positions_tracked() {
        let spanned = tokenize("SELECT\n  x").unwrap();
        assert_eq!((spanned[0].line, spanned[0].column), (1, 1));
        assert_eq!((spanned[1].line, spanned[1].column), (2, 3));
    }

    #[test]
    fn errors_on_unterminated_string() {
        assert!(tokenize("'abc").is_err());
        assert!(tokenize("/* unclosed").is_err());
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn dot_after_number_stays_separate_without_digits() {
        // "Orders.rowtime" style paths must not eat the dot into a number.
        assert_eq!(
            toks("1.x"),
            vec![
                Token::Number(1),
                Token::Dot,
                Token::Ident("x".into()),
                Token::Eof
            ]
        );
    }
}
