//! AST → SQL text, for plan display, EXPLAIN output, and round-trip tests.

use crate::ast::*;

/// Render a statement back to SQL.
pub fn print_statement(stmt: &Statement) -> String {
    match stmt {
        Statement::Query(q) => print_query(q),
        Statement::Explain(q) => format!("EXPLAIN {}", print_query(q)),
        Statement::CreateView {
            name,
            columns,
            query,
        } => {
            let cols = if columns.is_empty() {
                String::new()
            } else {
                format!(" ({})", columns.join(", "))
            };
            format!("CREATE VIEW {name}{cols} AS {}", print_query(query))
        }
    }
}

/// Render a query.
pub fn print_query(q: &Query) -> String {
    let mut s = String::from("SELECT ");
    if q.stream {
        s.push_str("STREAM ");
    }
    if q.distinct {
        s.push_str("DISTINCT ");
    }
    let items: Vec<String> = q.projections.iter().map(print_select_item).collect();
    s.push_str(&items.join(", "));
    s.push_str(" FROM ");
    s.push_str(&print_table_ref(&q.from));
    if let Some(w) = &q.where_clause {
        s.push_str(" WHERE ");
        s.push_str(&print_expr(w));
    }
    if !q.group_by.is_empty() {
        s.push_str(" GROUP BY ");
        let items: Vec<String> = q.group_by.iter().map(print_expr).collect();
        s.push_str(&items.join(", "));
    }
    if let Some(h) = &q.having {
        s.push_str(" HAVING ");
        s.push_str(&print_expr(h));
    }
    if !q.order_by.is_empty() {
        s.push_str(" ORDER BY ");
        let items: Vec<String> = q
            .order_by
            .iter()
            .map(|(e, asc)| {
                if *asc {
                    print_expr(e)
                } else {
                    format!("{} DESC", print_expr(e))
                }
            })
            .collect();
        s.push_str(&items.join(", "));
    }
    if let Some(n) = q.limit {
        s.push_str(&format!(" LIMIT {n}"));
    }
    s
}

fn print_select_item(item: &SelectItem) -> String {
    match item {
        SelectItem::Wildcard => "*".to_string(),
        SelectItem::QualifiedWildcard(rel) => format!("{rel}.*"),
        SelectItem::Expr { expr, alias } => match alias {
            Some(a) => format!("{} AS {a}", print_expr(expr)),
            None => print_expr(expr),
        },
    }
}

fn print_table_ref(t: &TableRef) -> String {
    match t {
        TableRef::Named { name, alias } => match alias {
            Some(a) => format!("{name} AS {a}"),
            None => name.clone(),
        },
        TableRef::Subquery { query, alias } => match alias {
            Some(a) => format!("({}) AS {a}", print_query(query)),
            None => format!("({})", print_query(query)),
        },
        TableRef::Join {
            left,
            right,
            kind,
            condition,
        } => {
            let kw = match kind {
                JoinKind::Inner => "JOIN",
                JoinKind::Left => "LEFT JOIN",
                JoinKind::Right => "RIGHT JOIN",
                JoinKind::Full => "FULL JOIN",
            };
            format!(
                "{} {kw} {} ON {}",
                print_table_ref(left),
                print_table_ref(right),
                print_expr(condition)
            )
        }
    }
}

/// Render an expression.
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Column {
            qualifier: Some(q),
            name,
        } => format!("{q}.{name}"),
        Expr::Column {
            qualifier: None,
            name,
        } => name.clone(),
        Expr::Literal(l) => print_literal(l),
        Expr::Unary { op, expr } => match op {
            UnaryOp::Not => format!("NOT {}", print_expr(expr)),
            UnaryOp::Neg => format!("-{}", print_expr(expr)),
        },
        Expr::Binary { left, op, right } => {
            format!("{} {} {}", print_expr(left), op.symbol(), print_expr(right))
        }
        Expr::Function {
            name,
            args,
            distinct,
        } => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            let d = if *distinct { "DISTINCT " } else { "" };
            format!("{name}({d}{})", args.join(", "))
        }
        Expr::CountStar => "COUNT(*)".to_string(),
        Expr::FloorTo { expr, unit } => format!("FLOOR({} TO {})", print_expr(expr), unit.name()),
        Expr::Over { func, window } => {
            let mut s = format!("{} OVER (", print_expr(func));
            let mut parts = Vec::new();
            if !window.partition_by.is_empty() {
                let items: Vec<String> = window.partition_by.iter().map(print_expr).collect();
                parts.push(format!("PARTITION BY {}", items.join(", ")));
            }
            if !window.order_by.is_empty() {
                let items: Vec<String> = window
                    .order_by
                    .iter()
                    .map(|(e, asc)| {
                        if *asc {
                            print_expr(e)
                        } else {
                            format!("{} DESC", print_expr(e))
                        }
                    })
                    .collect();
                parts.push(format!("ORDER BY {}", items.join(", ")));
            }
            let units = match window.units {
                FrameUnits::Range => "RANGE",
                FrameUnits::Rows => "ROWS",
            };
            match &window.start {
                FrameBound::UnboundedPreceding => {
                    // Standard default frame is implied; print nothing when it
                    // matches RANGE UNBOUNDED PRECEDING.
                    if window.units == FrameUnits::Rows {
                        parts.push(format!("{units} UNBOUNDED PRECEDING"));
                    }
                }
                FrameBound::Preceding(e) => {
                    parts.push(format!("{units} {} PRECEDING", print_expr(e)))
                }
                FrameBound::CurrentRow => parts.push(format!("{units} CURRENT ROW")),
            }
            s.push_str(&parts.join(" "));
            s.push(')');
            s
        }
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => format!(
            "{} {}BETWEEN {} AND {}",
            print_expr(expr),
            if *negated { "NOT " } else { "" },
            print_expr(low),
            print_expr(high)
        ),
        Expr::IsNull { expr, negated } => format!(
            "{} IS {}NULL",
            print_expr(expr),
            if *negated { "NOT " } else { "" }
        ),
        Expr::Case {
            operand,
            branches,
            else_result,
        } => {
            let mut s = String::from("CASE");
            if let Some(op) = operand {
                s.push_str(&format!(" {}", print_expr(op)));
            }
            for (w, t) in branches {
                s.push_str(&format!(" WHEN {} THEN {}", print_expr(w), print_expr(t)));
            }
            if let Some(e) = else_result {
                s.push_str(&format!(" ELSE {}", print_expr(e)));
            }
            s.push_str(" END");
            s
        }
        Expr::Cast { expr, type_name } => format!("CAST({} AS {type_name})", print_expr(expr)),
        Expr::Nested(inner) => format!("({})", print_expr(inner)),
    }
}

fn print_literal(l: &Literal) -> String {
    match l {
        Literal::Int(n) => n.to_string(),
        Literal::Decimal(d) => d.to_string(),
        Literal::String(s) => format!("'{}'", s.replace('\'', "''")),
        Literal::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Literal::Null => "NULL".to_string(),
        Literal::Interval { from, to, text, .. } => match to {
            Some(t) => format!("INTERVAL '{text}' {} TO {}", from.name(), t.name()),
            None => format!("INTERVAL '{text}' {}", from.name()),
        },
        Literal::Time { text, .. } => format!("TIME '{text}'"),
    }
}
