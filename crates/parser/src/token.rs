//! Tokens produced by the lexer.

use std::fmt;

/// SQL keywords recognized by the SamzaSQL dialect. Keywords are matched
/// case-insensitively; identifiers that collide can be double-quoted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    Stream,
    From,
    Where,
    Group,
    By,
    Having,
    As,
    Join,
    Inner,
    Left,
    Right,
    Full,
    Outer,
    On,
    Create,
    View,
    And,
    Or,
    Not,
    Between,
    Is,
    Null,
    True,
    False,
    Case,
    When,
    Then,
    Else,
    End,
    Interval,
    Time,
    To,
    Over,
    Partition,
    Order,
    Asc,
    Desc,
    Range,
    Rows,
    Preceding,
    Following,
    Current,
    Row,
    Unbounded,
    Distinct,
    All,
    Union,
    Like,
    In,
    Cast,
    Limit,
    Exists,
    Year,
    Month,
    Day,
    Hour,
    Minute,
    Second,
    Explain,
    Insert,
    Into,
    Values,
}

impl Keyword {
    /// Look up a keyword from an identifier-shaped word.
    pub fn from_word(word: &str) -> Option<Keyword> {
        use Keyword::*;
        let upper = word.to_ascii_uppercase();
        Some(match upper.as_str() {
            "SELECT" => Select,
            "STREAM" => Stream,
            "FROM" => From,
            "WHERE" => Where,
            "GROUP" => Group,
            "BY" => By,
            "HAVING" => Having,
            "AS" => As,
            "JOIN" => Join,
            "INNER" => Inner,
            "LEFT" => Left,
            "RIGHT" => Right,
            "FULL" => Full,
            "OUTER" => Outer,
            "ON" => On,
            "CREATE" => Create,
            "VIEW" => View,
            "AND" => And,
            "OR" => Or,
            "NOT" => Not,
            "BETWEEN" => Between,
            "IS" => Is,
            "NULL" => Null,
            "TRUE" => True,
            "FALSE" => False,
            "CASE" => Case,
            "WHEN" => When,
            "THEN" => Then,
            "ELSE" => Else,
            "END" => End,
            "INTERVAL" => Interval,
            "TIME" => Time,
            "TO" => To,
            "OVER" => Over,
            "PARTITION" => Partition,
            "ORDER" => Order,
            "ASC" => Asc,
            "DESC" => Desc,
            "RANGE" => Range,
            "ROWS" => Rows,
            "PRECEDING" => Preceding,
            "FOLLOWING" => Following,
            "CURRENT" => Current,
            "ROW" => Row,
            "UNBOUNDED" => Unbounded,
            "DISTINCT" => Distinct,
            "ALL" => All,
            "UNION" => Union,
            "LIKE" => Like,
            "IN" => In,
            "CAST" => Cast,
            "LIMIT" => Limit,
            "EXISTS" => Exists,
            "YEAR" => Year,
            "MONTH" => Month,
            "DAY" => Day,
            "HOUR" => Hour,
            "MINUTE" => Minute,
            "SECOND" => Second,
            "EXPLAIN" => Explain,
            "INSERT" => Insert,
            "INTO" => Into,
            "VALUES" => Values,
            _ => return None,
        })
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Keyword(Keyword),
    /// Unquoted identifier (original case preserved) or `"quoted"` identifier.
    Ident(String),
    /// Integer literal.
    Number(i64),
    /// Decimal literal.
    Decimal(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    String(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Decimal(d) => write!(f, "{d}"),
            Token::String(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
            Token::Semicolon => write!(f, ";"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    pub token: Token,
    pub line: u32,
    pub column: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(Keyword::from_word("select"), Some(Keyword::Select));
        assert_eq!(Keyword::from_word("StReAm"), Some(Keyword::Stream));
        assert_eq!(Keyword::from_word("orders"), None);
    }

    #[test]
    fn token_display() {
        assert_eq!(Token::NotEq.to_string(), "<>");
        assert_eq!(Token::String("a'b".into()).to_string(), "'a'b'");
    }
}
