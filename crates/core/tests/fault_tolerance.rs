//! Fault-tolerance tests for SamzaSQL queries (§4.3): kill a container
//! mid-query, let the cluster reschedule it, and verify the restored task
//! produces deterministic window output from its changelog-backed state and
//! checkpointed input positions.

use samzasql_core::shell::SamzaSqlShell;
use samzasql_kafka::{Broker, TopicConfig};
use samzasql_samza::{ClusterSim, NodeConfig};
use samzasql_serde::{Schema, Value};
use std::collections::BTreeMap;
use std::time::Duration;

fn orders_schema() -> Schema {
    Schema::record(
        "Orders",
        vec![
            ("rowtime", Schema::Timestamp),
            ("productId", Schema::Int),
            ("orderId", Schema::Long),
            ("units", Schema::Int),
        ],
    )
}

fn order(ts: i64, product: i32, order_id: i64, units: i32) -> Value {
    Value::record(vec![
        ("rowtime", Value::Timestamp(ts)),
        ("productId", Value::Int(product)),
        ("orderId", Value::Long(order_id)),
        ("units", Value::Int(units)),
    ])
}

/// Run the sliding-window query over `n` orders; optionally kill the
/// container midway. Returns the *final* windowed sum observed per orderId
/// (replay may duplicate emissions; determinism means the values agree).
fn run_sliding_window(kill: bool, n: i64) -> BTreeMap<i64, i64> {
    let broker = Broker::new();
    broker
        .create_topic("orders", TopicConfig::with_partitions(1))
        .unwrap();
    let cluster = ClusterSim::new(
        broker.clone(),
        vec![NodeConfig::new("n0", 8), NodeConfig::new("n1", 8)],
    );
    let mut shell = SamzaSqlShell::with_cluster(broker, cluster);
    shell
        .register_stream("Orders", "orders", orders_schema(), "rowtime")
        .unwrap();
    let mut handle = shell
        .submit(
            "SELECT STREAM rowtime, productId, orderId, units, \
             SUM(units) OVER (PARTITION BY productId ORDER BY rowtime \
             RANGE INTERVAL '5' MINUTE PRECEDING) unitsLastFiveMinutes FROM Orders",
        )
        .unwrap();

    for i in 0..n / 2 {
        shell.produce("Orders", order(i * 1_000, 1, i, 1)).unwrap();
    }
    let mut rows = handle
        .await_outputs((n / 2) as usize, Duration::from_secs(10))
        .unwrap();
    if kill {
        handle.kill_container(0).unwrap();
    }
    for i in n / 2..n {
        shell.produce("Orders", order(i * 1_000, 1, i, 1)).unwrap();
    }
    rows.extend(
        handle
            .await_outputs((n / 2) as usize, Duration::from_secs(15))
            .unwrap(),
    );
    handle.stop().unwrap();

    // Last emission per orderId wins (replay may re-emit identical rows).
    let mut by_order = BTreeMap::new();
    for r in rows {
        let oid = r.field("orderId").unwrap().as_i64().unwrap();
        let sum = r.field("unitsLastFiveMinutes").unwrap().as_i64().unwrap();
        by_order.insert(oid, sum);
    }
    by_order
}

#[test]
fn sliding_window_output_is_deterministic_across_failures() {
    let clean = run_sliding_window(false, 40);
    let failed = run_sliding_window(true, 40);
    assert_eq!(clean.len(), 40);
    assert_eq!(
        clean, failed,
        "killed-and-restored run must produce the same per-tuple window sums (§4.3)"
    );
    // Spot-check the shape: 5-minute window over 1-second-spaced unit orders
    // grows to 300 and caps there... here n=40 so it just keeps growing.
    assert_eq!(clean[&0], 1);
    assert_eq!(clean[&39], 40);
}

#[test]
fn join_cache_rebuilds_after_kill() {
    let broker = Broker::new();
    broker
        .create_topic("orders", TopicConfig::with_partitions(1))
        .unwrap();
    broker
        .create_topic("products-changelog", TopicConfig::with_partitions(1))
        .unwrap();
    let cluster = ClusterSim::new(
        broker.clone(),
        vec![NodeConfig::new("n0", 8), NodeConfig::new("n1", 8)],
    );
    let mut shell = SamzaSqlShell::with_cluster(broker, cluster);
    shell
        .register_stream("Orders", "orders", orders_schema(), "rowtime")
        .unwrap();
    shell.set_partition_key("Orders", "productId").unwrap();
    shell
        .register_table(
            "Products",
            "products-changelog",
            Schema::record(
                "Products",
                vec![
                    ("productId", Schema::Int),
                    ("name", Schema::String),
                    ("supplierId", Schema::Int),
                ],
            ),
            "productId",
        )
        .unwrap();
    for pid in 0..3 {
        shell
            .produce_relation(
                "Products",
                Value::record(vec![
                    ("productId", Value::Int(pid)),
                    ("name", Value::String("p".into())),
                    ("supplierId", Value::Int(100 + pid)),
                ]),
            )
            .unwrap();
    }
    let mut handle = shell
        .submit(
            "SELECT STREAM Orders.rowtime, Orders.orderId, Products.supplierId \
             FROM Orders JOIN Products ON Orders.productId = Products.productId",
        )
        .unwrap();
    for i in 0..10 {
        shell
            .produce("Orders", order(i, (i % 3) as i32, i, 1))
            .unwrap();
    }
    handle.await_outputs(10, Duration::from_secs(10)).unwrap();

    handle.kill_container(0).unwrap();

    for i in 10..20 {
        shell
            .produce("Orders", order(i, (i % 3) as i32, i, 1))
            .unwrap();
    }
    let rows = handle.await_outputs(10, Duration::from_secs(15)).unwrap();
    // Every post-failure order joined correctly: the bootstrap cache was
    // rebuilt on the replacement container.
    let mut seen = std::collections::BTreeMap::new();
    for r in &rows {
        let oid = r.field("orderId").unwrap().as_i64().unwrap();
        let sid = r.field("supplierId").unwrap().as_i64().unwrap();
        seen.insert(oid, sid);
    }
    for oid in 10..20 {
        assert_eq!(
            seen.get(&oid),
            Some(&(100 + oid % 3)),
            "order {oid} joined after restart: {seen:?}"
        );
    }
    handle.stop().unwrap();
}
