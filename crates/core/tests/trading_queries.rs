//! Domain tests over the Asks/Bids trading streams (§3.2's remaining
//! example schemas): stream-to-stream matching and per-ticker analytics.

use samzasql_core::shell::SamzaSqlShell;
use samzasql_kafka::{Broker, TopicConfig};
use samzasql_serde::Value;
use samzasql_workload::{trades_schema, TradesGenerator, TradesSpec};
use std::time::Duration;

fn trading_shell() -> (SamzaSqlShell, Broker) {
    let broker = Broker::new();
    broker
        .create_topic("asks", TopicConfig::with_partitions(2))
        .unwrap();
    broker
        .create_topic("bids", TopicConfig::with_partitions(2))
        .unwrap();
    let mut shell = SamzaSqlShell::new(broker.clone());
    shell
        .register_stream("Asks", "asks", trades_schema("Asks"), "rowtime")
        .unwrap();
    shell
        .register_stream("Bids", "bids", trades_schema("Bids"), "rowtime")
        .unwrap();
    (shell, broker)
}

fn trade(ts: i64, id: i64, ticker: &str, shares: i32, price: f64) -> Value {
    Value::record(vec![
        ("rowtime", Value::Timestamp(ts)),
        ("id", Value::Long(id)),
        ("ticker", Value::String(ticker.to_string())),
        ("shares", Value::Int(shares)),
        ("price", Value::Double(price)),
    ])
}

#[test]
fn ask_bid_window_join_matches_same_ticker_within_window() {
    let (mut shell, _broker) = trading_shell();
    // Match asks and bids on ticker within a 1-second window; report spread.
    let mut handle = shell
        .submit(
            "SELECT STREAM GREATEST(Asks.rowtime, Bids.rowtime) AS rowtime, \
             Asks.ticker, Asks.price - Bids.price AS spread \
             FROM Asks JOIN Bids ON \
             Asks.rowtime BETWEEN Bids.rowtime - INTERVAL '1' SECOND \
             AND Bids.rowtime + INTERVAL '1' SECOND \
             AND Asks.ticker = Bids.ticker",
        )
        .unwrap();

    shell
        .produce("Asks", trade(1_000, 1, "ORCL", 100, 101.5))
        .unwrap();
    shell
        .produce("Bids", trade(1_400, 2, "ORCL", 100, 100.0))
        .unwrap(); // matches
    shell
        .produce("Bids", trade(1_500, 3, "MSFT", 50, 200.0))
        .unwrap(); // wrong ticker
    shell
        .produce("Bids", trade(9_000, 4, "ORCL", 10, 99.0))
        .unwrap(); // outside window

    let rows = handle.await_outputs(1, Duration::from_secs(10)).unwrap();
    assert_eq!(rows.len(), 1, "{rows:?}");
    assert_eq!(rows[0].field("ticker"), Some(&Value::String("ORCL".into())));
    assert_eq!(rows[0].field("spread"), Some(&Value::Double(1.5)));
    handle.stop().unwrap();
}

#[test]
fn per_ticker_vwap_style_analytics() {
    let (mut shell, broker) = trading_shell();
    // Generated workload: rolling per-ticker averages over the last minute.
    let mut generator = TradesGenerator::new("Asks", TradesSpec::default());
    for _ in 0..200 {
        let m = generator.next_message();
        let p = samzasql_kafka::partitioner::hash_bytes(m.key.as_ref().unwrap()) % 2;
        broker.produce("asks", p, m).unwrap();
    }
    let mut handle = shell
        .submit(
            "SELECT STREAM rowtime, ticker, price, \
             AVG(price) OVER (PARTITION BY ticker ORDER BY rowtime \
             RANGE INTERVAL '1' MINUTE PRECEDING) avgPrice, \
             MAX(price) OVER (PARTITION BY ticker ORDER BY rowtime \
             RANGE INTERVAL '1' MINUTE PRECEDING) maxPrice \
             FROM Asks",
        )
        .unwrap();
    let rows = handle.await_outputs(200, Duration::from_secs(15)).unwrap();
    assert_eq!(rows.len(), 200);
    for r in &rows {
        let price = r.field("price").unwrap().as_f64().unwrap();
        let avg = r.field("avgPrice").unwrap().as_f64().unwrap();
        let max = r.field("maxPrice").unwrap().as_f64().unwrap();
        assert!(max >= price, "window max includes the current row: {r}");
        assert!(avg <= max + 1e-9, "avg cannot exceed max: {r}");
    }
    handle.stop().unwrap();
}

#[test]
fn bounded_top_trades_report() {
    let (mut shell, broker) = trading_shell();
    let mut generator = TradesGenerator::new("Asks", TradesSpec::default());
    for _ in 0..100 {
        let m = generator.next_message();
        broker.produce("asks", 0, m).unwrap();
    }
    let rows = shell
        .query(
            "SELECT ticker, shares, price FROM Asks \
             WHERE shares > 500 ORDER BY price DESC LIMIT 5",
        )
        .unwrap();
    assert!(rows.len() <= 5);
    let prices: Vec<f64> = rows
        .iter()
        .map(|r| r.field("price").unwrap().as_f64().unwrap())
        .collect();
    assert!(
        prices.windows(2).all(|w| w[0] >= w[1]),
        "descending: {prices:?}"
    );
    for r in &rows {
        assert!(r.field("shares").unwrap().as_i64().unwrap() > 500);
    }
}
