//! Property tests over the window operators' core invariants.

use proptest::prelude::*;
use samzasql_core::expr::compile;
use samzasql_core::ops::acc::CompiledAgg;
use samzasql_core::ops::window_agg::WindowAggOp;
use samzasql_core::ops::window_sliding::SlidingWindowOp;
use samzasql_core::ops::{OpCtx, Operator, Side};
use samzasql_core::udaf::UdafRegistry;
use samzasql_planner::{AggCall, AggFunc, GroupWindow, ScalarExpr};
use samzasql_samza::KeyValueStore;
use samzasql_serde::{Schema, Value};

fn agg(func: AggFunc, arg: Option<usize>) -> CompiledAgg {
    CompiledAgg::new(
        &AggCall {
            func,
            arg: arg.map(|i| {
                ScalarExpr::input(
                    i,
                    if i == 0 {
                        Schema::Timestamp
                    } else {
                        Schema::Int
                    },
                )
            }),
            distinct: false,
            output_name: "a".into(),
        },
        &UdafRegistry::new(),
    )
    .unwrap()
}

/// Monotonically increasing timestamps with random gaps, plus units.
fn ordered_orders() -> impl Strategy<Value = Vec<(i64, i32, i32)>> {
    prop::collection::vec((0i64..50, 0i32..4, 1i32..100), 1..120).prop_map(|steps| {
        let mut ts = 0i64;
        steps
            .into_iter()
            .map(|(gap, product, units)| {
                ts += gap;
                (ts, product, units)
            })
            .collect()
    })
}

fn tup(ts: i64, product: i32, units: i32) -> Vec<Value> {
    vec![Value::Timestamp(ts), Value::Int(product), Value::Int(units)]
}

/// Drive one tuple through the batch API (the per-tuple reference shape).
fn process_one(op: &mut dyn Operator, tuple: Vec<Value>, ctx: &mut OpCtx<'_>) -> Vec<Vec<Value>> {
    let mut input = vec![tuple];
    let mut out = Vec::new();
    op.process_batch(Side::Single, &mut input, &mut out, ctx)
        .unwrap();
    out
}

fn flush_all(op: &mut dyn Operator, ctx: &mut OpCtx<'_>) -> Vec<Vec<Value>> {
    let mut out = Vec::new();
    op.flush(&mut out, ctx).unwrap();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tumbling COUNT(*) windows partition the input: emitted counts (after
    /// flush) sum to the number of processed tuples, and each tuple falls in
    /// exactly one window.
    #[test]
    fn tumbling_counts_partition_the_stream(orders in ordered_orders(), size in 1i64..40) {
        let mut store = KeyValueStore::ephemeral("s");
        let mut op = WindowAggOp::new(
            "0",
            GroupWindow::Tumble { ts_index: 0, size_ms: size },
            vec![],
            vec![agg(AggFunc::Start, Some(0)), agg(AggFunc::CountStar, None)],
        );
        let mut late = 0;
        let mut out = Vec::new();
        for (ts, p, u) in &orders {
            let mut ctx = OpCtx { store: Some(&mut store), late_discards: &mut late };
            out.extend(process_one(&mut op, tup(*ts, *p, *u), &mut ctx));
        }
        let mut ctx = OpCtx { store: Some(&mut store), late_discards: &mut late };
        out.extend(flush_all(&mut op, &mut ctx));
        let total: i64 = out.iter().map(|r| r[1].as_i64().unwrap()).sum();
        prop_assert_eq!(total as usize + late as usize, orders.len());
        // Window starts are aligned and unique.
        let mut starts: Vec<i64> = out.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let n = starts.len();
        starts.sort_unstable();
        starts.dedup();
        prop_assert_eq!(starts.len(), n, "window starts unique");
        prop_assert!(starts.iter().all(|s| s % size == 0), "aligned starts");
    }

    /// Hopping windows: each emitted count is ≤ total, and the per-window
    /// counts equal a brute-force recount of tuples in [start, start+retain).
    #[test]
    fn hopping_counts_match_bruteforce(
        orders in ordered_orders(),
        emit in 1i64..20,
        extra in 0i64..30,
    ) {
        let retain = emit + extra; // retain ≥ emit, not necessarily a multiple
        let mut store = KeyValueStore::ephemeral("s");
        let mut op = WindowAggOp::new(
            "0",
            GroupWindow::Hop { ts_index: 0, emit_ms: emit, retain_ms: retain, align_ms: 0 },
            vec![],
            vec![agg(AggFunc::Start, Some(0)), agg(AggFunc::CountStar, None)],
        );
        let mut late = 0;
        let mut out = Vec::new();
        for (ts, p, u) in &orders {
            let mut ctx = OpCtx { store: Some(&mut store), late_discards: &mut late };
            out.extend(process_one(&mut op, tup(*ts, *p, *u), &mut ctx));
        }
        let mut ctx = OpCtx { store: Some(&mut store), late_discards: &mut late };
        out.extend(flush_all(&mut op, &mut ctx));
        // Late discards only happen with out-of-order input; ours is ordered.
        prop_assert_eq!(late, 0);
        for r in &out {
            let start = r[0].as_i64().unwrap();
            let count = r[1].as_i64().unwrap();
            let expected = orders
                .iter()
                .filter(|(ts, _, _)| *ts >= start && *ts < start + retain)
                .count() as i64;
            prop_assert_eq!(count, expected, "window [{}, {})", start, start + retain);
        }
    }

    /// Sliding SUM equals a brute-force sum over the last `range` ms within
    /// the same partition key, for every emitted row.
    #[test]
    fn sliding_sum_matches_bruteforce(orders in ordered_orders(), range in 1i64..60) {
        let mut store = KeyValueStore::ephemeral("s");
        let mut op = SlidingWindowOp::new(
            "0",
            vec![compile(&ScalarExpr::input(1, Schema::Int))],
            0,
            Some(range),
            None,
            vec![agg(AggFunc::Sum, Some(2))],
        );
        let mut late = 0;
        let mut seen: Vec<(i64, i32, i32)> = Vec::new();
        for (ts, p, u) in &orders {
            seen.push((*ts, *p, *u));
            let mut ctx = OpCtx { store: Some(&mut store), late_discards: &mut late };
            let out = process_one(&mut op, tup(*ts, *p, *u), &mut ctx);
            prop_assert_eq!(out.len(), 1, "one row out per row in");
            let got = out[0][3].as_i64().unwrap();
            let expected: i64 = seen
                .iter()
                .filter(|(t2, p2, _)| *p2 == *p && *t2 >= ts - range && *t2 <= *ts)
                .map(|(_, _, u2)| *u2 as i64)
                .sum();
            prop_assert_eq!(got, expected, "at ts={} product={}", ts, p);
        }
    }

    /// ROWS frames: the sum covers exactly the last N+1 rows of the key.
    #[test]
    fn rows_frame_matches_bruteforce(orders in ordered_orders(), rows in 0u64..8) {
        let mut store = KeyValueStore::ephemeral("s");
        let mut op = SlidingWindowOp::new(
            "0",
            vec![compile(&ScalarExpr::input(1, Schema::Int))],
            0,
            None,
            Some(rows),
            vec![agg(AggFunc::Sum, Some(2))],
        );
        let mut late = 0;
        let mut per_key: std::collections::HashMap<i32, Vec<i64>> = Default::default();
        for (ts, p, u) in &orders {
            per_key.entry(*p).or_default().push(*u as i64);
            let mut ctx = OpCtx { store: Some(&mut store), late_discards: &mut late };
            let out = process_one(&mut op, tup(*ts, *p, *u), &mut ctx);
            let got = out[0][3].as_i64().unwrap();
            let hist = &per_key[p];
            let take = (rows as usize + 1).min(hist.len());
            let expected: i64 = hist[hist.len() - take..].iter().sum();
            prop_assert_eq!(got, expected);
        }
    }
}
