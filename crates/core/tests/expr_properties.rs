//! Property tests over the expression layer: the optimizer's constant
//! folding must be observationally equivalent to direct evaluation, and
//! compiled expressions must never panic on arbitrary (well-typed) input.

use proptest::prelude::*;
use samzasql_core::expr::compile;
use samzasql_planner::rules::fold;
use samzasql_planner::{BinOp, ScalarExpr};
use samzasql_serde::{Schema, Value};

/// Input schema for generated expressions: (int, int, long, bool, double).
fn input_types() -> Vec<Schema> {
    vec![
        Schema::Int,
        Schema::Int,
        Schema::Long,
        Schema::Boolean,
        Schema::Double,
    ]
}

/// Strategy for random tuples matching [`input_types`].
fn tuple_strategy() -> impl Strategy<Value = Vec<Value>> {
    (
        any::<i32>(),
        any::<i32>(),
        -1_000_000i64..1_000_000,
        any::<bool>(),
        prop::num::f64::NORMAL,
        any::<bool>(), // inject a NULL into slot 0?
    )
        .prop_map(|(a, b, c, d, e, null_a)| {
            vec![
                if null_a { Value::Null } else { Value::Int(a) },
                Value::Int(b),
                Value::Long(c),
                Value::Boolean(d),
                Value::Double(e),
            ]
        })
}

/// Strategy for random *numeric* expressions of bounded depth.
fn numeric_expr(depth: u32) -> BoxedStrategy<ScalarExpr> {
    let leaf = prop_oneof![
        (0usize..3).prop_map(|i| {
            let ty = input_types()[i].clone();
            ScalarExpr::input(i, ty)
        }),
        (-100i32..100).prop_map(|v| ScalarExpr::Literal(Value::Int(v))),
        (-100i64..100).prop_map(|v| ScalarExpr::Literal(Value::Long(v))),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = numeric_expr(depth - 1);
    prop_oneof![
        leaf,
        (
            prop_oneof![Just(BinOp::Plus), Just(BinOp::Minus), Just(BinOp::Multiply)],
            inner.clone(),
            inner
        )
            .prop_map(|(op, l, r)| {
                // Result type: widen like the validator does.
                let ty = if l.ty() == Schema::Long || r.ty() == Schema::Long {
                    Schema::Long
                } else {
                    Schema::Int
                };
                ScalarExpr::Binary {
                    op,
                    left: Box::new(l),
                    right: Box::new(r),
                    ty,
                }
            }),
    ]
    .boxed()
}

/// Strategy for random boolean expressions over numerics.
fn bool_expr(depth: u32) -> BoxedStrategy<ScalarExpr> {
    let cmp = (
        prop_oneof![
            Just(BinOp::Eq),
            Just(BinOp::NotEq),
            Just(BinOp::Lt),
            Just(BinOp::LtEq),
            Just(BinOp::Gt),
            Just(BinOp::GtEq)
        ],
        numeric_expr(1),
        numeric_expr(1),
    )
        .prop_map(|(op, l, r)| ScalarExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
            ty: Schema::Boolean,
        });
    if depth == 0 {
        return cmp.boxed();
    }
    let inner = bool_expr(depth - 1);
    prop_oneof![
        cmp,
        (
            prop_oneof![Just(BinOp::And), Just(BinOp::Or)],
            inner.clone(),
            inner.clone()
        )
            .prop_map(|(op, l, r)| ScalarExpr::Binary {
                op,
                left: Box::new(l),
                right: Box::new(r),
                ty: Schema::Boolean,
            }),
        inner.prop_map(|e| ScalarExpr::Not(Box::new(e))),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Constant folding must not change the value an expression evaluates
    /// to, on any input tuple. (Integer arithmetic folds in i64 like the
    /// runtime's Long path; comparisons use the same sql_cmp.)
    #[test]
    fn folding_preserves_numeric_semantics(e in numeric_expr(3), t in tuple_strategy()) {
        let folded = fold(&e);
        let a = compile(&e).eval(&t);
        let b = compile(&folded).eval(&t);
        // Fold may widen Int results to Long; compare numerically.
        match (a.as_i64(), b.as_i64()) {
            (Some(x), Some(y)) => prop_assert_eq!(x, y, "expr {:?}", e),
            _ => prop_assert_eq!(a.is_null(), b.is_null(), "expr {:?}", e),
        }
    }

    #[test]
    fn folding_preserves_boolean_semantics(e in bool_expr(3), t in tuple_strategy()) {
        let folded = fold(&e);
        let a = compile(&e).eval_bool(&t);
        let b = compile(&folded).eval_bool(&t);
        prop_assert_eq!(a, b, "expr {:?} folded {:?}", e, folded);
    }

    /// Compiled evaluation never panics on any well-typed input.
    #[test]
    fn evaluation_never_panics(e in bool_expr(4), t in tuple_strategy()) {
        let _ = compile(&e).eval(&t);
    }

    /// Double negation and idempotent folds are stable (fold is a fixpoint
    /// after one application... at least it must not oscillate).
    #[test]
    fn folding_is_idempotent(e in bool_expr(3)) {
        let once = fold(&e);
        let twice = fold(&once);
        prop_assert_eq!(once, twice);
    }
}
