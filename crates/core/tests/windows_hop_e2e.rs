//! End-to-end tests for hopping windows with alignment and the EC2-throttle
//! anecdote from §5.1.

use samzasql_core::shell::SamzaSqlShell;
use samzasql_kafka::{Broker, IoThrottle, TopicConfig};
use samzasql_serde::{Schema, Value};
use std::sync::Arc;
use std::time::Duration;

fn orders_shell() -> SamzaSqlShell {
    let broker = Broker::new();
    broker
        .create_topic("orders", TopicConfig::with_partitions(1))
        .unwrap();
    let mut shell = SamzaSqlShell::new(broker);
    shell
        .register_stream(
            "Orders",
            "orders",
            Schema::record(
                "Orders",
                vec![
                    ("rowtime", Schema::Timestamp),
                    ("productId", Schema::Int),
                    ("orderId", Schema::Long),
                    ("units", Schema::Int),
                ],
            ),
            "rowtime",
        )
        .unwrap();
    shell
}

fn order(ts: i64, units: i32) -> Value {
    Value::record(vec![
        ("rowtime", Value::Timestamp(ts)),
        ("productId", Value::Int(1)),
        ("orderId", Value::Long(ts)),
        ("units", Value::Int(units)),
    ])
}

/// Listing 5's shape: total orders within a 2-hour period beginning 30
/// minutes past each hour, emitted every 90 minutes.
#[test]
fn listing5_hop_with_alignment_end_to_end() {
    let mut shell = orders_shell();
    let mut handle = shell
        .submit(
            "SELECT STREAM START(rowtime), END(rowtime), COUNT(*) FROM Orders \
             GROUP BY HOP(rowtime, INTERVAL '1:30' HOUR TO MINUTE, \
             INTERVAL '2' HOUR, TIME '0:30')",
        )
        .unwrap();
    let min = 60_000i64;
    // Orders at 0:40, 1:00, 2:10, and a watermark-advancing one at 6:00.
    for ts in [40 * min, 60 * min, 130 * min, 360 * min] {
        shell.produce("Orders", order(ts, 1)).unwrap();
    }
    // Window starts: 0:30 + k*1:30 → 0:30, 2:00, 3:30 … each 2h long.
    // [0:30, 2:30): orders at 0:40, 1:00, 2:10 → 3.
    let rows = handle.await_outputs(2, Duration::from_secs(10)).unwrap();
    let first = rows
        .iter()
        .find(|r| r.field("start_0") == Some(&Value::Timestamp(30 * min)))
        .unwrap_or_else(|| panic!("no [0:30,2:30) window in {rows:?}"));
    assert_eq!(first.field("end_1"), Some(&Value::Timestamp(150 * min)));
    assert_eq!(first.field("count_2"), Some(&Value::Long(3)));
    handle.stop().unwrap();
}

/// Windows before the alignment offset are also well-defined (negative k).
#[test]
fn hop_alignment_handles_records_before_offset() {
    let mut shell = orders_shell();
    let mut handle = shell
        .submit(
            "SELECT STREAM START(rowtime), COUNT(*) FROM Orders \
             GROUP BY HOP(rowtime, INTERVAL '10' SECOND, INTERVAL '10' SECOND, TIME '0:00:05')",
        )
        .unwrap();
    // Record at t=2s: its tumble-with-align-5s window is [-5s, 5s).
    shell.produce("Orders", order(2_000, 1)).unwrap();
    shell.produce("Orders", order(30_000, 1)).unwrap(); // closes it
    let rows = handle.await_outputs(1, Duration::from_secs(10)).unwrap();
    assert_eq!(rows[0].field("start_0"), Some(&Value::Timestamp(-5_000)));
    assert_eq!(rows[0].field("count_1"), Some(&Value::Long(1)));
    handle.stop().unwrap();
}

/// §5.1: "Sliding window implementation reads/writes from/to key-value
/// store multiple times causing EC2 to throttle access to disk after a
/// couple of minutes." The broker's burst-credit throttle reproduces the
/// mechanism: sustained traffic exhausts credits and accumulates stall debt.
#[test]
fn sustained_kv_traffic_exhausts_burst_credits() {
    let throttle = Arc::new(IoThrottle::new(1_000_000, 5_000_000)); // 1 MB/s, 5 MB burst
    let broker = Broker::new();
    broker.set_throttle(Some(throttle.clone()));
    broker
        .create_topic("t", TopicConfig::with_partitions(1))
        .unwrap();
    // Simulate the changelog traffic of a KV-heavy window job: ~100-byte
    // writes, far above the sustained rate.
    let payload = vec![0u8; 100];
    for _ in 0..100_000 {
        broker
            .produce(
                "t",
                0,
                samzasql_kafka::Message::new(bytes::Bytes::copy_from_slice(&payload)),
            )
            .unwrap();
    }
    assert!(
        throttle.is_throttling(),
        "10 MB of traffic against a 5 MB burst pool must exhaust credits"
    );
    assert_eq!(throttle.credits(), 0);
}
