//! Shell-level wiring of the static analyzer: the `ANALYZE` command, the
//! deny-by-default submission gate, lints on the query handle, and
//! partitioning annotations in EXPLAIN output.

use samzasql_core::shell::SamzaSqlShell;
use samzasql_kafka::{Broker, TopicConfig};
use samzasql_serde::Schema;

fn shell() -> SamzaSqlShell {
    let broker = Broker::new();
    broker
        .create_topic("orders", TopicConfig::with_partitions(2))
        .unwrap();
    let mut shell = SamzaSqlShell::new(broker);
    shell
        .register_stream(
            "Orders",
            "orders",
            Schema::record(
                "Orders",
                vec![
                    ("rowtime", Schema::Timestamp),
                    ("productId", Schema::Int),
                    ("units", Schema::Int),
                ],
            ),
            "rowtime",
        )
        .unwrap();
    shell.set_partition_key("Orders", "productId").unwrap();
    shell
}

#[test]
fn analyze_command_pretty_prints_diagnostics() {
    let shell = shell();
    // With the ANALYZE keyword.
    let out = shell
        .analyze("ANALYZE SELECT STREAM rowtime, productId FROM Orders")
        .unwrap();
    assert!(out.contains("SSQL005"), "{out}");
    assert!(out.contains("warning"), "{out}");
    assert!(out.contains('^'), "must render a span caret:\n{out}");

    // Bare statement, clean plan.
    let out = shell
        .analyze("SELECT STREAM * FROM Orders WHERE units > 50")
        .unwrap();
    assert!(out.contains("no diagnostics"), "{out}");

    // Front-end errors render as diagnostics too, not Err.
    let out = shell
        .analyze("ANALYZE SELECT STREAM ghost FROM Orders")
        .unwrap();
    assert!(out.contains("SSQL102"), "{out}");
    assert!(out.contains("error"), "{out}");
}

#[test]
fn submission_gate_refuses_error_bearing_plans() {
    let mut shell = shell();
    // Group keys exclude the declared partition key: groups would split
    // across tasks. The gate must refuse before any job is created.
    let err = shell
        .submit(
            "SELECT STREAM units, COUNT(*) AS c FROM Orders \
             GROUP BY TUMBLE(rowtime, INTERVAL '1' MINUTE), units",
        )
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("SSQL001"), "{msg}");
    assert!(msg.contains("plan analysis failed"), "{msg}");
}

#[test]
fn lints_surface_on_the_query_handle() {
    let mut shell = shell();
    let handle = shell
        .submit("SELECT STREAM rowtime, productId FROM Orders")
        .unwrap();
    assert!(
        handle.lints.iter().any(|l| l.contains("SSQL005")),
        "{:?}",
        handle.lints
    );
    assert!(handle.warnings.is_empty(), "{:?}", handle.warnings);
    handle.stop().unwrap();
}

#[test]
fn explain_annotates_stage_partitioning() {
    let shell = shell();
    let out = shell
        .explain("SELECT STREAM * FROM Orders WHERE units > 50")
        .unwrap();
    assert!(
        out.contains("partition=productId"),
        "explain must show the partitioning key per stage:\n{out}"
    );
}
