//! End-to-end tests: every paper query executed through the full stack —
//! shell → planner → job config → metadata store → task-side re-planning →
//! message router → operators → output topic.

use samzasql_core::shell::SamzaSqlShell;
use samzasql_kafka::{Broker, TopicConfig};
use samzasql_serde::{Schema, Value};
use std::time::Duration;

fn orders_schema() -> Schema {
    Schema::record(
        "Orders",
        vec![
            ("rowtime", Schema::Timestamp),
            ("productId", Schema::Int),
            ("orderId", Schema::Long),
            ("units", Schema::Int),
        ],
    )
}

fn order(ts: i64, product: i32, order_id: i64, units: i32) -> Value {
    Value::record(vec![
        ("rowtime", Value::Timestamp(ts)),
        ("productId", Value::Int(product)),
        ("orderId", Value::Long(order_id)),
        ("units", Value::Int(units)),
    ])
}

fn shell_with_orders(partitions: u32) -> SamzaSqlShell {
    let broker = Broker::new();
    broker
        .create_topic("orders", TopicConfig::with_partitions(partitions))
        .unwrap();
    let mut shell = SamzaSqlShell::new(broker);
    shell
        .register_stream("Orders", "orders", orders_schema(), "rowtime")
        .unwrap();
    shell.set_partition_key("Orders", "productId").unwrap();
    shell
}

// ------------------------------------------------------------- streaming

#[test]
fn streaming_filter_query() {
    let mut shell = shell_with_orders(2);
    let mut handle = shell
        .submit("SELECT STREAM * FROM Orders WHERE units > 50")
        .unwrap();
    for i in 0..20 {
        shell
            .produce("Orders", order(i, (i % 3) as i32, i, (i * 10) as i32))
            .unwrap();
    }
    // units > 50 ⇒ i*10 > 50 ⇒ i in 6..20 ⇒ 14 rows.
    let rows = handle.await_outputs(14, Duration::from_secs(10)).unwrap();
    assert_eq!(rows.len(), 14);
    for r in &rows {
        assert!(r.field("units").unwrap().as_i64().unwrap() > 50);
    }
    handle.stop().unwrap();
}

#[test]
fn streaming_projection_keeps_timestamp() {
    let mut shell = shell_with_orders(2);
    let mut handle = shell
        .submit("SELECT STREAM rowtime, productId, units FROM Orders")
        .unwrap();
    assert!(handle.warnings.is_empty(), "{:?}", handle.warnings);
    shell.produce("Orders", order(42, 7, 1, 30)).unwrap();
    let rows = handle.await_outputs(1, Duration::from_secs(10)).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].field("rowtime"), Some(&Value::Timestamp(42)));
    assert_eq!(rows[0].field("productId"), Some(&Value::Int(7)));
    assert_eq!(rows[0].field("units"), Some(&Value::Int(30)));
    assert_eq!(rows[0].field("orderId"), None, "projected away");
    handle.stop().unwrap();
}

#[test]
fn timestamp_drop_warning_surfaces_on_handle() {
    let mut shell = shell_with_orders(1);
    let handle = shell
        .submit("SELECT STREAM productId, units FROM Orders")
        .unwrap();
    assert!(handle.warnings.iter().any(|w| w.contains("timestamp")));
    handle.stop().unwrap();
}

#[test]
fn streaming_sliding_window_running_sums() {
    let mut shell = shell_with_orders(1);
    let mut handle = shell
        .submit(
            "SELECT STREAM rowtime, productId, units, \
             SUM(units) OVER (PARTITION BY productId ORDER BY rowtime \
             RANGE INTERVAL '5' MINUTE PRECEDING) unitsLastFiveMinutes FROM Orders",
        )
        .unwrap();
    // Product 1: units 10 at t=0, 20 at t=1min, 5 at t=10min (first two expire).
    shell.produce("Orders", order(0, 1, 1, 10)).unwrap();
    shell.produce("Orders", order(60_000, 1, 2, 20)).unwrap();
    shell.produce("Orders", order(600_000, 1, 3, 5)).unwrap();
    let rows = handle.await_outputs(3, Duration::from_secs(10)).unwrap();
    assert_eq!(rows.len(), 3);
    let sums: Vec<i64> = rows
        .iter()
        .map(|r| r.field("unitsLastFiveMinutes").unwrap().as_i64().unwrap())
        .collect();
    assert_eq!(sums, vec![10, 30, 5]);
    handle.stop().unwrap();
}

#[test]
fn streaming_tumbling_window_counts() {
    let mut shell = shell_with_orders(1);
    let mut handle = shell
        .submit(
            "SELECT STREAM START(rowtime), COUNT(*) FROM Orders \
             GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)",
        )
        .unwrap();
    let hour = 3_600_000;
    // 3 orders in hour 0, 2 in hour 1, 1 in hour 2 (closes hour 1).
    for (i, ts) in [10, 20, 30, hour + 1, hour + 2, 2 * hour + 1]
        .iter()
        .enumerate()
    {
        shell.produce("Orders", order(*ts, 1, i as i64, 1)).unwrap();
    }
    let rows = handle.await_outputs(2, Duration::from_secs(10)).unwrap();
    assert_eq!(rows.len(), 2, "hours 0 and 1 closed: {rows:?}");
    assert_eq!(rows[0].field("count_1"), Some(&Value::Long(3)));
    assert_eq!(rows[1].field("count_1"), Some(&Value::Long(2)));
    handle.stop().unwrap();
}

#[test]
fn streaming_stream_to_relation_join() {
    let broker = Broker::new();
    broker
        .create_topic("orders", TopicConfig::with_partitions(2))
        .unwrap();
    broker
        .create_topic("products-changelog", TopicConfig::with_partitions(2))
        .unwrap();
    let mut shell = SamzaSqlShell::new(broker);
    shell
        .register_stream("Orders", "orders", orders_schema(), "rowtime")
        .unwrap();
    shell.set_partition_key("Orders", "productId").unwrap();
    shell
        .register_table(
            "Products",
            "products-changelog",
            Schema::record(
                "Products",
                vec![
                    ("productId", Schema::Int),
                    ("name", Schema::String),
                    ("supplierId", Schema::Int),
                ],
            ),
            "productId",
        )
        .unwrap();
    // Relation first (bootstrap), then the stream.
    for pid in 0..4 {
        shell
            .produce_relation(
                "Products",
                Value::record(vec![
                    ("productId", Value::Int(pid)),
                    ("name", Value::String(format!("product-{pid}"))),
                    ("supplierId", Value::Int(100 + pid)),
                ]),
            )
            .unwrap();
    }
    let mut handle = shell
        .submit(
            "SELECT STREAM Orders.rowtime, Orders.orderId, Orders.productId, \
             Orders.units, Products.supplierId \
             FROM Orders JOIN Products ON Orders.productId = Products.productId",
        )
        .unwrap();
    for i in 0..10 {
        shell
            .produce("Orders", order(i, (i % 4) as i32, i, 5))
            .unwrap();
    }
    let rows = handle.await_outputs(10, Duration::from_secs(10)).unwrap();
    assert_eq!(rows.len(), 10);
    for r in &rows {
        let pid = r.field("productId").unwrap().as_i64().unwrap();
        let sid = r.field("supplierId").unwrap().as_i64().unwrap();
        assert_eq!(sid, 100 + pid, "joined supplier matches product: {r}");
    }
    handle.stop().unwrap();
}

#[test]
fn join_reflects_relation_updates_and_deletes() {
    let broker = Broker::new();
    broker
        .create_topic("orders", TopicConfig::with_partitions(1))
        .unwrap();
    broker
        .create_topic("products-changelog", TopicConfig::with_partitions(1))
        .unwrap();
    let mut shell = SamzaSqlShell::new(broker);
    shell
        .register_stream("Orders", "orders", orders_schema(), "rowtime")
        .unwrap();
    shell.set_partition_key("Orders", "productId").unwrap();
    shell
        .register_table(
            "Products",
            "products-changelog",
            Schema::record(
                "Products",
                vec![
                    ("productId", Schema::Int),
                    ("name", Schema::String),
                    ("supplierId", Schema::Int),
                ],
            ),
            "productId",
        )
        .unwrap();
    shell
        .produce_relation(
            "Products",
            Value::record(vec![
                ("productId", Value::Int(1)),
                ("name", Value::String("a".into())),
                ("supplierId", Value::Int(100)),
            ]),
        )
        .unwrap();
    let mut handle = shell
        .submit(
            "SELECT STREAM Orders.rowtime, Orders.productId, Products.supplierId \
             FROM Orders JOIN Products ON Orders.productId = Products.productId",
        )
        .unwrap();
    shell.produce("Orders", order(1, 1, 1, 5)).unwrap();
    let rows = handle.await_outputs(1, Duration::from_secs(10)).unwrap();
    assert_eq!(rows[0].field("supplierId"), Some(&Value::Int(100)));

    // Update the relation, then join again.
    shell
        .produce_relation(
            "Products",
            Value::record(vec![
                ("productId", Value::Int(1)),
                ("name", Value::String("a".into())),
                ("supplierId", Value::Int(200)),
            ]),
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(50)); // let the changelog apply
    shell.produce("Orders", order(2, 1, 2, 5)).unwrap();
    let rows = handle.await_outputs(1, Duration::from_secs(10)).unwrap();
    assert_eq!(rows[0].field("supplierId"), Some(&Value::Int(200)));

    // Delete the relation row; further orders stop joining.
    shell.delete_relation("Products", &Value::Int(1)).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    shell.produce("Orders", order(3, 1, 3, 5)).unwrap();
    let rows = handle.await_outputs(1, Duration::from_millis(300)).unwrap();
    assert!(
        rows.is_empty(),
        "deleted relation row no longer joins: {rows:?}"
    );
    handle.stop().unwrap();
}

#[test]
fn streaming_stream_to_stream_packet_join() {
    let broker = Broker::new();
    broker
        .create_topic("packetsr1", TopicConfig::with_partitions(1))
        .unwrap();
    broker
        .create_topic("packetsr2", TopicConfig::with_partitions(1))
        .unwrap();
    let mut shell = SamzaSqlShell::new(broker);
    let packet_schema = |name: &str| {
        Schema::record(
            name,
            vec![
                ("rowtime", Schema::Timestamp),
                ("sourcetime", Schema::Timestamp),
                ("packetId", Schema::Long),
            ],
        )
    };
    shell
        .register_stream(
            "PacketsR1",
            "packetsr1",
            packet_schema("PacketsR1"),
            "rowtime",
        )
        .unwrap();
    shell
        .register_stream(
            "PacketsR2",
            "packetsr2",
            packet_schema("PacketsR2"),
            "rowtime",
        )
        .unwrap();
    let mut handle = shell
        .submit(
            "SELECT STREAM GREATEST(PacketsR1.rowtime, PacketsR2.rowtime) AS rowtime, \
             PacketsR1.sourcetime, PacketsR1.packetId, \
             PacketsR2.rowtime - PacketsR1.rowtime AS timeToTravel \
             FROM PacketsR1 JOIN PacketsR2 ON \
             PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND \
             AND PacketsR2.rowtime + INTERVAL '2' SECOND \
             AND PacketsR1.packetId = PacketsR2.packetId",
        )
        .unwrap();
    let packet = |ts: i64, id: i64| {
        Value::record(vec![
            ("rowtime", Value::Timestamp(ts)),
            ("sourcetime", Value::Timestamp(ts)),
            ("packetId", Value::Long(id)),
        ])
    };
    // Packet 1 travels R1→R2 in 800ms (joins); packet 2 takes 5s (outside window).
    shell.produce("PacketsR1", packet(1_000, 1)).unwrap();
    shell.produce("PacketsR2", packet(1_800, 1)).unwrap();
    shell.produce("PacketsR1", packet(2_000, 2)).unwrap();
    shell.produce("PacketsR2", packet(7_000, 2)).unwrap();
    let rows = handle.await_outputs(1, Duration::from_secs(10)).unwrap();
    assert_eq!(rows.len(), 1, "{rows:?}");
    assert_eq!(rows[0].field("packetId"), Some(&Value::Long(1)));
    assert_eq!(rows[0].field("timeToTravel"), Some(&Value::Long(800)));
    assert_eq!(
        rows[0].field("rowtime"),
        Some(&Value::Timestamp(1_800)),
        "GREATEST of the two"
    );
    handle.stop().unwrap();
}

// --------------------------------------------------------------- bounded

#[test]
fn bounded_query_reads_history() {
    let mut shell = shell_with_orders(2);
    for i in 0..10 {
        shell
            .produce("Orders", order(i, (i % 2) as i32, i, (i * 10) as i32))
            .unwrap();
    }
    // Absence of STREAM: history-as-table (§3.3).
    let rows = shell
        .query("SELECT * FROM Orders WHERE units >= 50")
        .unwrap();
    assert_eq!(rows.len(), 5);
}

#[test]
fn bounded_aggregate_with_having() {
    let mut shell = shell_with_orders(1);
    for i in 0..9 {
        shell
            .produce("Orders", order(i, (i % 3) as i32, i, 10))
            .unwrap();
    }
    shell.produce("Orders", order(100, 0, 99, 10)).unwrap();
    // Product 0 has 4 orders, products 1 and 2 have 3.
    let rows = shell
        .query("SELECT productId, COUNT(*) AS c FROM Orders GROUP BY productId HAVING COUNT(*) > 3")
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].field("productId"), Some(&Value::Int(0)));
    assert_eq!(rows[0].field("c"), Some(&Value::Long(4)));
}

#[test]
fn bounded_order_by_limit() {
    let mut shell = shell_with_orders(1);
    for (i, units) in [30, 10, 50, 20, 40].iter().enumerate() {
        shell
            .produce("Orders", order(i as i64, 1, i as i64, *units))
            .unwrap();
    }
    let rows = shell
        .query("SELECT units FROM Orders ORDER BY units DESC LIMIT 3")
        .unwrap();
    let units: Vec<i64> = rows
        .iter()
        .map(|r| r.field("units").unwrap().as_i64().unwrap())
        .collect();
    assert_eq!(units, vec![50, 40, 30]);
}

#[test]
fn view_definition_then_bounded_consumption() {
    // Listing 3's HourlyOrderTotals, bounded.
    let mut shell = shell_with_orders(1);
    let hour = 3_600_000i64;
    // Product 1: 3 orders in hour 0 (15 units); product 2: 1 order (30 units).
    shell.produce("Orders", order(10, 1, 1, 5)).unwrap();
    shell.produce("Orders", order(20, 1, 2, 5)).unwrap();
    shell.produce("Orders", order(30, 1, 3, 5)).unwrap();
    shell.produce("Orders", order(hour / 2, 2, 4, 30)).unwrap();
    shell
        .execute_ddl(
            "CREATE VIEW HourlyOrderTotals (rowtime, productId, c, su) AS \
             SELECT FLOOR(rowtime TO HOUR), productId, COUNT(*), SUM(units) \
             FROM Orders GROUP BY FLOOR(rowtime TO HOUR), productId",
        )
        .unwrap();
    let rows = shell
        .query("SELECT rowtime, productId FROM HourlyOrderTotals WHERE c > 2 OR su > 10")
        .unwrap();
    assert_eq!(rows.len(), 2, "both products qualify: {rows:?}");
}

#[test]
fn bounded_case_expression() {
    let mut shell = shell_with_orders(1);
    shell.produce("Orders", order(1, 1, 1, 5)).unwrap();
    shell.produce("Orders", order(2, 1, 2, 50)).unwrap();
    let rows = shell
        .query("SELECT orderId, CASE WHEN units > 10 THEN 'big' ELSE 'small' END AS sz FROM Orders")
        .unwrap();
    assert_eq!(rows[0].field("sz"), Some(&Value::String("small".into())));
    assert_eq!(rows[1].field("sz"), Some(&Value::String("big".into())));
}

// ----------------------------------------------------------- extensions

#[test]
fn user_defined_aggregate_in_query() {
    use samzasql_core::udaf::GeometricMean;
    let mut shell = shell_with_orders(1);
    shell.register_udaf("GEO_MEAN", std::sync::Arc::new(GeometricMean));
    shell.produce("Orders", order(1, 1, 1, 2)).unwrap();
    shell.produce("Orders", order(2, 1, 2, 8)).unwrap();
    let rows = shell
        .query("SELECT productId, GEO_MEAN(units) AS g FROM Orders GROUP BY productId")
        .unwrap();
    assert_eq!(rows.len(), 1);
    match rows[0].field("g") {
        Some(Value::Double(v)) => assert!((v - 4.0).abs() < 1e-9, "gm(2,8)=4, got {v}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn repartition_split_runs_as_two_jobs() {
    // Orders partitioned by orderId, joined on productId ⇒ repartition stage.
    let broker = Broker::new();
    broker
        .create_topic("orders", TopicConfig::with_partitions(2))
        .unwrap();
    broker
        .create_topic("products-changelog", TopicConfig::with_partitions(2))
        .unwrap();
    let mut shell = SamzaSqlShell::new(broker);
    shell
        .register_stream("Orders", "orders", orders_schema(), "rowtime")
        .unwrap();
    shell.set_partition_key("Orders", "orderId").unwrap();
    shell
        .register_table(
            "Products",
            "products-changelog",
            Schema::record(
                "Products",
                vec![
                    ("productId", Schema::Int),
                    ("name", Schema::String),
                    ("supplierId", Schema::Int),
                ],
            ),
            "productId",
        )
        .unwrap();
    assert!(shell
        .explain(
            "SELECT STREAM Orders.rowtime, Products.supplierId \
             FROM Orders JOIN Products ON Orders.productId = Products.productId"
        )
        .unwrap()
        .contains("RepartitionOp"));
    for pid in 0..4 {
        shell
            .produce_relation(
                "Products",
                Value::record(vec![
                    ("productId", Value::Int(pid)),
                    ("name", Value::String("p".into())),
                    ("supplierId", Value::Int(100 + pid)),
                ]),
            )
            .unwrap();
    }
    let mut handle = shell
        .submit(
            "SELECT STREAM Orders.rowtime, Products.supplierId \
             FROM Orders JOIN Products ON Orders.productId = Products.productId",
        )
        .unwrap();
    for i in 0..8 {
        shell
            .produce("Orders", order(i, (i % 4) as i32, 1_000 + i, 5))
            .unwrap();
    }
    let rows = handle.await_outputs(8, Duration::from_secs(10)).unwrap();
    assert_eq!(
        rows.len(),
        8,
        "all orders joined after repartitioning: {rows:?}"
    );
    handle.stop().unwrap();
}

#[test]
fn explain_and_errors_through_shell() {
    let mut shell = shell_with_orders(1);
    let plan = shell
        .explain("SELECT STREAM * FROM Orders WHERE units > 50")
        .unwrap();
    assert!(plan.contains("FilterOp"));
    assert!(
        shell.submit("SELECT * FROM Orders").is_err(),
        "bounded via submit rejected"
    );
    assert!(
        shell.query("SELECT STREAM * FROM Orders").is_err(),
        "stream via query rejected"
    );
    assert!(shell.query("SELECT ghost FROM Orders").is_err());
}

#[test]
fn kappa_pipeline_query_over_query_output() {
    // Compose: query 1 filters large orders to its output topic; register
    // that topic as a stream; query 2 windows over it.
    let mut shell = shell_with_orders(1);
    let q1 = shell
        .submit("SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 20")
        .unwrap();
    let out1 = q1.output_topic().to_string();
    shell
        .register_stream(
            "BigOrders",
            &out1,
            Schema::record(
                "BigOrders",
                vec![
                    ("rowtime", Schema::Timestamp),
                    ("productId", Schema::Int),
                    ("units", Schema::Int),
                ],
            ),
            "rowtime",
        )
        .unwrap();
    let mut q2 = shell
        .submit(
            "SELECT STREAM rowtime, productId, units, \
             COUNT(*) OVER (PARTITION BY productId ORDER BY rowtime \
             RANGE INTERVAL '1' HOUR PRECEDING) bigOrdersLastHour FROM BigOrders",
        )
        .unwrap();
    for i in 0..6 {
        shell
            .produce("Orders", order(i * 1_000, 1, i, (i * 10) as i32))
            .unwrap();
    }
    // units > 20 ⇒ i in 3..6 ⇒ 3 rows through both stages.
    let rows = q2.await_outputs(3, Duration::from_secs(10)).unwrap();
    assert_eq!(rows.len(), 3, "{rows:?}");
    let counts: Vec<i64> = rows
        .iter()
        .map(|r| r.field("bigOrdersLastHour").unwrap().as_i64().unwrap())
        .collect();
    assert_eq!(
        counts,
        vec![1, 2, 3],
        "running count over the derived stream"
    );
    q2.stop().unwrap();
    q1.stop().unwrap();
}

#[test]
fn direct_data_api_produces_identical_results() {
    // §7 item 5: the optimized code path must change performance only.
    let run = |direct: bool| -> Vec<Value> {
        let mut shell = shell_with_orders(2);
        shell.direct_data_api = direct;
        let mut handle = shell
            .submit("SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 30")
            .unwrap();
        for i in 0..40 {
            shell
                .produce("Orders", order(i, (i % 3) as i32, i, (i % 7) as i32 * 10))
                .unwrap();
        }
        let rows = handle.await_outputs(22, Duration::from_secs(10)).unwrap();
        handle.stop().unwrap();
        rows
    };
    let proto = run(false);
    let direct = run(true);
    assert!(!proto.is_empty());
    assert_eq!(proto, direct, "direct data API must be result-identical");
}
