//! Integration tests for the unified observability subsystem: EXPLAIN
//! ANALYZE over the paper's four §5.1 query shapes, the shell's METRICS
//! command, and the guarantee that enabling metrics/profiling never changes
//! query output — even under seeded broker fault injection.

use samzasql_core::shell::SamzaSqlShell;
use samzasql_kafka::{Broker, FaultInjector, FaultKind, FaultSchedule, FaultSpec};
use samzasql_serde::Value;
use samzasql_workload::{orders_schema, products_schema};

/// Tiny deterministic PRNG (xorshift64*), so every run feeds identical
/// input without an external randomness dependency.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Shell over a fresh broker with the paper's Orders stream and Products
/// table registered and seeded with deterministic data.
fn seeded_shell(broker: Broker, seed: u64, orders: usize) -> SamzaSqlShell {
    let mut shell = SamzaSqlShell::new(broker);
    shell
        .register_stream("Orders", "orders", orders_schema(), "rowtime")
        .unwrap();
    shell.set_partition_key("Orders", "productId").unwrap();
    shell
        .register_table(
            "Products",
            "products-changelog",
            products_schema(),
            "productId",
        )
        .unwrap();
    let mut rng = Rng::new(seed);
    for p in 0..10 {
        shell
            .produce_relation(
                "Products",
                Value::record(vec![
                    ("productId", Value::Int(p)),
                    ("name", Value::String(format!("p{p}"))),
                    ("supplierId", Value::Int(p % 5)),
                ]),
            )
            .unwrap();
    }
    for i in 0..orders {
        shell
            .produce(
                "Orders",
                Value::record(vec![
                    ("rowtime", Value::Timestamp(i as i64 * 1_000)),
                    ("productId", Value::Int(rng.below(10) as i32)),
                    ("orderId", Value::Long(i as i64)),
                    ("units", Value::Int(rng.below(100) as i32)),
                    ("pad", Value::String("xxxxxxxx".into())),
                ]),
            )
            .unwrap();
    }
    shell
}

const FILTER: &str = "SELECT STREAM * FROM Orders WHERE units > 50";
const PROJECT: &str = "SELECT STREAM rowtime, productId, units FROM Orders";
const SLIDING_WINDOW: &str = "SELECT STREAM rowtime, productId, units, \
     SUM(units) OVER (PARTITION BY productId ORDER BY rowtime \
     RANGE INTERVAL '5' MINUTE PRECEDING) unitsLastFiveMinutes FROM Orders";
const S2R_JOIN: &str = "SELECT STREAM Orders.rowtime, Orders.productId, \
     Orders.units, Products.name, Products.supplierId \
     FROM Orders JOIN Products ON Orders.productId = Products.productId";

#[test]
fn explain_analyze_annotates_all_four_paper_shapes() {
    let mut shell = seeded_shell(Broker::new(), 21, 200);
    for (shape, sql) in [
        ("filter", FILTER),
        ("project", PROJECT),
        ("sliding-window", SLIDING_WINDOW),
        ("join", S2R_JOIN),
    ] {
        let report = shell
            .explain_analyze(&format!("EXPLAIN ANALYZE {sql}"))
            .unwrap();
        // Every operator line carries rows-in/rows-out, batch counts,
        // selectivity, and time share; scan leaves report rows and bytes.
        for needle in ["rows=", "batches=", "sel=", "time=", "bytes="] {
            assert!(
                report.contains(needle),
                "{shape}: missing {needle:?} in report:\n{report}"
            );
        }
        assert!(
            !report.contains("rows=0\u{2192}0"),
            "{shape}: sample run fed no rows:\n{report}"
        );
        let outputs: u64 = report
            .lines()
            .find_map(|l| l.strip_prefix("sample output rows: "))
            .expect("report ends with the sample row count")
            .parse()
            .unwrap();
        assert!(outputs > 0, "{shape}: sample produced no output:\n{report}");
    }
    // The join shape also reports relation-side scan traffic on the join
    // operator's line.
    let join_report = shell.explain_analyze(S2R_JOIN).unwrap();
    assert!(
        join_report.contains("rel_rows=10"),
        "join report misses relation rows:\n{join_report}"
    );
}

#[test]
fn metrics_command_renders_broker_task_and_operator_series() {
    let mut shell = seeded_shell(Broker::new(), 33, 120);
    shell.profile_operators = true;
    let rows = shell
        .query("SELECT * FROM Orders WHERE units > 50")
        .unwrap();
    assert!(!rows.is_empty());

    let all = shell.metrics("METRICS");
    for series in [
        "kafka.broker.messages_in",
        "samza.task.messages_processed",
        "core.operator.rows_in",
        "core.scan.rows",
    ] {
        assert!(all.contains(series), "missing {series} in:\n{all}");
    }
    // Prefix filtering narrows to one namespace.
    let broker_only = shell.metrics("METRICS kafka.broker.");
    assert!(broker_only.contains("kafka.broker.bytes_in"));
    assert!(!broker_only.contains("samza.task."));
    assert!(shell
        .metrics("METRICS no.such.prefix")
        .starts_with("no metrics"));

    // The same registry snapshot renders as valid Prometheus exposition.
    let prom = samzasql_obs::render_prometheus(&shell.metrics_registry().snapshot());
    samzasql_obs::validate_prometheus(&prom).unwrap();
}

/// Run a stateful bounded query under seeded transient-fault injection on
/// the input topics and return the raw bytes of the output topic.
fn chaos_query_output(seed: u64, profile: bool) -> Vec<Vec<u8>> {
    let broker = Broker::new();
    let mut shell = seeded_shell(broker.clone(), seed, 300);
    shell.profile_operators = profile;
    // Faults land after the inputs are seeded, so only the job's fetch path
    // (which retries) sees them — the injection schedule is derived from
    // the seed and the operation sequence, identical across both runs.
    let injector = FaultInjector::with_specs(
        seed,
        vec![
            FaultSpec::any(FaultKind::TransientError, FaultSchedule::Probability(0.2))
                .on_topic("orders"),
            FaultSpec::any(FaultKind::TransientError, FaultSchedule::EveryNth(7))
                .on_topic("products-changelog"),
        ],
    );
    broker.set_fault_injector(Some(injector));
    let rows = shell
        .query("SELECT productId, COUNT(*) AS c, SUM(units) AS su FROM Orders GROUP BY productId")
        .unwrap();
    assert!(!rows.is_empty());
    broker.set_fault_injector(None);

    let mut raw = Vec::new();
    for p in 0..broker.partition_count("samzasql-q1-output").unwrap() {
        let mut off = 0;
        loop {
            let batch = broker.fetch("samzasql-q1-output", p, off, 1024).unwrap();
            if batch.records.is_empty() {
                break;
            }
            for rec in batch.records {
                off = rec.offset + 1;
                raw.push(rec.message.value.to_vec());
            }
        }
    }
    raw
}

#[test]
fn metrics_enabled_chaos_run_output_is_byte_identical_to_disabled() {
    for seed in [5, 91] {
        let profiled = chaos_query_output(seed, true);
        let plain = chaos_query_output(seed, false);
        assert_eq!(
            profiled, plain,
            "profiling changed query output bytes (seed {seed})"
        );
    }
}
