//! Property test for the batched pipeline: for the paper's four §5.1 query
//! shapes, routing a message sequence through [`MessageRouter::route_batch`]
//! in arbitrary batch splits produces *byte-identical* output to routing the
//! same sequence one message at a time — including relation tombstones
//! mid-stream and the end-of-input flush.
//!
//! This is the refactor's safety net: batching is purely an execution-
//! strategy change, never a semantics change.

use bytes::Bytes;
use samzasql_core::router::MessageRouter;
use samzasql_core::udaf::UdafRegistry;
use samzasql_kafka::Message;
use samzasql_planner::{Catalog, Planner};
use samzasql_samza::KeyValueStore;
use samzasql_serde::avro::AvroCodec;
use samzasql_serde::object::ObjectCodec;
use samzasql_serde::Value;
use samzasql_workload::{orders_schema, products_schema};

/// Tiny deterministic PRNG (xorshift64*) — the test takes no dependency on
/// an external randomness crate and every failure reproduces from the seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn planner() -> Planner {
    let mut catalog = Catalog::new();
    catalog
        .register_stream("Orders", "orders", orders_schema(), "rowtime")
        .unwrap();
    catalog.set_partition_key("Orders", "productId").unwrap();
    catalog
        .register_table("Products", "products-changelog", products_schema())
        .unwrap();
    catalog.set_partition_key("Products", "productId").unwrap();
    Planner::new(catalog)
}

fn build_router(sql: &str) -> MessageRouter {
    let planned = planner().plan(sql).unwrap();
    MessageRouter::build(&planned, &UdafRegistry::new()).unwrap()
}

fn order_message(rng: &mut Rng, seq: i64) -> Message {
    let product = rng.below(10) as i32;
    let value = Value::record(vec![
        // Mostly increasing rowtimes with jitter, so sliding windows see
        // occasional out-of-order (late) tuples on both paths.
        (
            "rowtime",
            Value::Timestamp(seq * 1_000 + rng.below(5_000) as i64 - 2_500),
        ),
        ("productId", Value::Int(product)),
        ("orderId", Value::Long(seq)),
        ("units", Value::Int(rng.below(100) as i32)),
        ("pad", Value::String("xxxxxxxx".into())),
    ]);
    Message {
        key: Some(ObjectCodec::new().encode(&Value::Int(product)).unwrap()),
        value: AvroCodec::new(orders_schema()).encode(&value).unwrap(),
        timestamp: 0,
    }
}

fn product_message(rng: &mut Rng) -> Message {
    let product = rng.below(10) as i32;
    if rng.below(4) == 0 {
        // Tombstone: empty payload deletes the relation row mid-stream.
        Message {
            key: Some(ObjectCodec::new().encode(&Value::Int(product)).unwrap()),
            value: Bytes::new(),
            timestamp: 0,
        }
    } else {
        let value = Value::record(vec![
            ("productId", Value::Int(product)),
            ("name", Value::String(format!("p{product}"))),
            ("supplierId", Value::Int(rng.below(5) as i32)),
        ]);
        Message {
            key: Some(ObjectCodec::new().encode(&Value::Int(product)).unwrap()),
            value: AvroCodec::new(products_schema()).encode(&value).unwrap(),
            timestamp: 0,
        }
    }
}

/// Build the input sequence: `(topic, message)` pairs. For joins, a relation
/// snapshot leads (mirroring the bootstrap phase) and further upserts and
/// tombstones interleave with the order stream.
fn input_sequence(rng: &mut Rng, n: usize, with_products: bool) -> Vec<(&'static str, Message)> {
    let mut seq = Vec::new();
    if with_products {
        for _ in 0..10 {
            seq.push(("products-changelog", product_message(rng)));
        }
    }
    for i in 0..n {
        if with_products && rng.below(5) == 0 {
            seq.push(("products-changelog", product_message(rng)));
        }
        seq.push(("orders", order_message(rng, i as i64)));
    }
    seq
}

/// Encoded outputs flattened into comparable bytes.
fn fingerprint(
    outputs: &[samzasql_core::ops::insert::EncodedOutput],
) -> Vec<(Vec<u8>, i64, Option<Vec<u8>>)> {
    outputs
        .iter()
        .map(|o| {
            (
                o.payload.to_vec(),
                o.timestamp,
                o.key.as_ref().map(|k| k.to_vec()),
            )
        })
        .collect()
}

/// Run `messages` through a fresh router one message at a time (the
/// reference path), returning outputs + flush outputs.
fn run_reference(
    sql: &str,
    messages: &[(&'static str, Message)],
) -> Vec<(Vec<u8>, i64, Option<Vec<u8>>)> {
    let mut router = build_router(sql);
    let mut store = KeyValueStore::ephemeral("ref");
    let mut outputs = Vec::new();
    for (topic, m) in messages {
        outputs.extend(
            router
                .route(topic, m.key.as_ref(), &m.value, Some(&mut store))
                .unwrap(),
        );
    }
    outputs.extend(router.flush(Some(&mut store)).unwrap());
    fingerprint(&outputs)
}

/// Run `messages` through a fresh router in random batch splits, feeding
/// each split's consecutive same-topic runs to `route_batch` — exactly how
/// the container delivers fetch slices.
fn run_batched(
    sql: &str,
    messages: &[(&'static str, Message)],
    rng: &mut Rng,
) -> Vec<(Vec<u8>, i64, Option<Vec<u8>>)> {
    let mut router = build_router(sql);
    let mut store = KeyValueStore::ephemeral("batched");
    let mut outputs = Vec::new();
    let mut i = 0;
    while i < messages.len() {
        let batch = (1 + rng.below(17) as usize).min(messages.len() - i);
        let slice = &messages[i..i + batch];
        let mut j = 0;
        while j < slice.len() {
            let topic = slice[j].0;
            let mut k = j + 1;
            while k < slice.len() && slice[k].0 == topic {
                k += 1;
            }
            router
                .route_batch(
                    topic,
                    slice[j..k].iter().map(|(_, m)| (m.key.as_ref(), &m.value)),
                    Some(&mut store),
                    &mut outputs,
                )
                .unwrap();
            j = k;
        }
        i += batch;
    }
    router.flush_into(Some(&mut store), &mut outputs).unwrap();
    fingerprint(&outputs)
}

fn check_equivalence(sql: &str, with_products: bool, seed: u64) {
    let mut gen_rng = Rng::new(seed);
    let messages = input_sequence(&mut gen_rng, 300, with_products);
    let reference = run_reference(sql, &messages);
    assert!(
        !reference.is_empty(),
        "shape produced no output — test would be vacuous: {sql}"
    );
    for trial in 0..8 {
        let mut split_rng = Rng::new(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(trial + 1)));
        let batched = run_batched(sql, &messages, &mut split_rng);
        assert_eq!(
            batched, reference,
            "batched output diverged (seed {seed}, trial {trial}): {sql}"
        );
    }
}

#[test]
fn filter_batched_equals_per_message() {
    check_equivalence("SELECT STREAM * FROM Orders WHERE units > 50", false, 7);
}

#[test]
fn project_batched_equals_per_message() {
    check_equivalence(
        "SELECT STREAM rowtime, productId, units FROM Orders",
        false,
        11,
    );
}

#[test]
fn sliding_window_batched_equals_per_message() {
    check_equivalence(
        "SELECT STREAM rowtime, productId, units, \
         SUM(units) OVER (PARTITION BY productId ORDER BY rowtime \
         RANGE INTERVAL '5' MINUTE PRECEDING) unitsLastFiveMinutes FROM Orders",
        false,
        13,
    );
}

#[test]
fn stream_to_relation_join_batched_equals_per_message() {
    check_equivalence(
        "SELECT STREAM Orders.rowtime, Orders.orderId, Orders.productId, \
         Orders.units, Products.supplierId \
         FROM Orders JOIN Products ON Orders.productId = Products.productId",
        true,
        17,
    );
}
