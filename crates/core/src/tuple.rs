//! Array tuples and the Avro↔array conversions of Figure 4.
//!
//! §5.1: "The current prototype implementation of SamzaSQL implements SQL
//! expressions on top of a tuple represented as an array in memory, and we
//! convert incoming messages to an array at the scan operator and the array
//! back to an Avro record in the stream insert operator." Those two
//! conversions (`AvroToArray` / `ArrayToAvro`) are the measured cause of
//! SamzaSQL's 30–40% filter/project throughput deficit versus native Samza
//! jobs, so they are real work here, not a simulated delay.

use crate::error::{CoreError, Result};
use samzasql_serde::Value;

/// The in-memory tuple: one `Value` per column, in schema order.
pub type Tuple = Vec<Value>;

/// `AvroToArray`: unwrap a decoded record into the positional array the
/// expression layer operates on. Field order must already match the schema
/// (the Avro codec guarantees that).
pub fn record_to_array(value: Value) -> Result<Tuple> {
    match value {
        Value::Record(fields) => Ok(fields.into_iter().map(|(_, v)| v).collect()),
        other => Err(CoreError::Operator(format!(
            "scan expected a record message, got {}",
            other.type_name()
        ))),
    }
}

/// `ArrayToAvro`: rewrap an array tuple as a named record for encoding at
/// the stream insert operator. Takes the tuple by value so column values
/// move instead of cloning; only the column names are copied. (The insert
/// operator's hot path goes further and reuses one record buffer so the
/// names are cloned once per operator, not once per tuple — see
/// `ops::insert`.)
pub fn array_to_record(tuple: Tuple, names: &[String]) -> Result<Value> {
    if tuple.len() != names.len() {
        return Err(CoreError::Operator(format!(
            "arity mismatch: {} values for {} columns",
            tuple.len(),
            names.len()
        )));
    }
    Ok(Value::Record(names.iter().cloned().zip(tuple).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_record_array() {
        let rec = Value::record(vec![("a", Value::Int(1)), ("b", Value::String("x".into()))]);
        let arr = record_to_array(rec.clone()).unwrap();
        assert_eq!(arr, vec![Value::Int(1), Value::String("x".into())]);
        let back = array_to_record(arr, &["a".to_string(), "b".to_string()]).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn non_record_rejected() {
        assert!(record_to_array(Value::Int(1)).is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        assert!(array_to_record(vec![Value::Int(1)], &["a".into(), "b".into()]).is_err());
    }
}
