//! The SamzaSQL stream task.
//!
//! One instance runs per partition (Samza's `GroupByPartition`). At `init` it
//! performs **step two** of two-step planning (§4.2): it reads the streaming
//! SQL query from the coordination service (the ZooKeeper stand-in, under
//! `/samzasql/queries/<job>/sql`), re-plans it with the same planner the
//! shell used, and generates its operators and message router. `process`
//! then routes every delivered message through the operator DAG and emits
//! encoded results to the job's output stream.

use crate::error::Result as CoreResult;
use crate::ops::STATE_STORE;
use crate::router::{MessageRouter, QuerySpec};
use crate::udaf::UdafRegistry;
use samzasql_coord::Coord;
use samzasql_planner::Planner;
use samzasql_samza::{
    IncomingMessageEnvelope, MessageCollector, OutgoingMessageEnvelope, Result as SamzaResult,
    SamzaError, StreamTask, TaskContext, TaskCoordinator, TaskFactory,
};
use std::sync::Arc;

/// Observability wiring handed to tasks when the shell's
/// `profile_operators` flag is on: the registry per-operator instruments
/// publish into, and the clock busy time is measured against.
#[derive(Clone)]
pub struct TaskProfiling {
    pub registry: samzasql_obs::MetricsRegistry,
    pub clock: Arc<dyn samzasql_obs::TimeSource>,
}

/// How a task obtains its query plan at init.
#[derive(Clone)]
pub enum TaskPlanSource {
    /// Re-plan the SQL stored in the coordination service (normal jobs — the
    /// faithful two-step flow).
    Replan { planner: Arc<Planner> },
    /// Use a fixed stage spec (repartition-split jobs, where a stage is not
    /// expressible as standalone SQL).
    Fixed(Arc<QuerySpec>),
}

/// The generated streaming task executing one query (stage).
pub struct SamzaSqlTask {
    job_name: String,
    output_topic: String,
    coord: Coord,
    source: TaskPlanSource,
    udafs: Arc<UdafRegistry>,
    router: Option<MessageRouter>,
    /// Bounded queries flush window/sort state when `window()` fires.
    bounded: bool,
    /// Reusable staging buffer for encoded outputs (capacity persists
    /// across batches).
    out_buf: Vec<crate::ops::insert::EncodedOutput>,
    /// Per-operator profiling wiring (None = profiling off, zero overhead).
    profiling: Option<TaskProfiling>,
    /// Partition this task instance serves (labels its metrics).
    partition: u32,
}

impl SamzaSqlTask {
    pub fn new(
        job_name: impl Into<String>,
        output_topic: impl Into<String>,
        coord: Coord,
        source: TaskPlanSource,
        udafs: Arc<UdafRegistry>,
    ) -> Self {
        SamzaSqlTask {
            job_name: job_name.into(),
            output_topic: output_topic.into(),
            coord,
            source,
            udafs,
            router: None,
            bounded: false,
            out_buf: Vec::new(),
            profiling: None,
            partition: 0,
        }
    }

    /// Enable per-operator profiling for this task instance (builder style).
    pub fn with_profiling(mut self, profiling: TaskProfiling, partition: u32) -> Self {
        self.profiling = Some(profiling);
        self.partition = partition;
        self
    }

    /// Drain `out_buf` into the collector as outgoing envelopes.
    fn send_outputs(&mut self, collector: &mut MessageCollector) {
        for out in self.out_buf.drain(..) {
            let mut env = OutgoingMessageEnvelope::new(self.output_topic.clone(), out.payload)
                .at(out.timestamp);
            if let Some(k) = out.key {
                env = env.keyed(k);
            }
            collector.send(env);
        }
    }

    fn build_router(&mut self) -> CoreResult<()> {
        // The coordination service must carry the query — the shell wrote it
        // in step one. This is the handoff §4.2 describes.
        let sql = self
            .coord
            .get(format!("/samzasql/queries/{}/sql", self.job_name))
            .map(|(value, _)| value)
            .map_err(|_| {
                crate::error::CoreError::Shell(format!(
                    "coordination service has no query for job {}",
                    self.job_name
                ))
            })?;
        let (router, bounded) = match &self.source {
            TaskPlanSource::Replan { planner } => {
                let planned = planner.plan(&sql)?;
                (
                    MessageRouter::build(&planned, &self.udafs)?,
                    !planned.is_stream,
                )
            }
            TaskPlanSource::Fixed(spec) => (
                MessageRouter::build_spec(spec, &self.udafs)?,
                !spec.is_stream,
            ),
        };
        self.bounded = bounded;
        let mut router = router;
        if let Some(p) = &self.profiling {
            router.enable_profiling(p.clock.clone());
            let task = self.partition.to_string();
            router.register_profile(
                &p.registry,
                &[("job", self.job_name.as_str()), ("task", task.as_str())],
            );
        }
        self.router = Some(router);
        Ok(())
    }
}

impl StreamTask for SamzaSqlTask {
    fn init(&mut self, _ctx: &mut TaskContext) -> SamzaResult<()> {
        self.build_router().map_err(SamzaError::from)
    }

    fn process(
        &mut self,
        envelope: &IncomingMessageEnvelope,
        ctx: &mut TaskContext,
        collector: &mut MessageCollector,
        coordinator: &mut TaskCoordinator,
    ) -> SamzaResult<()> {
        self.process_batch(std::slice::from_ref(envelope), ctx, collector, coordinator)
            .map(|_| ())
    }

    fn process_batch(
        &mut self,
        envelopes: &[IncomingMessageEnvelope],
        ctx: &mut TaskContext,
        collector: &mut MessageCollector,
        _coordinator: &mut TaskCoordinator,
    ) -> SamzaResult<usize> {
        let router = self.router.as_mut().expect("init ran before process");
        let mut store = ctx.store_mut(STATE_STORE).ok();
        // Route each consecutive same-topic run as one batch.
        let mut i = 0;
        while i < envelopes.len() {
            let topic = &envelopes[i].tp.topic;
            let mut j = i + 1;
            while j < envelopes.len() && envelopes[j].tp.topic == *topic {
                j += 1;
            }
            router
                .route_batch(
                    topic,
                    envelopes[i..j].iter().map(|e| (e.key.as_ref(), &e.payload)),
                    store.as_deref_mut(),
                    &mut self.out_buf,
                )
                .map_err(SamzaError::from)?;
            i = j;
        }
        self.send_outputs(collector);
        Ok(envelopes.len())
    }

    fn window(
        &mut self,
        ctx: &mut TaskContext,
        collector: &mut MessageCollector,
        _coordinator: &mut TaskCoordinator,
    ) -> SamzaResult<()> {
        if !self.bounded {
            return Ok(());
        }
        let router = self.router.as_mut().expect("init ran before window");
        let store = ctx.store_mut(STATE_STORE).ok();
        router
            .flush_into(store, &mut self.out_buf)
            .map_err(SamzaError::from)?;
        self.send_outputs(collector);
        Ok(())
    }
}

/// Factory creating one [`SamzaSqlTask`] per partition.
pub struct SamzaSqlTaskFactory {
    pub job_name: String,
    pub output_topic: String,
    pub coord: Coord,
    pub source: TaskPlanSource,
    pub udafs: Arc<UdafRegistry>,
    /// Per-operator profiling wiring (None = off).
    pub profiling: Option<TaskProfiling>,
}

impl TaskFactory for SamzaSqlTaskFactory {
    fn create(&self, partition: u32) -> Box<dyn StreamTask> {
        let task = SamzaSqlTask::new(
            self.job_name.clone(),
            self.output_topic.clone(),
            self.coord.clone(),
            self.source.clone(),
            self.udafs.clone(),
        );
        Box::new(match &self.profiling {
            Some(p) => task.with_profiling(p.clone(), partition),
            None => task,
        })
    }
}
