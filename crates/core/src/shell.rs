//! The SamzaSQL shell — the SqlLine/JDBC front door of Figure 2.
//!
//! The shell owns the catalog + planner, talks to the broker and the
//! simulated YARN cluster, and performs **step one** of two-step planning
//! (§4.2): plan the query, generate the Samza job configuration, store plan
//! metadata (the SQL text, schema references) in the ZooKeeper-like
//! coordination service under `/samzasql/queries/<job>/…`, and submit the
//! job. Tasks re-plan from that metadata at init.
//!
//! Two execution paths mirror the paper's data model (§3.3):
//!
//! * [`SamzaSqlShell::submit`] — `SELECT STREAM …`: a continuous job on the
//!   cluster, observed through a [`QueryHandle`].
//! * [`SamzaSqlShell::query`] — no `STREAM` keyword: the stream is read as a
//!   bounded historical table; the query runs to completion synchronously
//!   and returns its rows.

use crate::error::{CoreError, Result};
use crate::profile::render_explain_analyze;
use crate::router::{MessageRouter, QuerySpec};
use crate::task::{SamzaSqlTaskFactory, TaskPlanSource, TaskProfiling};
use crate::udaf::{UdafRegistry, UserAggregate};
use bytes::Bytes;
use samzasql_coord::Coord;
use samzasql_kafka::{Broker, Message, TopicConfig};
use samzasql_obs::Obs;
use samzasql_planner::{Catalog, ObjectKind, PhysicalPlan, PlannedQuery, Planner};
use samzasql_samza::{
    ClusterSim, Container, InputStreamConfig, JobConfig, JobHandle, JobModel, OutputStreamConfig,
    StoreConfig,
};
use samzasql_serde::avro::AvroCodec;
use samzasql_serde::object::ObjectCodec;
use samzasql_serde::{Schema, SerdeFormat, Value};
use std::sync::Arc;

/// The interactive entry point to SamzaSQL.
pub struct SamzaSqlShell {
    broker: Broker,
    cluster: ClusterSim,
    coord: Coord,
    planner: Planner,
    udafs: UdafRegistry,
    query_counter: u64,
    /// Containers per submitted streaming job.
    pub default_containers: u32,
    /// Compile queries with the direct SamzaSQL Data API (§7 item 5): skip
    /// the AvroToArray/ArrayToAvro steps. Off by default (prototype path).
    pub direct_data_api: bool,
    /// Record per-operator profiles (rows in/out, batches, busy time) for
    /// submitted/executed jobs into the shell's metrics registry. Off by
    /// default; `EXPLAIN ANALYZE` profiles regardless.
    pub profile_operators: bool,
    /// Unified observability: metrics registry, tracer, and the clock
    /// profiling measures against. Broker and cluster metrics publish here.
    obs: Obs,
}

impl SamzaSqlShell {
    /// Shell over a broker with a single-node cluster.
    pub fn new(broker: Broker) -> Self {
        let cluster = ClusterSim::single_node(broker.clone());
        Self::with_cluster(broker, cluster)
    }

    /// Shell over an explicit cluster simulation. Query metadata lives in
    /// the cluster's coordination service, so tasks (and anyone else holding
    /// the `Coord`) read exactly what the shell wrote.
    pub fn with_cluster(broker: Broker, cluster: ClusterSim) -> Self {
        // Deny-by-default static analysis: plans with Error-severity
        // diagnostics never reach job submission.
        let mut planner = Planner::new(Catalog::new());
        planner.add_check(Arc::new(samzasql_analyze::GatingAnalyzer));
        let obs = Obs::new();
        // One registry for the whole stack: broker-side counters and every
        // container the cluster launches (including respawns) publish here.
        broker.bind_metrics(&obs.registry);
        cluster.set_metrics_registry(obs.registry.clone());
        SamzaSqlShell {
            broker,
            coord: cluster.coord().clone(),
            cluster,
            planner,
            udafs: UdafRegistry::new(),
            query_counter: 0,
            default_containers: 1,
            direct_data_api: false,
            profile_operators: false,
            obs,
        }
    }

    /// The broker this shell talks to.
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// The coordination service carrying query metadata
    /// (`/samzasql/queries/<job>/{sql,schema,output}`).
    pub fn coord(&self) -> &Coord {
        &self.coord
    }

    /// The planner/catalog.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// The shell's observability bundle (registry + tracer + clock).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The metrics registry broker, container, and operator series publish
    /// into.
    pub fn metrics_registry(&self) -> &samzasql_obs::MetricsRegistry {
        &self.obs.registry
    }

    /// The tracer recording job/query spans.
    pub fn tracer(&self) -> &samzasql_obs::Tracer {
        &self.obs.tracer
    }

    // ------------------------------------------------------------- catalog

    /// Register a stream (creating its topic with one partition if absent).
    pub fn register_stream(
        &mut self,
        name: &str,
        topic: &str,
        schema: Schema,
        timestamp_field: &str,
    ) -> Result<()> {
        self.broker
            .ensure_topic(topic, TopicConfig::with_partitions(1))?;
        self.planner
            .catalog_mut()
            .register_stream(name, topic, schema, timestamp_field)?;
        Ok(())
    }

    /// Register a table backed by a changelog topic, keyed (and partitioned)
    /// by `key_column`.
    pub fn register_table(
        &mut self,
        name: &str,
        changelog_topic: &str,
        schema: Schema,
        key_column: &str,
    ) -> Result<()> {
        self.broker
            .ensure_topic(changelog_topic, TopicConfig::with_partitions(1))?;
        self.planner
            .catalog_mut()
            .register_table(name, changelog_topic, schema)?;
        self.planner
            .catalog_mut()
            .set_partition_key(name, key_column)?;
        Ok(())
    }

    /// Declare the column a stream's producer partitions by (enables the
    /// planner's repartition decision, §7).
    pub fn set_partition_key(&mut self, name: &str, key_column: &str) -> Result<()> {
        self.planner
            .catalog_mut()
            .set_partition_key(name, key_column)?;
        Ok(())
    }

    /// Register a user-defined aggregate function.
    pub fn register_udaf(&mut self, name: &str, func: Arc<dyn UserAggregate>) {
        self.udafs.register(name, func);
    }

    /// Execute DDL (`CREATE VIEW`).
    pub fn execute_ddl(&mut self, sql: &str) -> Result<String> {
        Ok(self.planner.execute_ddl(sql)?)
    }

    /// EXPLAIN a query: physical plan with per-stage partitioning
    /// annotations.
    pub fn explain(&self, sql: &str) -> Result<String> {
        Ok(self.planner.explain(sql)?)
    }

    /// ANALYZE a query: run the static plan analyzer and pretty-print its
    /// diagnostics (codes, severities, source spans) without submitting
    /// anything. Accepts either a bare statement or `ANALYZE <sql>`.
    pub fn analyze(&self, sql: &str) -> Result<String> {
        let stmt = sql.trim();
        let stmt = match stmt.get(..7) {
            Some(kw)
                if kw.eq_ignore_ascii_case("analyze")
                    && stmt[7..].starts_with(|c: char| c.is_whitespace()) =>
            {
                stmt[7..].trim_start()
            }
            _ => stmt,
        };
        let diags = samzasql_analyze::analyze_sql(&self.planner, stmt);
        if diags.is_empty() {
            return Ok("no diagnostics: plan is clean".to_string());
        }
        Ok(diags.render())
    }

    /// Render the shell's metrics registry as aligned text. Accepts a bare
    /// prefix, `METRICS` (everything), or `METRICS <prefix>` (only series
    /// whose dotted name starts with the prefix).
    pub fn metrics(&self, command: &str) -> String {
        let trimmed = command.trim();
        let prefix = if trimmed.eq_ignore_ascii_case("metrics") {
            ""
        } else {
            strip_keyword(trimmed, "metrics").unwrap_or(trimmed)
        };
        let snap = if prefix.is_empty() {
            self.obs.registry.snapshot()
        } else {
            self.obs.registry.snapshot_prefix(prefix)
        };
        if snap.entries.is_empty() {
            return format!("no metrics{}", {
                if prefix.is_empty() {
                    String::new()
                } else {
                    format!(" under prefix {prefix:?}")
                }
            });
        }
        samzasql_obs::render_text(&snap)
    }

    /// `EXPLAIN ANALYZE <sql>`: run the query over a bounded sample of its
    /// input topics with per-operator profiling enabled, and print the
    /// physical plan annotated with the observed rows-in/rows-out, batch
    /// counts, selectivity, and share of operator busy time. Accepts either
    /// a bare statement or the full `EXPLAIN ANALYZE` form. The sample run
    /// executes in-process (no jobs are submitted, no topics created);
    /// bootstrap inputs (relation changelogs) are fed fully, stream inputs
    /// are capped at a few thousand rows per topic.
    pub fn explain_analyze(&mut self, sql: &str) -> Result<String> {
        /// Per-stream-topic row cap for the sample run.
        const SAMPLE_ROWS: u64 = 10_000;
        /// Rows routed per batch, mirroring the container's fetch size.
        const SAMPLE_BATCH: usize = 256;

        let stmt = sql.trim();
        let stmt = strip_keyword(stmt, "explain")
            .and_then(|rest| strip_keyword(rest, "analyze"))
            .unwrap_or(stmt);
        let planned = self.planner.plan(stmt)?;

        // Stage specs mirror what submit()/query() would run, including the
        // repartition split — but the intermediate topic stays synthetic:
        // stage 1's outputs are piped straight into stage 2's scan entry.
        let inter_topic = "explain-analyze-repartition";
        let mut stages: Vec<(String, QuerySpec)> = Vec::new();
        match split_repartition(&planned) {
            Some((stage1, key_index, stage2_builder)) => {
                let mut s1 = stage1;
                s1.output_key = Some(key_index);
                stages.push(("stage1 (repartition producer)".to_string(), s1));
                stages.push((
                    "stage2 (repartition consumer)".to_string(),
                    stage2_builder(inter_topic),
                ));
            }
            None => {
                let mut spec = QuerySpec::from_planned(&planned);
                spec.direct_data_api = self.direct_data_api;
                stages.push((String::new(), spec));
            }
        }

        let mut span = self.obs.tracer.span("explain-analyze");
        let mut out = String::new();
        let mut carried: Vec<crate::ops::insert::EncodedOutput> = Vec::new();
        for (si, (label, spec)) in stages.iter().enumerate() {
            let mut router = MessageRouter::build_spec(spec, &self.udafs)?;
            router.enable_profiling(self.obs.clock.clone());
            let task_label = if label.is_empty() {
                "explain-analyze".to_string()
            } else {
                format!("explain-analyze-stage{}", si + 1)
            };
            router.register_profile(
                &self.obs.registry,
                &[("job", task_label.as_str()), ("task", "0")],
            );
            let mut store = (spec.physical.needs_local_state()
                || !spec.order_by.is_empty()
                || spec.limit.is_some())
            .then(|| samzasql_samza::KeyValueStore::ephemeral(crate::ops::STATE_STORE));

            let mut outputs = Vec::new();
            // Bootstrap inputs (relation changelogs) drain fully first,
            // matching the container's bootstrap-priority semantics; stream
            // inputs follow, capped at the sample size.
            let inputs = spec.physical.input_topics();
            for bootstrap_pass in [true, false] {
                for (topic, bootstrap) in &inputs {
                    if *bootstrap != bootstrap_pass {
                        continue;
                    }
                    if si > 0 && topic == inter_topic {
                        // Synthetic repartition topic: replay the previous
                        // stage's encoded outputs.
                        for chunk in carried.chunks(SAMPLE_BATCH) {
                            router.route_batch(
                                topic,
                                chunk.iter().map(|o| (o.key.as_ref(), &o.payload)),
                                store.as_mut(),
                                &mut outputs,
                            )?;
                        }
                        continue;
                    }
                    let cap = if *bootstrap { u64::MAX } else { SAMPLE_ROWS };
                    let mut fed = 0u64;
                    'partitions: for p in 0..self.broker.partition_count(topic)? {
                        let mut off = 0;
                        loop {
                            let batch = self.broker.fetch(topic, p, off, SAMPLE_BATCH)?;
                            if batch.records.is_empty() {
                                break;
                            }
                            router.route_batch(
                                topic,
                                batch
                                    .records
                                    .iter()
                                    .map(|r| (r.message.key.as_ref(), &r.message.value)),
                                store.as_mut(),
                                &mut outputs,
                            )?;
                            for rec in &batch.records {
                                off = rec.offset + 1;
                            }
                            fed += batch.records.len() as u64;
                            if fed >= cap {
                                break 'partitions;
                            }
                        }
                    }
                }
            }
            // End of sample: flush window/sort state so pending aggregates
            // count toward the profile and flow into downstream stages.
            router.flush_into(store.as_mut(), &mut outputs)?;

            let profile = router.profile().expect("profiling enabled above");
            span.event(&format!(
                "{}: {} rows in, {} rows out",
                if label.is_empty() { "query" } else { label },
                profile.total_rows_in(),
                outputs.len()
            ));
            if !label.is_empty() {
                out.push_str(&format!("-- {label} --\n"));
            }
            out.push_str(&render_explain_analyze(&spec.physical, &profile));
            carried = outputs;
        }
        out.push_str(&format!("sample output rows: {}\n", carried.len()));
        span.finish();
        Ok(out)
    }

    // ------------------------------------------------------------ producing

    fn encode_for(&self, name: &str, value: &Value) -> Result<(String, Message)> {
        let obj = self.planner.catalog().get(name)?;
        let topic = obj
            .topic
            .clone()
            .ok_or_else(|| CoreError::Shell(format!("{name} has no backing topic")))?;
        let codec = AvroCodec::new(obj.schema.clone());
        let payload = codec.encode(value)?;
        let timestamp = obj
            .timestamp_field
            .as_deref()
            .and_then(|f| value.field(f))
            .and_then(|v| v.as_i64())
            .unwrap_or(0);
        let key = obj
            .partition_key
            .as_deref()
            .and_then(|f| value.field(f))
            .map(|v| ObjectCodec::new().encode(v))
            .transpose()?;
        Ok((
            topic,
            Message {
                key,
                value: payload,
                timestamp,
            },
        ))
    }

    /// Publish a tuple to a registered stream (Avro-encoded; keyed by the
    /// stream's declared partition key when set).
    pub fn produce(&self, stream: &str, value: Value) -> Result<()> {
        let (topic, message) = self.encode_for(stream, &value)?;
        let partitions = self.broker.partition_count(&topic)?;
        let partition = match &message.key {
            Some(k) => samzasql_kafka::partitioner::hash_bytes(k) % partitions,
            None => 0,
        };
        self.broker.produce(&topic, partition, message)?;
        Ok(())
    }

    /// Publish an upsert to a table's changelog.
    pub fn produce_relation(&self, table: &str, value: Value) -> Result<()> {
        self.produce(table, value)
    }

    /// Publish a deletion (tombstone) to a table's changelog.
    pub fn delete_relation(&self, table: &str, key: &Value) -> Result<()> {
        let obj = self.planner.catalog().get(table)?;
        let topic = obj
            .topic
            .clone()
            .ok_or_else(|| CoreError::Shell(format!("{table} has no backing topic")))?;
        let key_bytes = ObjectCodec::new().encode(key)?;
        let partitions = self.broker.partition_count(&topic)?;
        let partition = samzasql_kafka::partitioner::hash_bytes(&key_bytes) % partitions;
        self.broker.produce(
            &topic,
            partition,
            Message {
                key: Some(key_bytes),
                value: Bytes::new(),
                timestamp: 0,
            },
        )?;
        Ok(())
    }

    // ----------------------------------------------------------- execution

    fn next_query_id(&mut self) -> u64 {
        self.query_counter += 1;
        self.query_counter
    }

    /// Profiling wiring for task factories when `profile_operators` is on.
    fn task_profiling(&self) -> Option<TaskProfiling> {
        self.profile_operators.then(|| TaskProfiling {
            registry: self.obs.registry.clone(),
            clock: self.obs.clock.clone(),
        })
    }

    fn output_partitions(&self, physical: &PhysicalPlan) -> Result<u32> {
        let mut max = 1;
        for (topic, _) in physical.input_topics() {
            max = max.max(self.broker.partition_count(&topic)?);
        }
        Ok(max)
    }

    /// Build the job configuration for one stage (the shell half of two-step
    /// planning).
    fn job_config(
        &self,
        job_name: &str,
        spec: &QuerySpec,
        output_topic: &str,
        containers: u32,
    ) -> JobConfig {
        let mut cfg = JobConfig::new(job_name).containers(containers);
        for (topic, bootstrap) in spec.physical.input_topics() {
            let mut input = InputStreamConfig::avro(&topic);
            if bootstrap {
                input = input.bootstrap();
            }
            cfg = cfg.input(input);
        }
        cfg = cfg.output(OutputStreamConfig::avro(output_topic));
        if spec.physical.needs_local_state() || !spec.order_by.is_empty() || spec.limit.is_some() {
            cfg = cfg.store(StoreConfig::with_changelog(
                crate::ops::STATE_STORE,
                job_name,
                SerdeFormat::Object,
            ));
        }
        cfg
    }

    /// Step one of two-step planning (§4.2): store the streaming query and
    /// schema references in the coordination service, where tasks re-plan
    /// from at init.
    fn publish_query(&self, job_name: &str, sql: &str, output_topic: &str) {
        let base = format!("/samzasql/queries/{job_name}");
        let _ = self.coord.upsert(format!("{base}/sql"), sql);
        let _ = self
            .coord
            .upsert(format!("{base}/schema"), format!("{output_topic}-value"));
        let _ = self.coord.upsert(format!("{base}/output"), output_topic);
    }

    /// Plan and register everything for a query; returns per-stage
    /// (job name, spec, source, output topic) plus the final output schema.
    #[allow(clippy::type_complexity)]
    fn prepare(
        &mut self,
        sql: &str,
    ) -> Result<(
        PlannedQuery,
        Vec<(String, QuerySpec, TaskPlanSource, String)>,
        String,
    )> {
        let planned = self.planner.plan(sql)?;
        let qid = self.next_query_id();
        let job_base = format!("samzasql-q{qid}");
        let output_topic = format!("{job_base}-output");
        let out_partitions = self.output_partitions(&planned.physical)?;
        self.broker
            .ensure_topic(&output_topic, TopicConfig::with_partitions(out_partitions))?;
        self.planner
            .catalog()
            .registry()
            .register(
                &format!("{output_topic}-value"),
                planned.output_schema("Output"),
            )
            .map_err(CoreError::Serde)?;

        let mut stages = Vec::new();
        match split_repartition(&planned) {
            Some((stage1, key_index, stage2_builder)) => {
                // Intermediate topic carries the re-keyed stream (§7).
                let inter_topic = format!("{job_base}-repartition");
                self.broker
                    .ensure_topic(&inter_topic, TopicConfig::with_partitions(out_partitions))?;
                let stage2 = stage2_builder(&inter_topic);
                let mut s1 = stage1;
                s1.output_key = Some(key_index);
                let job1 = format!("{job_base}-stage1");
                let job2 = job_base.clone();
                self.publish_query(&job1, sql, &inter_topic);
                self.publish_query(&job2, sql, &output_topic);
                stages.push((
                    job1,
                    s1.clone(),
                    TaskPlanSource::Fixed(Arc::new(s1)),
                    inter_topic,
                ));
                stages.push((
                    job2,
                    stage2.clone(),
                    TaskPlanSource::Fixed(Arc::new(stage2)),
                    output_topic.clone(),
                ));
            }
            None => {
                let mut spec = QuerySpec::from_planned(&planned);
                spec.direct_data_api = self.direct_data_api;
                self.publish_query(&job_base, sql, &output_topic);
                let source = if self.direct_data_api {
                    TaskPlanSource::Fixed(Arc::new(spec.clone()))
                } else {
                    TaskPlanSource::Replan {
                        planner: Arc::new(self.planner.clone()),
                    }
                };
                stages.push((job_base, spec, source, output_topic.clone()));
            }
        }
        Ok((planned, stages, output_topic))
    }

    /// Submit a continuous (`SELECT STREAM`) query to the cluster.
    pub fn submit(&mut self, sql: &str) -> Result<QueryHandle> {
        let (planned, stages, output_topic) = self.prepare(sql)?;
        if !planned.is_stream {
            return Err(CoreError::Shell(
                "query has no STREAM keyword; use query() for historical execution".into(),
            ));
        }
        let containers = self.default_containers;
        let udafs = Arc::new(self.udafs.clone());
        let mut jobs = Vec::new();
        for (job_name, spec, source, stage_output) in stages {
            let cfg = self.job_config(&job_name, &spec, &stage_output, containers);
            let factory = SamzaSqlTaskFactory {
                job_name: job_name.clone(),
                output_topic: stage_output,
                coord: self.coord.clone(),
                source,
                udafs: udafs.clone(),
                profiling: self.task_profiling(),
            };
            jobs.push(self.cluster.submit(cfg, Arc::new(factory))?);
        }
        Ok(QueryHandle {
            jobs,
            broker: self.broker.clone(),
            output_topic,
            output_schema: planned.output_schema("Output"),
            positions: Vec::new(),
            warnings: planned.warnings,
            lints: planned.lints,
        })
    }

    /// Execute a bounded (historical) query synchronously and return its
    /// rows as records.
    pub fn query(&mut self, sql: &str) -> Result<Vec<Value>> {
        let (planned, stages, output_topic) = self.prepare(sql)?;
        if planned.is_stream {
            return Err(CoreError::Shell(
                "continuous query; use submit() and a QueryHandle".into(),
            ));
        }
        let udafs = Arc::new(self.udafs.clone());
        for (job_name, spec, source, stage_output) in stages {
            let cfg = self.job_config(&job_name, &spec, &stage_output, 1);
            let factory = SamzaSqlTaskFactory {
                job_name: job_name.clone(),
                output_topic: stage_output,
                coord: self.coord.clone(),
                source,
                udafs: udafs.clone(),
                profiling: self.task_profiling(),
            };
            let model = JobModel::plan(&cfg, &self.broker)?;
            for cm in &model.containers {
                let mut container =
                    Container::new(self.broker.clone(), cfg.clone(), cm.clone(), &factory)?;
                container.bind_obs(&self.obs.registry);
                container.run_until_caught_up()?;
                // End of bounded input: flush window/sort state.
                container.window_all()?;
            }
        }
        // Drain the output topic.
        let codec = AvroCodec::new(planned.output_schema("Output"));
        let mut rows = Vec::new();
        for p in 0..self.broker.partition_count(&output_topic)? {
            let mut off = 0;
            loop {
                let batch = self.broker.fetch(&output_topic, p, off, 1024)?;
                if batch.records.is_empty() {
                    break;
                }
                for rec in batch.records {
                    off = rec.offset + 1;
                    rows.push(codec.decode(&rec.message.value)?);
                }
            }
        }
        // ORDER BY / LIMIT: each task sorted and limited its own partition
        // slice; the shell (JDBC-driver side) does the global merge, like a
        // single-threaded result-set merge.
        if !planned.order_by.is_empty() {
            let keys: Vec<(crate::expr::CompiledExpr, bool)> = planned
                .order_by
                .iter()
                .map(|(e, asc)| (crate::expr::compile(e), *asc))
                .collect();
            rows.sort_by(|a, b| {
                let ta = crate::tuple::record_to_array(a.clone()).unwrap_or_default();
                let tb = crate::tuple::record_to_array(b.clone()).unwrap_or_default();
                for (key, asc) in &keys {
                    let ord = key
                        .eval(&ta)
                        .sql_cmp(&key.eval(&tb))
                        .unwrap_or(std::cmp::Ordering::Equal);
                    let ord = if *asc { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        if let Some(n) = planned.limit {
            rows.truncate(n as usize);
        }
        Ok(rows)
    }
}

impl std::fmt::Debug for SamzaSqlShell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SamzaSqlShell")
            .field("catalog", &self.planner.catalog().names())
            .field("queries", &self.query_counter)
            .finish()
    }
}

/// Handle to a running continuous query.
pub struct QueryHandle {
    jobs: Vec<JobHandle>,
    broker: Broker,
    output_topic: String,
    output_schema: Schema,
    /// Per-partition read positions into the output topic.
    positions: Vec<u64>,
    /// Planner warnings surfaced to the user.
    pub warnings: Vec<String>,
    /// Static-analyzer lints (Warning/Note diagnostics) attached to the plan.
    pub lints: Vec<String>,
}

impl QueryHandle {
    /// The query's output topic (other jobs can consume it — Kappa-style
    /// pipeline composition).
    pub fn output_topic(&self) -> &str {
        &self.output_topic
    }

    /// Messages processed so far across the query's jobs.
    pub fn processed(&self) -> u64 {
        self.jobs.iter().map(|j| j.processed()).sum()
    }

    /// Poll new output rows (decoded records), non-blocking.
    pub fn poll_outputs(&mut self) -> Result<Vec<Value>> {
        let partitions = self.broker.partition_count(&self.output_topic)?;
        self.positions.resize(partitions as usize, 0);
        let codec = AvroCodec::new(self.output_schema.clone());
        let mut rows = Vec::new();
        for p in 0..partitions {
            let mut off = self.positions[p as usize];
            loop {
                let batch = self.broker.fetch(&self.output_topic, p, off, 1024)?;
                if batch.records.is_empty() {
                    break;
                }
                for rec in batch.records {
                    off = rec.offset + 1;
                    rows.push(codec.decode(&rec.message.value)?);
                }
            }
            self.positions[p as usize] = off;
        }
        Ok(rows)
    }

    /// Block (polling) until at least `n` output rows arrived or `timeout`
    /// elapsed; returns everything collected.
    pub fn await_outputs(&mut self, n: usize, timeout: std::time::Duration) -> Result<Vec<Value>> {
        let start = std::time::Instant::now();
        let mut rows = Vec::new();
        loop {
            rows.extend(self.poll_outputs()?);
            if rows.len() >= n || start.elapsed() > timeout {
                return Ok(rows);
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    /// Kill-and-restart a container of the query's (first) job — failure
    /// injection for tests.
    pub fn kill_container(&self, container_id: u32) -> Result<()> {
        if let Some(job) = self.jobs.first() {
            job.kill_container(container_id)?;
        }
        Ok(())
    }

    /// Stop the query's jobs.
    pub fn stop(self) -> Result<()> {
        for job in self.jobs {
            job.stop()?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle")
            .field("output_topic", &self.output_topic)
            .finish()
    }
}

/// Strip a leading SQL keyword (case-insensitive, followed by whitespace);
/// returns the remainder or None when `stmt` does not start with it.
fn strip_keyword<'a>(stmt: &'a str, keyword: &str) -> Option<&'a str> {
    let n = keyword.len();
    match stmt.get(..n) {
        Some(head)
            if head.eq_ignore_ascii_case(keyword)
                && stmt[n..].starts_with(|c: char| c.is_whitespace()) =>
        {
            Some(stmt[n..].trim_start())
        }
        _ => None,
    }
}

/// Find a `Repartition` node; return stage 1 (the subplan below it, which
/// becomes its own job writing key-partitioned output) plus the repartition
/// key and a builder producing stage 2 (the original plan with the
/// repartition subtree replaced by a scan of the intermediate topic).
#[allow(clippy::type_complexity)]
fn split_repartition(
    planned: &PlannedQuery,
) -> Option<(QuerySpec, usize, Box<dyn Fn(&str) -> QuerySpec + '_>)> {
    fn find(plan: &PhysicalPlan) -> Option<(&PhysicalPlan, usize)> {
        match plan {
            PhysicalPlan::Repartition { input, key_index } => Some((input, *key_index)),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::WindowAggregate { input, .. }
            | PhysicalPlan::SlidingWindow { input, .. } => find(input),
            PhysicalPlan::StreamToStreamJoin { left, right, .. } => {
                find(left).or_else(|| find(right))
            }
            PhysicalPlan::StreamToRelationJoin { stream, .. } => find(stream),
            PhysicalPlan::Scan { .. } => None,
        }
    }
    fn replace(plan: &PhysicalPlan, scan: &PhysicalPlan) -> PhysicalPlan {
        match plan {
            PhysicalPlan::Repartition { .. } => scan.clone(),
            PhysicalPlan::Filter { input, predicate } => PhysicalPlan::Filter {
                input: Box::new(replace(input, scan)),
                predicate: predicate.clone(),
            },
            PhysicalPlan::Project {
                input,
                exprs,
                names,
            } => PhysicalPlan::Project {
                input: Box::new(replace(input, scan)),
                exprs: exprs.clone(),
                names: names.clone(),
            },
            PhysicalPlan::WindowAggregate {
                input,
                window,
                keys,
                key_names,
                aggs,
            } => PhysicalPlan::WindowAggregate {
                input: Box::new(replace(input, scan)),
                window: window.clone(),
                keys: keys.clone(),
                key_names: key_names.clone(),
                aggs: aggs.clone(),
            },
            PhysicalPlan::SlidingWindow {
                input,
                partition_by,
                ts_index,
                range_ms,
                rows,
                aggs,
            } => PhysicalPlan::SlidingWindow {
                input: Box::new(replace(input, scan)),
                partition_by: partition_by.clone(),
                ts_index: *ts_index,
                range_ms: *range_ms,
                rows: *rows,
                aggs: aggs.clone(),
            },
            PhysicalPlan::StreamToStreamJoin {
                left,
                right,
                kind,
                equi,
                time_bound,
                residual,
            } => PhysicalPlan::StreamToStreamJoin {
                left: Box::new(replace(left, scan)),
                right: Box::new(replace(right, scan)),
                kind: *kind,
                equi: equi.clone(),
                time_bound: *time_bound,
                residual: residual.clone(),
            },
            PhysicalPlan::StreamToRelationJoin {
                stream,
                relation_topic,
                relation_names,
                relation_types,
                relation_key,
                equi,
                stream_is_left,
                kind,
                residual,
            } => PhysicalPlan::StreamToRelationJoin {
                stream: Box::new(replace(stream, scan)),
                relation_topic: relation_topic.clone(),
                relation_names: relation_names.clone(),
                relation_types: relation_types.clone(),
                relation_key: *relation_key,
                equi: equi.clone(),
                stream_is_left: *stream_is_left,
                kind: *kind,
                residual: residual.clone(),
            },
            PhysicalPlan::Scan { .. } => plan.clone(),
        }
    }

    let (below, key_index) = find(&planned.physical)?;
    let names = below.output_names();
    let types = below.output_types();
    let ts_index = names
        .iter()
        .position(|n| n.eq_ignore_ascii_case("rowtime"))
        .or_else(|| types.iter().position(|t| *t == Schema::Timestamp));
    let stage1 = QuerySpec {
        sql: planned.sql.clone(),
        physical: below.clone(),
        output_names: names.clone(),
        output_types: types.clone(),
        order_by: Vec::new(),
        limit: None,
        is_stream: planned.is_stream,
        output_key: Some(key_index),
        direct_data_api: false,
    };
    let planned_ref = planned;
    let builder = Box::new(move |inter_topic: &str| {
        let scan = PhysicalPlan::Scan {
            topic: inter_topic.to_string(),
            names: names.clone(),
            types: types.clone(),
            format: SerdeFormat::Avro,
            bounded: !planned_ref.is_stream,
            ts_index,
        };
        let mut spec = QuerySpec::from_planned(planned_ref);
        spec.physical = replace(&planned_ref.physical, &scan);
        spec
    });
    Some((stage1, key_index, builder))
}

// `ObjectKind` is referenced by downstream users via the shell module; keep
// the re-export close to the catalog helpers.
pub use samzasql_planner::ObjectKind as CatalogObjectKind;
const _: Option<ObjectKind> = None;
