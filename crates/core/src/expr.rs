//! Expression compilation: the code-generation surrogate.
//!
//! The paper generates Java bytecode for expressions with Janino + Calcite's
//! linq4j (§4.2). The Rust equivalent compiles each resolved [`ScalarExpr`]
//! into a closure tree over array tuples: field indexes are resolved once at
//! plan time, evaluation is a direct tree walk with no name lookups — the
//! same runtime shape generated code has.
//!
//! SQL three-valued logic: NULL operands propagate to NULL results;
//! comparisons against NULL are NULL (treated as false by filters); AND/OR
//! implement Kleene logic.

use crate::tuple::Tuple;
use samzasql_planner::{BinOp, ScalarExpr, ScalarFunc};
use samzasql_serde::{Schema, Value};
use std::sync::Arc;

/// A compiled expression: evaluate against a tuple, yielding a value.
#[derive(Clone)]
pub struct CompiledExpr {
    eval: Arc<dyn Fn(&Tuple) -> Value + Send + Sync>,
}

impl CompiledExpr {
    /// Evaluate against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> Value {
        (self.eval)(tuple)
    }

    /// Evaluate as a filter predicate: NULL ⇒ false.
    pub fn eval_bool(&self, tuple: &Tuple) -> bool {
        matches!(self.eval(tuple), Value::Boolean(true))
    }

    fn new(f: impl Fn(&Tuple) -> Value + Send + Sync + 'static) -> Self {
        CompiledExpr { eval: Arc::new(f) }
    }
}

impl std::fmt::Debug for CompiledExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CompiledExpr")
    }
}

/// Compile a resolved expression.
pub fn compile(expr: &ScalarExpr) -> CompiledExpr {
    match expr {
        ScalarExpr::InputRef { index, .. } => {
            let i = *index;
            CompiledExpr::new(move |t| t.get(i).cloned().unwrap_or(Value::Null))
        }
        ScalarExpr::Literal(v) => {
            let v = v.clone();
            CompiledExpr::new(move |_| v.clone())
        }
        ScalarExpr::Binary {
            op,
            left,
            right,
            ty,
        } => {
            let l = compile(left);
            let r = compile(right);
            let op = *op;
            let ty = ty.clone();
            CompiledExpr::new(move |t| eval_binary(op, &l.eval(t), &r.eval(t), &ty))
        }
        ScalarExpr::Not(e) => {
            let inner = compile(e);
            CompiledExpr::new(move |t| match inner.eval(t) {
                Value::Boolean(b) => Value::Boolean(!b),
                _ => Value::Null,
            })
        }
        ScalarExpr::Neg(e) => {
            let inner = compile(e);
            CompiledExpr::new(move |t| match inner.eval(t) {
                Value::Int(v) => Value::Int(-v),
                Value::Long(v) => Value::Long(-v),
                Value::Float(v) => Value::Float(-v),
                Value::Double(v) => Value::Double(-v),
                _ => Value::Null,
            })
        }
        ScalarExpr::IsNull { expr, negated } => {
            let inner = compile(expr);
            let negated = *negated;
            CompiledExpr::new(move |t| Value::Boolean(inner.eval(t).is_null() != negated))
        }
        ScalarExpr::Call { func, args, .. } => {
            let compiled: Vec<CompiledExpr> = args.iter().map(compile).collect();
            let func = *func;
            CompiledExpr::new(move |t| {
                let vals: Vec<Value> = compiled.iter().map(|c| c.eval(t)).collect();
                eval_call(func, &vals)
            })
        }
        ScalarExpr::FloorTime { expr, unit_millis } => {
            let inner = compile(expr);
            let unit = *unit_millis;
            CompiledExpr::new(move |t| match inner.eval(t).as_i64() {
                Some(ts) => Value::Timestamp(ts - ts.rem_euclid(unit)),
                None => Value::Null,
            })
        }
        ScalarExpr::Case {
            branches,
            else_result,
            ..
        } => {
            let compiled: Vec<(CompiledExpr, CompiledExpr)> = branches
                .iter()
                .map(|(w, r)| (compile(w), compile(r)))
                .collect();
            let else_c = else_result.as_ref().map(|e| compile(e));
            CompiledExpr::new(move |t| {
                for (w, r) in &compiled {
                    if w.eval_bool(t) {
                        return r.eval(t);
                    }
                }
                else_c.as_ref().map(|e| e.eval(t)).unwrap_or(Value::Null)
            })
        }
        ScalarExpr::Cast { expr, ty } => {
            let inner = compile(expr);
            let ty = ty.clone();
            CompiledExpr::new(move |t| cast_value(inner.eval(t), &ty))
        }
    }
}

fn eval_binary(op: BinOp, l: &Value, r: &Value, result_ty: &Schema) -> Value {
    use BinOp::*;
    match op {
        And => match (l.as_bool(), r.as_bool()) {
            // Kleene logic: FALSE dominates NULL.
            (Some(false), _) | (_, Some(false)) => Value::Boolean(false),
            (Some(true), Some(true)) => Value::Boolean(true),
            _ => Value::Null,
        },
        Or => match (l.as_bool(), r.as_bool()) {
            (Some(true), _) | (_, Some(true)) => Value::Boolean(true),
            (Some(false), Some(false)) => Value::Boolean(false),
            _ => Value::Null,
        },
        Eq | NotEq | Lt | LtEq | Gt | GtEq => match l.sql_cmp(r) {
            None => Value::Null,
            Some(ord) => {
                use std::cmp::Ordering::*;
                let b = match op {
                    Eq => ord == Equal,
                    NotEq => ord != Equal,
                    Lt => ord == Less,
                    LtEq => ord != Greater,
                    Gt => ord == Greater,
                    GtEq => ord != Less,
                    _ => unreachable!(),
                };
                Value::Boolean(b)
            }
        },
        Plus | Minus | Multiply | Divide | Modulo => {
            if l.is_null() || r.is_null() {
                return Value::Null;
            }
            match result_ty {
                Schema::Double | Schema::Float => {
                    let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                        return Value::Null;
                    };
                    let v = match op {
                        Plus => a + b,
                        Minus => a - b,
                        Multiply => a * b,
                        Divide => {
                            if b == 0.0 {
                                return Value::Null;
                            }
                            a / b
                        }
                        Modulo => {
                            if b == 0.0 {
                                return Value::Null;
                            }
                            a % b
                        }
                        _ => unreachable!(),
                    };
                    Value::Double(v)
                }
                _ => {
                    let (Some(a), Some(b)) = (l.as_i64(), r.as_i64()) else {
                        return Value::Null;
                    };
                    let v = match op {
                        Plus => a.wrapping_add(b),
                        Minus => a.wrapping_sub(b),
                        Multiply => a.wrapping_mul(b),
                        Divide => {
                            if b == 0 {
                                return Value::Null;
                            }
                            a / b
                        }
                        Modulo => {
                            if b == 0 {
                                return Value::Null;
                            }
                            a % b
                        }
                        _ => unreachable!(),
                    };
                    match result_ty {
                        Schema::Int => Value::Int(v as i32),
                        Schema::Timestamp => Value::Timestamp(v),
                        _ => Value::Long(v),
                    }
                }
            }
        }
        Like => match (l.as_str(), r.as_str()) {
            (Some(s), Some(p)) => Value::Boolean(like_match(s, p)),
            _ => Value::Null,
        },
    }
}

fn eval_call(func: ScalarFunc, args: &[Value]) -> Value {
    match func {
        ScalarFunc::Greatest => args
            .iter()
            .filter(|v| !v.is_null())
            .cloned()
            .reduce(|a, b| {
                if a.sql_cmp(&b) == Some(std::cmp::Ordering::Less) {
                    b
                } else {
                    a
                }
            })
            .unwrap_or(Value::Null),
        ScalarFunc::Least => args
            .iter()
            .filter(|v| !v.is_null())
            .cloned()
            .reduce(|a, b| {
                if a.sql_cmp(&b) == Some(std::cmp::Ordering::Greater) {
                    b
                } else {
                    a
                }
            })
            .unwrap_or(Value::Null),
        ScalarFunc::Abs => match args.first() {
            Some(Value::Int(v)) => Value::Int(v.abs()),
            Some(Value::Long(v)) => Value::Long(v.abs()),
            Some(Value::Float(v)) => Value::Float(v.abs()),
            Some(Value::Double(v)) => Value::Double(v.abs()),
            _ => Value::Null,
        },
        ScalarFunc::Upper => match args.first().and_then(|v| v.as_str()) {
            Some(s) => Value::String(s.to_uppercase()),
            None => Value::Null,
        },
        ScalarFunc::Lower => match args.first().and_then(|v| v.as_str()) {
            Some(s) => Value::String(s.to_lowercase()),
            None => Value::Null,
        },
        ScalarFunc::Concat => {
            let mut out = String::new();
            for a in args {
                match a {
                    Value::Null => return Value::Null,
                    Value::String(s) => out.push_str(s),
                    other => out.push_str(&other.to_string()),
                }
            }
            Value::String(out)
        }
        ScalarFunc::CharLength => match args.first().and_then(|v| v.as_str()) {
            Some(s) => Value::Int(s.chars().count() as i32),
            None => Value::Null,
        },
        ScalarFunc::Floor => match args.first() {
            Some(Value::Double(v)) => Value::Double(v.floor()),
            Some(Value::Float(v)) => Value::Float(v.floor()),
            Some(v @ (Value::Int(_) | Value::Long(_) | Value::Timestamp(_))) => v.clone(),
            _ => Value::Null,
        },
        ScalarFunc::Ceil => match args.first() {
            Some(Value::Double(v)) => Value::Double(v.ceil()),
            Some(Value::Float(v)) => Value::Float(v.ceil()),
            Some(v @ (Value::Int(_) | Value::Long(_) | Value::Timestamp(_))) => v.clone(),
            _ => Value::Null,
        },
    }
}

fn cast_value(v: Value, ty: &Schema) -> Value {
    if v.is_null() {
        return Value::Null;
    }
    match ty {
        Schema::Int => v
            .as_i64()
            .map(|x| Value::Int(x as i32))
            .unwrap_or(Value::Null),
        Schema::Long => v.as_i64().map(Value::Long).unwrap_or_else(|| {
            v.as_f64()
                .map(|x| Value::Long(x as i64))
                .unwrap_or(Value::Null)
        }),
        Schema::Float => v
            .as_f64()
            .map(|x| Value::Float(x as f32))
            .unwrap_or(Value::Null),
        Schema::Double => v.as_f64().map(Value::Double).unwrap_or(Value::Null),
        Schema::Timestamp => v.as_i64().map(Value::Timestamp).unwrap_or(Value::Null),
        Schema::String => Value::String(v.to_string()),
        Schema::Boolean => v.as_bool().map(Value::Boolean).unwrap_or(Value::Null),
        _ => Value::Null,
    }
}

/// SQL LIKE matcher: `%` any run, `_` one char. Linear-time two-pointer
/// algorithm with backtracking on the last `%`.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star, mut star_s) = (None::<usize>, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            star_s = si;
            pi += 1;
        } else if let Some(sp) = star {
            pi = sp + 1;
            star_s += 1;
            si = star_s;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iref(i: usize, ty: Schema) -> ScalarExpr {
        ScalarExpr::input(i, ty)
    }

    fn lit(v: Value) -> ScalarExpr {
        ScalarExpr::Literal(v)
    }

    fn bin(op: BinOp, l: ScalarExpr, r: ScalarExpr, ty: Schema) -> ScalarExpr {
        ScalarExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
            ty,
        }
    }

    #[test]
    fn filter_predicate_units_gt_50() {
        let e = bin(
            BinOp::Gt,
            iref(2, Schema::Int),
            lit(Value::Int(50)),
            Schema::Boolean,
        );
        let c = compile(&e);
        assert!(c.eval_bool(&vec![Value::Timestamp(0), Value::Int(1), Value::Int(75)]));
        assert!(!c.eval_bool(&vec![Value::Timestamp(0), Value::Int(1), Value::Int(25)]));
        // NULL units ⇒ predicate NULL ⇒ filtered out.
        assert!(!c.eval_bool(&vec![Value::Timestamp(0), Value::Int(1), Value::Null]));
    }

    #[test]
    fn arithmetic_type_directed() {
        let e = bin(
            BinOp::Minus,
            iref(0, Schema::Timestamp),
            iref(1, Schema::Timestamp),
            Schema::Long,
        );
        let c = compile(&e);
        assert_eq!(
            c.eval(&vec![Value::Timestamp(5_000), Value::Timestamp(2_000)]),
            Value::Long(3_000)
        );
        let e = bin(
            BinOp::Divide,
            lit(Value::Int(7)),
            lit(Value::Int(2)),
            Schema::Int,
        );
        assert_eq!(compile(&e).eval(&vec![]), Value::Int(3));
        let e = bin(
            BinOp::Divide,
            lit(Value::Int(7)),
            lit(Value::Int(0)),
            Schema::Int,
        );
        assert_eq!(
            compile(&e).eval(&vec![]),
            Value::Null,
            "div by zero is NULL"
        );
        let e = bin(
            BinOp::Divide,
            lit(Value::Double(7.0)),
            lit(Value::Int(2)),
            Schema::Double,
        );
        assert_eq!(compile(&e).eval(&vec![]), Value::Double(3.5));
    }

    #[test]
    fn kleene_logic() {
        let null = lit(Value::Null);
        let tru = lit(Value::Boolean(true));
        let fal = lit(Value::Boolean(false));
        let and_nf = bin(BinOp::And, null.clone(), fal.clone(), Schema::Boolean);
        assert_eq!(compile(&and_nf).eval(&vec![]), Value::Boolean(false));
        let and_nt = bin(BinOp::And, null.clone(), tru.clone(), Schema::Boolean);
        assert_eq!(compile(&and_nt).eval(&vec![]), Value::Null);
        let or_nt = bin(BinOp::Or, null.clone(), tru, Schema::Boolean);
        assert_eq!(compile(&or_nt).eval(&vec![]), Value::Boolean(true));
        let or_nf = bin(BinOp::Or, null, fal, Schema::Boolean);
        assert_eq!(compile(&or_nf).eval(&vec![]), Value::Null);
    }

    #[test]
    fn greatest_picks_max_timestamp() {
        // Listing 7: GREATEST(PacketsR1.rowtime, PacketsR2.rowtime).
        let e = ScalarExpr::Call {
            func: ScalarFunc::Greatest,
            args: vec![iref(0, Schema::Timestamp), iref(1, Schema::Timestamp)],
            ty: Schema::Timestamp,
        };
        let c = compile(&e);
        assert_eq!(
            c.eval(&vec![Value::Timestamp(5), Value::Timestamp(9)]),
            Value::Timestamp(9)
        );
    }

    #[test]
    fn floor_time_rounds_down() {
        let e = ScalarExpr::FloorTime {
            expr: Box::new(iref(0, Schema::Timestamp)),
            unit_millis: 3_600_000,
        };
        let c = compile(&e);
        assert_eq!(
            c.eval(&vec![Value::Timestamp(3_999_999)]),
            Value::Timestamp(3_600_000)
        );
        assert_eq!(c.eval(&vec![Value::Null]), Value::Null);
    }

    #[test]
    fn case_and_cast() {
        let e = ScalarExpr::Case {
            branches: vec![(
                bin(
                    BinOp::Gt,
                    iref(0, Schema::Int),
                    lit(Value::Int(10)),
                    Schema::Boolean,
                ),
                lit(Value::String("big".into())),
            )],
            else_result: Some(Box::new(lit(Value::String("small".into())))),
            ty: Schema::String,
        };
        let c = compile(&e);
        assert_eq!(c.eval(&vec![Value::Int(11)]), Value::String("big".into()));
        assert_eq!(c.eval(&vec![Value::Int(3)]), Value::String("small".into()));

        let e = ScalarExpr::Cast {
            expr: Box::new(iref(0, Schema::Int)),
            ty: Schema::String,
        };
        assert_eq!(
            compile(&e).eval(&vec![Value::Int(7)]),
            Value::String("7".into())
        );
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%"));
        assert!(!like_match("hello", "h_l"));
        assert!(!like_match("hello", "x%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
    }

    #[test]
    fn string_functions() {
        assert_eq!(
            eval_call(
                ScalarFunc::Concat,
                &[Value::String("a".into()), Value::Int(1)]
            ),
            Value::String("a1".into())
        );
        assert_eq!(
            eval_call(ScalarFunc::Upper, &[Value::String("ab".into())]),
            Value::String("AB".into())
        );
        assert_eq!(
            eval_call(ScalarFunc::CharLength, &[Value::String("héllo".into())]),
            Value::Int(5)
        );
    }
}
