//! Per-operator profiling and the EXPLAIN ANALYZE renderer.
//!
//! The router records, while it is built, how its operator nodes and scan
//! entries map onto the physical plan's pre-order ([`PlanBinding`]); when
//! profiling is enabled each `process_batch` call is timed and counted into
//! obs instruments. [`render_explain_analyze`] then replays the plan's
//! `explain_lines()` and annotates every line with rows-in/rows-out, batch
//! counts, selectivity, and share of total operator busy time.

use std::sync::Arc;

use samzasql_obs::{Counter, MetricsRegistry, TimeSource};
use samzasql_planner::PhysicalPlan;

/// How the router's construction order maps onto the physical plan's
/// pre-order: one binding per plan node, recorded during `build_plan`.
/// (`build_plan` visits the plan in the same pre-order as
/// `PhysicalPlan::explain_lines`, which is what makes the zip in
/// [`render_explain_analyze`] valid.)
#[derive(Debug, Clone)]
pub enum PlanBinding {
    /// Plan node backed by an operator node (index into the router's node
    /// table). Stream-to-relation joins also own the relation's scan entry.
    Node {
        node: usize,
        relation_entry: Option<usize>,
    },
    /// Plan leaf backed by a scan entry (index into the router's entries).
    Entry(usize),
}

/// Live instruments for one operator node.
#[derive(Debug, Clone, Default)]
pub struct NodeProfile {
    pub rows_in: Counter,
    pub rows_out: Counter,
    pub batches: Counter,
    pub busy_ns: Counter,
}

/// Live instruments for one scan entry.
#[derive(Debug, Clone, Default)]
pub struct EntryProfile {
    pub rows: Counter,
    pub bytes: Counter,
    pub tombstones: Counter,
}

/// Profiler attached to a router by `MessageRouter::enable_profiling`.
#[derive(Debug)]
pub struct RouterProfiler {
    pub(crate) clock: Arc<dyn TimeSource>,
    pub(crate) nodes: Vec<NodeProfile>,
    pub(crate) entries: Vec<EntryProfile>,
}

impl RouterProfiler {
    pub fn new(clock: Arc<dyn TimeSource>, node_count: usize, entry_count: usize) -> Self {
        RouterProfiler {
            clock,
            nodes: (0..node_count).map(|_| NodeProfile::default()).collect(),
            entries: (0..entry_count).map(|_| EntryProfile::default()).collect(),
        }
    }
}

/// Point-in-time stats for one operator node.
#[derive(Debug, Clone)]
pub struct NodeStats {
    /// Operator name plus node index, e.g. `filter#1`.
    pub name: String,
    pub rows_in: u64,
    pub rows_out: u64,
    pub batches: u64,
    pub busy_ns: u64,
}

impl NodeStats {
    /// Fraction of input rows surviving this operator (1.0 when no input).
    pub fn selectivity(&self) -> f64 {
        if self.rows_in == 0 {
            1.0
        } else {
            self.rows_out as f64 / self.rows_in as f64
        }
    }
}

/// Point-in-time stats for one scan entry.
#[derive(Debug, Clone)]
pub struct EntryStats {
    pub topic: String,
    pub rows: u64,
    pub bytes: u64,
    pub tombstones: u64,
}

/// A full profile snapshot of one router, paired with the plan bindings
/// needed to render it against the physical plan.
#[derive(Debug, Clone)]
pub struct RouterProfile {
    pub nodes: Vec<NodeStats>,
    pub entries: Vec<EntryStats>,
    pub bindings: Vec<PlanBinding>,
    /// Index of the bounded-query sort node (sits above the plan root).
    pub sort_node: Option<usize>,
}

impl RouterProfile {
    /// Total operator busy time across all nodes.
    pub fn total_busy_ns(&self) -> u64 {
        self.nodes.iter().map(|n| n.busy_ns).sum()
    }

    /// Total rows decoded across all scan entries.
    pub fn total_rows_in(&self) -> u64 {
        self.entries.iter().map(|e| e.rows).sum()
    }

    /// Publish the profile's live instruments into `registry`. Node series
    /// go under `core.operator.*` labeled `op=<name>`, entry series under
    /// `core.scan.*` labeled `topic=<topic>`, all carrying `base` labels
    /// (conventionally `job`/`task`).
    pub fn register_into(
        profiler: &RouterProfiler,
        node_names: &[String],
        entry_topics: &[String],
        registry: &MetricsRegistry,
        base: &[(&str, &str)],
    ) {
        for (i, node) in profiler.nodes.iter().enumerate() {
            let op = format!("{}#{}", node_names[i], i);
            let mut labels: Vec<(&str, &str)> = base.to_vec();
            labels.push(("op", op.as_str()));
            registry.adopt_counter("core.operator.rows_in", &labels, &node.rows_in);
            registry.adopt_counter("core.operator.rows_out", &labels, &node.rows_out);
            registry.adopt_counter("core.operator.batches", &labels, &node.batches);
            registry.adopt_counter("core.operator.busy_ns", &labels, &node.busy_ns);
        }
        for (i, entry) in profiler.entries.iter().enumerate() {
            let mut labels: Vec<(&str, &str)> = base.to_vec();
            labels.push(("topic", entry_topics[i].as_str()));
            registry.adopt_counter("core.scan.rows", &labels, &entry.rows);
            registry.adopt_counter("core.scan.bytes", &labels, &entry.bytes);
            registry.adopt_counter("core.scan.tombstones", &labels, &entry.tombstones);
        }
    }
}

fn pct(num: f64, den: f64) -> String {
    if den <= 0.0 {
        "0.0%".to_string()
    } else {
        format!("{:.1}%", 100.0 * num / den)
    }
}

/// Render the physical plan annotated with the profile's per-operator
/// statistics: `rows=IN→OUT batches=B sel=S% time=T%` per operator node,
/// `rows=N bytes=B` per scan leaf. The plan must be the one the profiled
/// router was built from.
pub fn render_explain_analyze(plan: &PhysicalPlan, profile: &RouterProfile) -> String {
    let total_busy = profile.total_busy_ns() as f64;
    let mut out = String::new();
    let mut extra_depth = 0usize;
    if let Some(sort) = profile.sort_node {
        let n = &profile.nodes[sort];
        out.push_str(&format!(
            "SortOp[order/limit]  rows={}\u{2192}{} batches={} time={}\n",
            n.rows_in,
            n.rows_out,
            n.batches,
            pct(n.busy_ns as f64, total_busy),
        ));
        extra_depth = 1;
    }
    let lines = plan.explain_lines();
    for (i, (depth, label)) in lines.iter().enumerate() {
        let pad = "  ".repeat(depth + extra_depth);
        let annotation = match profile.bindings.get(i) {
            Some(PlanBinding::Node {
                node,
                relation_entry,
            }) => {
                let n = &profile.nodes[*node];
                let mut a = format!(
                    "rows={}\u{2192}{} batches={} sel={} time={}",
                    n.rows_in,
                    n.rows_out,
                    n.batches,
                    pct(n.rows_out as f64, n.rows_in as f64),
                    pct(n.busy_ns as f64, total_busy),
                );
                if let Some(e) = relation_entry {
                    let e = &profile.entries[*e];
                    a.push_str(&format!(
                        " rel_rows={} rel_tombstones={}",
                        e.rows, e.tombstones
                    ));
                }
                a
            }
            Some(PlanBinding::Entry(e)) => {
                let e = &profile.entries[*e];
                format!("rows={} bytes={}", e.rows, e.bytes)
            }
            // A plan/binding mismatch would be a router bug; render the
            // bare line rather than panic in a diagnostics path.
            None => String::new(),
        };
        if annotation.is_empty() {
            out.push_str(&format!("{pad}{label}\n"));
        } else {
            out.push_str(&format!("{pad}{label}  {annotation}\n"));
        }
    }
    out
}
