//! # samzasql-core
//!
//! The paper's primary contribution: a streaming SQL engine that compiles
//! queries (via `samzasql-parser` + `samzasql-planner`) into operator DAGs
//! executed as Samza jobs (via `samzasql-samza`) over Kafka-like topics
//! (via `samzasql-kafka`).
//!
//! The pieces map 1:1 onto the paper's architecture (Figures 2–4):
//!
//! * [`shell`] — the SamzaSQL shell / JDBC-driver stand-in: plans queries,
//!   generates job configurations (step one of two-step planning, §4.2),
//!   ships plan metadata through the ZooKeeper-like coordination service,
//!   and submits jobs to the simulated YARN cluster.
//! * [`task`] — the SamzaSQL stream task: at init it re-plans the SQL from
//!   the coordination service (step two) and generates its operators and
//!   message router.
//! * [`router`] — the **message router**, "a DAG of streaming SQL operators
//!   responsible for flowing messages through query operators" (§4.2).
//! * [`ops`] — the operator layer: scan (Avro→array), filter, project,
//!   sliding window (Algorithm 1), hopping/tumbling window aggregate,
//!   stream-to-stream join, stream-to-relation join (bootstrap + KV cache),
//!   and stream insert (array→Avro).
//! * [`expr`] — the expression "code generator": resolved expressions are
//!   compiled into closure trees evaluated over array tuples, the runtime
//!   shape Calcite/Janino codegen produces in the paper.
//! * [`udaf`] — user-defined aggregates (§7 future work, implemented).
//!
//! ```
//! use samzasql_core::shell::SamzaSqlShell;
//! use samzasql_kafka::{Broker, Message, TopicConfig};
//! use samzasql_serde::{Schema, Value};
//!
//! let broker = Broker::new();
//! broker.create_topic("orders", TopicConfig::with_partitions(2)).unwrap();
//! let mut shell = SamzaSqlShell::new(broker.clone());
//! shell.register_stream("Orders", "orders", Schema::record("Orders", vec![
//!     ("rowtime", Schema::Timestamp),
//!     ("productId", Schema::Int),
//!     ("units", Schema::Int),
//! ]), "rowtime").unwrap();
//!
//! // Publish a couple of orders (Avro-encoded).
//! shell.produce("Orders", Value::record(vec![
//!     ("rowtime", Value::Timestamp(1_000)),
//!     ("productId", Value::Int(1)),
//!     ("units", Value::Int(75)),
//! ])).unwrap();
//! shell.produce("Orders", Value::record(vec![
//!     ("rowtime", Value::Timestamp(2_000)),
//!     ("productId", Value::Int(2)),
//!     ("units", Value::Int(10)),
//! ])).unwrap();
//!
//! // Historical (no STREAM keyword) query over the topic's history.
//! let rows = shell.query("SELECT * FROM Orders WHERE units > 50").unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

pub mod error;
pub mod expr;
pub mod ops;
pub mod profile;
pub mod router;
pub mod shell;
pub mod task;
pub mod tuple;
pub mod udaf;

pub use error::{CoreError, Result};
pub use expr::CompiledExpr;
pub use profile::{render_explain_analyze, RouterProfile};
pub use router::MessageRouter;
pub use shell::{QueryHandle, SamzaSqlShell};
pub use task::SamzaSqlTask;
pub use tuple::{array_to_record, record_to_array, Tuple};
pub use udaf::{UdafRegistry, UserAggregate};
