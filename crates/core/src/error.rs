//! Core engine errors.

use samzasql_kafka::KafkaError;
use samzasql_planner::PlanError;
use samzasql_samza::SamzaError;
use samzasql_serde::SerdeError;
use std::fmt;

pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors from the SamzaSQL engine.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    Plan(PlanError),
    Samza(SamzaError),
    Kafka(KafkaError),
    Serde(SerdeError),
    /// Runtime expression-evaluation failure.
    Eval(String),
    /// Operator-layer failure.
    Operator(String),
    /// Shell/executor misuse.
    Shell(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Plan(e) => write!(f, "{e}"),
            CoreError::Samza(e) => write!(f, "{e}"),
            CoreError::Kafka(e) => write!(f, "{e}"),
            CoreError::Serde(e) => write!(f, "{e}"),
            CoreError::Eval(m) => write!(f, "evaluation error: {m}"),
            CoreError::Operator(m) => write!(f, "operator error: {m}"),
            CoreError::Shell(m) => write!(f, "shell error: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<PlanError> for CoreError {
    fn from(e: PlanError) -> Self {
        CoreError::Plan(e)
    }
}

impl From<SamzaError> for CoreError {
    fn from(e: SamzaError) -> Self {
        CoreError::Samza(e)
    }
}

impl From<KafkaError> for CoreError {
    fn from(e: KafkaError) -> Self {
        CoreError::Kafka(e)
    }
}

impl From<SerdeError> for CoreError {
    fn from(e: SerdeError) -> Self {
        CoreError::Serde(e)
    }
}

impl From<CoreError> for SamzaError {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::Samza(s) => s,
            CoreError::Kafka(k) => SamzaError::Kafka(k),
            CoreError::Serde(s) => SamzaError::Serde(s),
            other => SamzaError::Task {
                task: "samzasql".into(),
                message: other.to_string(),
            },
        }
    }
}
