//! User-defined aggregates.
//!
//! §7 lists "a concrete API to define user defined aggregates" as future
//! work; this module implements it. A [`UserAggregate`] carries its state as
//! a [`Value`], which makes the state serializable through the generic
//! object codec and therefore fault-tolerant for free (it lives in the same
//! KV-store entries as built-in accumulators).

use crate::error::{CoreError, Result};
use samzasql_serde::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// A user-defined aggregate function.
///
/// Implementations must be deterministic: replay after a failure re-applies
/// the same inputs and must reproduce the same state.
pub trait UserAggregate: Send + Sync {
    /// Initial accumulator state.
    fn init(&self) -> Value;
    /// Fold one input value into the state.
    fn accumulate(&self, state: Value, input: &Value) -> Value;
    /// Final result from the state.
    fn result(&self, state: &Value) -> Value;
    /// Inverse of [`accumulate`](Self::accumulate) for sliding windows;
    /// return `None` when not invertible (the window recomputes instead).
    fn retract(&self, _state: Value, _input: &Value) -> Option<Value> {
        None
    }
}

/// Registry of UDAFs by (upper-cased) name.
#[derive(Clone, Default)]
pub struct UdafRegistry {
    funcs: HashMap<String, Arc<dyn UserAggregate>>,
}

impl UdafRegistry {
    pub fn new() -> Self {
        UdafRegistry::default()
    }

    /// Register a UDAF; name matching is case-insensitive.
    pub fn register(&mut self, name: &str, func: Arc<dyn UserAggregate>) {
        self.funcs.insert(name.to_uppercase(), func);
    }

    /// Resolve a UDAF by name.
    pub fn get(&self, name: &str) -> Result<Arc<dyn UserAggregate>> {
        self.funcs
            .get(&name.to_uppercase())
            .cloned()
            .ok_or_else(|| CoreError::Operator(format!("unknown user-defined aggregate {name}")))
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.funcs.keys().cloned().collect();
        names.sort();
        names
    }
}

impl std::fmt::Debug for UdafRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdafRegistry")
            .field("funcs", &self.names())
            .finish()
    }
}

/// Example UDAF used in tests and the docs: geometric-mean of positive
/// inputs. State = record{sum_ln: double, count: long}.
pub struct GeometricMean;

impl UserAggregate for GeometricMean {
    fn init(&self) -> Value {
        Value::record(vec![
            ("sum_ln", Value::Double(0.0)),
            ("count", Value::Long(0)),
        ])
    }

    fn accumulate(&self, state: Value, input: &Value) -> Value {
        let Some(x) = input.as_f64() else {
            return state;
        };
        if x <= 0.0 {
            return state;
        }
        let sum = state
            .field("sum_ln")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        let count = state.field("count").and_then(|v| v.as_i64()).unwrap_or(0);
        Value::record(vec![
            ("sum_ln", Value::Double(sum + x.ln())),
            ("count", Value::Long(count + 1)),
        ])
    }

    fn result(&self, state: &Value) -> Value {
        let sum = state
            .field("sum_ln")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        let count = state.field("count").and_then(|v| v.as_i64()).unwrap_or(0);
        if count == 0 {
            Value::Null
        } else {
            Value::Double((sum / count as f64).exp())
        }
    }

    fn retract(&self, state: Value, input: &Value) -> Option<Value> {
        let x = input.as_f64()?;
        if x <= 0.0 {
            return Some(state);
        }
        let sum = state.field("sum_ln").and_then(|v| v.as_f64())?;
        let count = state.field("count").and_then(|v| v.as_i64())?;
        Some(Value::record(vec![
            ("sum_ln", Value::Double(sum - x.ln())),
            ("count", Value::Long(count - 1)),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_case_insensitively() {
        let mut r = UdafRegistry::new();
        r.register("geo_mean", Arc::new(GeometricMean));
        assert!(r.get("GEO_MEAN").is_ok());
        assert!(r.get("Geo_Mean").is_ok());
        assert!(r.get("nope").is_err());
        assert_eq!(r.names(), vec!["GEO_MEAN"]);
    }

    #[test]
    fn geometric_mean_accumulates_and_retracts() {
        let g = GeometricMean;
        let mut state = g.init();
        for v in [2.0, 8.0] {
            state = g.accumulate(state, &Value::Double(v));
        }
        match g.result(&state) {
            Value::Double(v) => assert!((v - 4.0).abs() < 1e-9, "gm(2,8)=4, got {v}"),
            other => panic!("{other:?}"),
        }
        // Retract 8 → gm(2) = 2.
        state = g.retract(state, &Value::Double(8.0)).unwrap();
        match g.result(&state) {
            Value::Double(v) => assert!((v - 2.0).abs() < 1e-9),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_state_yields_null() {
        let g = GeometricMean;
        assert_eq!(g.result(&g.init()), Value::Null);
    }
}
