//! The SamzaSQL operator layer (§4.2–§4.4).
//!
//! Operators are nodes of the message router's DAG. Each consumes array
//! tuples and produces zero or more output tuples; stateful operators
//! (windows, joins) keep their state in the task's fault-tolerant key-value
//! store, so Samza's changelog/checkpoint machinery makes them recover
//! exactly as §4.3 describes.
//!
//! All stateful operators share one store (`STATE_STORE`) and isolate their
//! entries with an operator-id key prefix, mirroring how SamzaSQL configures
//! a single managed store per task.

pub mod acc;
pub mod filter;
pub mod insert;
pub mod join_relation;
pub mod join_stream;
pub mod project;
pub mod scan;
pub mod sort;
pub mod window_agg;
pub mod window_sliding;

use crate::error::Result;
use crate::tuple::Tuple;
use samzasql_samza::KeyValueStore;

/// Name of the shared task-local state store.
pub const STATE_STORE: &str = "samzasql-state";

/// Which input of a binary operator a tuple arrived on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Single,
    Left,
    Right,
}

/// Runtime context handed to operators on every call.
pub struct OpCtx<'a> {
    /// The shared state store, when the job configured one.
    pub store: Option<&'a mut KeyValueStore>,
    /// Count of tuples discarded for arriving too late (§3's timeout
    /// expiration policy); surfaced in metrics.
    pub late_discards: &'a mut u64,
}

impl<'a> OpCtx<'a> {
    /// Borrow the store or fail (stateful operator in a stateless job —
    /// a configuration bug).
    pub fn store(&mut self) -> Result<&mut KeyValueStore> {
        self.store.as_deref_mut().ok_or_else(|| {
            crate::error::CoreError::Operator(
                "operator requires local state but no store is configured".into(),
            )
        })
    }
}

/// A streaming SQL operator, processing tuples a batch at a time.
///
/// The router pushes batches through the DAG: `input` is drained by the
/// callee and outputs are appended to the shared `out` buffer, so a chain of
/// operators reuses two ping-pong buffers instead of allocating a `Vec` per
/// node per tuple. Operators that only need per-tuple logic can stay one
/// closure via [`PerTupleOp`].
pub trait Operator: Send {
    /// Process a batch of tuples that arrived on `side`. Implementations
    /// drain `input` (taking tuples by value) and append outputs to `out`
    /// in arrival order.
    fn process_batch(
        &mut self,
        side: Side,
        input: &mut Vec<Tuple>,
        out: &mut Vec<Tuple>,
        ctx: &mut OpCtx<'_>,
    ) -> Result<()>;

    /// A deletion arrived on a relation changelog (tombstone): `key` is the
    /// raw message key. Only the stream-to-relation join reacts.
    fn on_tombstone(
        &mut self,
        _side: Side,
        _key: &[u8],
        _out: &mut Vec<Tuple>,
        _ctx: &mut OpCtx<'_>,
    ) -> Result<()> {
        Ok(())
    }

    /// Flush pending state at end-of-input (bounded queries) — emits final
    /// windows, sorted buffers, relational aggregates into `out`.
    fn flush(&mut self, _out: &mut Vec<Tuple>, _ctx: &mut OpCtx<'_>) -> Result<()> {
        Ok(())
    }

    /// Operator name for EXPLAIN/debugging.
    fn name(&self) -> &'static str;
}

/// Adapter that lifts a per-tuple closure into the batch [`Operator`] API.
///
/// The closure receives each tuple by value plus the shared output buffer,
/// so simple stateless operators stay a one-liner without implementing the
/// batch plumbing themselves.
pub struct PerTupleOp<F> {
    name: &'static str,
    f: F,
}

impl<F> PerTupleOp<F>
where
    F: FnMut(Side, Tuple, &mut Vec<Tuple>, &mut OpCtx<'_>) -> Result<()> + Send,
{
    pub fn new(name: &'static str, f: F) -> Self {
        PerTupleOp { name, f }
    }
}

impl<F> Operator for PerTupleOp<F>
where
    F: FnMut(Side, Tuple, &mut Vec<Tuple>, &mut OpCtx<'_>) -> Result<()> + Send,
{
    fn process_batch(
        &mut self,
        side: Side,
        input: &mut Vec<Tuple>,
        out: &mut Vec<Tuple>,
        ctx: &mut OpCtx<'_>,
    ) -> Result<()> {
        for tuple in input.drain(..) {
            (self.f)(side, tuple, out, ctx)?;
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// Order-preserving big-endian encoding of an i64 (sign bit flipped so the
/// byte order matches numeric order). Used in store keys for timestamps and
/// window starts.
pub fn encode_i64(v: i64) -> [u8; 8] {
    ((v as u64) ^ (1u64 << 63)).to_be_bytes()
}

/// Inverse of [`encode_i64`].
pub fn decode_i64(bytes: &[u8]) -> i64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[..8]);
    (u64::from_be_bytes(raw) ^ (1u64 << 63)) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use samzasql_serde::Value;

    #[test]
    fn per_tuple_adapter_drains_input_in_order() {
        let mut op = PerTupleOp::new(
            "double",
            |_side, tuple: Tuple, out: &mut Vec<Tuple>, _ctx| {
                out.push(tuple.clone());
                out.push(tuple);
                Ok(())
            },
        );
        let mut input = vec![vec![Value::Int(1)], vec![Value::Int(2)]];
        let mut out = Vec::new();
        let mut discards = 0;
        let mut ctx = OpCtx {
            store: None,
            late_discards: &mut discards,
        };
        op.process_batch(Side::Single, &mut input, &mut out, &mut ctx)
            .unwrap();
        assert!(input.is_empty(), "adapter must drain its input");
        let ints: Vec<i32> = out
            .iter()
            .map(|t| match t[0] {
                Value::Int(v) => v,
                _ => panic!(),
            })
            .collect();
        assert_eq!(ints, vec![1, 1, 2, 2]);
        assert_eq!(op.name(), "double");
    }

    #[test]
    fn i64_encoding_preserves_order() {
        let samples = [i64::MIN, -5_000, -1, 0, 1, 42, 1 << 40, i64::MAX];
        for w in samples.windows(2) {
            assert!(
                encode_i64(w[0]) < encode_i64(w[1]),
                "{} !< {} in encoded space",
                w[0],
                w[1]
            );
            assert_eq!(decode_i64(&encode_i64(w[0])), w[0]);
        }
    }
}
