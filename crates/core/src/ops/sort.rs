//! Sort/limit operator for bounded ("stream as table", §3.3) queries.
//!
//! Buffers all input, sorts at end-of-input, applies LIMIT. Only reachable
//! from non-STREAM queries — the validator rejects ORDER BY on continuous
//! streams.

use crate::error::Result;
use crate::expr::CompiledExpr;
use crate::ops::{OpCtx, Operator, Side};
use crate::tuple::Tuple;

/// End-of-input sort with optional limit.
pub struct SortOp {
    keys: Vec<(CompiledExpr, bool)>,
    limit: Option<u64>,
    buffer: Vec<Tuple>,
}

impl SortOp {
    pub fn new(keys: Vec<(CompiledExpr, bool)>, limit: Option<u64>) -> Self {
        SortOp {
            keys,
            limit,
            buffer: Vec::new(),
        }
    }
}

impl Operator for SortOp {
    fn process_batch(
        &mut self,
        _side: Side,
        input: &mut Vec<Tuple>,
        _out: &mut Vec<Tuple>,
        _ctx: &mut OpCtx<'_>,
    ) -> Result<()> {
        // The whole batch moves into the buffer in one append.
        self.buffer.append(input);
        Ok(())
    }

    fn flush(&mut self, out: &mut Vec<Tuple>, _ctx: &mut OpCtx<'_>) -> Result<()> {
        let mut rows = std::mem::take(&mut self.buffer);
        rows.sort_by(|a, b| {
            for (key, asc) in &self.keys {
                let (ka, kb) = (key.eval(a), key.eval(b));
                let ord = ka.sql_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        if let Some(n) = self.limit {
            rows.truncate(n as usize);
        }
        out.append(&mut rows);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "SortOp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::compile;
    use samzasql_planner::ScalarExpr;
    use samzasql_serde::{Schema, Value};

    #[test]
    fn sorts_desc_with_limit_at_flush() {
        let key = compile(&ScalarExpr::input(0, Schema::Int));
        let mut op = SortOp::new(vec![(key, false)], Some(2));
        let mut late = 0;
        let mut ctx = OpCtx {
            store: None,
            late_discards: &mut late,
        };
        let mut input: Vec<Tuple> = [3, 1, 4, 1, 5]
            .iter()
            .map(|v| vec![Value::Int(*v)])
            .collect();
        let mut out = Vec::new();
        op.process_batch(Side::Single, &mut input, &mut out, &mut ctx)
            .unwrap();
        assert!(out.is_empty());
        op.flush(&mut out, &mut ctx).unwrap();
        assert_eq!(out, vec![vec![Value::Int(5)], vec![Value::Int(4)]]);
    }
}
