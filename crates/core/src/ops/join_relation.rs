//! Stream-to-relation join (§4.4).
//!
//! The relation arrives as a changelog stream configured as a **bootstrap
//! stream**: Samza withholds the other inputs until the changelog is fully
//! consumed, so by the time stream tuples flow the operator has "a cached
//! copy of the partitions of the relation assigned to it in the local
//! storage". Later changelog records keep the cache current; tombstones
//! (empty payloads) delete.
//!
//! The cache values are serialized through the **generic object codec** —
//! the Kryo stand-in — which is precisely the serde the paper's profiling
//! blames for the join running ~2× slower than the native Avro-based
//! implementation (§5.1). Every stream tuple pays one store `get` plus an
//! object decode.

use crate::error::Result;
use crate::expr::CompiledExpr;
use crate::ops::{OpCtx, Operator, Side};
use crate::tuple::Tuple;
use samzasql_parser::ast::JoinKind;
use samzasql_serde::object::ObjectCodec;
use samzasql_serde::Value;

/// Joins a stream against a bootstrap-cached relation.
pub struct StreamToRelationJoinOp {
    op_id: String,
    /// Extracts the join key from a stream tuple.
    stream_key: CompiledExpr,
    /// Index of the key column in relation tuples.
    relation_key: usize,
    /// Relation column names: cache entries are stored as *named* records
    /// through the object codec, reproducing the self-describing (Kryo-like)
    /// serialization the paper's profiling blames (§5.1).
    relation_names: Vec<String>,
    /// Output order: stream columns first when true.
    stream_is_left: bool,
    kind: JoinKind,
    /// Residual predicate over the combined row.
    residual: Option<CompiledExpr>,
    codec: ObjectCodec,
}

impl StreamToRelationJoinOp {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        op_id: impl Into<String>,
        stream_key: CompiledExpr,
        relation_key: usize,
        relation_names: Vec<String>,
        stream_is_left: bool,
        kind: JoinKind,
        residual: Option<CompiledExpr>,
    ) -> Self {
        StreamToRelationJoinOp {
            op_id: op_id.into(),
            stream_key,
            relation_key,
            relation_names,
            stream_is_left,
            kind,
            residual,
            codec: ObjectCodec::new(),
        }
    }

    fn cache_key(&self, key: &Value) -> Result<Vec<u8>> {
        let mut k = format!("R{}/", self.op_id).into_bytes();
        k.extend_from_slice(&self.codec.encode(key)?);
        Ok(k)
    }

    fn combine(&self, stream: &Tuple, relation: Option<&Tuple>) -> Tuple {
        let nulls;
        let rel: &Tuple = match relation {
            Some(r) => r,
            None => {
                nulls = vec![Value::Null; self.relation_names.len()];
                &nulls
            }
        };
        if self.stream_is_left {
            stream.iter().chain(rel.iter()).cloned().collect()
        } else {
            rel.iter().chain(stream.iter()).cloned().collect()
        }
    }
}

impl Operator for StreamToRelationJoinOp {
    fn process_batch(
        &mut self,
        side: Side,
        input: &mut Vec<Tuple>,
        out: &mut Vec<Tuple>,
        ctx: &mut OpCtx<'_>,
    ) -> Result<()> {
        match side {
            // Relation changelog records: upsert the cache.
            Side::Right => {
                for tuple in input.drain(..) {
                    let key = tuple.get(self.relation_key).cloned().unwrap_or(Value::Null);
                    let ck = self.cache_key(&key)?;
                    // Cache as a named record: the generic-object serde writes
                    // class + field names, like Kryo serializing a POJO.
                    let record =
                        Value::Record(self.relation_names.iter().cloned().zip(tuple).collect());
                    let encoded = self.codec.encode(&record)?;
                    ctx.store()?.put(&ck, encoded)?;
                }
                Ok(())
            }
            // Stream tuples: probe the cache. A batch carries one side only
            // (relation updates arrive in their own changelog-topic batches,
            // and the router drains buffered work before applying a
            // tombstone), so probe results can be memoized per batch: one
            // store get + Kryo-style decode per distinct key, not per tuple.
            _ => {
                let mut probes: std::collections::HashMap<Vec<u8>, Option<Tuple>> =
                    std::collections::HashMap::new();
                for tuple in input.drain(..) {
                    let key = self.stream_key.eval(&tuple);
                    let ck = self.cache_key(&key)?;
                    if !probes.contains_key(&ck) {
                        let hit = ctx.store()?.get(&ck);
                        let relation = match hit {
                            Some(bytes) => match self.codec.decode(&bytes)? {
                                Value::Record(fields) => {
                                    // Generic-object (Kryo-style) reconstruction:
                                    // the decoded object is accessed through its
                                    // field table by name, not positionally —
                                    // wire order is not trusted, exactly like
                                    // reflective deserialization of a generic
                                    // tuple object.
                                    let table: std::collections::BTreeMap<String, Value> =
                                        fields.into_iter().collect();
                                    Some(
                                        self.relation_names
                                            .iter()
                                            .map(|n| table.get(n).cloned().unwrap_or(Value::Null))
                                            .collect::<Tuple>(),
                                    )
                                }
                                _ => None,
                            },
                            None => None,
                        };
                        probes.insert(ck.clone(), relation);
                    }
                    let relation = probes.get(&ck).expect("just inserted");
                    let combined = match (relation, self.kind) {
                        (Some(rel), _) => self.combine(&tuple, Some(rel)),
                        (None, JoinKind::Left) if self.stream_is_left => self.combine(&tuple, None),
                        (None, JoinKind::Right) if !self.stream_is_left => {
                            self.combine(&tuple, None)
                        }
                        (None, _) => continue,
                    };
                    if let Some(residual) = &self.residual {
                        if !residual.eval_bool(&combined) {
                            continue;
                        }
                    }
                    out.push(combined);
                }
                Ok(())
            }
        }
    }

    fn on_tombstone(
        &mut self,
        side: Side,
        key: &[u8],
        _out: &mut Vec<Tuple>,
        ctx: &mut OpCtx<'_>,
    ) -> Result<()> {
        if side == Side::Right {
            // The changelog's message key carries the relation key encoded by
            // the producer; our changelog convention writes the object-coded
            // key value, matching cache_key's suffix.
            let mut ck = format!("R{}/", self.op_id).into_bytes();
            ck.extend_from_slice(key);
            ctx.store()?.delete(&ck)?;
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "StreamToRelationJoinOp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::compile;
    use samzasql_planner::ScalarExpr;
    use samzasql_samza::KeyValueStore;
    use samzasql_serde::Schema;

    /// Batch-of-one driver mirroring the old per-tuple API.
    fn process(
        j: &mut StreamToRelationJoinOp,
        side: Side,
        tuple: Tuple,
        ctx: &mut OpCtx<'_>,
    ) -> Result<Vec<Tuple>> {
        let mut input = vec![tuple];
        let mut out = Vec::new();
        j.process_batch(side, &mut input, &mut out, ctx)?;
        Ok(out)
    }

    fn op(kind: JoinKind) -> StreamToRelationJoinOp {
        // Stream: (rowtime, productId, units); relation: (productId, supplierId).
        StreamToRelationJoinOp::new(
            "0",
            compile(&ScalarExpr::input(1, Schema::Int)),
            0,
            vec!["productId".into(), "supplierId".into()],
            true,
            kind,
            None,
        )
    }

    fn order(ts: i64, product: i32, units: i32) -> Tuple {
        vec![Value::Timestamp(ts), Value::Int(product), Value::Int(units)]
    }

    fn product(id: i32, supplier: i32) -> Tuple {
        vec![Value::Int(id), Value::Int(supplier)]
    }

    #[test]
    fn bootstrap_then_probe() {
        let mut store = KeyValueStore::ephemeral("s");
        let mut late = 0;
        let mut j = op(JoinKind::Inner);
        let mut ctx = OpCtx {
            store: Some(&mut store),
            late_discards: &mut late,
        };
        // Bootstrap phase: relation records arrive first (Side::Right).
        assert!(process(&mut j, Side::Right, product(7, 70), &mut ctx)
            .unwrap()
            .is_empty());
        assert!(process(&mut j, Side::Right, product(8, 80), &mut ctx)
            .unwrap()
            .is_empty());
        // Stream probes.
        let out = process(&mut j, Side::Left, order(1, 7, 5), &mut ctx).unwrap();
        assert_eq!(
            out,
            vec![vec![
                Value::Timestamp(1),
                Value::Int(7),
                Value::Int(5),
                Value::Int(7),
                Value::Int(70)
            ]]
        );
        // Miss on inner join drops the tuple.
        assert!(process(&mut j, Side::Left, order(2, 99, 1), &mut ctx)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn relation_updates_overwrite() {
        let mut store = KeyValueStore::ephemeral("s");
        let mut late = 0;
        let mut j = op(JoinKind::Inner);
        let mut ctx = OpCtx {
            store: Some(&mut store),
            late_discards: &mut late,
        };
        process(&mut j, Side::Right, product(7, 70), &mut ctx).unwrap();
        process(&mut j, Side::Right, product(7, 71), &mut ctx).unwrap();
        let out = process(&mut j, Side::Left, order(1, 7, 5), &mut ctx).unwrap();
        assert_eq!(out[0][4], Value::Int(71), "latest relation state wins");
    }

    #[test]
    fn left_join_pads_nulls_on_miss() {
        let mut store = KeyValueStore::ephemeral("s");
        let mut late = 0;
        let mut j = op(JoinKind::Left);
        let mut ctx = OpCtx {
            store: Some(&mut store),
            late_discards: &mut late,
        };
        let out = process(&mut j, Side::Left, order(1, 42, 9), &mut ctx).unwrap();
        assert_eq!(out[0][3], Value::Null);
        assert_eq!(out[0][4], Value::Null);
    }

    #[test]
    fn tombstone_removes_cache_entry() {
        let mut store = KeyValueStore::ephemeral("s");
        let mut late = 0;
        let mut j = op(JoinKind::Inner);
        let mut ctx = OpCtx {
            store: Some(&mut store),
            late_discards: &mut late,
        };
        process(&mut j, Side::Right, product(7, 70), &mut ctx).unwrap();
        // Tombstone key = object-coded key value.
        let key_bytes = ObjectCodec::new().encode(&Value::Int(7)).unwrap();
        j.on_tombstone(Side::Right, &key_bytes, &mut Vec::new(), &mut ctx)
            .unwrap();
        assert!(process(&mut j, Side::Left, order(1, 7, 5), &mut ctx)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn residual_predicate_filters_joined_rows() {
        // Residual: supplierId > 75 over combined (rowtime, productId, units, productId, supplierId).
        let residual = compile(&ScalarExpr::Binary {
            op: samzasql_planner::BinOp::Gt,
            left: Box::new(ScalarExpr::input(4, Schema::Int)),
            right: Box::new(ScalarExpr::Literal(Value::Int(75))),
            ty: Schema::Boolean,
        });
        let mut j = StreamToRelationJoinOp::new(
            "0",
            compile(&ScalarExpr::input(1, Schema::Int)),
            0,
            vec!["productId".into(), "supplierId".into()],
            true,
            JoinKind::Inner,
            Some(residual),
        );
        let mut store = KeyValueStore::ephemeral("s");
        let mut late = 0;
        let mut ctx = OpCtx {
            store: Some(&mut store),
            late_discards: &mut late,
        };
        process(&mut j, Side::Right, product(1, 70), &mut ctx).unwrap();
        process(&mut j, Side::Right, product(2, 80), &mut ctx).unwrap();
        assert!(process(&mut j, Side::Left, order(1, 1, 5), &mut ctx)
            .unwrap()
            .is_empty());
        assert_eq!(
            process(&mut j, Side::Left, order(1, 2, 5), &mut ctx)
                .unwrap()
                .len(),
            1
        );
    }
}
