//! The sliding-window operator — Algorithm 1 of the paper, literally.
//!
//! ```text
//! input: tuple
//! save messages in message store;
//! if uninitialized window state then
//!     initialize window state;
//! get tuple timestamp;
//! update window bounds;
//! add a reference to the tuple into the window store;
//! purge messages and adjust aggregate values;
//! compute new aggregate values adding current tuple;
//! send latest aggregate values downstream;
//! ```
//!
//! All state lives in the task's fault-tolerant KV store (message store,
//! aggregate state, window bounds), so restore-and-replay reproduces the
//! same outputs (§4.3). Every tuple costs several store reads and writes
//! through a serde — which is why Figure 6 finds sliding-window throughput
//! dominated by KV access for SamzaSQL *and* native jobs alike.
//!
//! Retractable aggregates (SUM/COUNT/AVG, retractable UDAFs) are adjusted
//! incrementally on purge; non-retractable ones (MIN/MAX) force a recompute
//! over the retained window messages.

use crate::error::Result;
use crate::expr::CompiledExpr;
use crate::ops::acc::{accs_from_value, accs_to_value, Acc, CompiledAgg};
use crate::ops::{encode_i64, OpCtx, Operator, Side};
use crate::tuple::Tuple;
use samzasql_serde::object::ObjectCodec;
use samzasql_serde::Value;
use std::collections::BTreeMap;

/// Per-group window state: aggregate accumulators, message sequence
/// counter, and the max event time seen (the window upper bound).
type WindowState = (Vec<Acc>, u64, i64);

/// Time- or tuple-domain sliding window appending aggregate columns.
pub struct SlidingWindowOp {
    /// Key prefix isolating this operator's entries in the shared store.
    op_id: String,
    partition_by: Vec<CompiledExpr>,
    ts_index: usize,
    /// RANGE frame in ms; `None` with `rows: None` means unbounded.
    range_ms: Option<i64>,
    rows: Option<u64>,
    aggs: Vec<CompiledAgg>,
    codec: ObjectCodec,
}

impl SlidingWindowOp {
    pub fn new(
        op_id: impl Into<String>,
        partition_by: Vec<CompiledExpr>,
        ts_index: usize,
        range_ms: Option<i64>,
        rows: Option<u64>,
        aggs: Vec<CompiledAgg>,
    ) -> Self {
        SlidingWindowOp {
            op_id: op_id.into(),
            partition_by,
            ts_index,
            range_ms,
            rows,
            aggs,
            codec: ObjectCodec::new(),
        }
    }

    fn group_key(&self, tuple: &Tuple) -> Result<Vec<u8>> {
        let vals: Vec<Value> = self.partition_by.iter().map(|e| e.eval(tuple)).collect();
        Ok(self.codec.encode(&Value::Array(vals))?.to_vec())
    }

    fn msg_prefix(&self, group: &[u8]) -> Vec<u8> {
        let mut k = format!("M{}/", self.op_id).into_bytes();
        k.extend_from_slice(group);
        k.push(b'/');
        k
    }

    fn meta_key(&self, tag: u8, group: &[u8]) -> Vec<u8> {
        let mut k = vec![tag];
        k.extend_from_slice(format!("{}/", self.op_id).as_bytes());
        k.extend_from_slice(group);
        k
    }
}

impl SlidingWindowOp {
    /// Load a group's state bundle from the store, or initialize it.
    fn load_state(&self, group: &[u8], ctx: &mut OpCtx<'_>) -> Result<WindowState> {
        let state_key = self.meta_key(b'A', group);
        match ctx.store()?.get(&state_key) {
            Some(bytes) => match self.codec.decode(&bytes)? {
                Value::Array(parts) if parts.len() == 3 => {
                    let accs = accs_from_value(&parts[0])?;
                    let seq = parts[1].as_i64().unwrap_or(0) as u64;
                    let max_ts = parts[2].as_i64().unwrap_or(i64::MIN);
                    Ok((accs, seq, max_ts))
                }
                _ => Err(crate::error::CoreError::Operator(
                    "corrupt sliding-window state".into(),
                )),
            },
            None => Ok((self.aggs.iter().map(|a| a.init()).collect(), 0, i64::MIN)),
        }
    }
}

impl Operator for SlidingWindowOp {
    fn process_batch(
        &mut self,
        _side: Side,
        input: &mut Vec<Tuple>,
        out: &mut Vec<Tuple>,
        ctx: &mut OpCtx<'_>,
    ) -> Result<()> {
        // State bundles are cached per group for the whole batch — "aggregate
        // state, window bounds, messages task instance has seen" (§4.3) — and
        // written back once per group, so repeated keys within a batch cost
        // one store read and one store write instead of one per tuple. The
        // message store stays write-through: purge and recompute range-scan
        // it per tuple.
        let mut states: BTreeMap<Vec<u8>, WindowState> = BTreeMap::new();

        for tuple in input.drain(..) {
            let ts = tuple
                .get(self.ts_index)
                .and_then(|v| v.as_i64())
                .ok_or_else(|| {
                    crate::error::CoreError::Operator("sliding window: NULL timestamp".into())
                })?;
            let group = self.group_key(&tuple)?;
            if !states.contains_key(&group) {
                let state = self.load_state(&group, ctx)?;
                states.insert(group.clone(), state);
            }
            let state = states.get_mut(&group).expect("just inserted");
            let (ref mut accs, ref mut seq, ref mut max_ts) = *state;

            // Out-of-order arrival beyond the retained window: the paper's
            // timeout-expiration policy discards it (§3).
            if let Some(range) = self.range_ms {
                if *max_ts != i64::MIN && ts < *max_ts - range {
                    *ctx.late_discards += 1;
                    continue;
                }
            }
            let new_max = (*max_ts).max(ts);

            // Save the message in the message store (Algorithm 1 line 1).
            let prefix = self.msg_prefix(&group);
            let mut msg_key = prefix.clone();
            msg_key.extend_from_slice(&encode_i64(ts));
            msg_key.extend_from_slice(&seq.to_be_bytes());
            let encoded_msg = self.codec.encode(&Value::Array(tuple.clone()))?;
            let store = ctx.store()?;
            store.put(&msg_key, encoded_msg)?;

            // Purge expired messages, adjusting aggregates (lines 8–9).
            let mut need_recompute = false;
            let mut expired: Vec<Vec<u8>> = Vec::new();
            match (self.range_ms, self.rows) {
                (Some(range), _) => {
                    let cutoff = new_max - range;
                    // Range [prefix .. prefix+encode(cutoff)) = strictly older.
                    let mut hi = prefix.clone();
                    hi.extend_from_slice(&encode_i64(cutoff));
                    for (k, v) in store.range(&prefix, &hi) {
                        let old: Tuple = match self.codec.decode(&v)? {
                            Value::Array(items) => items,
                            _ => continue,
                        };
                        for (spec, acc) in self.aggs.iter().zip(accs.iter_mut()) {
                            if !spec.retract(acc, &old) {
                                need_recompute = true;
                            }
                        }
                        expired.push(k);
                    }
                }
                (None, Some(rows)) => {
                    // Tuple-domain frame: current row + `rows` preceding. Drop
                    // the oldest entries beyond the frame.
                    let mut hi = prefix.clone();
                    hi.extend_from_slice(&encode_i64(i64::MAX));
                    let keep = rows as usize + 1;
                    let mut all = store.range(&prefix, &hi);
                    while all.len() > keep {
                        let (k, v) = all.remove(0);
                        let old: Tuple = match self.codec.decode(&v)? {
                            Value::Array(items) => items,
                            _ => continue,
                        };
                        for (spec, acc) in self.aggs.iter().zip(accs.iter_mut()) {
                            if !spec.retract(acc, &old) {
                                need_recompute = true;
                            }
                        }
                        expired.push(k);
                    }
                }
                (None, None) => {} // unbounded: nothing expires
            }
            for k in &expired {
                store.delete(k)?;
            }

            // Fold in the new tuple (line 10).
            for (spec, acc) in self.aggs.iter().zip(accs.iter_mut()) {
                spec.add(acc, &tuple);
            }

            // Non-invertible aggregates: recompute from retained messages.
            if need_recompute {
                let mut hi = prefix.clone();
                hi.extend_from_slice(&encode_i64(i64::MAX));
                let retained = store.range(&prefix, &hi);
                *accs = self.aggs.iter().map(|a| a.init()).collect();
                for (_, v) in retained {
                    if let Value::Array(items) = self.codec.decode(&v)? {
                        for (spec, acc) in self.aggs.iter().zip(accs.iter_mut()) {
                            spec.add(acc, &items);
                        }
                    }
                }
            }

            *seq += 1;
            *max_ts = new_max;

            // Emit input tuple + latest aggregate values (line 11).
            let mut row = tuple;
            for (spec, acc) in self.aggs.iter().zip(accs.iter()) {
                row.push(spec.result(acc));
            }
            out.push(row);
        }

        // Persist one state bundle per group touched by this batch.
        for (group, (accs, seq, max_ts)) in &states {
            let state_key = self.meta_key(b'A', group);
            let state = Value::Array(vec![
                accs_to_value(accs),
                Value::Long(*seq as i64),
                Value::Long(*max_ts),
            ]);
            let encoded = self.codec.encode(&state)?;
            ctx.store()?.put(&state_key, encoded)?;
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "SlidingWindowOp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::compile;
    use crate::udaf::UdafRegistry;
    use samzasql_planner::{AggCall, AggFunc, ScalarExpr};
    use samzasql_samza::KeyValueStore;
    use samzasql_serde::Schema;

    fn sum_units() -> CompiledAgg {
        CompiledAgg::new(
            &AggCall {
                func: AggFunc::Sum,
                arg: Some(ScalarExpr::input(2, Schema::Int)),
                distinct: false,
                output_name: "s".into(),
            },
            &UdafRegistry::new(),
        )
        .unwrap()
    }

    fn min_units() -> CompiledAgg {
        CompiledAgg::new(
            &AggCall {
                func: AggFunc::Min,
                arg: Some(ScalarExpr::input(2, Schema::Int)),
                distinct: false,
                output_name: "m".into(),
            },
            &UdafRegistry::new(),
        )
        .unwrap()
    }

    fn op(range_ms: Option<i64>, rows: Option<u64>, aggs: Vec<CompiledAgg>) -> SlidingWindowOp {
        SlidingWindowOp::new(
            "0",
            vec![compile(&ScalarExpr::input(1, Schema::Int))], // partition by productId
            0,
            range_ms,
            rows,
            aggs,
        )
    }

    fn tup(ts: i64, product: i32, units: i32) -> Tuple {
        vec![Value::Timestamp(ts), Value::Int(product), Value::Int(units)]
    }

    fn run(op: &mut SlidingWindowOp, store: &mut KeyValueStore, tuples: Vec<Tuple>) -> Vec<Tuple> {
        let mut late = 0;
        let mut out = Vec::new();
        let mut input = tuples;
        let mut ctx = OpCtx {
            store: Some(store),
            late_discards: &mut late,
        };
        op.process_batch(Side::Single, &mut input, &mut out, &mut ctx)
            .unwrap();
        out
    }

    #[test]
    fn emits_per_tuple_with_running_sum() {
        let mut store = KeyValueStore::ephemeral("s");
        let mut w = op(Some(100), None, vec![sum_units()]);
        let out = run(
            &mut w,
            &mut store,
            vec![tup(0, 1, 10), tup(50, 1, 20), tup(200, 1, 5)],
        );
        // t=0: sum 10; t=50: 30; t=200: first two expired (cutoff 100) ⇒ 5.
        let sums: Vec<Value> = out.iter().map(|t| t[3].clone()).collect();
        assert_eq!(sums, vec![Value::Long(10), Value::Long(30), Value::Long(5)]);
    }

    #[test]
    fn partitions_are_independent() {
        let mut store = KeyValueStore::ephemeral("s");
        let mut w = op(Some(1_000), None, vec![sum_units()]);
        let out = run(
            &mut w,
            &mut store,
            vec![tup(0, 1, 10), tup(1, 2, 99), tup(2, 1, 5)],
        );
        assert_eq!(out[1][3], Value::Long(99), "product 2 isolated");
        assert_eq!(out[2][3], Value::Long(15), "product 1 accumulates 10+5");
    }

    #[test]
    fn min_recomputes_after_purge() {
        let mut store = KeyValueStore::ephemeral("s");
        let mut w = op(Some(100), None, vec![min_units()]);
        let out = run(
            &mut w,
            &mut store,
            vec![tup(0, 1, 3), tup(50, 1, 7), tup(180, 1, 9)],
        );
        // At t=180 the t=0 tuple (min 3) expired; window = {7?, 9}: 7 is at
        // t=50 < 80 cutoff ⇒ also expired; min = 9.
        assert_eq!(out[2][3], Value::Int(9));
    }

    #[test]
    fn rows_frame_keeps_last_n_plus_current() {
        let mut store = KeyValueStore::ephemeral("s");
        let mut w = op(None, Some(1), vec![sum_units()]);
        let out = run(
            &mut w,
            &mut store,
            vec![tup(0, 1, 1), tup(1, 1, 2), tup(2, 1, 4), tup(3, 1, 8)],
        );
        let sums: Vec<Value> = out.iter().map(|t| t[3].clone()).collect();
        // ROWS 1 PRECEDING: current + previous.
        assert_eq!(
            sums,
            vec![
                Value::Long(1),
                Value::Long(3),
                Value::Long(6),
                Value::Long(12)
            ]
        );
    }

    #[test]
    fn unbounded_frame_never_purges() {
        let mut store = KeyValueStore::ephemeral("s");
        let mut w = op(None, None, vec![sum_units()]);
        let out = run(&mut w, &mut store, (0..5).map(|i| tup(i, 1, 1)).collect());
        assert_eq!(out.last().unwrap()[3], Value::Long(5));
    }

    #[test]
    fn late_tuples_discarded_and_counted() {
        let mut store = KeyValueStore::ephemeral("s");
        let mut w = op(Some(100), None, vec![sum_units()]);
        let mut late = 0;
        let mut ctx = OpCtx {
            store: Some(&mut store),
            late_discards: &mut late,
        };
        let mut out = Vec::new();
        w.process_batch(
            Side::Single,
            &mut vec![tup(1_000, 1, 1), tup(500, 1, 1)],
            &mut out,
            &mut ctx,
        )
        .unwrap();
        assert_eq!(out.len(), 1, "only the on-time tuple emits");
        assert_eq!(late, 1);
    }

    #[test]
    fn state_survives_store_restore() {
        use samzasql_kafka::{Broker, TopicConfig};
        let broker = Broker::new();
        broker
            .create_topic("clog", TopicConfig::with_partitions(1))
            .unwrap();
        let mut store = KeyValueStore::with_changelog("s", broker.clone(), "clog", 0);
        let mut w = op(Some(1_000), None, vec![sum_units()]);
        run(&mut w, &mut store, vec![tup(0, 1, 10), tup(1, 1, 20)]);
        store.flush_changelog().unwrap(); // commit before the "failure"

        // New store + operator (fresh task), restore from changelog.
        let mut store2 = KeyValueStore::with_changelog("s", broker, "clog", 0);
        store2.restore().unwrap();
        let mut w2 = op(Some(1_000), None, vec![sum_units()]);
        let out = run(&mut w2, &mut store2, vec![tup(2, 1, 5)]);
        assert_eq!(
            out[0][3],
            Value::Long(35),
            "restored window continues: 10+20+5"
        );
    }
}
