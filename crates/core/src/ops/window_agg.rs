//! Hopping/tumbling streaming aggregate operator (§3.6, §4.3).
//!
//! Event-time windows with watermark-driven emission:
//!
//! * a **tumbling** window of size `S` is the special case of a hopping
//!   window with `emit == retain == S`;
//! * a **hopping** window `HOP(ts, emit, retain, align)` opens a window
//!   every `emit` ms, each covering `retain` ms, with the first boundary
//!   shifted by `align`; `retain` need not be a multiple of `emit`;
//! * the watermark is the maximum event time seen; a window whose end has
//!   passed the watermark is finalized and emitted ("early results policy"
//!   — results go out as soon as the boundary condition is met, §3);
//! * tuples older than the oldest open window are discarded and counted as
//!   late (timeout expiration, §3).
//!
//! The `START`/`END` aggregates are overwritten with the exact window bounds
//! at emission. All per-window accumulators live in the KV store, keyed by
//! `(window start, group key)` in sort order so closed windows are found
//! with one range scan.
//!
//! `GroupWindow::None` (bounded relational aggregates) accumulates per key
//! and emits everything at [`Operator::flush`].

use crate::error::Result;
use crate::expr::CompiledExpr;
use crate::ops::acc::{accs_from_value, accs_to_value, Acc, CompiledAgg};
use crate::ops::{decode_i64, encode_i64, OpCtx, Operator, Side};
use crate::tuple::Tuple;
use samzasql_planner::GroupWindow;
use samzasql_serde::object::ObjectCodec;
use samzasql_serde::Value;
use std::collections::BTreeMap;

/// Per-batch cache of window accumulators: decoded accs plus a dirty flag.
/// Keys repeat heavily within a batch (same group, adjacent timestamps), so
/// caching saves a store get + object decode per repeat; dirty entries are
/// written back before any closed-window range scan so the store view stays
/// exactly what the per-tuple execution would have produced.
type AccCache = BTreeMap<Vec<u8>, (Vec<Acc>, bool)>;

/// Streaming GROUP BY aggregate operator.
pub struct WindowAggOp {
    op_id: String,
    window: GroupWindow,
    keys: Vec<CompiledExpr>,
    aggs: Vec<CompiledAgg>,
    codec: ObjectCodec,
}

impl WindowAggOp {
    pub fn new(
        op_id: impl Into<String>,
        window: GroupWindow,
        keys: Vec<CompiledExpr>,
        aggs: Vec<CompiledAgg>,
    ) -> Self {
        WindowAggOp {
            op_id: op_id.into(),
            window,
            keys,
            aggs,
            codec: ObjectCodec::new(),
        }
    }

    /// (emit, retain, align, ts_index) of the window, tumble normalized.
    fn params(&self) -> Option<(i64, i64, i64, usize)> {
        match &self.window {
            GroupWindow::Tumble { ts_index, size_ms } => Some((*size_ms, *size_ms, 0, *ts_index)),
            GroupWindow::Hop {
                ts_index,
                emit_ms,
                retain_ms,
                align_ms,
            } => Some((*emit_ms, *retain_ms, *align_ms, *ts_index)),
            GroupWindow::None => None,
        }
    }

    fn window_prefix(&self) -> Vec<u8> {
        format!("W{}/", self.op_id).into_bytes()
    }

    fn window_key(&self, start: i64, group: &[u8]) -> Vec<u8> {
        let mut k = self.window_prefix();
        k.extend_from_slice(&encode_i64(start));
        k.push(b'/');
        k.extend_from_slice(group);
        k
    }

    fn group_key(&self, tuple: &Tuple) -> Result<(Vec<u8>, Vec<Value>)> {
        let vals: Vec<Value> = self.keys.iter().map(|e| e.eval(tuple)).collect();
        Ok((
            self.codec.encode(&Value::Array(vals.clone()))?.to_vec(),
            vals,
        ))
    }

    fn wm_key(&self) -> Vec<u8> {
        format!("wm{}", self.op_id).into_bytes()
    }

    /// Window starts whose window `[start, start+retain)` contains `ts`.
    fn window_starts(ts: i64, emit: i64, retain: i64, align: i64) -> Vec<i64> {
        // start = align + k*emit with start in (ts - retain, ts].
        let lo = ts - retain + 1;
        let k_lo = (lo - align).div_euclid(emit) + i64::from((lo - align).rem_euclid(emit) != 0);
        let k_hi = (ts - align).div_euclid(emit);
        (k_lo..=k_hi).map(|k| align + k * emit).collect()
    }

    /// Write dirty cached accumulators back to the store.
    fn flush_cache(&self, cache: &mut AccCache, ctx: &mut OpCtx<'_>) -> Result<()> {
        for (k, (accs, dirty)) in cache.iter_mut() {
            if *dirty {
                let encoded = self.codec.encode(&accs_to_value(accs))?;
                ctx.store()?.put(k, encoded)?;
                *dirty = false;
            }
        }
        Ok(())
    }

    /// Finalize windows whose end passed the watermark; emit key+agg rows
    /// into `out`. Emitted keys are deleted from the store and dropped from
    /// `cache` (a re-opened window must start from a fresh accumulator).
    fn emit_closed(
        &self,
        watermark: i64,
        retain: i64,
        cache: &mut AccCache,
        out: &mut Vec<Tuple>,
        ctx: &mut OpCtx<'_>,
    ) -> Result<()> {
        let store = ctx.store()?;
        let prefix = self.window_prefix();
        // Closed ⇔ start + retain <= watermark ⇔ start <= watermark - retain.
        let boundary = watermark - retain;
        let mut hi = prefix.clone();
        hi.extend_from_slice(&encode_i64(boundary));
        hi.push(b'/' + 1); // one past any key with start == boundary
        let closed = store.range(&prefix, &hi);
        for (k, v) in closed {
            let start = decode_i64(&k[prefix.len()..]);
            let group_bytes = &k[prefix.len() + 9..];
            let group_vals = match self.codec.decode(group_bytes)? {
                Value::Array(items) => items,
                _ => Vec::new(),
            };
            let mut accs = accs_from_value(&self.codec.decode(&v)?)?;
            // Exact window bounds for START/END (§3.6).
            for acc in accs.iter_mut() {
                match acc {
                    Acc::Start(s) => *s = Some(start),
                    Acc::End(e) => *e = Some(start + retain),
                    _ => {}
                }
            }
            let mut row = group_vals;
            for (spec, acc) in self.aggs.iter().zip(&accs) {
                row.push(spec.result(acc));
            }
            out.push(row);
            store.delete(&k)?;
            cache.remove(&k);
        }
        Ok(())
    }
}

impl Operator for WindowAggOp {
    fn process_batch(
        &mut self,
        _side: Side,
        input: &mut Vec<Tuple>,
        out: &mut Vec<Tuple>,
        ctx: &mut OpCtx<'_>,
    ) -> Result<()> {
        let Some((emit, retain, align, ts_index)) = self.params() else {
            // Plain relational aggregate: accumulate per key in memory and
            // write each distinct key once per batch; emit at flush.
            let mut groups: BTreeMap<Vec<u8>, Vec<Acc>> = BTreeMap::new();
            for tuple in input.drain(..) {
                let (group, _) = self.group_key(&tuple)?;
                let mut key = format!("K{}/", self.op_id).into_bytes();
                key.extend_from_slice(&group);
                if !groups.contains_key(&key) {
                    let store = ctx.store()?;
                    let accs: Vec<Acc> = match store.get(&key) {
                        Some(bytes) => accs_from_value(&self.codec.decode(&bytes)?)?,
                        None => self.aggs.iter().map(|a| a.init()).collect(),
                    };
                    groups.insert(key.clone(), accs);
                }
                let accs = groups.get_mut(&key).expect("just inserted");
                for (spec, acc) in self.aggs.iter().zip(accs.iter_mut()) {
                    spec.add(acc, &tuple);
                }
            }
            for (key, accs) in &groups {
                let encoded = self.codec.encode(&accs_to_value(accs))?;
                ctx.store()?.put(key, encoded)?;
            }
            return Ok(());
        };

        // Watermark read once per batch, written back once if it advanced.
        let wm_key = self.wm_key();
        let entry_watermark: i64 = ctx
            .store()?
            .get(&wm_key)
            .map(|b| i64::from_le_bytes(b.as_ref().try_into().unwrap_or([0; 8])))
            .unwrap_or(i64::MIN);
        let mut watermark = entry_watermark;
        let mut cache: AccCache = AccCache::new();

        for tuple in input.drain(..) {
            let ts = tuple
                .get(ts_index)
                .and_then(|v| v.as_i64())
                .ok_or_else(|| {
                    crate::error::CoreError::Operator("window aggregate: NULL timestamp".into())
                })?;
            // Late-arrival policy: the newest window containing ts starts at
            // or before ts and ends by ts + retain. If that end has already
            // passed the watermark (ts <= watermark - retain), every window
            // this tuple belongs to is closed — discard it (§3 timeout
            // expiration).
            if watermark != i64::MIN && ts <= watermark - retain {
                *ctx.late_discards += 1;
                continue;
            }
            let (group, _) = self.group_key(&tuple)?;

            // Fold the tuple into every window containing it.
            for start in Self::window_starts(ts, emit, retain, align) {
                let wk = self.window_key(start, &group);
                if !cache.contains_key(&wk) {
                    let store = ctx.store()?;
                    let accs: Vec<Acc> = match store.get(&wk) {
                        Some(bytes) => accs_from_value(&self.codec.decode(&bytes)?)?,
                        None => self.aggs.iter().map(|a| a.init()).collect(),
                    };
                    cache.insert(wk.clone(), (accs, false));
                }
                let entry = cache.get_mut(&wk).expect("just inserted");
                for (spec, acc) in self.aggs.iter().zip(entry.0.iter_mut()) {
                    spec.add(acc, &tuple);
                }
                entry.1 = true;
            }

            // Advance the watermark and emit any closed windows.
            if ts > watermark {
                watermark = ts;
                self.flush_cache(&mut cache, ctx)?;
                self.emit_closed(ts, retain, &mut cache, out, ctx)?;
            }
        }

        self.flush_cache(&mut cache, ctx)?;
        if watermark > entry_watermark {
            ctx.store()?.put(
                &wm_key,
                bytes::Bytes::copy_from_slice(&watermark.to_le_bytes()),
            )?;
        }
        Ok(())
    }

    fn flush(&mut self, out: &mut Vec<Tuple>, ctx: &mut OpCtx<'_>) -> Result<()> {
        match self.params() {
            Some((_, retain, _, _)) => {
                // End of bounded input: close every remaining window.
                self.emit_closed(i64::MAX, retain, &mut AccCache::new(), out, ctx)
            }
            None => {
                // Relational aggregate: emit all groups, in key order.
                let prefix = format!("K{}/", self.op_id).into_bytes();
                let mut hi = prefix.clone();
                hi.push(0xff);
                let store = ctx.store()?;
                let entries = store.range(&prefix, &hi);
                for (k, v) in entries {
                    let group_vals = match self.codec.decode(&k[prefix.len()..])? {
                        Value::Array(items) => items,
                        _ => Vec::new(),
                    };
                    let accs = accs_from_value(&self.codec.decode(&v)?)?;
                    let mut row = group_vals;
                    for (spec, acc) in self.aggs.iter().zip(&accs) {
                        row.push(spec.result(acc));
                    }
                    out.push(row);
                    store.delete(&k)?;
                }
                Ok(())
            }
        }
    }

    fn name(&self) -> &'static str {
        "WindowAggOp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::compile;
    use crate::udaf::UdafRegistry;
    use samzasql_planner::{AggCall, AggFunc, ScalarExpr};
    use samzasql_samza::KeyValueStore;
    use samzasql_serde::Schema;

    fn agg(func: AggFunc, arg: Option<usize>) -> CompiledAgg {
        CompiledAgg::new(
            &AggCall {
                func,
                arg: arg.map(|i| {
                    ScalarExpr::input(
                        i,
                        if i == 0 {
                            Schema::Timestamp
                        } else {
                            Schema::Int
                        },
                    )
                }),
                distinct: false,
                output_name: "a".into(),
            },
            &UdafRegistry::new(),
        )
        .unwrap()
    }

    fn tup(ts: i64, product: i32, units: i32) -> Tuple {
        vec![Value::Timestamp(ts), Value::Int(product), Value::Int(units)]
    }

    fn run(op: &mut WindowAggOp, store: &mut KeyValueStore, tuples: Vec<Tuple>) -> Vec<Tuple> {
        let mut late = 0;
        let mut out = Vec::new();
        let mut input = tuples;
        let mut ctx = OpCtx {
            store: Some(store),
            late_discards: &mut late,
        };
        op.process_batch(Side::Single, &mut input, &mut out, &mut ctx)
            .unwrap();
        out
    }

    fn flush(op: &mut WindowAggOp, store: &mut KeyValueStore) -> Vec<Tuple> {
        let mut late = 0;
        let mut ctx = OpCtx {
            store: Some(store),
            late_discards: &mut late,
        };
        let mut out = Vec::new();
        op.flush(&mut out, &mut ctx).unwrap();
        out
    }

    #[test]
    fn window_start_computation() {
        // Tumble 10: ts=25 ⇒ [20,30).
        assert_eq!(WindowAggOp::window_starts(25, 10, 10, 0), vec![20]);
        // Hop emit=5 retain=10: ts=12 ⇒ starts 5 and 10.
        assert_eq!(WindowAggOp::window_starts(12, 5, 10, 0), vec![5, 10]);
        // Alignment shifts boundaries: align=3, emit=10, retain=10, ts=12 ⇒ start 3.
        assert_eq!(WindowAggOp::window_starts(12, 10, 10, 3), vec![3]);
        // Retain not a multiple of emit (§3.6): emit=4, retain=10, ts=11 ⇒
        // starts in (1, 11] stepping 4: {4, 8}.
        assert_eq!(WindowAggOp::window_starts(11, 4, 10, 0), vec![4, 8]);
    }

    #[test]
    fn tumbling_counts_per_hour() {
        // Listing 4 shape: COUNT(*) per 1h tumble (scaled to 10ms windows).
        let mut store = KeyValueStore::ephemeral("s");
        let mut op = WindowAggOp::new(
            "0",
            GroupWindow::Tumble {
                ts_index: 0,
                size_ms: 10,
            },
            vec![],
            vec![agg(AggFunc::Start, Some(0)), agg(AggFunc::CountStar, None)],
        );
        let out = run(
            &mut op,
            &mut store,
            vec![tup(1, 1, 1), tup(5, 1, 1), tup(12, 1, 1), tup(25, 1, 1)],
        );
        // Watermark 12 closes [0,10) → (START=0, COUNT=2); wm 25 closes [10,20).
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], vec![Value::Timestamp(0), Value::Long(2)]);
        assert_eq!(out[1], vec![Value::Timestamp(10), Value::Long(1)]);
        // Flush closes the open [20,30) window.
        let rest = flush(&mut op, &mut store);
        assert_eq!(rest, vec![vec![Value::Timestamp(20), Value::Long(1)]]);
    }

    #[test]
    fn group_keys_partition_windows() {
        let mut store = KeyValueStore::ephemeral("s");
        let mut op = WindowAggOp::new(
            "0",
            GroupWindow::Tumble {
                ts_index: 0,
                size_ms: 10,
            },
            vec![compile(&ScalarExpr::input(1, Schema::Int))],
            vec![agg(AggFunc::Sum, Some(2))],
        );
        run(
            &mut op,
            &mut store,
            vec![tup(1, 1, 10), tup(2, 2, 20), tup(3, 1, 5)],
        );
        let mut rows = flush(&mut op, &mut store);
        rows.sort_by_key(|r| r[0].as_i64());
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1), Value::Long(15)],
                vec![Value::Int(2), Value::Long(20)],
            ]
        );
    }

    #[test]
    fn hopping_window_emits_overlapping_aggregates() {
        // emit=5, retain=10: each tuple lands in two windows.
        let mut store = KeyValueStore::ephemeral("s");
        let mut op = WindowAggOp::new(
            "0",
            GroupWindow::Hop {
                ts_index: 0,
                emit_ms: 5,
                retain_ms: 10,
                align_ms: 0,
            },
            vec![],
            vec![
                agg(AggFunc::Start, Some(0)),
                agg(AggFunc::End, Some(0)),
                agg(AggFunc::CountStar, None),
            ],
        );
        // Window [-5,5) closes while processing (watermark reaches 7); the
        // remaining two close at flush.
        let mut rows = run(&mut op, &mut store, vec![tup(2, 1, 1), tup(7, 1, 1)]);
        rows.extend(flush(&mut op, &mut store));
        rows.sort_by_key(|r| r[0].as_i64());
        // Windows: [-5,5) has tuple@2; [0,10) has both; [5,15) has tuple@7.
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows[0],
            vec![Value::Timestamp(-5), Value::Timestamp(5), Value::Long(1)]
        );
        assert_eq!(
            rows[1],
            vec![Value::Timestamp(0), Value::Timestamp(10), Value::Long(2)]
        );
        assert_eq!(
            rows[2],
            vec![Value::Timestamp(5), Value::Timestamp(15), Value::Long(1)]
        );
    }

    #[test]
    fn late_tuples_discarded() {
        let mut store = KeyValueStore::ephemeral("s");
        let mut op = WindowAggOp::new(
            "0",
            GroupWindow::Tumble {
                ts_index: 0,
                size_ms: 10,
            },
            vec![],
            vec![agg(AggFunc::CountStar, None)],
        );
        let mut late = 0;
        let mut ctx = OpCtx {
            store: Some(&mut store),
            late_discards: &mut late,
        };
        let mut out = Vec::new();
        // Two separate batches: the late tuple arrives after the watermark
        // has been persisted by the first batch.
        op.process_batch(Side::Single, &mut vec![tup(100, 1, 1)], &mut out, &mut ctx)
            .unwrap();
        op.process_batch(Side::Single, &mut vec![tup(50, 1, 1)], &mut out, &mut ctx)
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(
            late, 1,
            "tuple for a closed window is discarded (§3 timeout policy)"
        );
    }

    #[test]
    fn relational_aggregate_flushes_groups() {
        let mut store = KeyValueStore::ephemeral("s");
        let mut op = WindowAggOp::new(
            "0",
            GroupWindow::None,
            vec![compile(&ScalarExpr::input(1, Schema::Int))],
            vec![agg(AggFunc::CountStar, None), agg(AggFunc::Sum, Some(2))],
        );
        let streamed = run(
            &mut op,
            &mut store,
            vec![tup(1, 7, 10), tup(2, 7, 20), tup(3, 9, 1)],
        );
        assert!(streamed.is_empty(), "relational agg only emits at flush");
        let mut rows = flush(&mut op, &mut store);
        rows.sort_by_key(|r| r[0].as_i64());
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(7), Value::Long(2), Value::Long(30)],
                vec![Value::Int(9), Value::Long(1), Value::Long(1)],
            ]
        );
    }
}
