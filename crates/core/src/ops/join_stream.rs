//! Stream-to-stream sliding-window join (§3.8.1).
//!
//! The window lives in the join condition: `L.ts BETWEEN R.ts - lower AND
//! R.ts + upper`. The operator is a symmetric hash join: each side keeps its
//! recent tuples in the KV store keyed by `(equi key, ts, seq)`; an arriving
//! tuple probes the opposite side's store for key-equal tuples inside the
//! time bound, emits matches, stores itself, and purges opposite-side tuples
//! that can no longer match anything (event time has moved past them).

use crate::error::Result;
use crate::expr::CompiledExpr;
use crate::ops::{encode_i64, OpCtx, Operator, Side};
use crate::tuple::Tuple;
use samzasql_parser::ast::JoinKind;
use samzasql_serde::object::ObjectCodec;
use samzasql_serde::Value;

/// Symmetric windowed join.
pub struct StreamToStreamJoinOp {
    op_id: String,
    /// Join key extractors, one per side.
    left_key: CompiledExpr,
    right_key: CompiledExpr,
    /// Timestamp column index on each side's tuples.
    left_ts: usize,
    right_ts: usize,
    /// `left.ts ∈ [right.ts - lower, right.ts + upper]`.
    lower_ms: i64,
    upper_ms: i64,
    residual: Option<CompiledExpr>,
    codec: ObjectCodec,
    seq: u64,
}

impl StreamToStreamJoinOp {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        op_id: impl Into<String>,
        kind: JoinKind,
        left_key: CompiledExpr,
        right_key: CompiledExpr,
        left_ts: usize,
        right_ts: usize,
        lower_ms: i64,
        upper_ms: i64,
        residual: Option<CompiledExpr>,
    ) -> Result<Self> {
        if kind != JoinKind::Inner {
            return Err(crate::error::CoreError::Operator(
                "stream-to-stream joins support INNER JOIN only".into(),
            ));
        }
        Ok(StreamToStreamJoinOp {
            op_id: op_id.into(),
            left_key,
            right_key,
            left_ts,
            right_ts,
            lower_ms,
            upper_ms,
            residual,
            codec: ObjectCodec::new(),
            seq: 0,
        })
    }

    fn side_prefix(&self, side: Side, key: &Value) -> Result<Vec<u8>> {
        let tag = if side == Side::Left { 'L' } else { 'R' };
        let mut k = format!("{tag}{}/", self.op_id).into_bytes();
        k.extend_from_slice(&self.codec.encode(key)?);
        k.push(b'/');
        Ok(k)
    }

    /// The probe window on the *other* side for a tuple at `ts` on `side`.
    ///
    /// Condition: `L.ts >= R.ts - lower && L.ts <= R.ts + upper`.
    /// * left arrival at `t`: matching right tuples have
    ///   `R.ts ∈ [t - upper, t + lower]`.
    /// * right arrival at `t`: matching left tuples have
    ///   `L.ts ∈ [t - lower, t + upper]`.
    fn probe_window(&self, side: Side, ts: i64) -> (i64, i64) {
        if side == Side::Left {
            (ts - self.upper_ms, ts + self.lower_ms)
        } else {
            (ts - self.lower_ms, ts + self.upper_ms)
        }
    }

    fn combine(&self, side: Side, this: &Tuple, other: &Tuple) -> Tuple {
        if side == Side::Left {
            this.iter().chain(other.iter()).cloned().collect()
        } else {
            other.iter().chain(this.iter()).cloned().collect()
        }
    }
}

impl StreamToStreamJoinOp {
    /// Probe + store one tuple, appending matches to `out`.
    fn process_one(
        &mut self,
        side: Side,
        tuple: Tuple,
        out: &mut Vec<Tuple>,
        ctx: &mut OpCtx<'_>,
    ) -> Result<()> {
        let (key, ts) = match side {
            Side::Left => (
                self.left_key.eval(&tuple),
                tuple.get(self.left_ts).and_then(|v| v.as_i64()),
            ),
            _ => (
                self.right_key.eval(&tuple),
                tuple.get(self.right_ts).and_then(|v| v.as_i64()),
            ),
        };
        let ts = ts.ok_or_else(|| {
            crate::error::CoreError::Operator("stream join: NULL timestamp".into())
        })?;
        if key.is_null() {
            return Ok(()); // NULL keys never join
        }
        let other_side = if side == Side::Left {
            Side::Right
        } else {
            Side::Left
        };
        let other_prefix = self.side_prefix(other_side, &key)?;
        let (lo, hi) = self.probe_window(side, ts);

        // Purge opposite-side tuples too old to ever match again, assuming
        // per-partition monotonic timestamps (§3.8.1).
        let slack = self.lower_ms + self.upper_ms;
        let mut purge_hi = other_prefix.clone();
        purge_hi.extend_from_slice(&encode_i64(ts - slack - 1));
        {
            let store = ctx.store()?;
            let stale = store.range(&other_prefix, &purge_hi);
            for (k, _) in stale {
                store.delete(&k)?;
            }
        }

        // Probe the opposite side within [lo, hi].
        let mut from = other_prefix.clone();
        from.extend_from_slice(&encode_i64(lo));
        let mut to = other_prefix.clone();
        to.extend_from_slice(&encode_i64(hi.saturating_add(1)));
        let matches = ctx.store()?.range(&from, &to);
        for (_, v) in matches {
            if let Value::Array(other_tuple) = self.codec.decode(&v)? {
                let combined = self.combine(side, &tuple, &other_tuple);
                if let Some(residual) = &self.residual {
                    if !residual.eval_bool(&combined) {
                        continue;
                    }
                }
                out.push(combined);
            }
        }

        // Store this tuple on its own side for future probes.
        let mut own_key = self.side_prefix(side, &key)?;
        own_key.extend_from_slice(&encode_i64(ts));
        own_key.extend_from_slice(&self.seq.to_be_bytes());
        self.seq += 1;
        let encoded = self.codec.encode(&Value::Array(tuple))?;
        ctx.store()?.put(&own_key, encoded)?;
        Ok(())
    }
}

impl Operator for StreamToStreamJoinOp {
    fn process_batch(
        &mut self,
        side: Side,
        input: &mut Vec<Tuple>,
        out: &mut Vec<Tuple>,
        ctx: &mut OpCtx<'_>,
    ) -> Result<()> {
        // The symmetric join interleaves probes with inserts and purges, so
        // each tuple runs the full probe/store cycle; batching still saves
        // the per-tuple output vector of the old pull API.
        for tuple in input.drain(..) {
            self.process_one(side, tuple, out, ctx)?;
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "StreamToStreamJoinOp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::compile;
    use samzasql_planner::ScalarExpr;
    use samzasql_samza::KeyValueStore;
    use samzasql_serde::Schema;

    /// Batch-of-one driver mirroring the old per-tuple API.
    fn process(
        j: &mut StreamToStreamJoinOp,
        side: Side,
        tuple: Tuple,
        ctx: &mut OpCtx<'_>,
    ) -> Result<Vec<Tuple>> {
        let mut input = vec![tuple];
        let mut out = Vec::new();
        j.process_batch(side, &mut input, &mut out, ctx)?;
        Ok(out)
    }

    /// Packets schema: (rowtime, sourcetime, packetId) on both sides.
    fn join(lower: i64, upper: i64) -> StreamToStreamJoinOp {
        StreamToStreamJoinOp::new(
            "0",
            JoinKind::Inner,
            compile(&ScalarExpr::input(2, Schema::Long)),
            compile(&ScalarExpr::input(2, Schema::Long)),
            0,
            0,
            lower,
            upper,
            None,
        )
        .unwrap()
    }

    fn packet(ts: i64, id: i64) -> Tuple {
        vec![
            Value::Timestamp(ts),
            Value::Timestamp(ts - 1),
            Value::Long(id),
        ]
    }

    #[test]
    fn matches_within_window_on_same_key() {
        let mut store = KeyValueStore::ephemeral("s");
        let mut late = 0;
        let mut j = join(2_000, 2_000);
        let mut ctx = OpCtx {
            store: Some(&mut store),
            late_discards: &mut late,
        };
        // R1 packet at t=1000, R2 same id at t=2500: |Δ| = 1500 ≤ 2000 ⇒ join.
        assert!(process(&mut j, Side::Left, packet(1_000, 42), &mut ctx)
            .unwrap()
            .is_empty());
        let out = process(&mut j, Side::Right, packet(2_500, 42), &mut ctx).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 6, "left ++ right columns");
        assert_eq!(out[0][0], Value::Timestamp(1_000), "left side first");
        assert_eq!(out[0][3], Value::Timestamp(2_500));
    }

    #[test]
    fn different_keys_never_match() {
        let mut store = KeyValueStore::ephemeral("s");
        let mut late = 0;
        let mut j = join(2_000, 2_000);
        let mut ctx = OpCtx {
            store: Some(&mut store),
            late_discards: &mut late,
        };
        process(&mut j, Side::Left, packet(1_000, 1), &mut ctx).unwrap();
        assert!(process(&mut j, Side::Right, packet(1_000, 2), &mut ctx)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn outside_window_is_dropped() {
        let mut store = KeyValueStore::ephemeral("s");
        let mut late = 0;
        let mut j = join(2_000, 2_000);
        let mut ctx = OpCtx {
            store: Some(&mut store),
            late_discards: &mut late,
        };
        process(&mut j, Side::Left, packet(1_000, 42), &mut ctx).unwrap();
        assert!(process(&mut j, Side::Right, packet(9_000, 42), &mut ctx)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn symmetric_probe_finds_matches_from_either_side() {
        let mut store = KeyValueStore::ephemeral("s");
        let mut late = 0;
        let mut j = join(2_000, 2_000);
        let mut ctx = OpCtx {
            store: Some(&mut store),
            late_discards: &mut late,
        };
        // Right arrives first this time.
        process(&mut j, Side::Right, packet(1_000, 7), &mut ctx).unwrap();
        let out = process(&mut j, Side::Left, packet(1_500, 7), &mut ctx).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0][0],
            Value::Timestamp(1_500),
            "left side first in output"
        );
    }

    #[test]
    fn multiple_matches_all_emitted() {
        let mut store = KeyValueStore::ephemeral("s");
        let mut late = 0;
        let mut j = join(2_000, 2_000);
        let mut ctx = OpCtx {
            store: Some(&mut store),
            late_discards: &mut late,
        };
        process(&mut j, Side::Left, packet(1_000, 5), &mut ctx).unwrap();
        process(&mut j, Side::Left, packet(1_200, 5), &mut ctx).unwrap();
        let out = process(&mut j, Side::Right, packet(2_000, 5), &mut ctx).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn asymmetric_bounds() {
        // left.ts BETWEEN right.ts - 0 AND right.ts + 1000:
        // left must be at or after right, within 1000.
        let mut store = KeyValueStore::ephemeral("s");
        let mut late = 0;
        let mut j = join(0, 1_000);
        let mut ctx = OpCtx {
            store: Some(&mut store),
            late_discards: &mut late,
        };
        process(&mut j, Side::Right, packet(1_000, 1), &mut ctx).unwrap();
        // left at 900 < right 1000 ⇒ no match (lower bound 0).
        assert!(process(&mut j, Side::Left, packet(900, 1), &mut ctx)
            .unwrap()
            .is_empty());
        // left at 1500 ∈ [1000, 2000] ⇒ match.
        assert_eq!(
            process(&mut j, Side::Left, packet(1_500, 1), &mut ctx)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn old_entries_get_purged() {
        let mut store = KeyValueStore::ephemeral("s");
        let mut late = 0;
        let mut j = join(1_000, 1_000);
        let mut ctx = OpCtx {
            store: Some(&mut store),
            late_discards: &mut late,
        };
        process(&mut j, Side::Left, packet(1_000, 3), &mut ctx).unwrap();
        let before = ctx.store().unwrap().len();
        // A much later right tuple for the same key purges the stale left.
        process(&mut j, Side::Right, packet(100_000, 3), &mut ctx).unwrap();
        // Store holds: the new right tuple; the old left one is gone.
        let after = ctx.store().unwrap().len();
        assert_eq!(before, 1);
        assert_eq!(after, 1, "stale left entry purged, right entry stored");
    }

    #[test]
    fn non_inner_join_rejected() {
        assert!(StreamToStreamJoinOp::new(
            "0",
            JoinKind::Left,
            compile(&ScalarExpr::input(2, Schema::Long)),
            compile(&ScalarExpr::input(2, Schema::Long)),
            0,
            0,
            1,
            1,
            None,
        )
        .is_err());
    }
}
