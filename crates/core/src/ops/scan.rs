//! Scan operator: decode incoming messages and convert to array tuples.
//!
//! The default ([`ScanOp::new`]) is the prototype's path and is where
//! SamzaSQL pays the `AvroToArray` step of Figure 4: the payload is decoded
//! through the stream's serde into a generic record, then unwrapped into the
//! positional array the expression layer uses.
//!
//! [`ScanOp::direct`] is the paper's §7 future-work item 5, implemented: a
//! "SamzaSQL-specific code generation framework which avoids AvroToArray …
//! by generating expressions that directly work on a SamzaSQL-specific
//! message abstraction" — the codec decodes straight into the array tuple,
//! skipping record materialization. The ablation bench compares the modes.

use crate::error::Result;
use crate::tuple::{record_to_array, Tuple};
use bytes::Bytes;
use samzasql_serde::avro::AvroCodec;
use samzasql_serde::BoxedSerde;

enum ScanMode {
    /// Generic serde → record → array (the prototype's Figure-4 flow).
    Generic(BoxedSerde),
    /// Direct decode to the array tuple (§7 item 5).
    Direct(AvroCodec),
}

/// Entry point of the router for one input topic.
pub struct ScanOp {
    mode: ScanMode,
    arity: usize,
}

impl ScanOp {
    /// Prototype path: serde decode + `AvroToArray`.
    pub fn new(serde: BoxedSerde, arity: usize) -> Self {
        ScanOp {
            mode: ScanMode::Generic(serde),
            arity,
        }
    }

    /// Optimized path: decode directly into the array tuple.
    pub fn direct(codec: AvroCodec, arity: usize) -> Self {
        ScanOp {
            mode: ScanMode::Direct(codec),
            arity,
        }
    }

    /// Decode a payload into a tuple. Empty payloads are tombstones and
    /// yield `None`.
    pub fn decode(&self, payload: &Bytes) -> Result<Option<Tuple>> {
        if payload.is_empty() {
            return Ok(None);
        }
        let tuple = match &self.mode {
            ScanMode::Generic(serde) => {
                let value = serde.deserialize(payload)?;
                record_to_array(value)?
            }
            ScanMode::Direct(codec) => codec.decode_to_tuple(payload)?,
        };
        if tuple.len() != self.arity {
            return Err(crate::error::CoreError::Operator(format!(
                "scan decoded {} columns, expected {}",
                tuple.len(),
                self.arity
            )));
        }
        Ok(Some(tuple))
    }
}

impl std::fmt::Debug for ScanOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanOp")
            .field("arity", &self.arity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samzasql_serde::serde_api::build_serde;
    use samzasql_serde::{Schema, SerdeFormat, Value};

    #[test]
    fn decodes_avro_to_array() {
        let schema = Schema::record("R", vec![("a", Schema::Int), ("b", Schema::String)]);
        let serde = build_serde(SerdeFormat::Avro, schema);
        let v = Value::record(vec![("a", Value::Int(1)), ("b", Value::String("x".into()))]);
        let bytes = serde.serialize(&v).unwrap();
        let scan = ScanOp::new(serde, 2);
        let tuple = scan.decode(&bytes).unwrap().unwrap();
        assert_eq!(tuple, vec![Value::Int(1), Value::String("x".into())]);
    }

    #[test]
    fn empty_payload_is_tombstone() {
        let serde = build_serde(
            SerdeFormat::Avro,
            Schema::record("R", vec![("a", Schema::Int)]),
        );
        let scan = ScanOp::new(serde, 1);
        assert_eq!(scan.decode(&Bytes::new()).unwrap(), None);
    }

    #[test]
    fn direct_mode_decodes_without_record_step() {
        let schema = Schema::record("R", vec![("a", Schema::Int), ("b", Schema::String)]);
        let codec = samzasql_serde::avro::AvroCodec::new(schema.clone());
        let v = Value::record(vec![("a", Value::Int(1)), ("b", Value::String("x".into()))]);
        let bytes = codec.encode(&v).unwrap();
        let scan = ScanOp::direct(codec, 2);
        let tuple = scan.decode(&bytes).unwrap().unwrap();
        assert_eq!(tuple, vec![Value::Int(1), Value::String("x".into())]);
    }

    #[test]
    fn corrupt_payload_errors() {
        let serde = build_serde(
            SerdeFormat::Avro,
            Schema::record("R", vec![("a", Schema::String)]),
        );
        let scan = ScanOp::new(serde, 1);
        assert!(scan.decode(&Bytes::from_static(&[200, 1, 2])).is_err());
    }
}
