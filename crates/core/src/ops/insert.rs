//! Stream insert operator: array → record → encoded output message.
//!
//! The `ArrayToAvro` step of Figure 4: the final operator rewraps the array
//! tuple as a record and encodes it with the output stream's serde. It also
//! recovers the event timestamp for the outgoing envelope when the output
//! schema retained a timestamp column.

use crate::error::Result;
use crate::tuple::{array_to_record, Tuple};
use bytes::Bytes;
use samzasql_serde::BoxedSerde;

/// Encoded output of the insert operator.
#[derive(Debug, Clone)]
pub struct EncodedOutput {
    pub payload: Bytes,
    pub timestamp: i64,
    /// Partitioning key for the output message (set by repartition stages).
    pub key: Option<Bytes>,
}

/// Terminal operator of the router.
pub struct InsertOp {
    serde: BoxedSerde,
    names: Vec<String>,
    ts_index: Option<usize>,
    /// Column whose object-coded value keys the outgoing message.
    key_index: Option<usize>,
    key_codec: samzasql_serde::object::ObjectCodec,
    /// §7 item 5: encode the array tuple directly, skipping `ArrayToAvro`.
    direct: Option<samzasql_serde::avro::AvroCodec>,
}

impl InsertOp {
    pub fn new(serde: BoxedSerde, names: Vec<String>, ts_index: Option<usize>) -> Self {
        InsertOp {
            serde,
            names,
            ts_index,
            key_index: None,
            key_codec: samzasql_serde::object::ObjectCodec::new(),
            direct: None,
        }
    }

    /// Enable the direct data-API path (§7 item 5): the tuple is encoded
    /// positionally, with no intermediate record.
    pub fn with_direct(mut self, codec: samzasql_serde::avro::AvroCodec) -> Self {
        self.direct = Some(codec);
        self
    }

    /// Key outgoing messages by the given column (repartitioning, §7).
    pub fn with_key(mut self, key_index: usize) -> Self {
        self.key_index = Some(key_index);
        self
    }

    /// Encode a tuple (`ArrayToAvro` + serialize; or the direct path).
    pub fn encode(&self, tuple: &Tuple) -> Result<EncodedOutput> {
        let payload = match &self.direct {
            Some(codec) => codec.encode_tuple(tuple)?,
            None => {
                let record = array_to_record(tuple, &self.names)?;
                self.serde.serialize(&record)?
            }
        };
        let timestamp = self
            .ts_index
            .and_then(|i| tuple.get(i))
            .and_then(|v| v.as_i64())
            .unwrap_or(0);
        let key = match self.key_index.and_then(|i| tuple.get(i)) {
            Some(v) => Some(self.key_codec.encode(v)?),
            None => None,
        };
        Ok(EncodedOutput {
            payload,
            timestamp,
            key,
        })
    }
}

impl std::fmt::Debug for InsertOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InsertOp")
            .field("names", &self.names)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samzasql_serde::serde_api::build_serde;
    use samzasql_serde::{Schema, SerdeFormat, Value};

    #[test]
    fn encodes_with_timestamp_extraction() {
        let schema = Schema::record(
            "O",
            vec![("rowtime", Schema::Timestamp), ("units", Schema::Int)],
        );
        let serde = build_serde(SerdeFormat::Avro, schema);
        let op = InsertOp::new(
            serde.clone(),
            vec!["rowtime".into(), "units".into()],
            Some(0),
        );
        let out = op
            .encode(&vec![Value::Timestamp(42), Value::Int(7)])
            .unwrap();
        assert_eq!(out.timestamp, 42);
        let decoded = serde.deserialize(&out.payload).unwrap();
        assert_eq!(decoded.field("units"), Some(&Value::Int(7)));
    }

    #[test]
    fn missing_timestamp_defaults_to_zero() {
        let schema = Schema::record("O", vec![("units", Schema::Int)]);
        let op = InsertOp::new(
            build_serde(SerdeFormat::Avro, schema),
            vec!["units".into()],
            None,
        );
        assert_eq!(op.encode(&vec![Value::Int(1)]).unwrap().timestamp, 0);
    }
}
