//! Stream insert operator: array → record → encoded output message.
//!
//! The `ArrayToAvro` step of Figure 4: the final operator rewraps the array
//! tuple as a record and encodes it with the output stream's serde. It also
//! recovers the event timestamp for the outgoing envelope when the output
//! schema retained a timestamp column.
//!
//! Column names are shared via an `Arc<[String]>` and the intermediate
//! record buffer is reused across tuples, so the conversion moves values in
//! and out without cloning names or values per emitted tuple — the schema
//! walk inside the serde remains the paper-faithful per-message cost.

use crate::error::{CoreError, Result};
use crate::tuple::Tuple;
use bytes::Bytes;
use samzasql_serde::{BoxedSerde, Value};
use std::sync::Arc;

/// Encoded output of the insert operator.
#[derive(Debug, Clone)]
pub struct EncodedOutput {
    pub payload: Bytes,
    pub timestamp: i64,
    /// Partitioning key for the output message (set by repartition stages).
    pub key: Option<Bytes>,
}

/// Terminal operator of the router.
pub struct InsertOp {
    serde: BoxedSerde,
    names: Arc<[String]>,
    /// Reusable `ArrayToAvro` record: names filled once at construction,
    /// value slots overwritten per tuple.
    record_buf: Vec<(String, Value)>,
    ts_index: Option<usize>,
    /// Column whose object-coded value keys the outgoing message.
    key_index: Option<usize>,
    key_codec: samzasql_serde::object::ObjectCodec,
    /// §7 item 5: encode the array tuple directly, skipping `ArrayToAvro`.
    direct: Option<samzasql_serde::avro::AvroCodec>,
}

impl InsertOp {
    pub fn new(serde: BoxedSerde, names: Vec<String>, ts_index: Option<usize>) -> Self {
        let names: Arc<[String]> = names.into();
        let record_buf = names.iter().map(|n| (n.clone(), Value::Null)).collect();
        InsertOp {
            serde,
            names,
            record_buf,
            ts_index,
            key_index: None,
            key_codec: samzasql_serde::object::ObjectCodec::new(),
            direct: None,
        }
    }

    /// Enable the direct data-API path (§7 item 5): the tuple is encoded
    /// positionally, with no intermediate record.
    pub fn with_direct(mut self, codec: samzasql_serde::avro::AvroCodec) -> Self {
        self.direct = Some(codec);
        self
    }

    /// Key outgoing messages by the given column (repartitioning, §7).
    pub fn with_key(mut self, key_index: usize) -> Self {
        self.key_index = Some(key_index);
        self
    }

    /// The output column names, shared with anyone who needs them.
    pub fn names(&self) -> &Arc<[String]> {
        &self.names
    }

    /// Encode a tuple (`ArrayToAvro` + serialize; or the direct path).
    /// Takes the tuple by value: column values move into the reusable
    /// record buffer instead of being cloned.
    pub fn encode(&mut self, tuple: Tuple) -> Result<EncodedOutput> {
        let timestamp = self
            .ts_index
            .and_then(|i| tuple.get(i))
            .and_then(|v| v.as_i64())
            .unwrap_or(0);
        let key = match self.key_index.and_then(|i| tuple.get(i)) {
            Some(v) => Some(self.key_codec.encode(v)?),
            None => None,
        };
        let payload = match &self.direct {
            Some(codec) => codec.encode_tuple(&tuple)?,
            None => {
                if tuple.len() != self.names.len() {
                    return Err(CoreError::Operator(format!(
                        "arity mismatch: {} values for {} columns",
                        tuple.len(),
                        self.names.len()
                    )));
                }
                for (slot, v) in self.record_buf.iter_mut().zip(tuple) {
                    slot.1 = v;
                }
                let record = Value::Record(std::mem::take(&mut self.record_buf));
                let result = self.serde.serialize(&record);
                let Value::Record(buf) = record else {
                    unreachable!()
                };
                self.record_buf = buf;
                result?
            }
        };
        Ok(EncodedOutput {
            payload,
            timestamp,
            key,
        })
    }

    /// Encode a whole batch, draining `tuples` into `out`.
    pub fn encode_batch(
        &mut self,
        tuples: &mut Vec<Tuple>,
        out: &mut Vec<EncodedOutput>,
    ) -> Result<()> {
        out.reserve(tuples.len());
        for tuple in tuples.drain(..) {
            out.push(self.encode(tuple)?);
        }
        Ok(())
    }
}

impl std::fmt::Debug for InsertOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InsertOp")
            .field("names", &self.names)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samzasql_serde::serde_api::build_serde;
    use samzasql_serde::{Schema, SerdeFormat, Value};

    #[test]
    fn encodes_with_timestamp_extraction() {
        let schema = Schema::record(
            "O",
            vec![("rowtime", Schema::Timestamp), ("units", Schema::Int)],
        );
        let serde = build_serde(SerdeFormat::Avro, schema);
        let mut op = InsertOp::new(
            serde.clone(),
            vec!["rowtime".into(), "units".into()],
            Some(0),
        );
        let out = op
            .encode(vec![Value::Timestamp(42), Value::Int(7)])
            .unwrap();
        assert_eq!(out.timestamp, 42);
        let decoded = serde.deserialize(&out.payload).unwrap();
        assert_eq!(decoded.field("units"), Some(&Value::Int(7)));
    }

    #[test]
    fn missing_timestamp_defaults_to_zero() {
        let schema = Schema::record("O", vec![("units", Schema::Int)]);
        let mut op = InsertOp::new(
            build_serde(SerdeFormat::Avro, schema),
            vec!["units".into()],
            None,
        );
        assert_eq!(op.encode(vec![Value::Int(1)]).unwrap().timestamp, 0);
    }

    #[test]
    fn record_buffer_is_reused_across_encodes() {
        let schema = Schema::record("O", vec![("units", Schema::Int)]);
        let serde = build_serde(SerdeFormat::Avro, schema);
        let mut op = InsertOp::new(serde.clone(), vec!["units".into()], None);
        let mut tuples = vec![vec![Value::Int(1)], vec![Value::Int(2)]];
        let mut out = Vec::new();
        op.encode_batch(&mut tuples, &mut out).unwrap();
        assert_eq!(out.len(), 2);
        let second = serde.deserialize(&out[1].payload).unwrap();
        assert_eq!(second.field("units"), Some(&Value::Int(2)));
        // arity errors must not corrupt the reusable buffer
        assert!(op.encode(vec![Value::Int(1), Value::Int(2)]).is_err());
        let third = op.encode(vec![Value::Int(3)]).unwrap();
        assert_eq!(
            serde.deserialize(&third.payload).unwrap().field("units"),
            Some(&Value::Int(3))
        );
    }
}
