//! Aggregate accumulators shared by the window operators.
//!
//! Accumulator state serializes to a [`Value`] so it can live in the
//! fault-tolerant KV store (through the generic object codec) and be rebuilt
//! from the changelog after a failure — this is the "aggregate state" of
//! Algorithm 1.

use crate::error::{CoreError, Result};
use crate::expr::{compile, CompiledExpr};
use crate::tuple::Tuple;
use crate::udaf::UdafRegistry;
use samzasql_planner::{AggCall, AggFunc};
use samzasql_serde::Value;
use std::sync::Arc;

/// One aggregate's accumulator.
#[derive(Debug, Clone)]
pub enum Acc {
    Count(i64),
    SumInt(i64),
    SumFloat(f64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg {
        sum: f64,
        count: i64,
    },
    /// Window bounds; filled at emission by the window operator.
    Start(Option<i64>),
    End(Option<i64>),
    User {
        name: String,
        state: Value,
    },
}

/// A compiled aggregate: the accumulator logic plus the argument expression.
pub struct CompiledAgg {
    pub func: AggFunc,
    pub arg: Option<CompiledExpr>,
    pub float_sum: bool,
    pub udaf: Option<Arc<dyn crate::udaf::UserAggregate>>,
}

impl CompiledAgg {
    /// Compile an [`AggCall`], resolving UDAFs.
    pub fn new(call: &AggCall, udafs: &UdafRegistry) -> Result<CompiledAgg> {
        if call.distinct {
            return Err(CoreError::Operator(
                "DISTINCT aggregates are not supported by the runtime".into(),
            ));
        }
        let udaf = match &call.func {
            AggFunc::UserDefined(name) => Some(udafs.get(name)?),
            _ => None,
        };
        let float_sum = matches!(
            call.arg.as_ref().map(|a| a.ty()),
            Some(samzasql_serde::Schema::Double) | Some(samzasql_serde::Schema::Float)
        );
        Ok(CompiledAgg {
            func: call.func.clone(),
            arg: call.arg.as_ref().map(compile),
            float_sum,
            udaf,
        })
    }

    /// Fresh accumulator.
    pub fn init(&self) -> Acc {
        match &self.func {
            AggFunc::CountStar | AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => {
                if self.float_sum {
                    Acc::SumFloat(0.0)
                } else {
                    Acc::SumInt(0)
                }
            }
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg { sum: 0.0, count: 0 },
            AggFunc::Start => Acc::Start(None),
            AggFunc::End => Acc::End(None),
            AggFunc::UserDefined(name) => Acc::User {
                name: name.clone(),
                state: self.udaf.as_ref().expect("resolved").init(),
            },
        }
    }

    /// Fold a tuple into the accumulator. SQL semantics: NULL arguments are
    /// skipped (except COUNT(*) which counts rows).
    pub fn add(&self, acc: &mut Acc, tuple: &Tuple) {
        let arg = self.arg.as_ref().map(|a| a.eval(tuple));
        match (acc, &arg) {
            (Acc::Count(c), None) => *c += 1, // COUNT(*)
            (Acc::Count(c), Some(v)) if !v.is_null() => {
                *c += 1;
            }
            (Acc::SumInt(s), Some(v)) => {
                if let Some(x) = v.as_i64() {
                    *s += x;
                }
            }
            (Acc::SumFloat(s), Some(v)) => {
                if let Some(x) = v.as_f64() {
                    *s += x;
                }
            }
            (Acc::Min(m), Some(v)) if !v.is_null() => {
                let replace = m
                    .as_ref()
                    .map(|cur| v.sql_cmp(cur) == Some(std::cmp::Ordering::Less))
                    .unwrap_or(true);
                if replace {
                    *m = Some(v.clone());
                }
            }
            (Acc::Max(m), Some(v)) if !v.is_null() => {
                let replace = m
                    .as_ref()
                    .map(|cur| v.sql_cmp(cur) == Some(std::cmp::Ordering::Greater))
                    .unwrap_or(true);
                if replace {
                    *m = Some(v.clone());
                }
            }
            (Acc::Avg { sum, count }, Some(v)) => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *count += 1;
                }
            }
            // START/END track min/max of their timestamp argument; the
            // group-window operator overwrites them with exact bounds at
            // emission.
            (Acc::Start(s), Some(v)) => {
                if let Some(ts) = v.as_i64() {
                    *s = Some(s.map_or(ts, |cur| cur.min(ts)));
                }
            }
            (Acc::End(e), Some(v)) => {
                if let Some(ts) = v.as_i64() {
                    *e = Some(e.map_or(ts, |cur| cur.max(ts)));
                }
            }
            (Acc::User { state, .. }, Some(v)) => {
                let udaf = self.udaf.as_ref().expect("resolved");
                let taken = std::mem::replace(state, Value::Null);
                *state = udaf.accumulate(taken, v);
            }
            _ => {}
        }
    }

    /// Remove a tuple (sliding-window retraction). Returns false when the
    /// accumulator is not invertible (MIN/MAX, non-retractable UDAF) — the
    /// caller must recompute from the retained messages.
    pub fn retract(&self, acc: &mut Acc, tuple: &Tuple) -> bool {
        let arg = self.arg.as_ref().map(|a| a.eval(tuple));
        match (acc, &arg) {
            (Acc::Count(c), None) => {
                *c -= 1;
                true
            }
            (Acc::Count(c), Some(v)) => {
                if !v.is_null() {
                    *c -= 1;
                }
                true
            }
            (Acc::SumInt(s), Some(v)) => {
                if let Some(x) = v.as_i64() {
                    *s -= x;
                }
                true
            }
            (Acc::SumFloat(s), Some(v)) => {
                if let Some(x) = v.as_f64() {
                    *s -= x;
                }
                true
            }
            (Acc::Avg { sum, count }, Some(v)) => {
                if let Some(x) = v.as_f64() {
                    *sum -= x;
                    *count -= 1;
                }
                true
            }
            (Acc::Min(_), _) | (Acc::Max(_), _) => false,
            (Acc::Start(_), _) | (Acc::End(_), _) => false,
            (Acc::User { state, .. }, Some(v)) => {
                let udaf = self.udaf.as_ref().expect("resolved");
                let taken = std::mem::replace(state, Value::Null);
                match udaf.retract(taken, v) {
                    Some(next) => {
                        *state = next;
                        true
                    }
                    None => false,
                }
            }
            _ => true,
        }
    }

    /// Current result of the accumulator.
    pub fn result(&self, acc: &Acc) -> Value {
        match acc {
            Acc::Count(c) => Value::Long(*c),
            Acc::SumInt(s) => Value::Long(*s),
            Acc::SumFloat(s) => Value::Double(*s),
            Acc::Min(v) | Acc::Max(v) => v.clone().unwrap_or(Value::Null),
            Acc::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Double(sum / *count as f64)
                }
            }
            Acc::Start(s) => s.map(Value::Timestamp).unwrap_or(Value::Null),
            Acc::End(e) => e.map(Value::Timestamp).unwrap_or(Value::Null),
            Acc::User { state, .. } => self.udaf.as_ref().expect("resolved").result(state),
        }
    }
}

// --------------------------------------------------- state (de)serialization

/// Serialize a set of accumulators to a storable [`Value`].
///
/// Operator-internal state uses a compact positional encoding (arrays with a
/// leading tag) rather than self-describing records — this is hand-rolled
/// state serialization, not generic object serialization, matching how the
/// window operator's state is purpose-built (§4.3).
pub fn accs_to_value(accs: &[Acc]) -> Value {
    Value::Array(
        accs.iter()
            .map(|a| {
                Value::Array(match a {
                    Acc::Count(c) => vec![Value::Int(0), Value::Long(*c)],
                    Acc::SumInt(s) => vec![Value::Int(1), Value::Long(*s)],
                    Acc::SumFloat(s) => vec![Value::Int(2), Value::Double(*s)],
                    Acc::Min(v) => vec![Value::Int(3), v.clone().unwrap_or(Value::Null)],
                    Acc::Max(v) => vec![Value::Int(4), v.clone().unwrap_or(Value::Null)],
                    Acc::Avg { sum, count } => {
                        vec![Value::Int(5), Value::Double(*sum), Value::Long(*count)]
                    }
                    Acc::Start(s) => {
                        vec![
                            Value::Int(6),
                            s.map(Value::Timestamp).unwrap_or(Value::Null),
                        ]
                    }
                    Acc::End(e) => {
                        vec![
                            Value::Int(7),
                            e.map(Value::Timestamp).unwrap_or(Value::Null),
                        ]
                    }
                    Acc::User { name, state } => {
                        vec![Value::Int(8), Value::String(name.clone()), state.clone()]
                    }
                })
            })
            .collect(),
    )
}

/// Rebuild accumulators from their stored form.
pub fn accs_from_value(v: &Value) -> Result<Vec<Acc>> {
    let Value::Array(items) = v else {
        return Err(CoreError::Operator("corrupt accumulator state".into()));
    };
    items
        .iter()
        .map(|item| {
            let Value::Array(parts) = item else {
                return Err(CoreError::Operator("corrupt accumulator entry".into()));
            };
            let tag = parts
                .first()
                .and_then(|t| t.as_i64())
                .ok_or_else(|| CoreError::Operator("missing accumulator tag".into()))?;
            let val = |i: usize| parts.get(i).cloned().unwrap_or(Value::Null);
            Ok(match tag {
                0 => Acc::Count(val(1).as_i64().unwrap_or(0)),
                1 => Acc::SumInt(val(1).as_i64().unwrap_or(0)),
                2 => Acc::SumFloat(val(1).as_f64().unwrap_or(0.0)),
                3 => Acc::Min(match val(1) {
                    Value::Null => None,
                    v => Some(v),
                }),
                4 => Acc::Max(match val(1) {
                    Value::Null => None,
                    v => Some(v),
                }),
                5 => Acc::Avg {
                    sum: val(1).as_f64().unwrap_or(0.0),
                    count: val(2).as_i64().unwrap_or(0),
                },
                6 => Acc::Start(val(1).as_i64()),
                7 => Acc::End(val(1).as_i64()),
                8 => Acc::User {
                    name: val(1).as_str().unwrap_or("").to_string(),
                    state: val(2),
                },
                other => {
                    return Err(CoreError::Operator(format!(
                        "unknown accumulator tag {other}"
                    )))
                }
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use samzasql_planner::ScalarExpr;
    use samzasql_serde::Schema;

    fn call(func: AggFunc, arg_idx: Option<usize>) -> AggCall {
        AggCall {
            func,
            arg: arg_idx.map(|i| ScalarExpr::input(i, Schema::Int)),
            distinct: false,
            output_name: "o".into(),
        }
    }

    fn compiled(func: AggFunc, arg_idx: Option<usize>) -> CompiledAgg {
        CompiledAgg::new(&call(func, arg_idx), &UdafRegistry::new()).unwrap()
    }

    #[test]
    fn sum_count_avg_fold_and_retract() {
        let sum = compiled(AggFunc::Sum, Some(0));
        let mut acc = sum.init();
        for v in [10, 20, 30] {
            sum.add(&mut acc, &vec![Value::Int(v)]);
        }
        assert_eq!(sum.result(&acc), Value::Long(60));
        assert!(sum.retract(&mut acc, &vec![Value::Int(10)]));
        assert_eq!(sum.result(&acc), Value::Long(50));

        let avg = compiled(AggFunc::Avg, Some(0));
        let mut acc = avg.init();
        avg.add(&mut acc, &vec![Value::Int(2)]);
        avg.add(&mut acc, &vec![Value::Int(4)]);
        assert_eq!(avg.result(&acc), Value::Double(3.0));

        let count = compiled(AggFunc::CountStar, None);
        let mut acc = count.init();
        count.add(&mut acc, &vec![Value::Null]);
        count.add(&mut acc, &vec![Value::Int(1)]);
        assert_eq!(count.result(&acc), Value::Long(2), "COUNT(*) counts rows");
    }

    #[test]
    fn count_skips_null_arguments() {
        let count = compiled(AggFunc::Count, Some(0));
        let mut acc = count.init();
        count.add(&mut acc, &vec![Value::Null]);
        count.add(&mut acc, &vec![Value::Int(1)]);
        assert_eq!(count.result(&acc), Value::Long(1));
    }

    #[test]
    fn min_max_not_invertible() {
        let min = compiled(AggFunc::Min, Some(0));
        let mut acc = min.init();
        min.add(&mut acc, &vec![Value::Int(5)]);
        min.add(&mut acc, &vec![Value::Int(3)]);
        assert_eq!(min.result(&acc), Value::Int(3));
        assert!(!min.retract(&mut acc, &vec![Value::Int(3)]));
    }

    #[test]
    fn empty_accumulators_yield_sql_defaults() {
        assert_eq!(
            compiled(AggFunc::Sum, Some(0)).result(&compiled(AggFunc::Sum, Some(0)).init()),
            Value::Long(0)
        );
        assert_eq!(
            compiled(AggFunc::Avg, Some(0)).result(&compiled(AggFunc::Avg, Some(0)).init()),
            Value::Null
        );
        assert_eq!(
            compiled(AggFunc::Min, Some(0)).result(&compiled(AggFunc::Min, Some(0)).init()),
            Value::Null
        );
    }

    #[test]
    fn state_roundtrip_through_value() {
        let specs = [
            compiled(AggFunc::CountStar, None),
            compiled(AggFunc::Sum, Some(0)),
            compiled(AggFunc::Min, Some(0)),
            compiled(AggFunc::Avg, Some(0)),
        ];
        let mut accs: Vec<Acc> = specs.iter().map(|s| s.init()).collect();
        for (spec, acc) in specs.iter().zip(accs.iter_mut()) {
            spec.add(acc, &vec![Value::Int(7)]);
            spec.add(acc, &vec![Value::Int(3)]);
        }
        let stored = accs_to_value(&accs);
        let restored = accs_from_value(&stored).unwrap();
        for (spec, (a, b)) in specs.iter().zip(accs.iter().zip(&restored)) {
            assert_eq!(spec.result(a), spec.result(b));
        }
    }

    #[test]
    fn distinct_rejected() {
        let mut c = call(AggFunc::Sum, Some(0));
        c.distinct = true;
        assert!(CompiledAgg::new(&c, &UdafRegistry::new()).is_err());
    }

    #[test]
    fn udaf_through_compiled_agg() {
        let mut reg = UdafRegistry::new();
        reg.register("GEO_MEAN", std::sync::Arc::new(crate::udaf::GeometricMean));
        let c = AggCall {
            func: AggFunc::UserDefined("GEO_MEAN".into()),
            arg: Some(ScalarExpr::input(0, Schema::Double)),
            distinct: false,
            output_name: "g".into(),
        };
        let agg = CompiledAgg::new(&c, &reg).unwrap();
        let mut acc = agg.init();
        agg.add(&mut acc, &vec![Value::Double(2.0)]);
        agg.add(&mut acc, &vec![Value::Double(8.0)]);
        match agg.result(&acc) {
            Value::Double(v) => assert!((v - 4.0).abs() < 1e-9),
            other => panic!("{other:?}"),
        }
        // Roundtrip user state through the storable form.
        let restored = accs_from_value(&accs_to_value(&[acc])).unwrap();
        match agg.result(&restored[0]) {
            Value::Double(v) => assert!((v - 4.0).abs() < 1e-9),
            other => panic!("{other:?}"),
        }
    }
}
