//! Filter operator: generated predicate over array tuples.

use crate::error::Result;
use crate::expr::CompiledExpr;
use crate::ops::{OpCtx, Operator, Side};
use crate::tuple::Tuple;

/// Drops tuples whose predicate is not TRUE (SQL: NULL filters out).
pub struct FilterOp {
    predicate: CompiledExpr,
}

impl FilterOp {
    pub fn new(predicate: CompiledExpr) -> Self {
        FilterOp { predicate }
    }
}

impl Operator for FilterOp {
    fn process(&mut self, _side: Side, tuple: Tuple, _ctx: &mut OpCtx<'_>) -> Result<Vec<Tuple>> {
        if self.predicate.eval_bool(&tuple) {
            Ok(vec![tuple])
        } else {
            Ok(Vec::new())
        }
    }

    fn name(&self) -> &'static str {
        "FilterOp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::compile;
    use samzasql_planner::{BinOp, ScalarExpr};
    use samzasql_serde::{Schema, Value};

    #[test]
    fn passes_matching_tuples_only() {
        let pred = compile(&ScalarExpr::Binary {
            op: BinOp::Gt,
            left: Box::new(ScalarExpr::input(0, Schema::Int)),
            right: Box::new(ScalarExpr::Literal(Value::Int(50))),
            ty: Schema::Boolean,
        });
        let mut op = FilterOp::new(pred);
        let mut late = 0;
        let mut ctx = OpCtx {
            store: None,
            late_discards: &mut late,
        };
        assert_eq!(
            op.process(Side::Single, vec![Value::Int(75)], &mut ctx)
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            op.process(Side::Single, vec![Value::Int(25)], &mut ctx)
                .unwrap()
                .len(),
            0
        );
        assert_eq!(
            op.process(Side::Single, vec![Value::Null], &mut ctx)
                .unwrap()
                .len(),
            0
        );
    }
}
