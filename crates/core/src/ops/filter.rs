//! Filter operator: generated predicate over array tuples.

use crate::error::Result;
use crate::expr::CompiledExpr;
use crate::ops::{OpCtx, Operator, Side};
use crate::tuple::Tuple;

/// Drops tuples whose predicate is not TRUE (SQL: NULL filters out).
pub struct FilterOp {
    predicate: CompiledExpr,
}

impl FilterOp {
    pub fn new(predicate: CompiledExpr) -> Self {
        FilterOp { predicate }
    }
}

impl Operator for FilterOp {
    fn process_batch(
        &mut self,
        _side: Side,
        input: &mut Vec<Tuple>,
        out: &mut Vec<Tuple>,
        _ctx: &mut OpCtx<'_>,
    ) -> Result<()> {
        // Passing tuples move from the input buffer to the shared output
        // buffer: no per-tuple allocation at all.
        for tuple in input.drain(..) {
            if self.predicate.eval_bool(&tuple) {
                out.push(tuple);
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "FilterOp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::compile;
    use samzasql_planner::{BinOp, ScalarExpr};
    use samzasql_serde::{Schema, Value};

    #[test]
    fn passes_matching_tuples_only() {
        let pred = compile(&ScalarExpr::Binary {
            op: BinOp::Gt,
            left: Box::new(ScalarExpr::input(0, Schema::Int)),
            right: Box::new(ScalarExpr::Literal(Value::Int(50))),
            ty: Schema::Boolean,
        });
        let mut op = FilterOp::new(pred);
        let mut late = 0;
        let mut ctx = OpCtx {
            store: None,
            late_discards: &mut late,
        };
        let mut input = vec![
            vec![Value::Int(75)],
            vec![Value::Int(25)],
            vec![Value::Null],
        ];
        let mut out = Vec::new();
        op.process_batch(Side::Single, &mut input, &mut out, &mut ctx)
            .unwrap();
        assert!(input.is_empty());
        assert_eq!(out, vec![vec![Value::Int(75)]]);
    }
}
