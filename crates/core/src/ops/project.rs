//! Project operator: generated projection expressions over array tuples.

use crate::error::Result;
use crate::expr::CompiledExpr;
use crate::ops::{OpCtx, Operator, Side};
use crate::tuple::Tuple;

/// Produces one output tuple per input by evaluating the projection list.
pub struct ProjectOp {
    exprs: Vec<CompiledExpr>,
}

impl ProjectOp {
    pub fn new(exprs: Vec<CompiledExpr>) -> Self {
        ProjectOp { exprs }
    }
}

impl Operator for ProjectOp {
    fn process_batch(
        &mut self,
        _side: Side,
        input: &mut Vec<Tuple>,
        out: &mut Vec<Tuple>,
        _ctx: &mut OpCtx<'_>,
    ) -> Result<()> {
        out.reserve(input.len());
        for tuple in input.drain(..) {
            out.push(self.exprs.iter().map(|e| e.eval(&tuple)).collect());
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "ProjectOp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::compile;
    use samzasql_planner::ScalarExpr;
    use samzasql_serde::{Schema, Value};

    #[test]
    fn reorders_and_computes() {
        let exprs = vec![
            compile(&ScalarExpr::input(1, Schema::Int)),
            compile(&ScalarExpr::input(0, Schema::Timestamp)),
        ];
        let mut op = ProjectOp::new(exprs);
        let mut late = 0;
        let mut ctx = OpCtx {
            store: None,
            late_discards: &mut late,
        };
        let mut input = vec![vec![Value::Timestamp(9), Value::Int(1)]];
        let mut out = Vec::new();
        op.process_batch(Side::Single, &mut input, &mut out, &mut ctx)
            .unwrap();
        assert_eq!(out, vec![vec![Value::Int(1), Value::Timestamp(9)]]);
    }
}
