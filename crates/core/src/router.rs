//! The message router: "a DAG of streaming SQL operators responsible for
//! flowing messages through query operators" (§4.2).
//!
//! The router is generated from the physical plan during task initialization
//! (step two of two-step planning). Scans are the entry points (one per
//! input topic); the stream-insert operator is the sink; everything in
//! between is an [`Operator`] node with a parent edge (and a [`Side`] tag so
//! binary joins know which input a tuple arrived on).

use crate::error::{CoreError, Result};
use crate::expr::compile;
use crate::ops::acc::CompiledAgg;
use crate::ops::filter::FilterOp;
use crate::ops::insert::{EncodedOutput, InsertOp};
use crate::ops::join_relation::StreamToRelationJoinOp;
use crate::ops::join_stream::StreamToStreamJoinOp;
use crate::ops::project::ProjectOp;
use crate::ops::scan::ScanOp;
use crate::ops::sort::SortOp;
use crate::ops::window_agg::WindowAggOp;
use crate::ops::window_sliding::SlidingWindowOp;
use crate::ops::{OpCtx, Operator, Side};
use crate::profile::{EntryStats, NodeStats, PlanBinding, RouterProfile, RouterProfiler};
use crate::tuple::Tuple;
use crate::udaf::UdafRegistry;
use bytes::Bytes;
use samzasql_planner::{PhysicalPlan, PlannedQuery, ScalarExpr};

use samzasql_samza::KeyValueStore;
use samzasql_serde::serde_api::build_serde;
use samzasql_serde::{Schema, SerdeFormat};

/// Everything the router needs to instantiate a query stage's operators.
///
/// For ordinary jobs this is derived 1:1 from a [`PlannedQuery`]; repartition
/// splits (§7) produce one spec per stage with modified physical plans.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    pub sql: String,
    pub physical: PhysicalPlan,
    pub output_names: Vec<String>,
    pub output_types: Vec<Schema>,
    pub order_by: Vec<(ScalarExpr, bool)>,
    pub limit: Option<u64>,
    pub is_stream: bool,
    /// Column keying output messages (repartition stages).
    pub output_key: Option<usize>,
    /// §7 future-work item 5, implemented: skip the `AvroToArray` /
    /// `ArrayToAvro` steps by decoding/encoding array tuples directly
    /// ("SamzaSQL Data API" codegen). Off by default — the prototype path.
    pub direct_data_api: bool,
}

impl QuerySpec {
    /// Derive the spec of a single-stage job from a planned query.
    pub fn from_planned(planned: &PlannedQuery) -> QuerySpec {
        QuerySpec {
            sql: planned.sql.clone(),
            physical: planned.physical.clone(),
            output_names: planned.output_names.clone(),
            output_types: planned.output_types.clone(),
            order_by: planned.order_by.clone(),
            limit: planned.limit,
            is_stream: planned.is_stream,
            output_key: None,
            direct_data_api: false,
        }
    }

    /// The output record schema.
    pub fn output_schema(&self, record_name: &str) -> Schema {
        Schema::Record {
            name: record_name.to_string(),
            fields: self
                .output_names
                .iter()
                .zip(&self.output_types)
                .map(|(n, t)| samzasql_serde::Field {
                    name: n.clone(),
                    schema: t.clone(),
                })
                .collect(),
        }
    }
}

/// Destination of a tuple: an operator node input, or the sink.
type Dest = Option<(usize, Side)>;

struct Entry {
    topic: String,
    scan: ScanOp,
    dest: Dest,
    /// Tuples from this entry feed a relation cache (tombstones apply).
    is_relation: bool,
}

/// The generated operator DAG for one task.
///
/// Batches flow through the DAG in *reusable* buffers: every node owns a
/// pair of input buffers (slot 0 for `Single`/`Left` tuples, slot 1 for
/// `Right`), and one shared scratch buffer ping-pongs through the
/// decreasing-index pass of [`MessageRouter::route_batch`]. Steady state
/// allocates nothing per tuple for stateless pipelines — buffers keep their
/// capacity across batches.
pub struct MessageRouter {
    entries: Vec<Entry>,
    nodes: Vec<Box<dyn Operator>>,
    parents: Vec<Dest>,
    insert: InsertOp,
    late_discards: u64,
    direct_data_api: bool,
    /// Per-node input buffers: slot 0 = `Single`/`Left`, slot 1 = `Right`.
    inbufs: Vec<[Vec<Tuple>; 2]>,
    /// The exact [`Side`] last pushed into each slot (joins need `Left` vs
    /// `Single` delivered precisely as the plan tagged the edge).
    in_sides: Vec<[Side; 2]>,
    /// Shared output staging buffer, ping-ponged between node invocations.
    scratch: Vec<Tuple>,
    /// Tuples awaiting sink encoding.
    sink: Vec<Tuple>,
    /// Physical-plan pre-order → node/entry mapping, recorded during
    /// construction (powers EXPLAIN ANALYZE; see [`crate::profile`]).
    bindings: Vec<PlanBinding>,
    /// The bounded-query sort node, if one was added above the plan root.
    sort_node: Option<usize>,
    /// Per-operator instruments; `None` until profiling is enabled.
    profiler: Option<RouterProfiler>,
}

impl MessageRouter {
    /// Generate the router from a planned query (operator + router
    /// generation of Figure 3's second step).
    pub fn build(planned: &PlannedQuery, udafs: &UdafRegistry) -> Result<MessageRouter> {
        Self::build_spec(&QuerySpec::from_planned(planned), udafs)
    }

    /// Generate the router from a stage spec.
    pub fn build_spec(planned: &QuerySpec, udafs: &UdafRegistry) -> Result<MessageRouter> {
        let mut insert = InsertOp::new(
            build_serde(SerdeFormat::Avro, planned.output_schema("Output")),
            planned.output_names.clone(),
            output_ts_index(&planned.output_names, &planned.output_types),
        );
        if let Some(k) = planned.output_key {
            insert = insert.with_key(k);
        }
        if planned.direct_data_api {
            insert = insert.with_direct(samzasql_serde::avro::AvroCodec::new(
                planned.output_schema("Output"),
            ));
        }
        let mut router = MessageRouter {
            entries: Vec::new(),
            nodes: Vec::new(),
            parents: Vec::new(),
            insert,
            late_discards: 0,
            direct_data_api: false,
            inbufs: Vec::new(),
            in_sides: Vec::new(),
            scratch: Vec::new(),
            sink: Vec::new(),
            bindings: Vec::new(),
            sort_node: None,
            profiler: None,
        };
        // Bounded queries may carry ORDER BY / LIMIT: a sort node at the root.
        let root_dest: Dest = if !planned.order_by.is_empty() || planned.limit.is_some() {
            let keys = planned
                .order_by
                .iter()
                .map(|(e, asc)| (compile(e), *asc))
                .collect();
            let sort = router.add_node(Box::new(SortOp::new(keys, planned.limit)), None);
            router.sort_node = Some(sort);
            Some((sort, Side::Single))
        } else {
            None
        };
        router.direct_data_api = planned.direct_data_api;
        router.build_plan(&planned.physical, root_dest, udafs)?;
        Ok(router)
    }

    fn add_node(&mut self, op: Box<dyn Operator>, parent: Dest) -> usize {
        self.nodes.push(op);
        self.parents.push(parent);
        self.inbufs.push([Vec::new(), Vec::new()]);
        self.in_sides.push([Side::Single, Side::Right]);
        self.nodes.len() - 1
    }

    /// Record that the plan node just visited is backed by operator `id`.
    fn bind_node(&mut self, id: usize) {
        self.bindings.push(PlanBinding::Node {
            node: id,
            relation_entry: None,
        });
    }

    /// Attach per-operator profiling instruments, timed against `clock`.
    /// Every subsequent `process_batch` records rows-in/rows-out/batches
    /// and busy time per node, and every scan entry records decoded rows,
    /// bytes, and tombstones. Idempotent (re-enabling resets the counters).
    pub fn enable_profiling(&mut self, clock: std::sync::Arc<dyn samzasql_obs::TimeSource>) {
        self.profiler = Some(RouterProfiler::new(
            clock,
            self.nodes.len(),
            self.entries.len(),
        ));
    }

    /// Publish the profiler's instruments into a metrics registry under
    /// `core.operator.*` / `core.scan.*` with the given base labels.
    /// No-op until [`enable_profiling`](Self::enable_profiling) has run.
    pub fn register_profile(
        &self,
        registry: &samzasql_obs::MetricsRegistry,
        base: &[(&str, &str)],
    ) {
        if let Some(p) = &self.profiler {
            let node_names: Vec<String> = self.nodes.iter().map(|n| n.name().to_string()).collect();
            let entry_topics: Vec<String> = self.entries.iter().map(|e| e.topic.clone()).collect();
            RouterProfile::register_into(p, &node_names, &entry_topics, registry, base);
        }
    }

    /// Snapshot the profile (None until profiling is enabled).
    pub fn profile(&self) -> Option<RouterProfile> {
        let p = self.profiler.as_ref()?;
        Some(RouterProfile {
            nodes: p
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| NodeStats {
                    name: format!("{}#{}", self.nodes[i].name(), i),
                    rows_in: n.rows_in.get(),
                    rows_out: n.rows_out.get(),
                    batches: n.batches.get(),
                    busy_ns: n.busy_ns.get(),
                })
                .collect(),
            entries: p
                .entries
                .iter()
                .enumerate()
                .map(|(i, e)| EntryStats {
                    topic: self.entries[i].topic.clone(),
                    rows: e.rows.get(),
                    bytes: e.bytes.get(),
                    tombstones: e.tombstones.get(),
                })
                .collect(),
            bindings: self.bindings.clone(),
            sort_node: self.sort_node,
        })
    }

    fn build_plan(&mut self, plan: &PhysicalPlan, dest: Dest, udafs: &UdafRegistry) -> Result<()> {
        let op_id = format!("{}", self.nodes.len());
        match plan {
            PhysicalPlan::Scan {
                topic,
                types,
                format,
                ..
            } => {
                let schema = Schema::Record {
                    name: "Row".into(),
                    fields: plan
                        .output_names()
                        .iter()
                        .zip(types)
                        .map(|(n, t)| samzasql_serde::Field {
                            name: n.clone(),
                            schema: t.clone(),
                        })
                        .collect(),
                };
                let scan = if self.direct_data_api && *format == SerdeFormat::Avro {
                    ScanOp::direct(samzasql_serde::avro::AvroCodec::new(schema), types.len())
                } else {
                    ScanOp::new(build_serde(*format, schema), types.len())
                };
                self.entries.push(Entry {
                    topic: topic.clone(),
                    scan,
                    dest,
                    is_relation: false,
                });
                self.bindings
                    .push(PlanBinding::Entry(self.entries.len() - 1));
                Ok(())
            }
            PhysicalPlan::Filter { input, predicate } => {
                let id = self.add_node(Box::new(FilterOp::new(compile(predicate))), dest);
                self.bind_node(id);
                self.build_plan(input, Some((id, Side::Single)), udafs)
            }
            PhysicalPlan::Project { input, exprs, .. } => {
                let compiled = exprs.iter().map(compile).collect();
                let id = self.add_node(Box::new(ProjectOp::new(compiled)), dest);
                self.bind_node(id);
                self.build_plan(input, Some((id, Side::Single)), udafs)
            }
            PhysicalPlan::WindowAggregate {
                input,
                window,
                keys,
                aggs,
                ..
            } => {
                let compiled_keys = keys.iter().map(compile).collect();
                let compiled_aggs: Vec<CompiledAgg> = aggs
                    .iter()
                    .map(|a| CompiledAgg::new(a, udafs))
                    .collect::<Result<_>>()?;
                let id = self.add_node(
                    Box::new(WindowAggOp::new(
                        op_id,
                        window.clone(),
                        compiled_keys,
                        compiled_aggs,
                    )),
                    dest,
                );
                self.bind_node(id);
                self.build_plan(input, Some((id, Side::Single)), udafs)
            }
            PhysicalPlan::SlidingWindow {
                input,
                partition_by,
                ts_index,
                range_ms,
                rows,
                aggs,
            } => {
                let compiled_keys = partition_by.iter().map(compile).collect();
                let compiled_aggs: Vec<CompiledAgg> = aggs
                    .iter()
                    .map(|a| CompiledAgg::new(a, udafs))
                    .collect::<Result<_>>()?;
                let id = self.add_node(
                    Box::new(SlidingWindowOp::new(
                        op_id,
                        compiled_keys,
                        *ts_index,
                        *range_ms,
                        *rows,
                        compiled_aggs,
                    )),
                    dest,
                );
                self.bind_node(id);
                self.build_plan(input, Some((id, Side::Single)), udafs)
            }
            PhysicalPlan::StreamToStreamJoin {
                left,
                right,
                kind,
                equi,
                time_bound,
                residual,
            } => {
                if equi.len() != 1 {
                    return Err(CoreError::Operator(
                        "stream-to-stream joins support exactly one equi key".into(),
                    ));
                }
                let (lk, rk) = equi[0];
                let left_types = left.output_types();
                let right_types = right.output_types();
                let op = StreamToStreamJoinOp::new(
                    op_id,
                    *kind,
                    compile(&ScalarExpr::input(lk, left_types[lk].clone())),
                    compile(&ScalarExpr::input(rk, right_types[rk].clone())),
                    time_bound.left_ts,
                    time_bound.right_ts,
                    time_bound.lower_ms,
                    time_bound.upper_ms,
                    residual.as_ref().map(compile),
                )?;
                let id = self.add_node(Box::new(op), dest);
                self.bind_node(id);
                self.build_plan(left, Some((id, Side::Left)), udafs)?;
                self.build_plan(right, Some((id, Side::Right)), udafs)
            }
            PhysicalPlan::StreamToRelationJoin {
                stream,
                relation_topic,
                relation_names,
                relation_types,
                relation_key,
                equi,
                stream_is_left,
                kind,
                residual,
            } => {
                let (sk, _) = equi[0];
                let stream_types = stream.output_types();
                let op = StreamToRelationJoinOp::new(
                    op_id,
                    compile(&ScalarExpr::input(sk, stream_types[sk].clone())),
                    *relation_key,
                    relation_names.clone(),
                    *stream_is_left,
                    *kind,
                    residual.as_ref().map(compile),
                );
                let id = self.add_node(Box::new(op), dest);
                // Relation changelog entry (bootstrap stream).
                let rel_schema = Schema::Record {
                    name: "Relation".into(),
                    fields: relation_names
                        .iter()
                        .zip(relation_types)
                        .map(|(n, t)| samzasql_serde::Field {
                            name: n.clone(),
                            schema: t.clone(),
                        })
                        .collect(),
                };
                self.entries.push(Entry {
                    topic: relation_topic.clone(),
                    scan: ScanOp::new(
                        build_serde(SerdeFormat::Avro, rel_schema),
                        relation_types.len(),
                    ),
                    dest: Some((id, Side::Right)),
                    is_relation: true,
                });
                self.bindings.push(PlanBinding::Node {
                    node: id,
                    relation_entry: Some(self.entries.len() - 1),
                });
                self.build_plan(stream, Some((id, Side::Left)), udafs)
            }
            PhysicalPlan::Repartition { .. } => Err(CoreError::Operator(
                "repartition stages must be split into separate jobs before router \
                 generation (the shell does this)"
                    .into(),
            )),
        }
    }

    /// Route a batch of incoming messages from one topic through the DAG,
    /// appending encoded outputs for the job's output stream to `outputs`.
    ///
    /// All messages are decoded into the entry nodes' input buffers first,
    /// then the DAG runs once over whole batches ([`Self::run_dag`]). The
    /// one ordering hazard is a relation tombstone arriving mid-batch: any
    /// buffered work is drained *before* the cache delete so earlier stream
    /// tuples still probe the pre-delete relation state, exactly as the
    /// per-message path behaved.
    pub fn route_batch<'a>(
        &mut self,
        topic: &str,
        messages: impl IntoIterator<Item = (Option<&'a Bytes>, &'a Bytes)>,
        mut store: Option<&mut KeyValueStore>,
        outputs: &mut Vec<EncodedOutput>,
    ) -> Result<()> {
        for (key, payload) in messages {
            for ei in 0..self.entries.len() {
                if self.entries[ei].topic != topic {
                    continue;
                }
                let dest = self.entries[ei].dest;
                let is_relation = self.entries[ei].is_relation;
                match self.entries[ei].scan.decode(payload)? {
                    Some(tuple) => {
                        if let Some(p) = &self.profiler {
                            p.entries[ei].rows.inc();
                            p.entries[ei].bytes.add(payload.len() as u64);
                        }
                        self.push_dest(dest, tuple)
                    }
                    None => {
                        if let Some(p) = &self.profiler {
                            p.entries[ei].tombstones.inc();
                        }
                        // Tombstone: only meaningful for relation caches.
                        if is_relation {
                            if let (Some((node, side)), Some(k)) = (dest, key) {
                                // Drain buffered tuples so pre-tombstone
                                // probes see the pre-delete cache state.
                                self.run_dag(&mut store)?;
                                let mut staged = std::mem::take(&mut self.scratch);
                                {
                                    let mut ctx = OpCtx {
                                        store: store.as_deref_mut(),
                                        late_discards: &mut self.late_discards,
                                    };
                                    self.nodes[node].on_tombstone(
                                        side,
                                        k,
                                        &mut staged,
                                        &mut ctx,
                                    )?;
                                }
                                let parent = self.parents[node];
                                self.dispatch(parent, &mut staged);
                                self.scratch = staged;
                            }
                        }
                    }
                }
            }
        }
        self.run_dag(&mut store)?;
        let mut sink = std::mem::take(&mut self.sink);
        let result = self.insert.encode_batch(&mut sink, outputs);
        self.sink = sink;
        result
    }

    /// Route one incoming message through the DAG; returns encoded outputs
    /// for the job's output stream. Batch-of-one wrapper around
    /// [`Self::route_batch`] — also the reference path the batched pipeline
    /// is property-tested against.
    pub fn route(
        &mut self,
        topic: &str,
        key: Option<&Bytes>,
        payload: &Bytes,
        store: Option<&mut KeyValueStore>,
    ) -> Result<Vec<EncodedOutput>> {
        let mut outputs = Vec::new();
        self.route_batch(topic, std::iter::once((key, payload)), store, &mut outputs)?;
        Ok(outputs)
    }

    /// Deliver a freshly decoded tuple to its destination buffer.
    fn push_dest(&mut self, dest: Dest, tuple: Tuple) {
        match dest {
            None => self.sink.push(tuple),
            Some((node, side)) => {
                let slot = (side == Side::Right) as usize;
                self.in_sides[node][slot] = side;
                self.inbufs[node][slot].push(tuple);
            }
        }
    }

    /// Move a staged batch into its destination buffer (keeps `staged`'s
    /// allocation, leaving it empty for reuse).
    fn dispatch(&mut self, dest: Dest, staged: &mut Vec<Tuple>) {
        match dest {
            None => self.sink.append(staged),
            Some((node, side)) => {
                let slot = (side == Side::Right) as usize;
                self.in_sides[node][slot] = side;
                self.inbufs[node][slot].append(staged);
            }
        }
    }

    /// Run every buffered batch through the DAG.
    ///
    /// `build_plan` adds each operator before recursing into its inputs, so
    /// a child node always has a larger index than its parent — one pass in
    /// decreasing index order fully propagates every batch to the sink.
    fn run_dag(&mut self, store: &mut Option<&mut KeyValueStore>) -> Result<()> {
        for i in (0..self.nodes.len()).rev() {
            self.drain_node(i, store)?;
        }
        Ok(())
    }

    /// Process node `i`'s pending input buffers (if any), dispatching its
    /// output batch to the parent. Buffers are recycled: the drained input
    /// goes back into the slot and the staging buffer becomes the next
    /// scratch.
    fn drain_node(&mut self, i: usize, store: &mut Option<&mut KeyValueStore>) -> Result<()> {
        for slot in 0..2 {
            if self.inbufs[i][slot].is_empty() {
                continue;
            }
            let side = self.in_sides[i][slot];
            let mut input = std::mem::take(&mut self.inbufs[i][slot]);
            let mut staged = std::mem::take(&mut self.scratch);
            let rows_in = input.len() as u64;
            let start_ns = self.profiler.as_ref().map(|p| p.clock.now_nanos());
            {
                let mut ctx = OpCtx {
                    store: store.as_deref_mut(),
                    late_discards: &mut self.late_discards,
                };
                self.nodes[i].process_batch(side, &mut input, &mut staged, &mut ctx)?;
            }
            if let (Some(p), Some(start)) = (&self.profiler, start_ns) {
                let n = &p.nodes[i];
                n.rows_in.add(rows_in);
                n.rows_out.add(staged.len() as u64);
                n.batches.inc();
                n.busy_ns.add(p.clock.now_nanos().saturating_sub(start));
            }
            input.clear();
            self.inbufs[i][slot] = input;
            let parent = self.parents[i];
            self.dispatch(parent, &mut staged);
            self.scratch = staged;
        }
        Ok(())
    }

    /// End-of-input flush for bounded queries: flush every node child-first
    /// so flushed tuples still traverse their downstream operators.
    /// Appends encoded outputs to `outputs`.
    pub fn flush_into(
        &mut self,
        mut store: Option<&mut KeyValueStore>,
        outputs: &mut Vec<EncodedOutput>,
    ) -> Result<()> {
        for i in (0..self.nodes.len()).rev() {
            // Anything a child flushed into this node's buffers goes
            // through before the node itself flushes.
            self.drain_node(i, &mut store)?;
            let mut staged = std::mem::take(&mut self.scratch);
            let start_ns = self.profiler.as_ref().map(|p| p.clock.now_nanos());
            {
                let mut ctx = OpCtx {
                    store: store.as_deref_mut(),
                    late_discards: &mut self.late_discards,
                };
                self.nodes[i].flush(&mut staged, &mut ctx)?;
            }
            if let (Some(p), Some(start)) = (&self.profiler, start_ns) {
                let n = &p.nodes[i];
                n.rows_out.add(staged.len() as u64);
                n.busy_ns.add(p.clock.now_nanos().saturating_sub(start));
            }
            let parent = self.parents[i];
            self.dispatch(parent, &mut staged);
            self.scratch = staged;
        }
        let mut sink = std::mem::take(&mut self.sink);
        let result = self.insert.encode_batch(&mut sink, outputs);
        self.sink = sink;
        result
    }

    /// End-of-input flush returning the encoded outputs.
    pub fn flush(&mut self, store: Option<&mut KeyValueStore>) -> Result<Vec<EncodedOutput>> {
        let mut outputs = Vec::new();
        self.flush_into(store, &mut outputs)?;
        Ok(outputs)
    }

    /// Topics this router consumes.
    pub fn input_topics(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.topic.clone()).collect()
    }

    /// Tuples discarded as late so far.
    pub fn late_discards(&self) -> u64 {
        self.late_discards
    }

    /// Number of operator nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl std::fmt::Debug for MessageRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ops: Vec<&str> = self.nodes.iter().map(|n| n.name()).collect();
        f.debug_struct("MessageRouter")
            .field("entries", &self.input_topics())
            .field("nodes", &ops)
            .finish()
    }
}

/// Find the timestamp column in the output, preferring a `rowtime` name,
/// falling back to the first Timestamp-typed column.
fn output_ts_index(names: &[String], types: &[Schema]) -> Option<usize> {
    names
        .iter()
        .position(|n| n.eq_ignore_ascii_case("rowtime"))
        .or_else(|| types.iter().position(|t| *t == Schema::Timestamp))
}
