//! Regenerate every table and figure of the SamzaSQL evaluation (§5).
//!
//! ```text
//! cargo run -p samzasql-bench --release --bin figures -- --fig all
//! cargo run -p samzasql-bench --release --bin figures -- --fig 5a --messages 500000
//! ```
//!
//! Absolute numbers depend on the host; the paper's claims are about
//! *shape*: SamzaSQL 30–40% below native on filter/project, ~2× below on
//! join, roughly equal (KV-dominated) on sliding windows, and sublinear
//! container scaling at a fixed partition count.

use samzasql_bench::harness::{
    measure_broker_msgsize, measure_native, measure_samzasql, measure_samzasql_direct,
    measure_samzasql_profiled, EvalQuery, OperatorBreakdown,
};
use samzasql_bench::usability::usability_table;

struct Args {
    fig: String,
    messages: usize,
    partitions: u32,
    containers: Vec<u32>,
    /// Where the machine-readable results go.
    json_out: String,
}

/// One (containers, native, samzasql) measurement row.
struct SeriesPoint {
    containers: u32,
    native_msgs_per_sec: f64,
    samzasql_msgs_per_sec: f64,
}

/// Collected results for one evaluation query.
struct QueryResults {
    query: EvalQuery,
    messages: usize,
    series: Vec<SeriesPoint>,
    /// Per-operator totals from a single-container profiled run, sourced
    /// from the observability registry.
    operators: Vec<OperatorBreakdown>,
}

fn parse_args() -> Args {
    let mut fig = "all".to_string();
    let mut messages = 200_000;
    let mut partitions = 32;
    let mut containers = vec![1, 2, 4, 8];
    let mut json_out = "BENCH_figures.json".to_string();
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--fig" => {
                fig = argv.get(i + 1).cloned().unwrap_or_else(|| "all".into());
                i += 2;
            }
            "--messages" => {
                messages = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(messages);
                i += 2;
            }
            "--partitions" => {
                partitions = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(partitions);
                i += 2;
            }
            "--containers" => {
                containers = argv
                    .get(i + 1)
                    .map(|s| s.split(',').filter_map(|x| x.parse().ok()).collect())
                    .unwrap_or(containers);
                i += 2;
            }
            "--json-out" => {
                json_out = argv.get(i + 1).cloned().unwrap_or_else(|| json_out.clone());
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    Args {
        fig,
        messages,
        partitions,
        containers,
        json_out,
    }
}

fn throughput_figure(query: EvalQuery, args: &Args) -> QueryResults {
    // KV-heavy workloads use fewer messages to keep runs short.
    let n = match query {
        EvalQuery::SlidingWindow => args.messages / 4,
        EvalQuery::Join => args.messages / 2,
        _ => args.messages,
    }
    .max(1_000);
    println!(
        "\n== Figure {}: {} throughput ({} msgs, {} partitions) ==",
        query.figure(),
        query.name(),
        n,
        args.partitions
    );
    println!("{}", query.sql());
    println!(
        "{:>11} {:>18} {:>18} {:>12}",
        "containers", "native (msg/s)", "samzasql (msg/s)", "sql/native"
    );
    let mut series = Vec::new();
    for &c in &args.containers {
        let native = measure_native(query, c, args.partitions, n);
        let sql = measure_samzasql(query, c, args.partitions, n);
        println!(
            "{:>11} {:>18.0} {:>18.0} {:>11.2}x",
            c,
            native.msgs_per_sec,
            sql.msgs_per_sec,
            sql.msgs_per_sec / native.msgs_per_sec
        );
        series.push(SeriesPoint {
            containers: c,
            native_msgs_per_sec: native.msgs_per_sec,
            samzasql_msgs_per_sec: sql.msgs_per_sec,
        });
    }
    let expectation = match query {
        EvalQuery::Filter | EvalQuery::Project => {
            "paper: SamzaSQL 30-40% below native (ratio ~0.60-0.70), sublinear scaling"
        }
        EvalQuery::Join => "paper: SamzaSQL ~2x slower than native (ratio ~0.50)",
        EvalQuery::SlidingWindow => {
            "paper: both comparable; throughput dominated by key-value store access"
        }
    };
    println!("  [{expectation}]");

    // Per-operator breakdown from one profiled single-container run —
    // where the pipeline's time actually goes, straight from the registry.
    let (_, operators) = measure_samzasql_profiled(query, 1, args.partitions, n);
    let total_busy: u64 = operators.iter().map(|o| o.busy_ns).sum();
    println!(
        "  {:>22} {:>12} {:>12} {:>10} {:>10}",
        "operator", "rows in", "rows out", "batches", "time"
    );
    for op in &operators {
        println!(
            "  {:>22} {:>12} {:>12} {:>10} {:>9.1}%",
            op.op,
            op.rows_in,
            op.rows_out,
            op.batches,
            100.0 * op.busy_ns as f64 / total_busy.max(1) as f64
        );
    }
    QueryResults {
        query,
        messages: n,
        series,
        operators,
    }
}

/// Write the collected throughput results as JSON so before/after comparisons
/// can be scripted. Hand-rolled: the bench crate deliberately takes no
/// serialization dependency.
fn write_figures_json(args: &Args, results: &[QueryResults]) {
    if results.is_empty() {
        return;
    }
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"partitions\": {},\n", args.partitions));
    out.push_str("  \"queries\": {\n");
    for (qi, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\n      \"figure\": \"{}\",\n      \"messages\": {},\n      \"series\": [\n",
            r.query.name(),
            r.query.figure(),
            r.messages
        ));
        for (i, p) in r.series.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"containers\": {}, \"native_msgs_per_sec\": {:.0}, \"samzasql_msgs_per_sec\": {:.0}}}{}\n",
                p.containers,
                p.native_msgs_per_sec,
                p.samzasql_msgs_per_sec,
                if i + 1 < r.series.len() { "," } else { "" }
            ));
        }
        out.push_str("      ],\n      \"operators\": [\n");
        for (i, op) in r.operators.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"op\": \"{}\", \"rows_in\": {}, \"rows_out\": {}, \"batches\": {}, \"busy_ns\": {}}}{}\n",
                op.op,
                op.rows_in,
                op.rows_out,
                op.batches,
                op.busy_ns,
                if i + 1 < r.operators.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "      ]\n    }}{}\n",
            if qi + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    match std::fs::write(&args.json_out, &out) {
        Ok(()) => println!("\nwrote {}", args.json_out),
        Err(e) => eprintln!("failed to write {}: {e}", args.json_out),
    }
}

fn msgsize_table() {
    println!("\n== §5.1 message-size rationale (broker produce+consume) ==");
    println!("{:>12} {:>16} {:>12}", "msg bytes", "messages/s", "MB/s");
    for size in [10usize, 100, 1_000, 10_000] {
        let (msgs, mb) = measure_broker_msgsize(size, 50_000_000);
        println!("{:>12} {:>16.0} {:>12.1}", size, msgs, mb);
    }
    println!("  [paper: 100B messages balance msgs/s vs MB/s; >1KB messages cut msgs/s ~7x]");
}

fn ablation(args: &Args) {
    // §7 future-work item 5, implemented and measured: a SamzaSQL-specific
    // code path that avoids the AvroToArray/ArrayToAvro steps.
    println!("\n== Ablation (§7 item 5): direct SamzaSQL Data API vs prototype path ==");
    println!(
        "{:>10} {:>16} {:>20} {:>18} {:>12}",
        "query", "native (msg/s)", "samzasql-proto", "samzasql-direct", "direct/nat"
    );
    for q in [EvalQuery::Filter, EvalQuery::Project] {
        let n = args.messages;
        let native = measure_native(q, 1, args.partitions, n);
        let proto = measure_samzasql(q, 1, args.partitions, n);
        let direct = measure_samzasql_direct(q, 1, args.partitions, n);
        println!(
            "{:>10} {:>16.0} {:>20.0} {:>18.0} {:>11.2}x",
            q.name(),
            native.msgs_per_sec,
            proto.msgs_per_sec,
            direct.msgs_per_sec,
            direct.msgs_per_sec / native.msgs_per_sec
        );
    }
    println!(
        "  [paper §7: removing the message-format transformations should bring \
SamzaSQL close to the native API]"
    );
}

/// Observability overhead budget: a metrics-enabled filter run must stay
/// within 5% of the metrics-disabled throughput. Best-of-3 on each side
/// damps scheduler noise so the comparison isolates instrument cost
/// (relaxed atomic bumps per batch).
fn overhead(args: &Args) {
    println!("\n== Observability overhead (filter shape, budget < 5%) ==");
    let n = args.messages.max(1_000);
    let best = |f: &dyn Fn() -> f64| (0..3).map(|_| f()).fold(f64::MIN, f64::max);
    let plain = best(&|| measure_samzasql(EvalQuery::Filter, 1, args.partitions, n).msgs_per_sec);
    let profiled = best(&|| {
        measure_samzasql_profiled(EvalQuery::Filter, 1, args.partitions, n)
            .0
            .msgs_per_sec
    });
    let overhead = 1.0 - profiled / plain;
    println!(
        "{:>22} {:>18.0}\n{:>22} {:>18.0}\n{:>22} {:>17.1}%",
        "disabled (msg/s)",
        plain,
        "enabled (msg/s)",
        profiled,
        "overhead",
        100.0 * overhead
    );
    assert!(
        overhead < 0.05,
        "metrics-enabled overhead {:.1}% exceeds the 5% budget",
        100.0 * overhead
    );
    println!("  [within budget]");
}

fn usability() {
    println!("\n== §5.1 usability: lines of code per query ==");
    println!(
        "{:>16} {:>10} {:>14} {:>22}",
        "query", "SQL lines", "native lines", "paper (native Java)"
    );
    for row in usability_table() {
        println!(
            "{:>16} {:>10} {:>14} {:>22}",
            row.query, row.sql_lines, row.native_lines, row.paper_native_lines
        );
    }
    println!("  [paper: SQL expresses each query in a couple of lines]");
}

fn main() {
    let args = parse_args();
    let mut results = Vec::new();
    match args.fig.as_str() {
        "5a" => results.push(throughput_figure(EvalQuery::Filter, &args)),
        "5b" => results.push(throughput_figure(EvalQuery::Project, &args)),
        "5c" => results.push(throughput_figure(EvalQuery::Join, &args)),
        "6" => results.push(throughput_figure(EvalQuery::SlidingWindow, &args)),
        "msgsize" => msgsize_table(),
        "usability" => usability(),
        "ablation" => ablation(&args),
        "overhead" => overhead(&args),
        "all" => {
            results.push(throughput_figure(EvalQuery::Filter, &args));
            results.push(throughput_figure(EvalQuery::Project, &args));
            results.push(throughput_figure(EvalQuery::Join, &args));
            results.push(throughput_figure(EvalQuery::SlidingWindow, &args));
            msgsize_table();
            usability();
            ablation(&args);
            overhead(&args);
        }
        other => {
            eprintln!(
                "unknown figure {other}; use 5a|5b|5c|6|msgsize|usability|ablation|overhead|all"
            );
            std::process::exit(2);
        }
    }
    write_figures_json(&args, &results);
}
