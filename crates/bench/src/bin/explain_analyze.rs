//! CI observability pass: EXPLAIN ANALYZE over the clean analyzer-corpus
//! fixtures (the paper's four §5.1 query shapes), plus a smoke check of the
//! Prometheus exporter (validated exposition format, no duplicate series,
//! counters monotone across renders).
//!
//! ```text
//! cargo run -p samzasql-bench --release --bin explain_analyze -- crates/analyze/tests/corpus
//! ```
//!
//! Exits nonzero when a report misses a per-operator annotation or the
//! exporter output fails validation.

use samzasql_analyze::corpus::strip_comments;
use samzasql_core::shell::SamzaSqlShell;
use samzasql_kafka::Broker;
use samzasql_obs::{render_prometheus, validate_prometheus, MetricValue};
use samzasql_serde::Value;
use samzasql_workload::{orders_schema, products_schema};

/// Shell over the workload's Orders/Products schemas (a superset of the
/// corpus catalog's columns, so every clean fixture plans — and the extra
/// columns keep the project shape's ProjectOp from being elided as an
/// identity projection), seeded with deterministic data.
fn corpus_shell(orders: usize) -> SamzaSqlShell {
    let mut shell = SamzaSqlShell::new(Broker::new());
    shell
        .register_stream("Orders", "orders", orders_schema(), "rowtime")
        .unwrap();
    shell.set_partition_key("Orders", "productId").unwrap();
    shell
        .register_table(
            "Products",
            "products-changelog",
            products_schema(),
            "productId",
        )
        .unwrap();
    for p in 0..10 {
        shell
            .produce_relation(
                "Products",
                Value::record(vec![
                    ("productId", Value::Int(p)),
                    ("name", Value::String(format!("p{p}"))),
                    ("supplierId", Value::Int(p % 5)),
                ]),
            )
            .unwrap();
    }
    // Deterministic spread: every product, full range of units.
    for i in 0..orders {
        shell
            .produce(
                "Orders",
                Value::record(vec![
                    ("rowtime", Value::Timestamp(i as i64 * 1_000)),
                    ("productId", Value::Int((i % 10) as i32)),
                    ("orderId", Value::Long(i as i64)),
                    ("units", Value::Int((i % 100) as i32)),
                    ("pad", Value::String("xxxxxxxx".into())),
                ]),
            )
            .unwrap();
    }
    shell
}

fn fail(msg: &str) -> ! {
    eprintln!("explain_analyze: {msg}");
    std::process::exit(1);
}

fn main() {
    let corpus_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "crates/analyze/tests/corpus".to_string());
    let mut fixtures: Vec<_> = std::fs::read_dir(&corpus_dir)
        .unwrap_or_else(|e| fail(&format!("cannot read {corpus_dir}: {e}")))
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let name = path.file_name()?.to_str()?;
            (name.starts_with("clean_") && name.ends_with(".sql")).then_some(path)
        })
        .collect();
    fixtures.sort();
    if fixtures.len() < 4 {
        fail(&format!(
            "expected the 4 clean paper shapes in {corpus_dir}, found {}",
            fixtures.len()
        ));
    }

    let mut shell = corpus_shell(500);
    for path in &fixtures {
        let sql = strip_comments(&std::fs::read_to_string(path).unwrap());
        let report = shell
            .explain_analyze(sql.trim())
            .unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
        println!("== EXPLAIN ANALYZE {} ==\n{report}", path.display());
        for needle in ["rows=", "batches=", "sel=", "time="] {
            if !report.contains(needle) {
                fail(&format!(
                    "{}: report misses {needle:?} annotation",
                    path.display()
                ));
            }
        }
    }

    // Exporter smoke check 1: the rendered exposition validates (unique
    // series, monotone histogram buckets, consistent counts).
    let first = shell.metrics_registry().snapshot();
    let prom = render_prometheus(&first);
    if let Err(e) = validate_prometheus(&prom) {
        fail(&format!("prometheus validation failed: {e}\n{prom}"));
    }

    // Exporter smoke check 2: counters are monotone across renders — more
    // traffic through the same live series must never decrease a sample.
    // (A fresh EXPLAIN ANALYZE would re-adopt its profile series from zero —
    // a legitimate counter reset — so the monotone check drives plain broker
    // traffic instead.)
    for i in 0..100 {
        shell
            .produce(
                "Orders",
                Value::record(vec![
                    ("rowtime", Value::Timestamp(1_000_000 + i)),
                    ("productId", Value::Int((i % 10) as i32)),
                    ("orderId", Value::Long(1_000_000 + i)),
                    ("units", Value::Int(1)),
                    ("pad", Value::String("xxxxxxxx".into())),
                ]),
            )
            .unwrap();
    }
    let second = shell.metrics_registry().snapshot();
    if let Err(e) = validate_prometheus(&render_prometheus(&second)) {
        fail(&format!("second prometheus render failed validation: {e}"));
    }
    for before in &first.entries {
        let MetricValue::Counter(old) = before.value else {
            continue;
        };
        let Some(after) = second
            .entries
            .iter()
            .find(|e| e.name == before.name && e.labels == before.labels)
        else {
            fail(&format!("series {} vanished between renders", before.name));
        };
        let MetricValue::Counter(new) = after.value else {
            fail(&format!("series {} changed kind", before.name));
        };
        if new < old {
            fail(&format!(
                "counter {} went backwards: {old} -> {new}",
                before.name
            ));
        }
    }

    println!(
        "explain_analyze: {} shapes annotated, {} series validated",
        fixtures.len(),
        second.entries.len()
    );
}
