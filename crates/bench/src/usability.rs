//! The usability comparison from §5.1: lines of code to express each query
//! in SamzaSQL versus the native Samza API.
//!
//! "streaming SQL reduces development overheads by allowing users to express
//! streaming queries declaratively using a couple of lines where as
//! streaming jobs implemented using Samza's Java API will contain more than
//! 100 lines for sliding window queries, more than 50 lines for simple
//! stream-to-relation join and around 20 to 30 lines for filter and project
//! queries."
//!
//! The native counts are measured from this crate's actual baseline source
//! (`native.rs`) by brace-matching each implementation, so the comparison
//! stays honest as the code evolves. SQL counts are the query text's line
//! count as formatted in the harness.

use crate::harness::EvalQuery;

/// One row of the usability table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsabilityRow {
    pub query: &'static str,
    pub sql_lines: usize,
    pub native_lines: usize,
    /// What the paper reports for the native Java implementation.
    pub paper_native_lines: &'static str,
}

const NATIVE_SRC: &str = include_str!("native.rs");

/// Count the code lines (non-empty, non-comment) of `struct Name` + its
/// inherent impl + its `StreamTask` impl in `native.rs`.
fn native_lines(name: &str) -> usize {
    let mut total = 0;
    for anchor in [
        format!("pub struct {name}"),
        format!("impl {name}"),
        format!("impl StreamTask for {name}"),
    ] {
        total += block_lines(NATIVE_SRC, &anchor);
    }
    total
}

/// Lines of the brace-delimited block starting at `anchor`.
fn block_lines(src: &str, anchor: &str) -> usize {
    let Some(start) = src.find(anchor) else {
        return 0;
    };
    let mut depth = 0i32;
    let mut started = false;
    let mut lines = 0;
    for line in src[start..].lines() {
        let trimmed = line.trim();
        if !trimmed.is_empty() && !trimmed.starts_with("//") {
            lines += 1;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    started = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if started && depth == 0 {
            break;
        }
    }
    lines
}

fn sql_lines(q: EvalQuery) -> usize {
    q.sql().lines().count()
}

/// The full usability table.
pub fn usability_table() -> Vec<UsabilityRow> {
    vec![
        UsabilityRow {
            query: "filter",
            sql_lines: sql_lines(EvalQuery::Filter),
            native_lines: native_lines("NativeFilterTask"),
            paper_native_lines: "20-30",
        },
        UsabilityRow {
            query: "project",
            sql_lines: sql_lines(EvalQuery::Project),
            native_lines: native_lines("NativeProjectTask"),
            paper_native_lines: "20-30",
        },
        UsabilityRow {
            query: "join",
            sql_lines: sql_lines(EvalQuery::Join),
            native_lines: native_lines("NativeJoinTask"),
            paper_native_lines: ">50",
        },
        UsabilityRow {
            query: "sliding-window",
            sql_lines: sql_lines(EvalQuery::SlidingWindow),
            native_lines: native_lines("NativeSlidingWindowTask"),
            paper_native_lines: ">100",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_is_single_digit_lines_native_is_tens() {
        for row in usability_table() {
            assert!(
                row.sql_lines <= 5,
                "{}: SQL should be a couple of lines, got {}",
                row.query,
                row.sql_lines
            );
            assert!(
                row.native_lines >= 15,
                "{}: native implementation should be tens of lines, got {}",
                row.query,
                row.native_lines
            );
            assert!(
                row.native_lines > 4 * row.sql_lines,
                "{}: order-of-magnitude gap",
                row.query
            );
        }
    }

    #[test]
    fn paper_ordering_holds() {
        // Paper: window > join > filter/project in native LOC.
        let t = usability_table();
        let get = |q: &str| t.iter().find(|r| r.query == q).unwrap().native_lines;
        assert!(get("sliding-window") > get("join") || get("sliding-window") > get("filter"));
        assert!(get("join") > get("filter"));
    }
}
