//! Throughput harness for the §5.1 evaluation.
//!
//! Methodology mirrors the paper: a topic with a fixed number of partitions
//! (32 in the paper) is preloaded with ~100-byte Avro messages; the query
//! job is started with *k* containers; throughput = messages processed /
//! wall-clock time. "The average throughput across containers was multiplied
//! by the container count to get the job throughput" — here containers run
//! as real threads in one process, so we measure the job directly.
//!
//! Both sides drive the batched execution path end-to-end: the container
//! hands each task whole fetch slices (`StreamTask::process_batch`), and
//! output flushes append per-partition runs under one log lock — so the
//! native/SamzaSQL gap isolates per-message serde cost, as in the paper.

use crate::native::{NativeTaskFactory, NativeTaskKind, NATIVE_STORE};
use samzasql_core::shell::SamzaSqlShell;
use samzasql_kafka::partitioner::hash_bytes;
use samzasql_kafka::{Broker, Message, TopicConfig};
use samzasql_obs::{MetricValue, MetricsRegistry};
use samzasql_samza::{ClusterSim, InputStreamConfig, JobConfig, OutputStreamConfig, StoreConfig};
use samzasql_serde::SerdeFormat;
use samzasql_workload::{
    orders_schema, products_schema, OrdersGenerator, OrdersSpec, ProductsGenerator, ProductsSpec,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The four evaluation queries of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalQuery {
    /// Figure 5a.
    Filter,
    /// Figure 5b.
    Project,
    /// Figure 6.
    SlidingWindow,
    /// Figure 5c.
    Join,
}

impl EvalQuery {
    /// The exact SQL from §5.1.
    pub fn sql(&self) -> &'static str {
        match self {
            EvalQuery::Filter => "SELECT STREAM * FROM Orders WHERE units > 50",
            EvalQuery::Project => "SELECT STREAM rowtime, productId, units FROM Orders",
            EvalQuery::SlidingWindow => {
                "SELECT STREAM rowtime, productId, units, \
                 SUM(units) OVER (PARTITION BY productId ORDER BY rowtime \
                 RANGE INTERVAL '5' MINUTE PRECEDING) unitsLastFiveMinutes FROM Orders"
            }
            EvalQuery::Join => {
                "SELECT STREAM Orders.rowtime, Orders.orderId, Orders.productId, \
                 Orders.units, Products.supplierId \
                 FROM Orders JOIN Products ON Orders.productId = Products.productId"
            }
        }
    }

    /// Figure label in the paper.
    pub fn figure(&self) -> &'static str {
        match self {
            EvalQuery::Filter => "5a",
            EvalQuery::Project => "5b",
            EvalQuery::Join => "5c",
            EvalQuery::SlidingWindow => "6",
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            EvalQuery::Filter => "filter",
            EvalQuery::Project => "project",
            EvalQuery::Join => "join",
            EvalQuery::SlidingWindow => "sliding-window",
        }
    }

    fn needs_products(&self) -> bool {
        *self == EvalQuery::Join
    }
}

/// One throughput measurement.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputResult {
    /// Input messages processed.
    pub messages: u64,
    pub elapsed: Duration,
    pub msgs_per_sec: f64,
}

impl ThroughputResult {
    fn new(messages: u64, elapsed: Duration) -> Self {
        ThroughputResult {
            messages,
            elapsed,
            msgs_per_sec: messages as f64 / elapsed.as_secs_f64().max(1e-9),
        }
    }
}

/// Preload the workload: `orders` (and `products-changelog` for joins) onto
/// a fresh broker. Returns the expected total input-message count.
pub fn setup_workload(broker: &Broker, query: EvalQuery, partitions: u32, n: usize) -> u64 {
    broker
        .create_topic("orders", TopicConfig::with_partitions(partitions))
        .unwrap();
    let mut expected = n as u64;
    if query.needs_products() {
        broker
            .create_topic(
                "products-changelog",
                TopicConfig::with_partitions(partitions),
            )
            .unwrap();
        let mut pg = ProductsGenerator::new(ProductsSpec::default());
        let snapshot = pg.snapshot();
        expected += snapshot.len() as u64;
        for m in snapshot {
            let p = hash_bytes(m.key.as_ref().expect("keyed")) % partitions;
            broker.produce("products-changelog", p, m).unwrap();
        }
    }
    let mut gen = OrdersGenerator::new(OrdersSpec::default());
    for m in gen.messages(n) {
        let p = hash_bytes(m.key.as_ref().expect("keyed")) % partitions;
        broker.produce("orders", p, m).unwrap();
    }
    expected
}

fn wait_processed(check: impl Fn() -> u64, expected: u64, timeout: Duration) -> Duration {
    let start = Instant::now();
    loop {
        if check() >= expected {
            return start.elapsed();
        }
        assert!(
            start.elapsed() < timeout,
            "benchmark stalled: {}/{} processed",
            check(),
            expected
        );
        // A coarse poll keeps the measuring thread off the CPU (matters on
        // low-core hosts where it competes with container threads).
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Per-operator totals for one profiled run, sourced from the shell's
/// metrics registry (`core.operator.*` series aggregated across tasks).
#[derive(Debug, Clone)]
pub struct OperatorBreakdown {
    /// Operator name plus plan-node index, e.g. `filter#1`.
    pub op: String,
    pub rows_in: u64,
    pub rows_out: u64,
    pub batches: u64,
    pub busy_ns: u64,
}

/// Aggregate the registry's `core.operator.*` series per operator (summing
/// across the job's tasks).
pub fn operator_breakdown(registry: &MetricsRegistry) -> Vec<OperatorBreakdown> {
    let snap = registry.snapshot_prefix("core.operator.");
    let mut by_op: BTreeMap<String, OperatorBreakdown> = BTreeMap::new();
    for e in &snap.entries {
        let Some(op) = e.labels.iter().find(|(k, _)| k == "op").map(|(_, v)| v) else {
            continue;
        };
        let MetricValue::Counter(v) = e.value else {
            continue;
        };
        let row = by_op
            .entry(op.clone())
            .or_insert_with(|| OperatorBreakdown {
                op: op.clone(),
                rows_in: 0,
                rows_out: 0,
                batches: 0,
                busy_ns: 0,
            });
        match e.name.as_str() {
            "core.operator.rows_in" => row.rows_in += v,
            "core.operator.rows_out" => row.rows_out += v,
            "core.operator.batches" => row.batches += v,
            "core.operator.busy_ns" => row.busy_ns += v,
            _ => {}
        }
    }
    by_op.into_values().collect()
}

/// Measure SamzaSQL executing `query` with `containers` containers over `n`
/// preloaded messages on a `partitions`-partition topic.
pub fn measure_samzasql(
    query: EvalQuery,
    containers: u32,
    partitions: u32,
    n: usize,
) -> ThroughputResult {
    measure_samzasql_mode(query, containers, partitions, n, false, false).0
}

/// Measure SamzaSQL with the direct data API enabled (§7 item 5 ablation:
/// AvroToArray/ArrayToAvro removed from the generated job).
pub fn measure_samzasql_direct(
    query: EvalQuery,
    containers: u32,
    partitions: u32,
    n: usize,
) -> ThroughputResult {
    measure_samzasql_mode(query, containers, partitions, n, true, false).0
}

/// Measure SamzaSQL with per-operator profiling enabled; throughput comes
/// with the registry-sourced per-operator breakdown.
pub fn measure_samzasql_profiled(
    query: EvalQuery,
    containers: u32,
    partitions: u32,
    n: usize,
) -> (ThroughputResult, Vec<OperatorBreakdown>) {
    measure_samzasql_mode(query, containers, partitions, n, false, true)
}

fn measure_samzasql_mode(
    query: EvalQuery,
    containers: u32,
    partitions: u32,
    n: usize,
    direct_data_api: bool,
    profile: bool,
) -> (ThroughputResult, Vec<OperatorBreakdown>) {
    let broker = Broker::new();
    let expected = setup_workload(&broker, query, partitions, n);
    let mut shell = SamzaSqlShell::new(broker.clone());
    shell
        .register_stream("Orders", "orders", orders_schema(), "rowtime")
        .unwrap();
    // Orders are produced keyed by productId — matching declaration avoids a
    // repartition stage (the paper's jobs are likewise co-partitioned).
    shell.set_partition_key("Orders", "productId").unwrap();
    if query.needs_products() {
        shell
            .register_table(
                "Products",
                "products-changelog",
                products_schema(),
                "productId",
            )
            .unwrap();
    }
    shell.default_containers = containers;
    shell.direct_data_api = direct_data_api;
    shell.profile_operators = profile;

    let start = Instant::now();
    let handle = shell.submit(query.sql()).unwrap();
    let _ = wait_processed(|| handle.processed(), expected, Duration::from_secs(600));
    let elapsed = start.elapsed();
    handle.stop().unwrap();
    let breakdown = if profile {
        // Cross-check the cluster-side count against the registry the
        // containers published into: same source of truth the METRICS
        // command reads.
        let processed = shell
            .metrics_registry()
            .snapshot_prefix("samza.task.messages_processed")
            .counter_sum("samza.task.messages_processed");
        assert!(
            processed >= expected,
            "registry undercounts: {processed}/{expected}"
        );
        operator_breakdown(shell.metrics_registry())
    } else {
        Vec::new()
    };
    (ThroughputResult::new(expected, elapsed), breakdown)
}

/// Measure the hand-written native Samza job for the same query.
pub fn measure_native(
    query: EvalQuery,
    containers: u32,
    partitions: u32,
    n: usize,
) -> ThroughputResult {
    let broker = Broker::new();
    let expected = setup_workload(&broker, query, partitions, n);
    broker
        .create_topic("native-output", TopicConfig::with_partitions(partitions))
        .unwrap();
    let job = format!("native-{}", query.name());
    let mut cfg = JobConfig::new(&job)
        .input(InputStreamConfig::avro("orders"))
        .output(OutputStreamConfig::avro("native-output"))
        .containers(containers);
    let kind = match query {
        EvalQuery::Filter => NativeTaskKind::Filter,
        EvalQuery::Project => NativeTaskKind::Project,
        EvalQuery::Join => {
            cfg = cfg
                .input(InputStreamConfig::avro("products-changelog").bootstrap())
                .store(StoreConfig::with_changelog(
                    NATIVE_STORE,
                    &job,
                    SerdeFormat::Avro,
                ));
            NativeTaskKind::Join {
                products_topic: "products-changelog".into(),
            }
        }
        EvalQuery::SlidingWindow => {
            cfg = cfg.store(StoreConfig::with_changelog(
                NATIVE_STORE,
                &job,
                SerdeFormat::Avro,
            ));
            NativeTaskKind::SlidingWindow { window_ms: 300_000 }
        }
    };
    let factory = NativeTaskFactory {
        kind,
        output: "native-output".into(),
    };
    let cluster = ClusterSim::single_node(broker.clone());

    let start = Instant::now();
    let handle = cluster.submit(cfg, Arc::new(factory)).unwrap();
    let _ = wait_processed(|| handle.processed(), expected, Duration::from_secs(600));
    let elapsed = start.elapsed();
    handle.stop().unwrap();
    ThroughputResult::new(expected, elapsed)
}

/// Broker message-size experiment (§5.1's rationale for 100-byte messages):
/// produce-then-consume `total_bytes` worth of messages of `message_bytes`
/// each; returns (messages/sec, MB/sec).
pub fn measure_broker_msgsize(message_bytes: usize, total_bytes: usize) -> (f64, f64) {
    let broker = Broker::new();
    broker
        .create_topic("t", TopicConfig::with_partitions(1))
        .unwrap();
    let n = (total_bytes / message_bytes).max(1);
    let payload = vec![b'x'; message_bytes];
    let start = Instant::now();
    for _ in 0..n {
        broker
            .produce(
                "t",
                0,
                Message::new(bytes::Bytes::copy_from_slice(&payload)),
            )
            .unwrap();
    }
    let mut off = 0;
    let mut consumed = 0usize;
    while consumed < n {
        let batch = broker.fetch("t", 0, off, 4096).unwrap();
        if batch.records.is_empty() {
            break;
        }
        for r in &batch.records {
            off = r.offset + 1;
            consumed += 1;
        }
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    let msgs = n as f64 / secs;
    let mb = (n * message_bytes) as f64 / 1_000_000.0 / secs;
    (msgs, mb)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small smoke runs keep CI fast; the figures binary uses larger N.
    #[test]
    fn samzasql_and_native_agree_on_filter_output() {
        let n = 2_000;
        let sq = measure_samzasql(EvalQuery::Filter, 1, 4, n);
        let nv = measure_native(EvalQuery::Filter, 1, 4, n);
        assert_eq!(sq.messages, n as u64);
        assert_eq!(nv.messages, n as u64);
        assert!(sq.msgs_per_sec > 0.0 && nv.msgs_per_sec > 0.0);
    }

    #[test]
    fn join_processes_orders_plus_relation() {
        let n = 1_000;
        let sq = measure_samzasql(EvalQuery::Join, 1, 4, n);
        assert_eq!(sq.messages, n as u64 + 100, "orders + products snapshot");
    }

    #[test]
    fn sliding_window_runs() {
        let r = measure_samzasql(EvalQuery::SlidingWindow, 1, 2, 500);
        assert_eq!(r.messages, 500);
    }

    #[test]
    fn profiled_run_reports_operator_breakdown() {
        let (r, ops) = measure_samzasql_profiled(EvalQuery::Filter, 1, 2, 1_000);
        assert_eq!(r.messages, 1_000);
        assert!(!ops.is_empty(), "profiled run published no operator series");
        let rows_in: u64 = ops.iter().map(|o| o.rows_in).sum();
        assert!(rows_in >= 1_000, "operators saw {rows_in} rows");
    }

    #[test]
    fn msgsize_experiment_runs() {
        let (msgs_100, mb_100) = measure_broker_msgsize(100, 500_000);
        let (msgs_10k, mb_10k) = measure_broker_msgsize(10_000, 500_000);
        assert!(msgs_100 > msgs_10k, "small messages yield more msgs/s");
        assert!(mb_10k > mb_100, "large messages yield more MB/s");
    }
}
