//! Hand-written native Samza API implementations of the four evaluation
//! queries (§5.1) — the baselines SamzaSQL is compared against.
//!
//! The implementations follow the paper's description of what the native
//! jobs do differently:
//!
//! * The native jobs read Avro like Java **SpecificRecord** code: generated
//!   classes with positional field access, no per-decode field-name
//!   materialization ([`AvroCodec::decode_to_tuple`]). SamzaSQL's generic
//!   layer works on GenericRecord-style decoded values plus the
//!   array-conversion steps of Figure 4 — that asymmetry is the measured
//!   overhead.
//! * **Filter**: "directly reads from incoming Avro message and writes back
//!   the message into the output stream without any modification" — decode
//!   to test the predicate, then forward the *original payload bytes*.
//! * **Project**: "we create Avro messages directly from incoming Avro
//!   messages" — decode, build the projected record, encode; no
//!   array-tuple intermediate.
//! * **Join**: caches the Products relation in the KV store through the
//!   **Avro** serde (where SamzaSQL uses the Kryo-like object serde that
//!   profiling found >2× slower, §5.1).
//! * **Sliding window**: the same Algorithm-1 logic, hand-written over
//!   records, storing the already-encoded Avro payload bytes directly.

use bytes::Bytes;
use samzasql_samza::{
    IncomingMessageEnvelope, MessageCollector, OutgoingMessageEnvelope, Result, StreamTask,
    TaskContext, TaskCoordinator, TaskFactory,
};
use samzasql_serde::avro::AvroCodec;
use samzasql_serde::object::ObjectCodec;
use samzasql_serde::{Schema, Value};
use samzasql_workload::{orders_schema, products_schema};

/// Store name used by the stateful native tasks.
pub const NATIVE_STORE: &str = "native-state";

// --------------------------------------------------------------- filter

/// `SELECT STREAM * FROM Orders WHERE units > 50`, native API.
pub struct NativeFilterTask {
    codec: AvroCodec,
    output: String,
}

impl NativeFilterTask {
    pub fn new(output: &str) -> Self {
        NativeFilterTask {
            codec: AvroCodec::new(orders_schema()),
            output: output.to_string(),
        }
    }
}

impl StreamTask for NativeFilterTask {
    fn process(
        &mut self,
        envelope: &IncomingMessageEnvelope,
        _ctx: &mut TaskContext,
        collector: &mut MessageCollector,
        _coordinator: &mut TaskCoordinator,
    ) -> Result<()> {
        // SpecificRecord-style read: positional fields, no name lookups.
        let record = self.codec.decode_to_tuple(&envelope.payload)?;
        let units = record[3].as_i64().unwrap_or(0);
        if units > 50 {
            // Forward the incoming Avro payload unchanged.
            collector.send(
                OutgoingMessageEnvelope::new(self.output.clone(), envelope.payload.clone())
                    .at(envelope.timestamp),
            );
        }
        Ok(())
    }

    /// Batch-aware path so native/SamzaSQL comparisons stay apples-to-apples
    /// under the container's batched delivery.
    fn process_batch(
        &mut self,
        envelopes: &[IncomingMessageEnvelope],
        ctx: &mut TaskContext,
        collector: &mut MessageCollector,
        coordinator: &mut TaskCoordinator,
    ) -> Result<usize> {
        for envelope in envelopes {
            self.process(envelope, ctx, collector, coordinator)?;
        }
        Ok(envelopes.len())
    }
}

// -------------------------------------------------------------- project

/// `SELECT STREAM rowtime, productId, units FROM Orders`, native API.
pub struct NativeProjectTask {
    in_codec: AvroCodec,
    out_codec: AvroCodec,
    output: String,
}

/// Output schema of the projection.
pub fn project_output_schema() -> Schema {
    Schema::record(
        "OrdersProjected",
        vec![
            ("rowtime", Schema::Timestamp),
            ("productId", Schema::Int),
            ("units", Schema::Int),
        ],
    )
}

impl NativeProjectTask {
    pub fn new(output: &str) -> Self {
        NativeProjectTask {
            in_codec: AvroCodec::new(orders_schema()),
            out_codec: AvroCodec::new(project_output_schema()),
            output: output.to_string(),
        }
    }
}

impl StreamTask for NativeProjectTask {
    fn process(
        &mut self,
        envelope: &IncomingMessageEnvelope,
        _ctx: &mut TaskContext,
        collector: &mut MessageCollector,
        _coordinator: &mut TaskCoordinator,
    ) -> Result<()> {
        let record = self.in_codec.decode_to_tuple(&envelope.payload)?;
        // Build the projected Avro record directly from the decoded fields
        // (SpecificRecord getters → SpecificRecord constructor).
        let payload = self.out_codec.encode_tuple(&[
            record[0].clone(),
            record[1].clone(),
            record[3].clone(),
        ])?;
        collector.send(
            OutgoingMessageEnvelope::new(self.output.clone(), payload).at(envelope.timestamp),
        );
        Ok(())
    }

    /// Batch-aware path so native/SamzaSQL comparisons stay apples-to-apples
    /// under the container's batched delivery.
    fn process_batch(
        &mut self,
        envelopes: &[IncomingMessageEnvelope],
        ctx: &mut TaskContext,
        collector: &mut MessageCollector,
        coordinator: &mut TaskCoordinator,
    ) -> Result<usize> {
        for envelope in envelopes {
            self.process(envelope, ctx, collector, coordinator)?;
        }
        Ok(envelopes.len())
    }
}

// ----------------------------------------------------------------- join

/// The §5.1 join query, native API: bootstrap Products into the KV store
/// with the **Avro** value serde, probe per order.
pub struct NativeJoinTask {
    orders_codec: AvroCodec,
    products_codec: AvroCodec,
    out_codec: AvroCodec,
    key_codec: ObjectCodec,
    products_topic: String,
    output: String,
}

/// Output schema of the join.
pub fn join_output_schema() -> Schema {
    Schema::record(
        "OrdersWithSupplier",
        vec![
            ("rowtime", Schema::Timestamp),
            ("orderId", Schema::Long),
            ("productId", Schema::Int),
            ("units", Schema::Int),
            ("supplierId", Schema::Int),
        ],
    )
}

impl NativeJoinTask {
    pub fn new(products_topic: &str, output: &str) -> Self {
        NativeJoinTask {
            orders_codec: AvroCodec::new(orders_schema()),
            products_codec: AvroCodec::new(products_schema()),
            out_codec: AvroCodec::new(join_output_schema()),
            key_codec: ObjectCodec::new(),
            products_topic: products_topic.to_string(),
            output: output.to_string(),
        }
    }
}

impl StreamTask for NativeJoinTask {
    fn process(
        &mut self,
        envelope: &IncomingMessageEnvelope,
        ctx: &mut TaskContext,
        collector: &mut MessageCollector,
        _coordinator: &mut TaskCoordinator,
    ) -> Result<()> {
        if envelope.tp.topic == self.products_topic {
            // Relation side (bootstrap): cache product rows as Avro bytes.
            if envelope.payload.is_empty() {
                if let Some(k) = &envelope.key {
                    ctx.store_mut(NATIVE_STORE)?.delete(k)?;
                }
                return Ok(());
            }
            let product = self.products_codec.decode_to_tuple(&envelope.payload)?;
            let key = self
                .key_codec
                .encode(&product[0])
                .map_err(samzasql_samza::SamzaError::Serde)?;
            // Store the incoming Avro payload directly — no re-encode.
            ctx.store_mut(NATIVE_STORE)?
                .put(&key, envelope.payload.clone())?;
            return Ok(());
        }
        // Stream side: decode the order, probe the cache (Avro deserialize).
        let order = self.orders_codec.decode_to_tuple(&envelope.payload)?;
        let key = self
            .key_codec
            .encode(&order[1])
            .map_err(samzasql_samza::SamzaError::Serde)?;
        let Some(product_bytes) = ctx.store_mut(NATIVE_STORE)?.get(&key) else {
            return Ok(());
        };
        let product = self.products_codec.decode_to_tuple(&product_bytes)?;
        let payload = self.out_codec.encode_tuple(&[
            order[0].clone(),
            order[2].clone(),
            order[1].clone(),
            order[3].clone(),
            product[2].clone(),
        ])?;
        collector.send(
            OutgoingMessageEnvelope::new(self.output.clone(), payload).at(envelope.timestamp),
        );
        Ok(())
    }
}

// ------------------------------------------------------- sliding window

/// The §5.1 sliding-window query, native API: per-product running
/// `SUM(units)` over the last 5 minutes, Algorithm-1 state in the KV store.
pub struct NativeSlidingWindowTask {
    in_codec: AvroCodec,
    out_codec: AvroCodec,
    output: String,
    window_ms: i64,
    seq: u64,
}

/// Output schema of the sliding-window query.
pub fn sliding_output_schema() -> Schema {
    Schema::record(
        "OrdersWindowed",
        vec![
            ("rowtime", Schema::Timestamp),
            ("productId", Schema::Int),
            ("units", Schema::Int),
            ("unitsLastFiveMinutes", Schema::Long),
        ],
    )
}

impl NativeSlidingWindowTask {
    pub fn new(output: &str, window_ms: i64) -> Self {
        NativeSlidingWindowTask {
            in_codec: AvroCodec::new(orders_schema()),
            out_codec: AvroCodec::new(sliding_output_schema()),
            output: output.to_string(),
            window_ms,
            seq: 0,
        }
    }

    fn msg_key(product: i64, ts: i64, seq: u64) -> Vec<u8> {
        let mut k = format!("m/{product}/").into_bytes();
        k.extend_from_slice(&((ts as u64) ^ (1 << 63)).to_be_bytes());
        k.extend_from_slice(&seq.to_be_bytes());
        k
    }
}

impl StreamTask for NativeSlidingWindowTask {
    fn process(
        &mut self,
        envelope: &IncomingMessageEnvelope,
        ctx: &mut TaskContext,
        collector: &mut MessageCollector,
        _coordinator: &mut TaskCoordinator,
    ) -> Result<()> {
        let order = self.in_codec.decode_to_tuple(&envelope.payload)?;
        let ts = order[0].as_i64().unwrap_or(0);
        let product = order[1].as_i64().unwrap_or(0);
        let units = order[3].as_i64().unwrap_or(0);

        let agg_key = format!("a/{product}").into_bytes();
        let store = ctx.store_mut(NATIVE_STORE)?;

        // Load aggregate state.
        let mut sum: i64 = store
            .get(&agg_key)
            .map(|b| i64::from_le_bytes(b.as_ref().try_into().unwrap_or([0; 8])))
            .unwrap_or(0);

        // Save the message in the message store (Algorithm 1 keeps the
        // messages themselves, not a digest): the already-encoded Avro
        // payload goes in directly.
        let mkey = Self::msg_key(product, ts, self.seq);
        self.seq += 1;
        store.put(&mkey, envelope.payload.clone())?;

        // Purge expired messages, adjusting the sum (Avro-decode each
        // expired message to retract its units).
        let cutoff = ts - self.window_ms;
        let lo = Self::msg_key(product, i64::MIN, 0);
        let hi = Self::msg_key(product, cutoff, 0);
        for (k, v) in store.range(&lo, &hi) {
            let old = self.in_codec.decode_to_tuple(&v)?;
            sum -= old[3].as_i64().unwrap_or(0);
            store.delete(&k)?;
        }

        sum += units;
        store.put(&agg_key, Bytes::copy_from_slice(&sum.to_le_bytes()))?;

        let payload = self.out_codec.encode_tuple(&[
            Value::Timestamp(ts),
            Value::Int(product as i32),
            Value::Int(units as i32),
            Value::Long(sum),
        ])?;
        collector.send(
            OutgoingMessageEnvelope::new(self.output.clone(), payload).at(envelope.timestamp),
        );
        Ok(())
    }
}

// ------------------------------------------------------------ factories

/// Factory wrapper for the native tasks.
pub enum NativeTaskKind {
    Filter,
    Project,
    Join { products_topic: String },
    SlidingWindow { window_ms: i64 },
}

/// Creates native tasks of one kind.
pub struct NativeTaskFactory {
    pub kind: NativeTaskKind,
    pub output: String,
}

impl TaskFactory for NativeTaskFactory {
    fn create(&self, _partition: u32) -> Box<dyn StreamTask> {
        match &self.kind {
            NativeTaskKind::Filter => Box::new(NativeFilterTask::new(&self.output)),
            NativeTaskKind::Project => Box::new(NativeProjectTask::new(&self.output)),
            NativeTaskKind::Join { products_topic } => {
                Box::new(NativeJoinTask::new(products_topic, &self.output))
            }
            NativeTaskKind::SlidingWindow { window_ms } => {
                Box::new(NativeSlidingWindowTask::new(&self.output, *window_ms))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samzasql_kafka::{Broker, TopicConfig};
    use samzasql_samza::{
        Container, InputStreamConfig, JobConfig, JobModel, OutputStreamConfig, StoreConfig,
    };
    use samzasql_serde::SerdeFormat;
    use samzasql_workload::{OrdersGenerator, OrdersSpec, ProductsGenerator, ProductsSpec};

    fn drain(broker: &Broker, topic: &str) -> Vec<Bytes> {
        let mut out = Vec::new();
        for p in 0..broker.partition_count(topic).unwrap() {
            let mut off = 0;
            loop {
                let b = broker.fetch(topic, p, off, 1024).unwrap();
                if b.records.is_empty() {
                    break;
                }
                for r in b.records {
                    off = r.offset + 1;
                    out.push(r.message.value);
                }
            }
        }
        out
    }

    #[test]
    fn native_filter_forwards_matching_payloads_unchanged() {
        let broker = Broker::new();
        broker
            .create_topic("orders", TopicConfig::with_partitions(2))
            .unwrap();
        broker
            .create_topic("out", TopicConfig::with_partitions(2))
            .unwrap();
        let mut gen = OrdersGenerator::new(OrdersSpec::default());
        let mut over50 = 0;
        let codec = AvroCodec::new(orders_schema());
        for m in gen.messages(100) {
            if codec
                .decode(&m.value)
                .unwrap()
                .field("units")
                .unwrap()
                .as_i64()
                .unwrap()
                > 50
            {
                over50 += 1;
            }
            let p = samzasql_kafka::partitioner::hash_bytes(m.key.as_ref().unwrap()) % 2;
            broker.produce("orders", p, m).unwrap();
        }
        let cfg = JobConfig::new("nf")
            .input(InputStreamConfig::avro("orders"))
            .output(OutputStreamConfig::avro("out"));
        let factory = NativeTaskFactory {
            kind: NativeTaskKind::Filter,
            output: "out".into(),
        };
        let model = JobModel::plan(&cfg, &broker).unwrap();
        for cm in &model.containers {
            Container::new(broker.clone(), cfg.clone(), cm.clone(), &factory)
                .unwrap()
                .run_until_caught_up()
                .unwrap();
        }
        let outs = drain(&broker, "out");
        assert_eq!(outs.len(), over50);
        // Forwarded payloads decode as full Orders records (pass-through).
        assert!(codec.decode(&outs[0]).unwrap().field("pad").is_some());
    }

    #[test]
    fn native_join_matches_supplier() {
        let broker = Broker::new();
        broker
            .create_topic("orders", TopicConfig::with_partitions(2))
            .unwrap();
        broker
            .create_topic("products", TopicConfig::with_partitions(2))
            .unwrap();
        broker
            .create_topic("out", TopicConfig::with_partitions(2))
            .unwrap();
        let mut pg = ProductsGenerator::new(ProductsSpec::default());
        for m in pg.snapshot() {
            let p = samzasql_kafka::partitioner::hash_bytes(m.key.as_ref().unwrap()) % 2;
            broker.produce("products", p, m).unwrap();
        }
        let mut og = OrdersGenerator::new(OrdersSpec::default());
        for m in og.messages(200) {
            let p = samzasql_kafka::partitioner::hash_bytes(m.key.as_ref().unwrap()) % 2;
            broker.produce("orders", p, m).unwrap();
        }
        let cfg = JobConfig::new("nj")
            .input(InputStreamConfig::avro("orders"))
            .input(InputStreamConfig::avro("products").bootstrap())
            .output(OutputStreamConfig::avro("out"))
            .store(StoreConfig::with_changelog(
                NATIVE_STORE,
                "nj",
                SerdeFormat::Avro,
            ));
        let factory = NativeTaskFactory {
            kind: NativeTaskKind::Join {
                products_topic: "products".into(),
            },
            output: "out".into(),
        };
        let model = JobModel::plan(&cfg, &broker).unwrap();
        for cm in &model.containers {
            Container::new(broker.clone(), cfg.clone(), cm.clone(), &factory)
                .unwrap()
                .run_until_caught_up()
                .unwrap();
        }
        let outs = drain(&broker, "out");
        assert_eq!(outs.len(), 200, "every order has a product (dense ids)");
        let codec = AvroCodec::new(join_output_schema());
        let rec = codec.decode(&outs[0]).unwrap();
        assert!(rec.field("supplierId").unwrap().as_i64().is_some());
    }

    #[test]
    fn native_sliding_window_running_sum() {
        let broker = Broker::new();
        broker
            .create_topic("orders", TopicConfig::with_partitions(1))
            .unwrap();
        broker
            .create_topic("out", TopicConfig::with_partitions(1))
            .unwrap();
        // Hand-crafted orders: product 1, units 10 @0, 20 @60s, 5 @10min.
        let codec = AvroCodec::new(orders_schema());
        for (ts, units) in [(0i64, 10), (60_000, 20), (600_000, 5)] {
            let v = Value::record(vec![
                ("rowtime", Value::Timestamp(ts)),
                ("productId", Value::Int(1)),
                ("orderId", Value::Long(ts)),
                ("units", Value::Int(units)),
                ("pad", Value::String("x".into())),
            ]);
            broker
                .produce(
                    "orders",
                    0,
                    samzasql_kafka::Message::new(codec.encode(&v).unwrap()).at(ts),
                )
                .unwrap();
        }
        let cfg = JobConfig::new("nw")
            .input(InputStreamConfig::avro("orders"))
            .output(OutputStreamConfig::avro("out"))
            .store(StoreConfig::with_changelog(
                NATIVE_STORE,
                "nw",
                SerdeFormat::Avro,
            ));
        let factory = NativeTaskFactory {
            kind: NativeTaskKind::SlidingWindow { window_ms: 300_000 },
            output: "out".into(),
        };
        let model = JobModel::plan(&cfg, &broker).unwrap();
        Container::new(broker.clone(), cfg, model.containers[0].clone(), &factory)
            .unwrap()
            .run_until_caught_up()
            .unwrap();
        let outs = drain(&broker, "out");
        let out_codec = AvroCodec::new(sliding_output_schema());
        let sums: Vec<i64> = outs
            .iter()
            .map(|b| {
                out_codec
                    .decode(b)
                    .unwrap()
                    .field("unitsLastFiveMinutes")
                    .unwrap()
                    .as_i64()
                    .unwrap()
            })
            .collect();
        assert_eq!(sums, vec![10, 30, 5], "same results as the SQL operator");
    }
}
