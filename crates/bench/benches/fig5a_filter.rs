//! Figure 5a: filter-query throughput, SamzaSQL vs native Samza.
//!
//! `SELECT STREAM * FROM Orders WHERE units > 50` over 100-byte messages on
//! a 32-partition topic, swept over container counts. The paper's shape:
//! SamzaSQL 30–40% below native (Avro→array→Avro conversions), sublinear
//! container scaling at fixed partition count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use samzasql_bench::harness::{measure_native, measure_samzasql, EvalQuery};

const MESSAGES: usize = 50_000;
const PARTITIONS: u32 = 32;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5a_filter");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(MESSAGES as u64));
    for containers in [1u32, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("native", containers),
            &containers,
            |b, &cs| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        total +=
                            measure_native(EvalQuery::Filter, cs, PARTITIONS, MESSAGES).elapsed;
                    }
                    total
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("samzasql", containers),
            &containers,
            |b, &cs| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        total +=
                            measure_samzasql(EvalQuery::Filter, cs, PARTITIONS, MESSAGES).elapsed;
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
