//! Ablation: the serde costs behind the paper's profiling claims.
//!
//! * `avro_*` vs `object_*`: §5.1 attributes the join's ~2× deficit to
//!   "Kryo based Java object deserialization … more than two times slower
//!   than Avro based deserialization". This bench isolates exactly that
//!   codec gap on an Orders-shaped record.
//! * `avro_array_roundtrip`: the extra `AvroToArray`/`ArrayToAvro` work the
//!   SamzaSQL scan/insert operators add per message (Figure 4), responsible
//!   for the 30–40% filter/project overhead.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use samzasql_core::tuple::{array_to_record, record_to_array};
use samzasql_serde::avro::AvroCodec;
use samzasql_serde::object::ObjectCodec;
use samzasql_serde::Value;
use samzasql_workload::{orders_schema, OrdersGenerator, OrdersSpec};

fn sample() -> Value {
    OrdersGenerator::new(OrdersSpec::default()).next_value()
}

fn bench(c: &mut Criterion) {
    let record = sample();
    let avro = AvroCodec::new(orders_schema());
    let object = ObjectCodec::new();
    let avro_bytes = avro.encode(&record).unwrap();
    let object_bytes = object.encode(&record).unwrap();
    let names: Vec<String> = orders_schema()
        .fields()
        .unwrap()
        .iter()
        .map(|f| f.name.clone())
        .collect();

    let mut group = c.benchmark_group("serde_codecs");
    group.throughput(Throughput::Elements(1));
    group.bench_function("avro_encode", |b| b.iter(|| avro.encode(&record).unwrap()));
    group.bench_function("object_encode", |b| {
        b.iter(|| object.encode(&record).unwrap())
    });
    group.bench_function("avro_decode", |b| {
        b.iter(|| avro.decode(&avro_bytes).unwrap())
    });
    group.bench_function("object_decode", |b| {
        b.iter(|| object.decode(&object_bytes).unwrap())
    });
    group.bench_function("avro_array_roundtrip", |b| {
        b.iter(|| {
            // The scan/insert extra work: decode → array → record → encode.
            let rec = avro.decode(&avro_bytes).unwrap();
            let tuple = record_to_array(rec).unwrap();
            let back = array_to_record(tuple, &names).unwrap();
            avro.encode(&back).unwrap()
        })
    });
    group.bench_function("avro_passthrough", |b| {
        b.iter(|| {
            // What the native filter does: decode to check, forward bytes.
            let rec = avro.decode(&avro_bytes).unwrap();
            (rec.field("units").cloned(), avro_bytes.clone())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
