//! §5.1 message-size rationale: broker produce+consume throughput across
//! message sizes. The Kafka benchmark the paper cites found 100-byte
//! messages balance messages/second against MB/second; >1 KB messages cut
//! msgs/s roughly 7× while raising MB/s toward saturation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use samzasql_kafka::{Broker, Message, TopicConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("kafka_msgsize");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for size in [10usize, 100, 1_000, 10_000] {
        let n = (5_000_000 / size).max(100);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("produce_consume", size),
            &size,
            |b, &sz| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        let broker = Broker::new();
                        broker
                            .create_topic("t", TopicConfig::with_partitions(1))
                            .unwrap();
                        let payload = bytes::Bytes::from(vec![b'x'; sz]);
                        let start = std::time::Instant::now();
                        for _ in 0..n {
                            broker
                                .produce("t", 0, Message::new(payload.clone()))
                                .unwrap();
                        }
                        let mut off = 0;
                        loop {
                            let batch = broker.fetch("t", 0, off, 4096).unwrap();
                            if batch.records.is_empty() {
                                break;
                            }
                            off = batch.records.last().unwrap().offset + 1;
                        }
                        total += start.elapsed();
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
