//! Figure 5b: projection-query throughput, SamzaSQL vs native Samza.
//!
//! `SELECT STREAM rowtime, productId, units FROM Orders`. Same shape story
//! as Figure 5a: the SQL job pays message-format transformations; the native
//! job builds the projected Avro record directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use samzasql_bench::harness::{measure_native, measure_samzasql, EvalQuery};

const MESSAGES: usize = 50_000;
const PARTITIONS: u32 = 32;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5b_project");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(MESSAGES as u64));
    for containers in [1u32, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("native", containers),
            &containers,
            |b, &cs| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        total +=
                            measure_native(EvalQuery::Project, cs, PARTITIONS, MESSAGES).elapsed;
                    }
                    total
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("samzasql", containers),
            &containers,
            |b, &cs| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        total +=
                            measure_samzasql(EvalQuery::Project, cs, PARTITIONS, MESSAGES).elapsed;
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
