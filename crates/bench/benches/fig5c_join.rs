//! Figure 5c: stream-to-relation join throughput, SamzaSQL vs native Samza.
//!
//! Orders ⋈ Products via a bootstrap changelog. Paper shape: SamzaSQL about
//! 2× slower — its KV cache round-trips values through the generic object
//! serde (the Kryo stand-in) where the native job stores raw Avro bytes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use samzasql_bench::harness::{measure_native, measure_samzasql, EvalQuery};

const MESSAGES: usize = 25_000;
const PARTITIONS: u32 = 32;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5c_join");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(MESSAGES as u64));
    for containers in [1u32, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("native", containers),
            &containers,
            |b, &cs| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        total += measure_native(EvalQuery::Join, cs, PARTITIONS, MESSAGES).elapsed;
                    }
                    total
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("samzasql", containers),
            &containers,
            |b, &cs| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        total +=
                            measure_samzasql(EvalQuery::Join, cs, PARTITIONS, MESSAGES).elapsed;
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
