//! Figure 6: sliding-window operator throughput, SamzaSQL vs native Samza.
//!
//! Per-product `SUM(units)` over a 5-minute RANGE window. Paper shape: both
//! implementations are dominated by key-value-store access (several store
//! reads/writes per tuple through a serde), making the SQL layer's
//! message-transformation overhead negligible — the two series sit close
//! together, unlike Figures 5a–c.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use samzasql_bench::harness::{measure_native, measure_samzasql, EvalQuery};

const MESSAGES: usize = 20_000;
const PARTITIONS: u32 = 32;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_sliding_window");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(MESSAGES as u64));
    for containers in [1u32, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("native", containers),
            &containers,
            |b, &cs| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        total += measure_native(EvalQuery::SlidingWindow, cs, PARTITIONS, MESSAGES)
                            .elapsed;
                    }
                    total
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("samzasql", containers),
            &containers,
            |b, &cs| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        total +=
                            measure_samzasql(EvalQuery::SlidingWindow, cs, PARTITIONS, MESSAGES)
                                .elapsed;
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
