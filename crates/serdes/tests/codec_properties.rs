//! Property-based tests over the codecs: roundtrip identity, cross-codec
//! agreement, and corruption resilience (decoders must error, never panic).

use bytes::Bytes;
use proptest::prelude::*;
use samzasql_serde::avro::AvroCodec;
use samzasql_serde::object::ObjectCodec;
use samzasql_serde::{Schema, Value};

/// Generate a (schema, value) pair for a flat record of random primitive
/// fields — the shape every SamzaSQL tuple has.
fn record_strategy() -> impl Strategy<Value = (Schema, Value)> {
    let field = prop_oneof![
        any::<i32>().prop_map(|v| (Schema::Int, Value::Int(v))),
        any::<i64>().prop_map(|v| (Schema::Long, Value::Long(v))),
        any::<bool>().prop_map(|v| (Schema::Boolean, Value::Boolean(v))),
        // Finite doubles only: NaN breaks PartialEq-based roundtrip checks.
        prop::num::f64::NORMAL.prop_map(|v| (Schema::Double, Value::Double(v))),
        "[a-zA-Z0-9 ]{0,40}".prop_map(|s| (Schema::String, Value::String(s))),
        any::<i64>().prop_map(|v| (Schema::Timestamp, Value::Timestamp(v))),
        prop::collection::vec(any::<u8>(), 0..32)
            .prop_map(|b| (Schema::Bytes, Value::Bytes(Bytes::from(b)))),
        prop_oneof![
            Just((Schema::Int.optional(), Value::Null)),
            any::<i32>().prop_map(|v| (Schema::Int.optional(), Value::Int(v))),
        ],
    ];
    prop::collection::vec(field, 1..8).prop_map(|fields| {
        let schema = Schema::Record {
            name: "P".into(),
            fields: fields
                .iter()
                .enumerate()
                .map(|(i, (s, _))| samzasql_serde::Field {
                    name: format!("f{i}"),
                    schema: s.clone(),
                })
                .collect(),
        };
        let value = Value::Record(
            fields
                .into_iter()
                .enumerate()
                .map(|(i, (_, v))| (format!("f{i}"), v))
                .collect(),
        );
        (schema, value)
    })
}

proptest! {
    #[test]
    fn avro_roundtrip((schema, value) in record_strategy()) {
        let codec = AvroCodec::new(schema);
        let bytes = codec.encode(&value).unwrap();
        prop_assert_eq!(codec.decode(&bytes).unwrap(), value);
    }

    #[test]
    fn object_roundtrip((_, value) in record_strategy()) {
        let codec = ObjectCodec::new();
        let bytes = codec.encode(&value).unwrap();
        prop_assert_eq!(codec.decode(&bytes).unwrap(), value);
    }

    #[test]
    fn object_encoding_never_smaller_than_avro((schema, value) in record_strategy()) {
        let avro = AvroCodec::new(schema).encode(&value).unwrap();
        let obj = ObjectCodec::new().encode(&value).unwrap();
        // Self-describing format always carries at least the tag overhead.
        prop_assert!(obj.len() >= avro.len());
    }

    #[test]
    fn avro_decode_never_panics_on_garbage(
        (schema, value) in record_strategy(),
        flips in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..4)
    ) {
        let codec = AvroCodec::new(schema);
        let mut bytes = codec.encode(&value).unwrap().to_vec();
        if bytes.is_empty() {
            return Ok(());
        }
        for (idx, b) in flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= b;
        }
        // Either decodes to *something* or errors — must not panic.
        let _ = codec.decode(&bytes);
    }

    #[test]
    fn object_decode_never_panics_on_garbage(raw in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = ObjectCodec::new().decode(&raw);
    }

    #[test]
    fn truncation_is_detected_or_decodes_prefix(
        (schema, value) in record_strategy(),
        cut in 0usize..64
    ) {
        let codec = AvroCodec::new(schema);
        let bytes = codec.encode(&value).unwrap();
        if cut < bytes.len() && cut > 0 {
            // A strict prefix can never decode to the original value: either
            // it errors, or (because trailing-byte checking is exact) fails.
            let truncated = &bytes[..bytes.len() - cut];
            if let Ok(v) = codec.decode(truncated) { prop_assert_ne!(v, value) }
        }
    }
}
