//! Self-describing generic "object" codec — the Kryo stand-in.
//!
//! §5.1: "Kryo based Java object deserialization used in SamzaSQL['s join]
//! implementation is more than two times slower than Avro based
//! deserialization used in Samza's Java API based implementation."
//!
//! This codec reproduces the *cause* of that gap: like Kryo serializing
//! generic objects, it is schema-free and writes a type tag for every value,
//! a class-name header for every record, and the full field-name string for
//! every record field, so both the byte volume and the decode work (tag
//! dispatch, string reads, name allocation) are intrinsically higher than
//! the schema-driven [`crate::avro`] codec.
//!
//! One JVM-specific cost cannot arise organically in Rust: Kryo's
//! *reflective* object reconstruction (class resolution, per-field
//! `Field`-handle lookups, boxing) costs on the order of microseconds per
//! small object on the JVM. Record decoding therefore charges a calibrated
//! **reflection cost model** — real FNV hashing over the class/field-name
//! bytes and a fixed metadata block per field, standing in for the hash
//! lookups and metadata walks reflection performs. It is computation, not a
//! timer; tune or disable it with
//! [`ObjectCodec::with_reflection_passes`]. The calibration is documented in
//! DESIGN.md ("substitutions").

use crate::error::{Result, SerdeError};
use crate::value::Value;
use bytes::Bytes;
use std::collections::BTreeMap;

/// The "class name" written with every record object, mirroring Kryo's
/// unregistered-class header.
const RECORD_CLASS_NAME: &str = "org.apache.samza.sql.data.GenericTuple";

/// Default metadata-walk passes per decoded record field (reflection cost
/// model). Calibrated so decoding a small (3–5 field) record costs a few
/// microseconds, the ballpark of JVM Kryo reflective deserialization.
pub const DEFAULT_REFLECTION_PASSES: u32 = 10;

#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_LONG: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_DOUBLE: u8 = 5;
const TAG_STRING: u8 = 6;
const TAG_BYTES: u8 = 7;
const TAG_TIMESTAMP: u8 = 8;
const TAG_ARRAY: u8 = 9;
const TAG_MAP: u8 = 10;
const TAG_RECORD: u8 = 11;

/// Schema-free, self-describing codec.
#[derive(Debug, Clone)]
pub struct ObjectCodec {
    reflection_passes: u32,
}

impl Default for ObjectCodec {
    fn default() -> Self {
        ObjectCodec {
            reflection_passes: DEFAULT_REFLECTION_PASSES,
        }
    }
}

impl ObjectCodec {
    pub fn new() -> Self {
        ObjectCodec::default()
    }

    /// Override the reflection cost model (0 disables it).
    pub fn with_reflection_passes(mut self, passes: u32) -> Self {
        self.reflection_passes = passes;
        self
    }

    /// Charge the reflective field-resolution cost for one name: hash the
    /// name, then walk a fixed metadata block per pass (black-boxed so the
    /// work is retained).
    #[inline]
    fn reflect_cost(&self, name: &str) {
        const METADATA: [u8; 128] = [0x5A; 128];
        let mut acc = fnv1a(name.as_bytes());
        for _ in 0..self.reflection_passes {
            acc = acc.wrapping_add(fnv1a(&METADATA));
        }
        std::hint::black_box(acc);
    }

    /// Encode any value without a schema.
    pub fn encode(&self, value: &Value) -> Result<Bytes> {
        let mut buf = Vec::with_capacity(128);
        encode(value, &mut buf);
        Ok(Bytes::from(buf))
    }

    /// Decode a buffer produced by [`encode`](Self::encode).
    pub fn decode(&self, bytes: &[u8]) -> Result<Value> {
        let mut pos = 0usize;
        let v = decode(self, bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err(SerdeError::Corrupt(format!(
                "{} trailing bytes after value",
                bytes.len() - pos
            )));
        }
        Ok(v)
    }
}

fn write_len(len: usize, out: &mut Vec<u8>) {
    out.extend_from_slice(&(len as u32).to_le_bytes());
}

fn write_str(s: &str, out: &mut Vec<u8>) {
    write_len(s.len(), out);
    out.extend_from_slice(s.as_bytes());
}

fn encode(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Boolean(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
        Value::Int(v) => {
            out.push(TAG_INT);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Long(v) => {
            out.push(TAG_LONG);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Float(v) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Double(v) => {
            out.push(TAG_DOUBLE);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::String(s) => {
            out.push(TAG_STRING);
            write_str(s, out);
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            write_len(b.len(), out);
            out.extend_from_slice(b);
        }
        Value::Timestamp(v) => {
            out.push(TAG_TIMESTAMP);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            write_len(items.len(), out);
            for item in items {
                encode(item, out);
            }
        }
        Value::Map(m) => {
            out.push(TAG_MAP);
            write_len(m.len(), out);
            for (k, v) in m {
                write_str(k, out);
                encode(v, out);
            }
        }
        Value::Record(fields) => {
            out.push(TAG_RECORD);
            // Kryo-style class registration header: unregistered classes
            // write their fully-qualified name with every object.
            write_str(RECORD_CLASS_NAME, out);
            write_len(fields.len(), out);
            for (name, v) in fields {
                write_str(name, out);
                encode(v, out);
            }
        }
    }
}

fn read_byte(buf: &[u8], pos: &mut usize) -> Result<u8> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| SerdeError::Corrupt("unexpected end of input".into()))?;
    *pos += 1;
    Ok(b)
}

fn read_slice<'a>(buf: &'a [u8], pos: &mut usize, len: usize) -> Result<&'a [u8]> {
    let end = pos
        .checked_add(len)
        .filter(|e| *e <= buf.len())
        .ok_or_else(|| SerdeError::Corrupt("length prefix exceeds buffer".into()))?;
    let s = &buf[*pos..end];
    *pos = end;
    Ok(s)
}

fn read_len(buf: &[u8], pos: &mut usize) -> Result<usize> {
    let raw: [u8; 4] = read_slice(buf, pos, 4)?.try_into().expect("slice of 4");
    Ok(u32::from_le_bytes(raw) as usize)
}

fn read_string(buf: &[u8], pos: &mut usize) -> Result<String> {
    let len = read_len(buf, pos)?;
    String::from_utf8(read_slice(buf, pos, len)?.to_vec()).map_err(|_| SerdeError::InvalidUtf8)
}

fn decode(codec: &ObjectCodec, buf: &[u8], pos: &mut usize) -> Result<Value> {
    let tag = read_byte(buf, pos)?;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL => Ok(Value::Boolean(read_byte(buf, pos)? != 0)),
        TAG_INT => {
            let raw: [u8; 4] = read_slice(buf, pos, 4)?.try_into().expect("4");
            Ok(Value::Int(i32::from_le_bytes(raw)))
        }
        TAG_LONG => {
            let raw: [u8; 8] = read_slice(buf, pos, 8)?.try_into().expect("8");
            Ok(Value::Long(i64::from_le_bytes(raw)))
        }
        TAG_FLOAT => {
            let raw: [u8; 4] = read_slice(buf, pos, 4)?.try_into().expect("4");
            Ok(Value::Float(f32::from_le_bytes(raw)))
        }
        TAG_DOUBLE => {
            let raw: [u8; 8] = read_slice(buf, pos, 8)?.try_into().expect("8");
            Ok(Value::Double(f64::from_le_bytes(raw)))
        }
        TAG_STRING => Ok(Value::String(read_string(buf, pos)?)),
        TAG_BYTES => {
            let len = read_len(buf, pos)?;
            Ok(Value::Bytes(Bytes::copy_from_slice(read_slice(
                buf, pos, len,
            )?)))
        }
        TAG_TIMESTAMP => {
            let raw: [u8; 8] = read_slice(buf, pos, 8)?.try_into().expect("8");
            Ok(Value::Timestamp(i64::from_le_bytes(raw)))
        }
        TAG_ARRAY => {
            let len = read_len(buf, pos)?;
            let mut items = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                items.push(decode(codec, buf, pos)?);
            }
            Ok(Value::Array(items))
        }
        TAG_MAP => {
            let len = read_len(buf, pos)?;
            let mut m = BTreeMap::new();
            for _ in 0..len {
                let k = read_string(buf, pos)?;
                m.insert(k, decode(codec, buf, pos)?);
            }
            Ok(Value::Map(m))
        }
        TAG_RECORD => {
            // Reflective reconstruction, as Kryo's FieldSerializer does it:
            // resolve the class by name, then set each field through the
            // class's field table.
            let class = read_string(buf, pos)?;
            if class != RECORD_CLASS_NAME {
                return Err(SerdeError::Corrupt(format!("unknown record class {class}")));
            }
            codec.reflect_cost(&class); // class resolution
            let len = read_len(buf, pos)?;
            let mut fields = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                let name = read_string(buf, pos)?;
                codec.reflect_cost(&name); // Field handle lookup + set
                fields.push((name, decode(codec, buf, pos)?));
            }
            Ok(Value::Record(fields))
        }
        t => Err(SerdeError::Corrupt(format!("unknown type tag {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::avro::AvroCodec;

    fn sample_record() -> Value {
        Value::record(vec![
            ("rowtime", Value::Timestamp(1000)),
            ("productId", Value::Int(7)),
            ("orderId", Value::Long(99)),
            ("units", Value::Int(30)),
            ("pad", Value::String("x".repeat(60))),
        ])
    }

    #[test]
    fn roundtrip_all_types() {
        let codec = ObjectCodec::new();
        let values = vec![
            Value::Null,
            Value::Boolean(false),
            Value::Int(-5),
            Value::Long(1 << 40),
            Value::Float(1.5),
            Value::Double(2.5),
            Value::String("abc".into()),
            Value::Bytes(Bytes::from_static(&[1, 2])),
            Value::Timestamp(7),
            Value::Array(vec![Value::Int(1), Value::Null]),
            sample_record(),
        ];
        for v in values {
            let bytes = codec.encode(&v).unwrap();
            assert_eq!(codec.decode(&bytes).unwrap(), v, "roundtrip failed for {v}");
        }
    }

    #[test]
    fn object_encoding_is_larger_than_avro() {
        let v = sample_record();
        let avro = AvroCodec::new(v.infer_schema()).encode(&v).unwrap();
        let obj = ObjectCodec::new().encode(&v).unwrap();
        assert!(
            obj.len() > avro.len() + 20,
            "self-describing encoding must carry tags+names: avro={} obj={}",
            avro.len(),
            obj.len()
        );
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(ObjectCodec::new().decode(&[200]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let codec = ObjectCodec::new();
        let mut bytes = codec.encode(&Value::Int(1)).unwrap().to_vec();
        bytes.push(0);
        assert!(codec.decode(&bytes).is_err());
    }

    #[test]
    fn truncated_record_rejected() {
        let codec = ObjectCodec::new();
        let bytes = codec.encode(&sample_record()).unwrap();
        assert!(codec.decode(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn nested_structures_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), Value::Array(vec![sample_record()]));
        let v = Value::Map(m);
        let codec = ObjectCodec::new();
        assert_eq!(codec.decode(&codec.encode(&v).unwrap()).unwrap(), v);
    }
}
