//! Avro-like compact binary codec.
//!
//! Schema-driven: the wire format carries *no* field names or type tags, so
//! it is compact and fast — exactly the property that makes the paper's
//! native Samza jobs faster than SamzaSQL's Kryo-backed state serde. The
//! encoding follows Avro's binary spec in spirit:
//!
//! * `int`/`long`/`timestamp`: zig-zag varint
//! * `float`/`double`: little-endian IEEE 754
//! * `boolean`: one byte
//! * `string`/`bytes`: varint length prefix + raw bytes
//! * `optional` (union null|T): varint branch index 0 or 1
//! * `array`/`map`: varint count + items (single block, no negative-count
//!   block-size extension)
//! * `record`: fields in schema order

use crate::error::{Result, SerdeError};
use crate::schema::Schema;
use crate::value::Value;
use bytes::Bytes;
use std::collections::BTreeMap;

/// Encode/decode values against a fixed schema.
#[derive(Debug, Clone)]
pub struct AvroCodec {
    schema: Schema,
}

impl AvroCodec {
    pub fn new(schema: Schema) -> Self {
        AvroCodec { schema }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Encode `value` against the codec's schema.
    pub fn encode(&self, value: &Value) -> Result<Bytes> {
        let mut buf = Vec::with_capacity(64);
        encode_value(&self.schema, value, &mut buf)?;
        Ok(Bytes::from(buf))
    }

    /// Decode a buffer produced by [`encode`](Self::encode).
    pub fn decode(&self, bytes: &[u8]) -> Result<Value> {
        let mut cursor = Cursor { buf: bytes, pos: 0 };
        let v = decode_value(&self.schema, &mut cursor)?;
        if cursor.pos != bytes.len() {
            return Err(SerdeError::Corrupt(format!(
                "{} trailing bytes after value",
                bytes.len() - cursor.pos
            )));
        }
        Ok(v)
    }

    /// Decode a top-level record directly to a positional array of field
    /// values, skipping field-name materialization — the shape generated
    /// code consumes ("a tuple represented as an array in memory", §5.1).
    /// Errors when the codec's schema is not a record.
    pub fn decode_to_tuple(&self, bytes: &[u8]) -> Result<Vec<Value>> {
        let Schema::Record { fields, .. } = &self.schema else {
            return Err(SerdeError::SchemaMismatch {
                expected: "record".into(),
                found: self.schema.type_name(),
            });
        };
        let mut cursor = Cursor { buf: bytes, pos: 0 };
        let mut vals = Vec::with_capacity(fields.len());
        for f in fields {
            vals.push(decode_value(&f.schema, &mut cursor)?);
        }
        if cursor.pos != bytes.len() {
            return Err(SerdeError::Corrupt(format!(
                "{} trailing bytes after record",
                bytes.len() - cursor.pos
            )));
        }
        Ok(vals)
    }

    /// Encode a positional array of field values against the codec's record
    /// schema — the inverse of [`decode_to_tuple`](Self::decode_to_tuple)
    /// (the insert operator's `ArrayToAvro` without intermediate naming).
    pub fn encode_tuple(&self, tuple: &[Value]) -> Result<Bytes> {
        let Schema::Record { fields, .. } = &self.schema else {
            return Err(SerdeError::SchemaMismatch {
                expected: "record".into(),
                found: self.schema.type_name(),
            });
        };
        if fields.len() != tuple.len() {
            return Err(SerdeError::SchemaMismatch {
                expected: format!("record with {} fields", fields.len()),
                found: format!("tuple with {} values", tuple.len()),
            });
        }
        let mut buf = Vec::with_capacity(64);
        for (f, v) in fields.iter().zip(tuple) {
            encode_value(&f.schema, v, &mut buf)?;
        }
        Ok(Bytes::from(buf))
    }
}

// ---------------------------------------------------------------- encoding

/// Zig-zag encode a signed 64-bit integer to the varint wire form.
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn write_long(v: i64, out: &mut Vec<u8>) {
    write_varint(zigzag_encode(v), out);
}

fn encode_value(schema: &Schema, value: &Value, out: &mut Vec<u8>) -> Result<()> {
    match (schema, value) {
        (Schema::Null, Value::Null) => Ok(()),
        (Schema::Boolean, Value::Boolean(b)) => {
            out.push(u8::from(*b));
            Ok(())
        }
        (Schema::Int, Value::Int(v)) => {
            write_long(*v as i64, out);
            Ok(())
        }
        (Schema::Long, Value::Long(v)) | (Schema::Timestamp, Value::Timestamp(v)) => {
            write_long(*v, out);
            Ok(())
        }
        // Accept Long where Timestamp expected and vice versa — planner
        // treats them as the same physical type.
        (Schema::Timestamp, Value::Long(v)) | (Schema::Long, Value::Timestamp(v)) => {
            write_long(*v, out);
            Ok(())
        }
        (Schema::Float, Value::Float(v)) => {
            out.extend_from_slice(&v.to_le_bytes());
            Ok(())
        }
        (Schema::Double, Value::Double(v)) => {
            out.extend_from_slice(&v.to_le_bytes());
            Ok(())
        }
        (Schema::String, Value::String(s)) => {
            write_varint(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
            Ok(())
        }
        (Schema::Bytes, Value::Bytes(b)) => {
            write_varint(b.len() as u64, out);
            out.extend_from_slice(b);
            Ok(())
        }
        (Schema::Optional(_), Value::Null) => {
            write_varint(0, out);
            Ok(())
        }
        (Schema::Optional(inner), v) => {
            write_varint(1, out);
            encode_value(inner, v, out)
        }
        (Schema::Array(inner), Value::Array(items)) => {
            write_varint(items.len() as u64, out);
            for item in items {
                encode_value(inner, item, out)?;
            }
            Ok(())
        }
        (Schema::Map(inner), Value::Map(m)) => {
            write_varint(m.len() as u64, out);
            for (k, v) in m {
                write_varint(k.len() as u64, out);
                out.extend_from_slice(k.as_bytes());
                encode_value(inner, v, out)?;
            }
            Ok(())
        }
        (Schema::Record { fields, .. }, Value::Record(vals)) => {
            if fields.len() != vals.len() {
                return Err(SerdeError::SchemaMismatch {
                    expected: format!("record with {} fields", fields.len()),
                    found: format!("record with {} fields", vals.len()),
                });
            }
            for (f, (_, v)) in fields.iter().zip(vals) {
                encode_value(&f.schema, v, out)?;
            }
            Ok(())
        }
        (s, v) => Err(SerdeError::SchemaMismatch {
            expected: s.type_name(),
            found: v.type_name().to_string(),
        }),
    }
}

// ---------------------------------------------------------------- decoding

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn read_byte(&mut self) -> Result<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| SerdeError::Corrupt("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn read_slice(&mut self, len: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|e| *e <= self.buf.len())
            .ok_or_else(|| SerdeError::Corrupt("length prefix exceeds buffer".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn read_varint(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.read_byte()?;
            if shift >= 64 {
                return Err(SerdeError::VarintOverflow);
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn read_long(&mut self) -> Result<i64> {
        Ok(zigzag_decode(self.read_varint()?))
    }
}

fn decode_value(schema: &Schema, c: &mut Cursor<'_>) -> Result<Value> {
    match schema {
        Schema::Null => Ok(Value::Null),
        Schema::Boolean => Ok(Value::Boolean(c.read_byte()? != 0)),
        Schema::Int => {
            let v = c.read_long()?;
            i32::try_from(v)
                .map(Value::Int)
                .map_err(|_| SerdeError::Corrupt(format!("int out of range: {v}")))
        }
        Schema::Long => Ok(Value::Long(c.read_long()?)),
        Schema::Timestamp => Ok(Value::Timestamp(c.read_long()?)),
        Schema::Float => {
            let raw: [u8; 4] = c.read_slice(4)?.try_into().expect("slice of 4");
            Ok(Value::Float(f32::from_le_bytes(raw)))
        }
        Schema::Double => {
            let raw: [u8; 8] = c.read_slice(8)?.try_into().expect("slice of 8");
            Ok(Value::Double(f64::from_le_bytes(raw)))
        }
        Schema::String => {
            let len = c.read_varint()? as usize;
            let raw = c.read_slice(len)?;
            String::from_utf8(raw.to_vec())
                .map(Value::String)
                .map_err(|_| SerdeError::InvalidUtf8)
        }
        Schema::Bytes => {
            let len = c.read_varint()? as usize;
            Ok(Value::Bytes(Bytes::copy_from_slice(c.read_slice(len)?)))
        }
        Schema::Optional(inner) => match c.read_varint()? {
            0 => Ok(Value::Null),
            1 => decode_value(inner, c),
            n => Err(SerdeError::Corrupt(format!("invalid union branch {n}"))),
        },
        Schema::Array(inner) => {
            let len = c.read_varint()? as usize;
            let mut items = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                items.push(decode_value(inner, c)?);
            }
            Ok(Value::Array(items))
        }
        Schema::Map(inner) => {
            let len = c.read_varint()? as usize;
            let mut m = BTreeMap::new();
            for _ in 0..len {
                let klen = c.read_varint()? as usize;
                let key = String::from_utf8(c.read_slice(klen)?.to_vec())
                    .map_err(|_| SerdeError::InvalidUtf8)?;
                m.insert(key, decode_value(inner, c)?);
            }
            Ok(Value::Map(m))
        }
        Schema::Record { fields, .. } => {
            let mut vals = Vec::with_capacity(fields.len());
            for f in fields {
                vals.push((f.name.clone(), decode_value(&f.schema, c)?));
            }
            Ok(Value::Record(vals))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(schema: Schema, value: Value) {
        let codec = AvroCodec::new(schema);
        let bytes = codec.encode(&value).unwrap();
        assert_eq!(codec.decode(&bytes).unwrap(), value);
    }

    #[test]
    fn zigzag_is_involutive_on_samples() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 42_000_000_000] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(Schema::Boolean, Value::Boolean(true));
        roundtrip(Schema::Int, Value::Int(-12345));
        roundtrip(Schema::Long, Value::Long(1 << 50));
        roundtrip(Schema::Float, Value::Float(3.5));
        roundtrip(Schema::Double, Value::Double(-2.25e10));
        roundtrip(Schema::String, Value::String("héllo".into()));
        roundtrip(
            Schema::Bytes,
            Value::Bytes(Bytes::from_static(&[0, 255, 7])),
        );
        roundtrip(Schema::Timestamp, Value::Timestamp(1_700_000_000_000));
    }

    #[test]
    fn optional_roundtrip() {
        roundtrip(Schema::Int.optional(), Value::Null);
        roundtrip(Schema::Int.optional(), Value::Int(9));
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(
            Schema::Array(Box::new(Schema::Int)),
            Value::Array(vec![Value::Int(1), Value::Int(2)]),
        );
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), Value::Long(1));
        m.insert("b".to_string(), Value::Long(2));
        roundtrip(Schema::Map(Box::new(Schema::Long)), Value::Map(m));
    }

    #[test]
    fn record_roundtrip() {
        let schema = Schema::record(
            "Orders",
            vec![
                ("rowtime", Schema::Timestamp),
                ("productId", Schema::Int),
                ("orderId", Schema::Long),
                ("units", Schema::Int),
                ("pad", Schema::String),
            ],
        );
        let value = Value::record(vec![
            ("rowtime", Value::Timestamp(1000)),
            ("productId", Value::Int(7)),
            ("orderId", Value::Long(99)),
            ("units", Value::Int(30)),
            ("pad", Value::String("x".repeat(60))),
        ]);
        roundtrip(schema, value);
    }

    #[test]
    fn no_field_names_on_wire() {
        let schema = Schema::record("R", vec![("somewhat_long_field_name", Schema::Int)]);
        let codec = AvroCodec::new(schema);
        let bytes = codec
            .encode(&Value::record(vec![(
                "somewhat_long_field_name",
                Value::Int(1),
            )]))
            .unwrap();
        assert_eq!(
            bytes.len(),
            1,
            "schema-driven encoding writes only the datum"
        );
    }

    #[test]
    fn mismatched_value_is_rejected() {
        let codec = AvroCodec::new(Schema::Int);
        let err = codec.encode(&Value::String("no".into())).unwrap_err();
        assert!(matches!(err, SerdeError::SchemaMismatch { .. }));
    }

    #[test]
    fn wrong_arity_record_rejected() {
        let codec = AvroCodec::new(Schema::record("R", vec![("a", Schema::Int)]));
        let err = codec
            .encode(&Value::record(vec![
                ("a", Value::Int(1)),
                ("b", Value::Int(2)),
            ]))
            .unwrap_err();
        assert!(matches!(err, SerdeError::SchemaMismatch { .. }));
    }

    #[test]
    fn truncated_input_is_corrupt() {
        let codec = AvroCodec::new(Schema::String);
        let bytes = codec.encode(&Value::String("hello".into())).unwrap();
        assert!(codec.decode(&bytes[..3]).is_err());
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let codec = AvroCodec::new(Schema::Int);
        let mut bytes = codec.encode(&Value::Int(5)).unwrap().to_vec();
        bytes.push(0);
        assert!(matches!(codec.decode(&bytes), Err(SerdeError::Corrupt(_))));
    }

    #[test]
    fn invalid_union_branch_rejected() {
        let codec = AvroCodec::new(Schema::Int.optional());
        assert!(codec.decode(&[4]).is_err());
    }

    #[test]
    fn timestamp_long_interchange() {
        let codec = AvroCodec::new(Schema::Timestamp);
        let bytes = codec.encode(&Value::Long(77)).unwrap();
        assert_eq!(codec.decode(&bytes).unwrap(), Value::Timestamp(77));
    }
}
