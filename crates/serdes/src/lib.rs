//! # samzasql-serde
//!
//! Message formats for the SamzaSQL reproduction: a schema model, an
//! Avro-like compact binary codec, a JSON codec, a deliberately generic
//! self-describing "object" codec (standing in for the Kryo-based Java object
//! serde the paper profiles in §5.1), and a schema registry.
//!
//! The paper's performance story hinges on serialization:
//!
//! * SamzaSQL's generated jobs pay `AvroToArray` / `ArrayToAvro` conversions
//!   at the scan and insert operators (Figure 4), costing 30–40% throughput
//!   on filter/project versus native jobs that touch Avro directly.
//! * SamzaSQL's stream-to-relation join caches the relation in the local
//!   key-value store through a *generic object serde* (Kryo in the paper)
//!   that profiling showed to be "more than two times slower" than Avro.
//!
//! Both codecs here are real implementations with those organic cost
//! characteristics: [`avro`] is schema-driven and writes no field metadata;
//! [`object`] is self-describing and writes type tags and field names.
//!
//! ```
//! use samzasql_serde::{Schema, Value, avro::AvroCodec};
//!
//! let schema = Schema::record("Order", vec![
//!     ("rowtime", Schema::Long),
//!     ("productId", Schema::Int),
//!     ("units", Schema::Int),
//! ]);
//! let value = Value::record(vec![
//!     ("rowtime", Value::Long(1000)),
//!     ("productId", Value::Int(7)),
//!     ("units", Value::Int(30)),
//! ]);
//! let codec = AvroCodec::new(schema);
//! let bytes = codec.encode(&value).unwrap();
//! assert_eq!(codec.decode(&bytes).unwrap(), value);
//! ```

pub mod avro;
pub mod error;
pub mod json;
pub mod object;
pub mod registry;
pub mod schema;
pub mod serde_api;
pub mod value;

pub use error::{Result, SerdeError};
pub use registry::{RegisteredSchema, SchemaRegistry};
pub use schema::{Field, Schema};
pub use serde_api::{BoxedSerde, Serde, SerdeFormat};
pub use value::Value;
