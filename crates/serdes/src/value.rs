//! Runtime values (datums) flowing through operators.

use crate::schema::Schema;
use bytes::Bytes;
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// A dynamically typed SamzaSQL value.
///
/// Records carry their field names so the self-describing [`crate::object`]
/// codec and ad-hoc debugging work without a schema in hand; the Avro codec
/// ignores the names and trusts schema order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Boolean(bool),
    Int(i32),
    Long(i64),
    Float(f32),
    Double(f64),
    String(String),
    Bytes(Bytes),
    /// Event-time milliseconds.
    Timestamp(i64),
    Array(Vec<Value>),
    Map(BTreeMap<String, Value>),
    Record(Vec<(String, Value)>),
}

impl Value {
    /// Convenience constructor for records.
    pub fn record(fields: Vec<(&str, Value)>) -> Value {
        Value::Record(
            fields
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect(),
        )
    }

    /// True if this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Record field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Record(fields) => fields.iter().find(|(n, _)| n == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Runtime type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Boolean(_) => "boolean",
            Value::Int(_) => "int",
            Value::Long(_) => "long",
            Value::Float(_) => "float",
            Value::Double(_) => "double",
            Value::String(_) => "string",
            Value::Bytes(_) => "bytes",
            Value::Timestamp(_) => "timestamp",
            Value::Array(_) => "array",
            Value::Map(_) => "map",
            Value::Record(_) => "record",
        }
    }

    /// Numeric widening to `f64` for arithmetic/comparison across numeric
    /// types, `None` for non-numerics.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Long(v) | Value::Timestamp(v) => Some(*v as f64),
            Value::Float(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view (ints, longs, timestamps).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v as i64),
            Value::Long(v) | Value::Timestamp(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// SQL comparison semantics: NULL compares as unknown (`None`); numerics
    /// compare across widths; strings, booleans, bytes compare naturally.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (String(a), String(b)) => Some(a.cmp(b)),
            (Boolean(a), Boolean(b)) => Some(a.cmp(b)),
            (Bytes(a), Bytes(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// The schema this value would naturally carry (best-effort inference,
    /// used by tests and the JSON codec).
    pub fn infer_schema(&self) -> Schema {
        match self {
            Value::Null => Schema::Null,
            Value::Boolean(_) => Schema::Boolean,
            Value::Int(_) => Schema::Int,
            Value::Long(_) => Schema::Long,
            Value::Float(_) => Schema::Float,
            Value::Double(_) => Schema::Double,
            Value::String(_) => Schema::String,
            Value::Bytes(_) => Schema::Bytes,
            Value::Timestamp(_) => Schema::Timestamp,
            Value::Array(items) => Schema::Array(Box::new(
                items
                    .first()
                    .map(Value::infer_schema)
                    .unwrap_or(Schema::Null),
            )),
            Value::Map(m) => Schema::Map(Box::new(
                m.values()
                    .next()
                    .map(Value::infer_schema)
                    .unwrap_or(Schema::Null),
            )),
            Value::Record(fields) => Schema::Record {
                name: "inferred".into(),
                fields: fields
                    .iter()
                    .map(|(n, v)| crate::schema::Field {
                        name: n.clone(),
                        schema: v.infer_schema(),
                    })
                    .collect(),
            },
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Long(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::String(s) => write!(f, "{s}"),
            Value::Bytes(b) => write!(
                f,
                "0x{}",
                b.iter().map(|x| format!("{x:02x}")).collect::<String>()
            ),
            Value::Timestamp(t) => write!(f, "@{t}"),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            Value::Record(fields) => {
                write!(f, "(")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}={v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_comparisons_widen() {
        assert_eq!(
            Value::Int(3).sql_cmp(&Value::Long(3)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Double(2.5).sql_cmp(&Value::Int(3)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Timestamp(10).sql_cmp(&Value::Long(5)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn mixed_type_comparison_is_unknown() {
        assert_eq!(Value::String("a".into()).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn record_field_access() {
        let v = Value::record(vec![("a", Value::Int(1)), ("b", Value::String("x".into()))]);
        assert_eq!(v.field("a"), Some(&Value::Int(1)));
        assert_eq!(v.field("c"), None);
        assert_eq!(Value::Int(1).field("a"), None);
    }

    #[test]
    fn display_is_readable() {
        let v = Value::record(vec![
            ("a", Value::Int(1)),
            ("b", Value::Array(vec![Value::Boolean(true)])),
        ]);
        assert_eq!(v.to_string(), "(a=1, b=[true])");
    }

    #[test]
    fn infer_schema_roundtrips_record_shape() {
        let v = Value::record(vec![("t", Value::Timestamp(1)), ("n", Value::Int(2))]);
        let s = v.infer_schema();
        assert_eq!(s.field_index("t"), Some(0));
        assert_eq!(s.field("n").unwrap().schema, Schema::Int);
    }
}
