//! Schema model: the type vocabulary of SamzaSQL tuples.
//!
//! §3.1: "SamzaSQL supports primitive column types (integers, floating point
//! numbers, generic strings, dates and booleans) and nestable collection
//! types — array, map and object."

use crate::error::{Result, SerdeError};

/// One field of a record schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub schema: Schema,
}

/// A SamzaSQL schema. `Timestamp` is a distinct logical type over a long
/// (milliseconds), because SamzaSQL gives the event-time column special
/// treatment in planning and windowing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Schema {
    Null,
    Boolean,
    Int,
    Long,
    Float,
    Double,
    String,
    Bytes,
    /// Event-time milliseconds; encodes like `Long`.
    Timestamp,
    /// An optional ("nullable union") of the inner schema.
    Optional(Box<Schema>),
    /// Homogeneous list.
    Array(Box<Schema>),
    /// String-keyed map.
    Map(Box<Schema>),
    /// Named record ("object") with ordered fields.
    Record {
        name: String,
        fields: Vec<Field>,
    },
}

impl Schema {
    /// Convenience constructor for record schemas.
    pub fn record(name: impl Into<String>, fields: Vec<(&str, Schema)>) -> Schema {
        Schema::Record {
            name: name.into(),
            fields: fields
                .into_iter()
                .map(|(n, s)| Field {
                    name: n.to_string(),
                    schema: s,
                })
                .collect(),
        }
    }

    /// Make this schema optional (idempotent).
    pub fn optional(self) -> Schema {
        match self {
            s @ Schema::Optional(_) => s,
            s => Schema::Optional(Box::new(s)),
        }
    }

    /// Record fields, if this is a record.
    pub fn fields(&self) -> Option<&[Field]> {
        match self {
            Schema::Record { fields, .. } => Some(fields),
            _ => None,
        }
    }

    /// Index of a record field by name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields()?.iter().position(|f| f.name == name)
    }

    /// Field schema by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields()?.iter().find(|f| f.name == name)
    }

    /// Record name, if this is a record.
    pub fn name(&self) -> Option<&str> {
        match self {
            Schema::Record { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Human-readable type name used in error messages.
    pub fn type_name(&self) -> String {
        match self {
            Schema::Null => "null".into(),
            Schema::Boolean => "boolean".into(),
            Schema::Int => "int".into(),
            Schema::Long => "long".into(),
            Schema::Float => "float".into(),
            Schema::Double => "double".into(),
            Schema::String => "string".into(),
            Schema::Bytes => "bytes".into(),
            Schema::Timestamp => "timestamp".into(),
            Schema::Optional(inner) => format!("optional<{}>", inner.type_name()),
            Schema::Array(inner) => format!("array<{}>", inner.type_name()),
            Schema::Map(inner) => format!("map<{}>", inner.type_name()),
            Schema::Record { name, .. } => format!("record<{name}>"),
        }
    }

    /// Backward-compatibility check used by the registry: every field of
    /// `old` must exist in `self` with an identical schema, and any fields
    /// added by `self` must be optional (so old data can still be read).
    /// Non-record schemas must match exactly.
    pub fn is_backward_compatible_with(&self, old: &Schema) -> Result<()> {
        match (self, old) {
            (
                Schema::Record {
                    fields: new_fields, ..
                },
                Schema::Record {
                    fields: old_fields, ..
                },
            ) => {
                for of in old_fields {
                    match new_fields.iter().find(|nf| nf.name == of.name) {
                        Some(nf) if nf.schema == of.schema => {}
                        Some(nf) => {
                            return Err(SerdeError::IncompatibleSchema {
                                subject: String::new(),
                                reason: format!(
                                    "field {} changed type from {} to {}",
                                    of.name,
                                    of.schema.type_name(),
                                    nf.schema.type_name()
                                ),
                            })
                        }
                        None => {
                            return Err(SerdeError::IncompatibleSchema {
                                subject: String::new(),
                                reason: format!("field {} was removed", of.name),
                            })
                        }
                    }
                }
                for nf in new_fields {
                    let added = !old_fields.iter().any(|of| of.name == nf.name);
                    if added && !matches!(nf.schema, Schema::Optional(_)) {
                        return Err(SerdeError::IncompatibleSchema {
                            subject: String::new(),
                            reason: format!("added field {} must be optional", nf.name),
                        });
                    }
                }
                Ok(())
            }
            (a, b) if a == b => Ok(()),
            (a, b) => Err(SerdeError::IncompatibleSchema {
                subject: String::new(),
                reason: format!("{} is not compatible with {}", a.type_name(), b.type_name()),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orders() -> Schema {
        Schema::record(
            "Orders",
            vec![
                ("rowtime", Schema::Timestamp),
                ("productId", Schema::Int),
                ("orderId", Schema::Long),
                ("units", Schema::Int),
            ],
        )
    }

    #[test]
    fn field_lookup() {
        let s = orders();
        assert_eq!(s.field_index("productId"), Some(1));
        assert_eq!(s.field_index("nope"), None);
        assert_eq!(s.field("units").unwrap().schema, Schema::Int);
        assert_eq!(s.name(), Some("Orders"));
    }

    #[test]
    fn optional_is_idempotent() {
        let s = Schema::Int.optional().optional();
        assert_eq!(s, Schema::Optional(Box::new(Schema::Int)));
    }

    #[test]
    fn compatible_addition_must_be_optional() {
        let old = orders();
        let mut with_extra = orders();
        if let Schema::Record { fields, .. } = &mut with_extra {
            fields.push(Field {
                name: "note".into(),
                schema: Schema::String,
            });
        }
        assert!(with_extra.is_backward_compatible_with(&old).is_err());
        if let Schema::Record { fields, .. } = &mut with_extra {
            fields.last_mut().unwrap().schema = Schema::String.optional();
        }
        assert!(with_extra.is_backward_compatible_with(&old).is_ok());
    }

    #[test]
    fn removed_or_retyped_fields_are_incompatible() {
        let old = orders();
        let removed = Schema::record("Orders", vec![("rowtime", Schema::Timestamp)]);
        assert!(removed.is_backward_compatible_with(&old).is_err());
        let retyped = Schema::record(
            "Orders",
            vec![
                ("rowtime", Schema::Timestamp),
                ("productId", Schema::Long),
                ("orderId", Schema::Long),
                ("units", Schema::Int),
            ],
        );
        assert!(retyped.is_backward_compatible_with(&old).is_err());
    }

    #[test]
    fn type_names_are_descriptive() {
        assert_eq!(
            Schema::Array(Box::new(Schema::Int)).type_name(),
            "array<int>"
        );
        assert_eq!(orders().type_name(), "record<Orders>");
    }
}
