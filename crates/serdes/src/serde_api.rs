//! The pluggable Serde API (Samza's `Serde` interface).
//!
//! Samza "provides a message serialization and deserialization API called
//! *Serde* … to support different message formats" (§2). Runtime components
//! hold a [`BoxedSerde`] and neither know nor care which format is behind it.

use crate::avro::AvroCodec;
use crate::error::Result;
use crate::json::JsonCodec;
use crate::object::ObjectCodec;
use crate::schema::Schema;
use crate::value::Value;
use bytes::Bytes;
use std::sync::Arc;

/// Object-safe serializer/deserializer for [`Value`]s.
pub trait Serde: Send + Sync {
    /// Serialize a value to bytes.
    fn serialize(&self, value: &Value) -> Result<Bytes>;
    /// Deserialize bytes back to a value.
    fn deserialize(&self, bytes: &[u8]) -> Result<Value>;
    /// Format name for configuration and diagnostics.
    fn format(&self) -> SerdeFormat;
}

/// Shareable serde handle.
pub type BoxedSerde = Arc<dyn Serde>;

/// The built-in formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SerdeFormat {
    Avro,
    Json,
    Object,
}

impl std::fmt::Display for SerdeFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerdeFormat::Avro => write!(f, "avro"),
            SerdeFormat::Json => write!(f, "json"),
            SerdeFormat::Object => write!(f, "object"),
        }
    }
}

impl Serde for AvroCodec {
    fn serialize(&self, value: &Value) -> Result<Bytes> {
        self.encode(value)
    }
    fn deserialize(&self, bytes: &[u8]) -> Result<Value> {
        self.decode(bytes)
    }
    fn format(&self) -> SerdeFormat {
        SerdeFormat::Avro
    }
}

impl Serde for JsonCodec {
    fn serialize(&self, value: &Value) -> Result<Bytes> {
        self.encode(value)
    }
    fn deserialize(&self, bytes: &[u8]) -> Result<Value> {
        self.decode(bytes)
    }
    fn format(&self) -> SerdeFormat {
        SerdeFormat::Json
    }
}

impl Serde for ObjectCodec {
    fn serialize(&self, value: &Value) -> Result<Bytes> {
        self.encode(value)
    }
    fn deserialize(&self, bytes: &[u8]) -> Result<Value> {
        self.decode(bytes)
    }
    fn format(&self) -> SerdeFormat {
        SerdeFormat::Object
    }
}

/// Build a serde of the requested format over `schema` (ignored by the
/// schema-free object codec).
pub fn build_serde(format: SerdeFormat, schema: Schema) -> BoxedSerde {
    match format {
        SerdeFormat::Avro => Arc::new(AvroCodec::new(schema)),
        SerdeFormat::Json => Arc::new(JsonCodec::new(schema)),
        SerdeFormat::Object => Arc::new(ObjectCodec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_formats_roundtrip_through_trait_object() {
        let schema = Schema::record("R", vec![("a", Schema::Int), ("b", Schema::String)]);
        let v = Value::record(vec![("a", Value::Int(1)), ("b", Value::String("x".into()))]);
        for format in [SerdeFormat::Avro, SerdeFormat::Json, SerdeFormat::Object] {
            let serde = build_serde(format, schema.clone());
            assert_eq!(serde.format(), format);
            let bytes = serde.serialize(&v).unwrap();
            assert_eq!(serde.deserialize(&bytes).unwrap(), v, "format {format}");
        }
    }

    #[test]
    fn format_display_names() {
        assert_eq!(SerdeFormat::Avro.to_string(), "avro");
        assert_eq!(SerdeFormat::Json.to_string(), "json");
        assert_eq!(SerdeFormat::Object.to_string(), "object");
    }
}
