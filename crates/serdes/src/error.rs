//! Serde error types.

use std::fmt;

pub type Result<T> = std::result::Result<T, SerdeError>;

/// Errors produced while encoding/decoding values or resolving schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerdeError {
    /// The value does not conform to the schema it is being encoded with.
    SchemaMismatch {
        expected: String,
        found: String,
    },
    /// The byte stream ended prematurely or contains invalid data.
    Corrupt(String),
    /// A varint exceeded the width of its target type.
    VarintOverflow,
    /// Invalid UTF-8 in a decoded string.
    InvalidUtf8,
    /// Registry lookups.
    UnknownSubject(String),
    UnknownSchemaId(u32),
    /// Schema evolution rejected by the compatibility check.
    IncompatibleSchema {
        subject: String,
        reason: String,
    },
    /// JSON (de)serialization failure.
    Json(String),
}

impl fmt::Display for SerdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerdeError::SchemaMismatch { expected, found } => {
                write!(f, "schema mismatch: expected {expected}, found {found}")
            }
            SerdeError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            SerdeError::VarintOverflow => write!(f, "varint overflow"),
            SerdeError::InvalidUtf8 => write!(f, "invalid UTF-8 in string"),
            SerdeError::UnknownSubject(s) => write!(f, "unknown registry subject: {s}"),
            SerdeError::UnknownSchemaId(id) => write!(f, "unknown schema id: {id}"),
            SerdeError::IncompatibleSchema { subject, reason } => {
                write!(f, "incompatible schema for subject {subject}: {reason}")
            }
            SerdeError::Json(msg) => write!(f, "json error: {msg}"),
        }
    }
}

impl std::error::Error for SerdeError {}
