//! JSON codec.
//!
//! SamzaSQL "is architected to support various data formats such as Avro or
//! JSON … using pluggable extensions" (§1). The JSON codec is schema-assisted
//! on decode (JSON numbers are ambiguous between int/long/double; the schema
//! disambiguates) and schema-free on encode.

use crate::error::{Result, SerdeError};
use crate::schema::Schema;
use crate::value::Value;
use bytes::Bytes;
use std::collections::BTreeMap;

/// Encode/decode values as JSON text, guided by a schema on the way in.
#[derive(Debug, Clone)]
pub struct JsonCodec {
    schema: Schema,
}

impl JsonCodec {
    pub fn new(schema: Schema) -> Self {
        JsonCodec { schema }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Encode a value to JSON bytes. Records become objects; field order
    /// follows the record.
    pub fn encode(&self, value: &Value) -> Result<Bytes> {
        let j = to_json(value);
        serde_json::to_vec(&j)
            .map(Bytes::from)
            .map_err(|e| SerdeError::Json(e.to_string()))
    }

    /// Decode JSON bytes against the codec's schema.
    pub fn decode(&self, bytes: &[u8]) -> Result<Value> {
        let j: serde_json::Value =
            serde_json::from_slice(bytes).map_err(|e| SerdeError::Json(e.to_string()))?;
        from_json(&self.schema, &j)
    }
}

fn to_json(value: &Value) -> serde_json::Value {
    use serde_json::Value as J;
    match value {
        Value::Null => J::Null,
        Value::Boolean(b) => J::Bool(*b),
        Value::Int(v) => J::from(*v),
        Value::Long(v) | Value::Timestamp(v) => J::from(*v),
        Value::Float(v) => serde_json::Number::from_f64(f64::from(*v))
            .map(J::Number)
            .unwrap_or(J::Null),
        Value::Double(v) => serde_json::Number::from_f64(*v)
            .map(J::Number)
            .unwrap_or(J::Null),
        Value::String(s) => J::String(s.clone()),
        Value::Bytes(b) => {
            // Hex-string representation: JSON has no binary type.
            J::String(b.iter().map(|x| format!("{x:02x}")).collect())
        }
        Value::Array(items) => J::Array(items.iter().map(to_json).collect()),
        Value::Map(m) => J::Object(m.iter().map(|(k, v)| (k.clone(), to_json(v))).collect()),
        Value::Record(fields) => J::Object(
            fields
                .iter()
                .map(|(k, v)| (k.clone(), to_json(v)))
                .collect(),
        ),
    }
}

fn from_json(schema: &Schema, j: &serde_json::Value) -> Result<Value> {
    use serde_json::Value as J;
    let mismatch = || SerdeError::SchemaMismatch {
        expected: schema.type_name(),
        found: format!("{j}"),
    };
    match schema {
        Schema::Null => matches!(j, J::Null)
            .then_some(Value::Null)
            .ok_or_else(mismatch),
        Schema::Boolean => j.as_bool().map(Value::Boolean).ok_or_else(mismatch),
        Schema::Int => j
            .as_i64()
            .and_then(|v| i32::try_from(v).ok())
            .map(Value::Int)
            .ok_or_else(mismatch),
        Schema::Long => j.as_i64().map(Value::Long).ok_or_else(mismatch),
        Schema::Timestamp => j.as_i64().map(Value::Timestamp).ok_or_else(mismatch),
        Schema::Float => j
            .as_f64()
            .map(|v| Value::Float(v as f32))
            .ok_or_else(mismatch),
        Schema::Double => j.as_f64().map(Value::Double).ok_or_else(mismatch),
        Schema::String => j
            .as_str()
            .map(|s| Value::String(s.to_string()))
            .ok_or_else(mismatch),
        Schema::Bytes => {
            let s = j.as_str().ok_or_else(mismatch)?;
            if s.len() % 2 != 0 {
                return Err(mismatch());
            }
            let mut out = Vec::with_capacity(s.len() / 2);
            for i in (0..s.len()).step_by(2) {
                let byte = u8::from_str_radix(&s[i..i + 2], 16).map_err(|_| mismatch())?;
                out.push(byte);
            }
            Ok(Value::Bytes(Bytes::from(out)))
        }
        Schema::Optional(inner) => {
            if j.is_null() {
                Ok(Value::Null)
            } else {
                from_json(inner, j)
            }
        }
        Schema::Array(inner) => {
            let items = j.as_array().ok_or_else(mismatch)?;
            items
                .iter()
                .map(|x| from_json(inner, x))
                .collect::<Result<Vec<_>>>()
                .map(Value::Array)
        }
        Schema::Map(inner) => {
            let obj = j.as_object().ok_or_else(mismatch)?;
            let mut m = BTreeMap::new();
            for (k, v) in obj {
                m.insert(k.clone(), from_json(inner, v)?);
            }
            Ok(Value::Map(m))
        }
        Schema::Record { fields, .. } => {
            let obj = j.as_object().ok_or_else(mismatch)?;
            let mut out = Vec::with_capacity(fields.len());
            for f in fields {
                match obj.get(&f.name) {
                    Some(v) => out.push((f.name.clone(), from_json(&f.schema, v)?)),
                    None if matches!(f.schema, Schema::Optional(_)) => {
                        out.push((f.name.clone(), Value::Null))
                    }
                    None => {
                        return Err(SerdeError::SchemaMismatch {
                            expected: format!("field {}", f.name),
                            found: "missing".into(),
                        })
                    }
                }
            }
            Ok(Value::Record(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orders_schema() -> Schema {
        Schema::record(
            "Orders",
            vec![
                ("rowtime", Schema::Timestamp),
                ("productId", Schema::Int),
                ("units", Schema::Int),
                ("note", Schema::String.optional()),
            ],
        )
    }

    #[test]
    fn record_roundtrip() {
        let codec = JsonCodec::new(orders_schema());
        let v = Value::record(vec![
            ("rowtime", Value::Timestamp(5)),
            ("productId", Value::Int(1)),
            ("units", Value::Int(2)),
            ("note", Value::String("hi".into())),
        ]);
        let bytes = codec.encode(&v).unwrap();
        assert_eq!(codec.decode(&bytes).unwrap(), v);
    }

    #[test]
    fn missing_optional_field_decodes_null() {
        let codec = JsonCodec::new(orders_schema());
        let v = codec
            .decode(br#"{"rowtime": 1, "productId": 2, "units": 3}"#)
            .unwrap();
        assert_eq!(v.field("note"), Some(&Value::Null));
    }

    #[test]
    fn missing_required_field_errors() {
        let codec = JsonCodec::new(orders_schema());
        assert!(codec.decode(br#"{"rowtime": 1}"#).is_err());
    }

    #[test]
    fn type_mismatch_errors() {
        let codec = JsonCodec::new(Schema::Int);
        assert!(codec.decode(br#""text""#).is_err());
    }

    #[test]
    fn bytes_hex_roundtrip() {
        let codec = JsonCodec::new(Schema::Bytes);
        let v = Value::Bytes(Bytes::from_static(&[0xde, 0xad]));
        let bytes = codec.encode(&v).unwrap();
        assert_eq!(std::str::from_utf8(&bytes).unwrap(), "\"dead\"");
        assert_eq!(codec.decode(&bytes).unwrap(), v);
    }

    #[test]
    fn malformed_json_errors() {
        let codec = JsonCodec::new(Schema::Int);
        assert!(matches!(codec.decode(b"{nope"), Err(SerdeError::Json(_))));
    }
}
