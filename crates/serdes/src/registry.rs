//! Schema registry (Confluent-style, in process).
//!
//! §3.2: "SamzaSQL … depends on both the Kafka schema registry and Calcite's
//! built-in JSON based schema descriptions to provide the query planner with
//! the metadata necessary for query planning."
//!
//! Subjects map to a version history of schemas; registration enforces
//! backward compatibility (new readers can decode old data) and returns a
//! globally unique schema id.

use crate::error::{Result, SerdeError};
use crate::schema::Schema;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A registered schema: id, subject, version, and the schema itself.
#[derive(Debug, Clone, PartialEq)]
pub struct RegisteredSchema {
    pub id: u32,
    pub subject: String,
    pub version: u32,
    pub schema: Schema,
}

#[derive(Default)]
struct RegistryState {
    by_id: HashMap<u32, RegisteredSchema>,
    by_subject: HashMap<String, Vec<u32>>, // subject -> ids in version order
    next_id: u32,
}

/// Thread-safe, shareable schema registry.
#[derive(Clone, Default)]
pub struct SchemaRegistry {
    state: Arc<RwLock<RegistryState>>,
}

impl SchemaRegistry {
    pub fn new() -> Self {
        SchemaRegistry::default()
    }

    /// Register `schema` under `subject`. Re-registering the latest schema is
    /// idempotent (returns the existing registration). Otherwise the schema
    /// must be backward compatible with the latest version.
    pub fn register(&self, subject: &str, schema: Schema) -> Result<RegisteredSchema> {
        let mut st = self.state.write();
        if let Some(ids) = st.by_subject.get(subject) {
            if let Some(latest_id) = ids.last() {
                let latest = st.by_id[latest_id].clone();
                if latest.schema == schema {
                    return Ok(latest);
                }
                schema
                    .is_backward_compatible_with(&latest.schema)
                    .map_err(|e| match e {
                        SerdeError::IncompatibleSchema { reason, .. } => {
                            SerdeError::IncompatibleSchema {
                                subject: subject.to_string(),
                                reason,
                            }
                        }
                        other => other,
                    })?;
            }
        }
        st.next_id += 1;
        let id = st.next_id;
        let version = st.by_subject.get(subject).map_or(0, |v| v.len()) as u32 + 1;
        let reg = RegisteredSchema {
            id,
            subject: subject.to_string(),
            version,
            schema,
        };
        st.by_id.insert(id, reg.clone());
        st.by_subject
            .entry(subject.to_string())
            .or_default()
            .push(id);
        Ok(reg)
    }

    /// Latest schema of a subject.
    pub fn latest(&self, subject: &str) -> Result<RegisteredSchema> {
        let st = self.state.read();
        let ids = st
            .by_subject
            .get(subject)
            .ok_or_else(|| SerdeError::UnknownSubject(subject.to_string()))?;
        let id = ids.last().expect("subject never empty");
        Ok(st.by_id[id].clone())
    }

    /// Look up a schema by id.
    pub fn by_id(&self, id: u32) -> Result<RegisteredSchema> {
        self.state
            .read()
            .by_id
            .get(&id)
            .cloned()
            .ok_or(SerdeError::UnknownSchemaId(id))
    }

    /// All versions of a subject, oldest first.
    pub fn versions(&self, subject: &str) -> Result<Vec<RegisteredSchema>> {
        let st = self.state.read();
        let ids = st
            .by_subject
            .get(subject)
            .ok_or_else(|| SerdeError::UnknownSubject(subject.to_string()))?;
        Ok(ids.iter().map(|id| st.by_id[id].clone()).collect())
    }

    /// All registered subjects, sorted.
    pub fn subjects(&self) -> Vec<String> {
        let mut s: Vec<String> = self.state.read().by_subject.keys().cloned().collect();
        s.sort();
        s
    }
}

impl std::fmt::Debug for SchemaRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchemaRegistry")
            .field("subjects", &self.subjects())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v1() -> Schema {
        Schema::record(
            "Orders",
            vec![("rowtime", Schema::Timestamp), ("units", Schema::Int)],
        )
    }

    fn v2() -> Schema {
        Schema::record(
            "Orders",
            vec![
                ("rowtime", Schema::Timestamp),
                ("units", Schema::Int),
                ("note", Schema::String.optional()),
            ],
        )
    }

    #[test]
    fn register_and_fetch() {
        let r = SchemaRegistry::new();
        let reg = r.register("orders-value", v1()).unwrap();
        assert_eq!(reg.version, 1);
        assert_eq!(r.latest("orders-value").unwrap(), reg);
        assert_eq!(r.by_id(reg.id).unwrap(), reg);
    }

    #[test]
    fn reregistering_same_schema_is_idempotent() {
        let r = SchemaRegistry::new();
        let a = r.register("s", v1()).unwrap();
        let b = r.register("s", v1()).unwrap();
        assert_eq!(a, b);
        assert_eq!(r.versions("s").unwrap().len(), 1);
    }

    #[test]
    fn compatible_evolution_bumps_version() {
        let r = SchemaRegistry::new();
        r.register("s", v1()).unwrap();
        let reg2 = r.register("s", v2()).unwrap();
        assert_eq!(reg2.version, 2);
        assert_eq!(r.versions("s").unwrap().len(), 2);
        assert_eq!(r.latest("s").unwrap().schema, v2());
    }

    #[test]
    fn incompatible_evolution_rejected() {
        let r = SchemaRegistry::new();
        r.register("s", v1()).unwrap();
        let bad = Schema::record("Orders", vec![("rowtime", Schema::Timestamp)]);
        let err = r.register("s", bad).unwrap_err();
        assert!(
            matches!(err, SerdeError::IncompatibleSchema { ref subject, .. } if subject == "s")
        );
    }

    #[test]
    fn unknown_lookups_error() {
        let r = SchemaRegistry::new();
        assert!(matches!(r.latest("x"), Err(SerdeError::UnknownSubject(_))));
        assert!(matches!(r.by_id(99), Err(SerdeError::UnknownSchemaId(99))));
    }

    #[test]
    fn ids_are_globally_unique_across_subjects() {
        let r = SchemaRegistry::new();
        let a = r.register("s1", v1()).unwrap();
        let b = r.register("s2", v1()).unwrap();
        assert_ne!(a.id, b.id);
    }
}
