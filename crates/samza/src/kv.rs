//! Fault-tolerant task-local key-value storage.
//!
//! §2: "Each streaming task in a Samza job has managed local storage … The
//! state is modeled as a stream and Samza manages the snapshotting and
//! restoration by replaying the state stream in case of a task failure."
//!
//! The store keeps **serialized bytes**, exactly like Samza's RocksDB-backed
//! store: every `put` pays value serialization, every `get` pays
//! deserialization (through [`TypedStore`]). On top of that, a configurable
//! **storage-engine cost model** charges checksum work per access — RocksDB
//! computes WAL/block checksums and does memtable/block work on every
//! operation, and that per-access engine cost is what makes Figure 6's
//! sliding-window throughput "dominated by access to the key-value store"
//! for *both* SamzaSQL and native jobs. The model is real computation over
//! the stored bytes (FNV passes), not a timer; disable it with
//! [`KeyValueStore::set_engine_cost_passes`]`(0)`.
//!
//! Every mutation is mirrored to a changelog topic partition; restoring a
//! store means replaying that partition from the beginning (deletes are
//! tombstones: a null/empty value). Changelog writes are **buffered** and
//! flushed by the container during commit, immediately before the input
//! checkpoint is written — Samza's commit sequence (flush state, then
//! checkpoint). Flushing state first means a crash can never *lose* state
//! the checkpoint claims to have; the converse window — crash after the
//! changelog flush but before the checkpoint — leaves restored state
//! *ahead* of the checkpointed positions, so replay re-applies the
//! replayed input to the store: at-least-once state application, exactly
//! as in Samza. DESIGN.md §8 tabulates the per-boundary guarantees and
//! `tests/chaos.rs` asserts them.

use crate::error::Result;
use bytes::Bytes;
use samzasql_kafka::{AckMode, Broker, Message, Retrier};
use samzasql_serde::{BoxedSerde, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Read/write counters for a store, used to confirm KV-dominance claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreMetricsSnapshot {
    pub gets: u64,
    pub puts: u64,
    pub deletes: u64,
    pub range_scans: u64,
    pub bytes_written: u64,
    pub bytes_read: u64,
}

#[derive(Debug, Default)]
struct StoreMetrics {
    gets: AtomicU64,
    puts: AtomicU64,
    deletes: AtomicU64,
    range_scans: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
}

/// Byte-level ordered key-value store with optional changelog.
pub struct KeyValueStore {
    name: String,
    data: BTreeMap<Vec<u8>, Bytes>,
    /// Changelog destination: (broker, topic, partition).
    changelog: Option<(Broker, String, u32)>,
    /// Mutations not yet flushed to the changelog (key, value-or-tombstone).
    pending: Vec<(Vec<u8>, Bytes)>,
    /// Checksum passes per access (storage-engine cost model); 0 disables.
    engine_cost_passes: u32,
    metrics: Arc<StoreMetrics>,
    /// Retry policy for changelog flush and restore traffic.
    retrier: Retrier,
}

/// Default checksum passes, calibrated so one access over a ~100-byte value
/// costs on the order of RocksDB memtable work.
pub const DEFAULT_ENGINE_COST_PASSES: u32 = 12;

/// One FNV-1a pass over a byte slice (the checksum primitive of the engine
/// cost model). Public so benchmarks can calibrate.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl KeyValueStore {
    /// Create an ephemeral store (no changelog).
    pub fn ephemeral(name: impl Into<String>) -> Self {
        KeyValueStore {
            name: name.into(),
            data: BTreeMap::new(),
            changelog: None,
            pending: Vec::new(),
            engine_cost_passes: DEFAULT_ENGINE_COST_PASSES,
            metrics: Arc::new(StoreMetrics::default()),
            retrier: Retrier::default(),
        }
    }

    /// Create a store whose mutations are mirrored to
    /// `changelog_topic`/`partition` on `broker`.
    pub fn with_changelog(
        name: impl Into<String>,
        broker: Broker,
        changelog_topic: impl Into<String>,
        partition: u32,
    ) -> Self {
        KeyValueStore {
            name: name.into(),
            data: BTreeMap::new(),
            changelog: Some((broker, changelog_topic.into(), partition)),
            pending: Vec::new(),
            engine_cost_passes: DEFAULT_ENGINE_COST_PASSES,
            metrics: Arc::new(StoreMetrics::default()),
            retrier: Retrier::default(),
        }
    }

    /// Configure the storage-engine cost model (0 disables it).
    pub fn set_engine_cost_passes(&mut self, passes: u32) {
        self.engine_cost_passes = passes;
    }

    /// Override the retry policy for changelog flush/restore traffic, so a
    /// container can share one metrics sink across all its retriers.
    pub fn set_retrier(&mut self, retrier: Retrier) {
        self.retrier = retrier;
    }

    /// Charge the engine cost for one access. RocksDB's per-operation cost
    /// is dominated by *fixed* work — memtable skiplist traversal, WAL
    /// record framing, block handling — plus a checksum over the touched
    /// block, so the model hashes a fixed-size block per pass (value size
    /// contributes only via the real byte copies elsewhere). Folded into a
    /// black-box read so the work is not optimized away.
    #[inline]
    fn engine_cost(&self, bytes: &[u8]) {
        const BLOCK: [u8; 256] = [0xA5; 256];
        let mut acc = fnv1a(&bytes[..bytes.len().min(32)]);
        for _ in 0..self.engine_cost_passes {
            acc = acc.wrapping_add(fnv1a(&BLOCK));
        }
        std::hint::black_box(acc);
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Get the serialized value for a key.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.metrics.gets.fetch_add(1, Ordering::Relaxed);
        let v = self.data.get(key).cloned();
        if let Some(ref b) = v {
            self.metrics
                .bytes_read
                .fetch_add(b.len() as u64, Ordering::Relaxed);
            self.engine_cost(b); // block-checksum verification
        }
        v
    }

    /// Put a serialized value; the changelog entry is buffered until
    /// [`flush_changelog`](Self::flush_changelog).
    pub fn put(&mut self, key: &[u8], value: Bytes) -> Result<()> {
        self.metrics.puts.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .bytes_written
            .fetch_add((key.len() + value.len()) as u64, Ordering::Relaxed);
        if self.changelog.is_some() {
            self.pending.push((key.to_vec(), value.clone()));
        }
        self.engine_cost(&value); // WAL checksum + memtable work
        self.data.insert(key.to_vec(), value);
        Ok(())
    }

    /// Delete a key; buffers a tombstone (empty value) for the changelog.
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        self.metrics.deletes.fetch_add(1, Ordering::Relaxed);
        if self.changelog.is_some() {
            self.pending.push((key.to_vec(), Bytes::new()));
        }
        self.data.remove(key);
        Ok(())
    }

    /// Flush buffered mutations to the changelog topic. Called by the
    /// container at commit time, just before the checkpoint write, so the
    /// durable state never runs ahead of the checkpointed input positions.
    pub fn flush_changelog(&mut self) -> Result<()> {
        let Some((broker, topic, partition)) = self.changelog.clone() else {
            self.pending.clear();
            return Ok(());
        };
        if self.pending.is_empty() {
            return Ok(());
        }
        let messages: Vec<Message> = self
            .pending
            .iter()
            .map(|(key, value)| Message {
                key: Some(Bytes::from(key.clone())),
                value: value.clone(),
                timestamp: 0,
            })
            .collect();
        // One batched append under retry: the broker rejects a batch before
        // appending anything, so a retried flush never half-writes, and the
        // pending buffer is kept on failure so the next commit re-flushes.
        self.retrier
            .run(|| broker.produce_batch(&topic, partition, messages.clone(), AckMode::Leader))?;
        self.pending.clear();
        Ok(())
    }

    /// Number of unflushed changelog entries (diagnostics).
    pub fn pending_changelog(&self) -> usize {
        self.pending.len()
    }

    /// Iterate keys in `[from, to)` in order, yielding `(key, value)` pairs.
    pub fn range(&self, from: &[u8], to: &[u8]) -> Vec<(Vec<u8>, Bytes)> {
        self.metrics.range_scans.fetch_add(1, Ordering::Relaxed);
        let mut read = 0u64;
        let out: Vec<(Vec<u8>, Bytes)> = self
            .data
            .range(from.to_vec()..to.to_vec())
            .map(|(k, v)| {
                read += v.len() as u64;
                (k.clone(), v.clone())
            })
            .collect();
        self.metrics.bytes_read.fetch_add(read, Ordering::Relaxed);
        out
    }

    /// Full scan in key order.
    pub fn all(&self) -> Vec<(Vec<u8>, Bytes)> {
        self.metrics.range_scans.fetch_add(1, Ordering::Relaxed);
        self.data
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Replay the changelog partition from the beginning, rebuilding state.
    /// Used on task restart; the in-memory map is rebuilt exactly.
    pub fn restore(&mut self) -> Result<u64> {
        let Some((broker, topic, partition)) = self.changelog.clone() else {
            return Ok(0);
        };
        self.data.clear();
        let mut offset = broker.start_offset(&topic, partition)?;
        let mut applied = 0u64;
        loop {
            let batch = self
                .retrier
                .run(|| broker.fetch(&topic, partition, offset, 1024))?;
            if batch.records.is_empty() {
                break;
            }
            for rec in &batch.records {
                offset = rec.offset + 1;
                let key = rec.message.key.clone().unwrap_or_default().to_vec();
                if rec.message.value.is_empty() {
                    self.data.remove(&key);
                } else {
                    self.data.insert(key, rec.message.value.clone());
                }
                applied += 1;
            }
        }
        Ok(applied)
    }

    /// Access the store's counters.
    pub fn metrics(&self) -> StoreMetricsSnapshot {
        StoreMetricsSnapshot {
            gets: self.metrics.gets.load(Ordering::Relaxed),
            puts: self.metrics.puts.load(Ordering::Relaxed),
            deletes: self.metrics.deletes.load(Ordering::Relaxed),
            range_scans: self.metrics.range_scans.load(Ordering::Relaxed),
            bytes_written: self.metrics.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.metrics.bytes_read.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for KeyValueStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyValueStore")
            .field("name", &self.name)
            .field("len", &self.data.len())
            .field(
                "changelog",
                &self.changelog.as_ref().map(|(_, t, p)| format!("{t}-{p}")),
            )
            .finish()
    }
}

/// Typed view over a [`KeyValueStore`] that serializes keys and values
/// through configured serdes on every access — the cost model that matters.
pub struct TypedStore<'a> {
    store: &'a mut KeyValueStore,
    key_serde: BoxedSerde,
    value_serde: BoxedSerde,
}

impl<'a> TypedStore<'a> {
    pub fn new(
        store: &'a mut KeyValueStore,
        key_serde: BoxedSerde,
        value_serde: BoxedSerde,
    ) -> Self {
        TypedStore {
            store,
            key_serde,
            value_serde,
        }
    }

    /// Serialize the key, look it up, deserialize the value.
    pub fn get(&self, key: &Value) -> Result<Option<Value>> {
        let kb = self.key_serde.serialize(key)?;
        match self.store.get(&kb) {
            Some(vb) => Ok(Some(self.value_serde.deserialize(&vb)?)),
            None => Ok(None),
        }
    }

    /// Serialize key and value, store the bytes.
    pub fn put(&mut self, key: &Value, value: &Value) -> Result<()> {
        let kb = self.key_serde.serialize(key)?;
        let vb = self.value_serde.serialize(value)?;
        self.store.put(&kb, vb)
    }

    /// Serialize the key, delete the entry.
    pub fn delete(&mut self, key: &Value) -> Result<()> {
        let kb = self.key_serde.serialize(key)?;
        self.store.delete(&kb)
    }

    /// Scan a key range (serialized-key order), deserializing each value.
    pub fn range(&self, from: &Value, to: &Value) -> Result<Vec<(Bytes, Value)>> {
        let fb = self.key_serde.serialize(from)?;
        let tb = self.key_serde.serialize(to)?;
        self.store
            .range(&fb, &tb)
            .into_iter()
            .map(|(k, v)| Ok((Bytes::from(k), self.value_serde.deserialize(&v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samzasql_kafka::TopicConfig;
    use samzasql_serde::serde_api::build_serde;
    use samzasql_serde::{Schema, SerdeFormat};

    #[test]
    fn basic_crud_and_order() {
        let mut s = KeyValueStore::ephemeral("s");
        s.put(b"b", Bytes::from_static(b"2")).unwrap();
        s.put(b"a", Bytes::from_static(b"1")).unwrap();
        s.put(b"c", Bytes::from_static(b"3")).unwrap();
        assert_eq!(s.get(b"a").unwrap().as_ref(), b"1");
        assert_eq!(s.len(), 3);
        s.delete(b"b").unwrap();
        assert!(s.get(b"b").is_none());
        let keys: Vec<Vec<u8>> = s.all().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![b"a".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn range_is_half_open() {
        let mut s = KeyValueStore::ephemeral("s");
        for k in ["a", "b", "c", "d"] {
            s.put(k.as_bytes(), Bytes::from_static(b"x")).unwrap();
        }
        let got: Vec<Vec<u8>> = s.range(b"b", b"d").into_iter().map(|(k, _)| k).collect();
        assert_eq!(got, vec![b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn metrics_count_accesses() {
        let mut s = KeyValueStore::ephemeral("s");
        s.put(b"k", Bytes::from_static(b"vvvv")).unwrap();
        s.get(b"k");
        s.get(b"missing");
        s.range(b"a", b"z");
        s.delete(b"k").unwrap();
        let m = s.metrics();
        assert_eq!((m.puts, m.gets, m.range_scans, m.deletes), (1, 2, 1, 1));
        assert_eq!(m.bytes_written, 5);
        assert!(m.bytes_read >= 4);
    }

    #[test]
    fn changelog_restore_rebuilds_state_including_deletes() {
        let broker = Broker::new();
        broker
            .create_topic("clog", TopicConfig::with_partitions(2))
            .unwrap();
        let mut s = KeyValueStore::with_changelog("s", broker.clone(), "clog", 1);
        s.put(b"a", Bytes::from_static(b"1")).unwrap();
        s.put(b"b", Bytes::from_static(b"2")).unwrap();
        s.put(b"a", Bytes::from_static(b"1b")).unwrap();
        s.delete(b"b").unwrap();
        assert_eq!(s.pending_changelog(), 4, "writes buffered until flush");
        s.flush_changelog().unwrap();
        assert_eq!(s.pending_changelog(), 0);

        // Simulate a fresh task on another node: new store, same changelog.
        let mut restored = KeyValueStore::with_changelog("s", broker.clone(), "clog", 1);
        let applied = restored.restore().unwrap();
        assert_eq!(applied, 4);
        assert_eq!(restored.get(b"a").unwrap().as_ref(), b"1b");
        assert!(restored.get(b"b").is_none());
        assert_eq!(restored.len(), 1);
        // Partition 0 untouched.
        assert_eq!(broker.end_offset("clog", 0).unwrap(), 0);
    }

    #[test]
    fn failed_flush_keeps_pending_for_next_commit() {
        use samzasql_kafka::{FaultInjector, FaultKind, FaultOp, FaultSchedule, FaultSpec};

        let broker = Broker::new();
        broker
            .create_topic("clog", TopicConfig::with_partitions(1))
            .unwrap();
        let mut s = KeyValueStore::with_changelog("s", broker.clone(), "clog", 0);
        s.set_retrier(Retrier::disabled());
        s.put(b"a", Bytes::from_static(b"1")).unwrap();
        // Permanently failing broker: flush errors, buffer survives.
        broker.set_fault_injector(Some(FaultInjector::with_specs(
            1,
            vec![
                FaultSpec::any(FaultKind::Unavailable, FaultSchedule::Always)
                    .on_op(FaultOp::Produce),
            ],
        )));
        assert!(s.flush_changelog().is_err());
        assert_eq!(
            s.pending_changelog(),
            1,
            "failed flush must not drop writes"
        );
        assert_eq!(broker.end_offset("clog", 0).unwrap(), 0);
        // Fault clears; the next flush lands exactly one copy.
        broker.set_fault_injector(None);
        s.flush_changelog().unwrap();
        assert_eq!(s.pending_changelog(), 0);
        assert_eq!(broker.end_offset("clog", 0).unwrap(), 1);
    }

    #[test]
    fn typed_store_roundtrips_through_serdes() {
        let schema = Schema::record("R", vec![("id", Schema::Int), ("name", Schema::String)]);
        let mut s = KeyValueStore::ephemeral("s");
        let mut t = TypedStore::new(
            &mut s,
            build_serde(SerdeFormat::Object, Schema::Int),
            build_serde(SerdeFormat::Avro, schema),
        );
        let key = Value::Int(7);
        let val = Value::record(vec![
            ("id", Value::Int(7)),
            ("name", Value::String("x".into())),
        ]);
        t.put(&key, &val).unwrap();
        assert_eq!(t.get(&key).unwrap(), Some(val));
        assert_eq!(t.get(&Value::Int(8)).unwrap(), None);
        t.delete(&key).unwrap();
        assert_eq!(t.get(&key).unwrap(), None);
    }

    #[test]
    fn ephemeral_restore_is_noop() {
        let mut s = KeyValueStore::ephemeral("s");
        s.put(b"k", Bytes::from_static(b"v")).unwrap();
        assert_eq!(s.restore().unwrap(), 0);
        // Ephemeral restore clears nothing (no changelog to rebuild from).
        assert_eq!(s.get(b"k").unwrap().as_ref(), b"v");
    }
}
