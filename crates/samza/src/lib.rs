//! # samzasql-samza
//!
//! A Samza-like distributed stream-processing runtime, built as the execution
//! substrate for SamzaSQL. It reproduces the Samza features the paper's §2
//! singles out:
//!
//! * **Fault-tolerant local state** — each task owns key-value stores whose
//!   writes are mirrored to a changelog stream; on failure the store is
//!   rebuilt by replaying the changelog ([`kv`]).
//! * **Durability** — input positions are checkpointed to a checkpoint
//!   stream; after a failure the task resumes from the last checkpoint and
//!   the broker replays everything after it ([`checkpoint`]).
//! * **Masterless design** — each job has its own application master inside
//!   the simulated cluster; failures in one job never touch another
//!   ([`cluster`]).
//! * **Bootstrap streams** — inputs flagged `bootstrap` are fully drained
//!   (to their end offset captured at start) before any other input is
//!   delivered; SamzaSQL builds stream-to-relation joins on this
//!   ([`container`]).
//!
//! The deployment model follows Samza: a **job** is a set of **tasks** (one
//! per input partition, Samza's default partition grouping) packed into
//! **containers**; containers are threads placed on simulated cluster
//! **nodes** by the job's application master. A ZooKeeper-like coordination
//! service (`samzasql-coord`) carries planner metadata between the SamzaSQL
//! shell and task initialization per the paper's two-step planning, tracks
//! container liveness through ephemeral znodes, and drives failure recovery
//! through watches ([`cluster`]).

pub mod chaos;
pub mod checkpoint;
pub mod cluster;
pub mod config;
pub mod container;
pub mod coordinator;
pub mod error;
pub mod kv;
pub mod metrics;
pub mod system;
pub mod task;

pub use chaos::{apply_fault, ChaosEvent, ChaosFault, ChaosScenario, ScenarioOptions};
pub use checkpoint::{Checkpoint, CheckpointManager};
pub use cluster::{ClusterSim, JobHandle, NodeConfig};
pub use config::{InputStreamConfig, JobConfig, OutputStreamConfig, StoreConfig};
pub use container::{CommitPoint, Container, ContainerMetricsSnapshot};
pub use coordinator::{ContainerModel, JobModel, TaskModel};
pub use error::{Result, SamzaError};
pub use kv::{KeyValueStore, StoreMetricsSnapshot, TypedStore};
pub use metrics::TaskMetrics;
pub use system::{IncomingMessageEnvelope, MessageCollector, OutgoingMessageEnvelope};
pub use task::{StreamTask, TaskContext, TaskCoordinator, TaskFactory};
