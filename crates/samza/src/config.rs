//! Job configuration — the runtime analogue of Samza's property file.
//!
//! §2: "Samza's deployment unit consists of a job package and a property
//! based configuration file. The configuration file specifies the streaming
//! task implementation, input and output configurations, Serdes … local
//! storage configurations." SamzaSQL generates this configuration from the
//! physical plan at the shell and ships plan metadata through the metadata
//! store; the `properties` map carries those opaque entries.

use crate::error::{Result, SamzaError};
use samzasql_serde::SerdeFormat;
use std::collections::BTreeMap;

/// One input stream of a job.
#[derive(Debug, Clone)]
pub struct InputStreamConfig {
    pub topic: String,
    /// Message format of the stream.
    pub format: SerdeFormat,
    /// Schema-registry subject carrying the stream's schema.
    pub schema_subject: String,
    /// Bootstrap streams are fully drained before other inputs deliver.
    pub bootstrap: bool,
}

impl InputStreamConfig {
    pub fn avro(topic: impl Into<String>) -> Self {
        let topic = topic.into();
        InputStreamConfig {
            schema_subject: format!("{topic}-value"),
            topic,
            format: SerdeFormat::Avro,
            bootstrap: false,
        }
    }

    /// Mark this input as a bootstrap stream.
    pub fn bootstrap(mut self) -> Self {
        self.bootstrap = true;
        self
    }
}

/// One output stream of a job.
#[derive(Debug, Clone)]
pub struct OutputStreamConfig {
    pub topic: String,
    pub format: SerdeFormat,
    pub schema_subject: String,
}

impl OutputStreamConfig {
    pub fn avro(topic: impl Into<String>) -> Self {
        let topic = topic.into();
        OutputStreamConfig {
            schema_subject: format!("{topic}-value"),
            topic,
            format: SerdeFormat::Avro,
        }
    }
}

/// Configuration of one task-local key-value store.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    pub name: String,
    /// Serde applied to keys at the storage boundary.
    pub key_format: SerdeFormat,
    /// Serde applied to values at the storage boundary. SamzaSQL's generated
    /// jobs use [`SerdeFormat::Object`] here (the Kryo analogue, §5.1);
    /// native jobs use Avro.
    pub value_format: SerdeFormat,
    /// Changelog topic for fault tolerance; `None` disables restore.
    pub changelog_topic: Option<String>,
}

impl StoreConfig {
    /// A store with changelog named `{job}-{store}-changelog` by convention.
    pub fn with_changelog(name: impl Into<String>, job: &str, value_format: SerdeFormat) -> Self {
        let name = name.into();
        StoreConfig {
            changelog_topic: Some(format!("{job}-{name}-changelog")),
            key_format: SerdeFormat::Object,
            value_format,
            name,
        }
    }

    /// An in-memory store without fault tolerance.
    pub fn ephemeral(name: impl Into<String>, value_format: SerdeFormat) -> Self {
        StoreConfig {
            name: name.into(),
            key_format: SerdeFormat::Object,
            value_format,
            changelog_topic: None,
        }
    }
}

/// Full job configuration.
#[derive(Debug, Clone)]
pub struct JobConfig {
    pub name: String,
    pub inputs: Vec<InputStreamConfig>,
    pub outputs: Vec<OutputStreamConfig>,
    pub stores: Vec<StoreConfig>,
    /// Number of containers the job's tasks are packed into.
    pub container_count: u32,
    /// Commit (checkpoint) every N processed messages per task.
    pub commit_interval_messages: u64,
    /// Invoke `StreamTask::window` every N processed messages per task
    /// (0 = never). A message-count trigger keeps simulated runs
    /// deterministic where wall-clock timers would not be.
    pub window_interval_messages: u64,
    /// Opaque properties (SamzaSQL plan metadata references, etc.).
    pub properties: BTreeMap<String, String>,
}

impl JobConfig {
    pub fn new(name: impl Into<String>) -> Self {
        JobConfig {
            name: name.into(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            stores: Vec::new(),
            container_count: 1,
            commit_interval_messages: 1024,
            window_interval_messages: 0,
            properties: BTreeMap::new(),
        }
    }

    pub fn input(mut self, input: InputStreamConfig) -> Self {
        self.inputs.push(input);
        self
    }

    pub fn output(mut self, output: OutputStreamConfig) -> Self {
        self.outputs.push(output);
        self
    }

    pub fn store(mut self, store: StoreConfig) -> Self {
        self.stores.push(store);
        self
    }

    pub fn containers(mut self, count: u32) -> Self {
        self.container_count = count;
        self
    }

    pub fn property(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.properties.insert(key.into(), value.into());
        self
    }

    /// Validate structural invariants before submission.
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(SamzaError::Config("job name must not be empty".into()));
        }
        if self.inputs.is_empty() {
            return Err(SamzaError::Config(format!(
                "job {} has no inputs",
                self.name
            )));
        }
        if self.container_count == 0 {
            return Err(SamzaError::Config(format!(
                "job {} must have at least one container",
                self.name
            )));
        }
        if self.inputs.iter().all(|i| i.bootstrap) {
            return Err(SamzaError::Config(format!(
                "job {}: all inputs are bootstrap streams; nothing to process after bootstrap",
                self.name
            )));
        }
        let mut store_names: Vec<&str> = self.stores.iter().map(|s| s.name.as_str()).collect();
        store_names.sort_unstable();
        store_names.dedup();
        if store_names.len() != self.stores.len() {
            return Err(SamzaError::Config(format!(
                "job {}: duplicate store names",
                self.name
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> JobConfig {
        JobConfig::new("j").input(InputStreamConfig::avro("orders"))
    }

    #[test]
    fn valid_config_passes() {
        assert!(base().validate().is_ok());
    }

    #[test]
    fn empty_name_and_inputs_rejected() {
        assert!(JobConfig::new("")
            .input(InputStreamConfig::avro("t"))
            .validate()
            .is_err());
        assert!(JobConfig::new("j").validate().is_err());
    }

    #[test]
    fn zero_containers_rejected() {
        assert!(base().containers(0).validate().is_err());
    }

    #[test]
    fn all_bootstrap_inputs_rejected() {
        let cfg = JobConfig::new("j").input(InputStreamConfig::avro("rel").bootstrap());
        assert!(cfg.validate().is_err());
        // A bootstrap plus a regular input is the valid join shape.
        let cfg = cfg.input(InputStreamConfig::avro("orders"));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn duplicate_stores_rejected() {
        let cfg = base()
            .store(StoreConfig::ephemeral("s", SerdeFormat::Avro))
            .store(StoreConfig::ephemeral("s", SerdeFormat::Object));
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn changelog_naming_convention() {
        let s = StoreConfig::with_changelog("win", "myjob", SerdeFormat::Object);
        assert_eq!(s.changelog_topic.as_deref(), Some("myjob-win-changelog"));
    }
}
