//! The container: runs a set of task instances against the broker.
//!
//! One container = one thread in the cluster simulation. The container owns
//! the per-task consumer positions, enforces bootstrap-stream priority,
//! flushes collectors to the producer, triggers window calls, and commits
//! checkpoints. Killing a container loses all its in-memory state — exactly
//! the failure the changelog/checkpoint machinery recovers from.

use crate::checkpoint::{Checkpoint, CheckpointManager};
use crate::config::JobConfig;
use crate::coordinator::ContainerModel;
use crate::error::Result;
use crate::kv::KeyValueStore;
use crate::system::{IncomingMessageEnvelope, MessageCollector, OutgoingMessageEnvelope};
use crate::task::{StreamTask, TaskContext, TaskCoordinator, TaskFactory};
use samzasql_kafka::partitioner::hash_bytes;
use samzasql_kafka::{
    AckMode, Broker, KafkaError, Message, Retrier, RetryMetrics, TopicConfig, TopicPartition,
};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};

/// How many records a task fetches from one partition per step.
const FETCH_BATCH: usize = 256;

struct TaskInstance {
    ctx: TaskContext,
    task: Box<dyn StreamTask>,
    /// Next offset to fetch per input partition.
    positions: BTreeMap<TopicPartition, u64>,
    /// Bootstrap partitions not yet drained to their captured target.
    bootstrap_pending: BTreeMap<TopicPartition, u64>,
    /// Rotation cursor across input partitions.
    rotation: usize,
    processed_since_commit: u64,
    processed_since_window: u64,
    shutdown: bool,
    /// Reusable buffer for draining the collector on flush (capacity
    /// persists across flushes).
    out_scratch: Vec<OutgoingMessageEnvelope>,
}

/// Point-in-time view of a container's progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContainerMetricsSnapshot {
    pub messages_processed: u64,
    pub messages_sent: u64,
    pub commits: u64,
    pub window_calls: u64,
    /// Broker calls retried across all of the container's clients
    /// (input fetch, output flush, changelog flush/restore, checkpoints).
    pub retries: u64,
    /// Broker calls abandoned after exhausting the retry policy.
    pub giveups: u64,
}

/// Boundaries inside the commit sequence where a crash can be injected.
///
/// The sequence is: flush pending output → flush state changelogs → write
/// the input checkpoint. Crashing at each boundary and restarting must
/// recover to output equivalent (after at-least-once dedup) to a fault-free
/// run — the ordering guarantees that a checkpoint never claims input whose
/// state/output effects were not yet durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitPoint {
    /// Before any of the commit's flushes: everything since the last commit
    /// is lost and replayed.
    BeforeOutputFlush,
    /// Output is durable, state and checkpoint are not: replay duplicates
    /// output (at-least-once) but state converges.
    AfterOutputFlush,
    /// Output and state are durable, the checkpoint is not: replay re-applies
    /// input against restored state.
    AfterChangelogFlush,
    /// The full commit landed; the crash loses only post-commit progress.
    AfterCheckpoint,
}

/// One-shot injected-crash error surfaced as a task failure so the cluster's
/// crash-recovery path (respawn + restore) takes over.
fn crash_if_armed(armed: &Cell<Option<CommitPoint>>, point: CommitPoint, task: &str) -> Result<()> {
    if armed.get() == Some(point) {
        armed.set(None);
        return Err(crate::error::SamzaError::Task {
            task: task.to_string(),
            message: format!("injected crash at {point:?}"),
        });
    }
    Ok(())
}

/// A running (or runnable) container.
pub struct Container {
    broker: Broker,
    config: JobConfig,
    model: ContainerModel,
    checkpoints: CheckpointManager,
    tasks: Vec<TaskInstance>,
    initialized: bool,
    /// Shared sink for every retrier the container hands out; surfaced via
    /// [`metrics`](Self::metrics).
    retry_metrics: RetryMetrics,
    /// Retrier cloned into the fetch/flush paths (same policy, same sink).
    retrier: Retrier,
    /// Armed commit-boundary crash (test hook), consumed on first trigger.
    commit_crash: Cell<Option<CommitPoint>>,
}

impl Container {
    /// Build a container for `model`. Tasks are created via the factory but
    /// not yet initialized; call [`init`](Self::init) (or any run method,
    /// which initializes lazily).
    pub fn new(
        broker: Broker,
        config: JobConfig,
        model: ContainerModel,
        factory: &dyn TaskFactory,
    ) -> Result<Self> {
        let retry_metrics = RetryMetrics::default();
        let retrier = Retrier::default().with_metrics(retry_metrics.clone());
        let checkpoints =
            CheckpointManager::new(broker.clone(), &config.name)?.with_retrier(retrier.clone());
        let mut tasks = Vec::with_capacity(model.tasks.len());
        for tm in &model.tasks {
            let ctx = TaskContext::new(
                tm.task_name.clone(),
                tm.partition,
                tm.input_partitions.clone(),
            );
            tasks.push(TaskInstance {
                task: factory.create(tm.partition),
                ctx,
                positions: BTreeMap::new(),
                bootstrap_pending: BTreeMap::new(),
                rotation: 0,
                processed_since_commit: 0,
                processed_since_window: 0,
                shutdown: false,
                out_scratch: Vec::new(),
            });
        }
        Ok(Container {
            broker,
            config,
            model,
            checkpoints,
            tasks,
            initialized: false,
            retry_metrics,
            retrier,
            commit_crash: Cell::new(None),
        })
    }

    /// Arm a one-shot crash at `point` in the next commit sequence. The
    /// injected failure surfaces as a task error, which the cluster treats
    /// exactly like a container crash — the recovery path under test.
    pub fn arm_commit_crash(&self, point: CommitPoint) {
        self.commit_crash.set(Some(point));
    }

    /// Initialize every task: create + restore stores, position inputs from
    /// checkpoints, capture bootstrap targets, then call `StreamTask::init`.
    pub fn init(&mut self) -> Result<()> {
        if self.initialized {
            return Ok(());
        }
        // Ensure changelog topics exist with one partition per task
        // (changelog partition == task partition, Samza's convention). The
        // job's task count is the max partition count across its inputs —
        // computed from input metadata, NOT from this container's task
        // subset, so whichever container initializes first creates the topic
        // at full width.
        let mut job_partitions = 1u32;
        for input in &self.config.inputs {
            job_partitions = job_partitions.max(self.broker.partition_count(&input.topic)?);
        }
        for store_cfg in &self.config.stores {
            if let Some(clog) = &store_cfg.changelog_topic {
                self.broker
                    .ensure_topic(clog, TopicConfig::with_partitions(job_partitions))?;
            }
        }
        let bootstrap_topics: BTreeSet<&str> = self
            .config
            .inputs
            .iter()
            .filter(|i| i.bootstrap)
            .map(|i| i.topic.as_str())
            .collect();

        for ti in &mut self.tasks {
            // Stores: create, then restore from changelog.
            for store_cfg in &self.config.stores {
                let mut store = match &store_cfg.changelog_topic {
                    Some(clog) => KeyValueStore::with_changelog(
                        store_cfg.name.clone(),
                        self.broker.clone(),
                        clog.clone(),
                        ti.ctx.partition,
                    ),
                    None => KeyValueStore::ephemeral(store_cfg.name.clone()),
                };
                store.set_retrier(self.retrier.clone());
                store.restore()?;
                ti.ctx.register_store(store);
            }
            // Positions: checkpoint for regular inputs; log start for
            // bootstrap inputs (they are always re-read in full so the task
            // can rebuild derived caches).
            let checkpoint = self.checkpoints.read_last(&ti.ctx.task_name)?;
            for tp in &ti.ctx.input_partitions {
                let is_bootstrap = bootstrap_topics.contains(tp.topic.as_str());
                let start = self.broker.start_offset(&tp.topic, tp.partition)?;
                let pos = if is_bootstrap {
                    start
                } else {
                    checkpoint
                        .as_ref()
                        .and_then(|c| c.offsets.get(tp).copied())
                        .unwrap_or(start)
                        .max(start)
                };
                ti.positions.insert(tp.clone(), pos);
                if is_bootstrap {
                    let target = self.broker.end_offset(&tp.topic, tp.partition)?;
                    if target > pos {
                        ti.bootstrap_pending.insert(tp.clone(), target);
                    }
                }
            }
            ti.task.init(&mut ti.ctx)?;
        }
        self.initialized = true;
        Ok(())
    }

    /// Run one scheduling step: each task polls a batch (bootstrap inputs
    /// first) and processes it. Returns the number of messages processed
    /// across all tasks.
    pub fn step(&mut self) -> Result<u64> {
        self.init()?;
        let mut processed = 0u64;
        for idx in 0..self.tasks.len() {
            processed += self.step_task(idx)?;
        }
        Ok(processed)
    }

    fn step_task(&mut self, idx: usize) -> Result<u64> {
        let commit_interval = self.config.commit_interval_messages;
        let window_interval = self.config.window_interval_messages;
        // Cheap Arc-backed clones so the task borrow below doesn't conflict.
        let broker = self.broker.clone();
        let checkpoints = self.checkpoints.clone();
        let retrier = self.retrier.clone();
        let commit_crash = &self.commit_crash;
        let ti = &mut self.tasks[idx];
        if ti.shutdown {
            return Ok(0);
        }

        // Choose which partitions may deliver: pending bootstrap partitions
        // exclusively, until all are drained (§2, Bootstrap Streams).
        let candidates: Vec<TopicPartition> = if ti.bootstrap_pending.is_empty() {
            ti.ctx.input_partitions.clone()
        } else {
            ti.bootstrap_pending.keys().cloned().collect()
        };
        if candidates.is_empty() {
            return Ok(0);
        }

        // Fetch one contiguous slice per partition under a shared budget,
        // so each slice can be handed to the task whole.
        let mut slices: Vec<Vec<IncomingMessageEnvelope>> = Vec::new();
        let mut fetched_total = 0usize;
        let n = candidates.len();
        for i in 0..n {
            if fetched_total >= FETCH_BATCH {
                break;
            }
            let tp = &candidates[(ti.rotation + i) % n];
            let pos = *ti.positions.get(tp).expect("assigned partition");
            // Transient broker faults are ridden out here; OffsetOutOfRange
            // is non-retriable, so it passes through the retrier verbatim
            // and the position-reset path still works.
            let attempt = retrier
                .run(|| broker.fetch(&tp.topic, tp.partition, pos, FETCH_BATCH - fetched_total));
            let fetched = match attempt {
                Ok(f) => f,
                Err(KafkaError::OffsetOutOfRange { start, .. }) => {
                    ti.positions.insert(tp.clone(), start);
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            if fetched.records.is_empty() {
                continue;
            }
            let slice: Vec<IncomingMessageEnvelope> = fetched
                .records
                .into_iter()
                .map(|rec| IncomingMessageEnvelope {
                    tp: tp.clone(),
                    offset: rec.offset,
                    timestamp: rec.timestamp,
                    key: rec.message.key,
                    payload: rec.message.value,
                })
                .collect();
            fetched_total += slice.len();
            slices.push(slice);
        }
        ti.rotation = (ti.rotation + 1) % n;

        let mut collector = MessageCollector::new();
        let mut coordinator = TaskCoordinator::default();
        let mut processed = 0u64;
        let task_partition = ti.ctx.partition;
        for slice in &slices {
            let mut i = 0usize;
            while i < slice.len() {
                // Hand the task as much of the slice as fits before the next
                // window/commit boundary, so batching never changes *when*
                // those fire relative to the message stream.
                let mut take = slice.len() - i;
                if window_interval > 0 {
                    take = take.min((window_interval - ti.processed_since_window) as usize);
                }
                if commit_interval > 0 {
                    take = take.min((commit_interval - ti.processed_since_commit) as usize);
                }
                let consumed = ti.task.process_batch(
                    &slice[i..i + take],
                    &mut ti.ctx,
                    &mut collector,
                    &mut coordinator,
                )?;
                if consumed == 0 {
                    return Err(crate::error::SamzaError::Task {
                        task: ti.ctx.task_name.clone(),
                        message: "process_batch consumed no envelopes".into(),
                    });
                }
                let consumed = consumed.min(take);
                // Positions advance as messages are *processed*, so a
                // mid-batch checkpoint never claims unprocessed input.
                let last = &slice[i + consumed - 1];
                ti.positions.insert(last.tp.clone(), last.offset + 1);
                processed += consumed as u64;
                ti.processed_since_commit += consumed as u64;
                ti.processed_since_window += consumed as u64;
                ti.ctx.metrics.record_processed(consumed as u64);
                if window_interval > 0 && ti.processed_since_window >= window_interval {
                    ti.processed_since_window = 0;
                    ti.task
                        .window(&mut ti.ctx, &mut collector, &mut coordinator)?;
                    ti.ctx.metrics.record_window();
                }
                // Commit when the interval elapses or the task asked for it:
                // flush pending output first, then checkpoint positions.
                if coordinator.take_commit()
                    || (commit_interval > 0 && ti.processed_since_commit >= commit_interval)
                {
                    ti.processed_since_commit = 0;
                    // Samza's commit sequence: flush pending output, flush
                    // state changelogs, then checkpoint input positions.
                    // Durability strictly leads the checkpoint, so a crash at
                    // any boundary replays input rather than losing effects.
                    crash_if_armed(
                        commit_crash,
                        CommitPoint::BeforeOutputFlush,
                        &ti.ctx.task_name,
                    )?;
                    Self::flush_outputs(
                        &broker,
                        &retrier,
                        &mut collector,
                        &mut ti.out_scratch,
                        &ti.ctx,
                        task_partition,
                    )?;
                    crash_if_armed(
                        commit_crash,
                        CommitPoint::AfterOutputFlush,
                        &ti.ctx.task_name,
                    )?;
                    ti.ctx.flush_changelogs()?;
                    crash_if_armed(
                        commit_crash,
                        CommitPoint::AfterChangelogFlush,
                        &ti.ctx.task_name,
                    )?;
                    let cp = Checkpoint {
                        offsets: ti.positions.clone(),
                    };
                    checkpoints.write(&ti.ctx.task_name, &cp)?;
                    ti.ctx.metrics.record_commit();
                    crash_if_armed(
                        commit_crash,
                        CommitPoint::AfterCheckpoint,
                        &ti.ctx.task_name,
                    )?;
                }
                i += consumed;
            }
        }

        // Flush whatever remains buffered after the batch.
        Self::flush_outputs(
            &broker,
            &retrier,
            &mut collector,
            &mut ti.out_scratch,
            &ti.ctx,
            task_partition,
        )?;

        // Bootstrap bookkeeping: a pending partition is done once its
        // position reaches the end offset captured at init.
        ti.bootstrap_pending
            .retain(|tp, target| ti.positions.get(tp).is_none_or(|pos| pos < target));
        if coordinator.shutdown_requested() {
            ti.shutdown = true;
        }
        Ok(processed)
    }

    /// Send everything the collector buffered, routing by explicit partition,
    /// key hash, or (keyless) the task's own partition — which preserves
    /// input partitioning on derived streams.
    ///
    /// Envelopes are grouped by destination so every (topic, partition) run
    /// is appended through [`Broker::produce_batch`] under one log-lock
    /// acquisition. The stable sort preserves send order within each
    /// partition, which is all the log guarantees anyway.
    fn flush_outputs(
        broker: &Broker,
        retrier: &Retrier,
        collector: &mut MessageCollector,
        scratch: &mut Vec<OutgoingMessageEnvelope>,
        ctx: &TaskContext,
        task_partition: u32,
    ) -> Result<()> {
        collector.drain_into(scratch);
        ctx.metrics.record_sent(scratch.len() as u64);
        if scratch.is_empty() {
            return Ok(());
        }
        for env in scratch.iter_mut() {
            if env.partition.is_none() {
                let count = broker.partition_count(&env.topic)?;
                env.partition = Some(match &env.key {
                    Some(k) => hash_bytes(k) % count,
                    None => task_partition % count,
                });
            }
        }
        scratch
            .sort_by(|a, b| (a.topic.as_str(), a.partition).cmp(&(b.topic.as_str(), b.partition)));
        let mut i = 0;
        while i < scratch.len() {
            let topic = scratch[i].topic.clone();
            let partition = scratch[i].partition.expect("resolved above");
            let mut run: Vec<Message> = Vec::new();
            let mut j = i;
            while j < scratch.len()
                && scratch[j].topic == topic
                && scratch[j].partition == Some(partition)
            {
                let env = &mut scratch[j];
                run.push(Message {
                    key: env.key.take(),
                    value: std::mem::take(&mut env.payload),
                    timestamp: env.timestamp,
                });
                j += 1;
            }
            // Message payloads are refcounted, so the per-attempt clone the
            // retrier needs is cheap. The broker rejects a faulted batch
            // before appending anything, so retries never duplicate records.
            retrier
                .run(|| broker.produce_batch(&topic, partition, run.clone(), AckMode::Leader))?;
            i = j;
        }
        scratch.clear();
        Ok(())
    }

    /// Run steps until every task's inputs are fully drained (no lag), then
    /// commit all tasks. Intended for finite test/bench workloads.
    pub fn run_until_caught_up(&mut self) -> Result<u64> {
        self.init()?;
        let mut total = 0u64;
        loop {
            let processed = self.step()?;
            total += processed;
            if self.tasks.iter().all(|t| t.shutdown) {
                break;
            }
            if processed == 0 && self.total_lag()? == 0 {
                break;
            }
        }
        self.commit_all()?;
        Ok(total)
    }

    /// Invoke `StreamTask::window` on every task once and flush the
    /// resulting output. Used by bounded (historical) SamzaSQL queries to
    /// trigger end-of-input flushing after the inputs are drained.
    pub fn window_all(&mut self) -> Result<()> {
        self.init()?;
        let broker = self.broker.clone();
        let retrier = self.retrier.clone();
        for ti in &mut self.tasks {
            let mut collector = MessageCollector::new();
            let mut coordinator = TaskCoordinator::default();
            ti.task
                .window(&mut ti.ctx, &mut collector, &mut coordinator)?;
            ti.ctx.metrics.record_window();
            let task_partition = ti.ctx.partition;
            Self::flush_outputs(
                &broker,
                &retrier,
                &mut collector,
                &mut ti.out_scratch,
                &ti.ctx,
                task_partition,
            )?;
        }
        Ok(())
    }

    /// Force a checkpoint of every task now (state changelogs flushed
    /// first, like the periodic commit).
    pub fn commit_all(&mut self) -> Result<()> {
        let commit_crash = &self.commit_crash;
        for ti in &mut self.tasks {
            ti.ctx.flush_changelogs()?;
            crash_if_armed(
                commit_crash,
                CommitPoint::AfterChangelogFlush,
                &ti.ctx.task_name,
            )?;
            let cp = Checkpoint {
                offsets: ti.positions.clone(),
            };
            self.checkpoints.write(&ti.ctx.task_name, &cp)?;
            ti.ctx.metrics.record_commit();
            crash_if_armed(
                commit_crash,
                CommitPoint::AfterCheckpoint,
                &ti.ctx.task_name,
            )?;
        }
        Ok(())
    }

    /// Unprocessed records across all tasks and inputs.
    pub fn total_lag(&self) -> Result<u64> {
        let mut lag = 0u64;
        for ti in &self.tasks {
            for (tp, pos) in &ti.positions {
                lag += self
                    .broker
                    .end_offset(&tp.topic, tp.partition)?
                    .saturating_sub(*pos);
            }
        }
        Ok(lag)
    }

    /// Publish the container's live task and retry counters into a shared
    /// metrics registry. Task series go under `samza.task.*` labeled
    /// `job`/`container`/`task`; the shared retry sink under `kafka.retry.*`
    /// labeled `job`/`container`. Respawned incarnations re-register and
    /// take over their series (latest registration wins).
    pub fn bind_obs(&self, registry: &samzasql_obs::MetricsRegistry) {
        let job = self.config.name.as_str();
        let container = self.model.container_id.to_string();
        for ti in &self.tasks {
            let task = ti.ctx.partition.to_string();
            ti.ctx.metrics.register_into(
                registry,
                &[
                    ("job", job),
                    ("container", container.as_str()),
                    ("task", task.as_str()),
                ],
            );
        }
        self.retry_metrics
            .register_into(registry, &[("job", job), ("container", container.as_str())]);
    }

    /// Aggregate metrics across the container's tasks.
    pub fn metrics(&self) -> ContainerMetricsSnapshot {
        let mut snap = ContainerMetricsSnapshot::default();
        for ti in &self.tasks {
            snap.messages_processed += ti.ctx.metrics.messages_processed();
            snap.messages_sent += ti.ctx.metrics.messages_sent();
            snap.commits += ti.ctx.metrics.commits();
            snap.window_calls += ti.ctx.metrics.window_calls();
        }
        snap.retries = self.retry_metrics.retries();
        snap.giveups = self.retry_metrics.giveups();
        snap
    }

    /// Number of tasks whose bootstrap phase is still pending.
    pub fn tasks_bootstrapping(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| !t.bootstrap_pending.is_empty())
            .count()
    }

    /// The container id within the job.
    pub fn container_id(&self) -> u32 {
        self.model.container_id
    }

    /// Access a task's context by partition (test/diagnostic hook).
    pub fn task_context(&self, partition: u32) -> Option<&TaskContext> {
        self.tasks
            .iter()
            .find(|t| t.ctx.partition == partition)
            .map(|t| &t.ctx)
    }
}

impl std::fmt::Debug for Container {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Container")
            .field("job", &self.config.name)
            .field("id", &self.model.container_id)
            .field("tasks", &self.tasks.len())
            .finish()
    }
}
