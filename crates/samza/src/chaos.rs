//! Seeded chaos scenarios: composable fault schedules over a running job.
//!
//! A [`ChaosScenario`] is a pure function of its seed — the same seed always
//! yields the same fault kinds, targets, parameters, and injection points —
//! so a failing chaos run is reproducible by printing one number. Scenarios
//! compose every failure mode the stack recovers from:
//!
//! * container kill + restart (state restore from changelog, resume from
//!   checkpoint),
//! * coordination-session expiry and dropped heartbeats (the AM's liveness
//!   watch reschedules the container),
//! * broker leader failover on a replicated input (log truncation to the
//!   committed offset, epoch bump, producers/consumers resume via retries),
//! * transient broker errors (ridden out by the retry layer),
//! * I/O throttling (the §5.1 burst-credit collapse).
//!
//! The driver loop that pumps a scenario against a cluster lives in the
//! chaos integration tests; this module owns generation and application so
//! tests, benchmarks, and the CI suite share one scenario vocabulary.

use crate::cluster::{ClusterSim, CONTAINER_SESSION_TIMEOUT_MS};
use crate::error::Result;
use samzasql_kafka::{splitmix64, FaultInjector, FaultKind, FaultSchedule, FaultSpec, IoThrottle};
use std::sync::Arc;

/// One injectable fault, fully parameterized at generation time so applying
/// it needs no further randomness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosFault {
    /// Abruptly kill a container (no final commit) and restart it, possibly
    /// on another node.
    KillContainer { container_id: u32 },
    /// Force-expire the container's coordination session; the AM's liveness
    /// watch notices the vanished ephemeral node and reschedules.
    ExpireSession { container_id: u32 },
    /// Silently drop the container's heartbeats, then advance the
    /// coordination clock past the session timeout in steps small enough for
    /// healthy containers to keep their sessions alive.
    DropHeartbeats { container_id: u32 },
    /// Fail the leader of a replicated input partition: the log truncates to
    /// the committed offset, the epoch bumps, and clients ride out the
    /// election via retries. Refused (and skipped) when no in-sync follower
    /// exists or the topic is unreplicated.
    KillLeader { input_index: usize, partition: u32 },
    /// Install a fault injector that fails the next `window` produce and
    /// fetch operations per partition with a retriable error, then heals.
    TransientBrokerErrors { seed: u64, window: u64 },
    /// Install an I/O throttle over produce traffic (burst credits, then a
    /// collapsed sustained rate).
    IoThrottle {
        sustained_bytes_per_sec: u64,
        burst_bytes: u64,
    },
}

impl std::fmt::Display for ChaosFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosFault::KillContainer { container_id } => {
                write!(f, "kill-container({container_id})")
            }
            ChaosFault::ExpireSession { container_id } => {
                write!(f, "expire-session({container_id})")
            }
            ChaosFault::DropHeartbeats { container_id } => {
                write!(f, "drop-heartbeats({container_id})")
            }
            ChaosFault::KillLeader {
                input_index,
                partition,
            } => write!(f, "kill-leader(input {input_index}, p{partition})"),
            ChaosFault::TransientBrokerErrors { window, .. } => {
                write!(f, "transient-broker-errors(window {window})")
            }
            ChaosFault::IoThrottle { .. } => write!(f, "io-throttle"),
        }
    }
}

/// A fault plus the point in the job's progress (total messages processed,
/// including replays) at which it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosEvent {
    pub after_messages: u64,
    pub fault: ChaosFault,
}

/// Shape parameters for scenario generation.
#[derive(Debug, Clone)]
pub struct ScenarioOptions {
    /// Number of fault events in the scenario.
    pub events: usize,
    /// Container ids eligible for kill/expiry faults (`0..containers`).
    pub containers: u32,
    /// Number of input topics eligible for leader failover (0 disables
    /// [`ChaosFault::KillLeader`], substituting a container kill).
    pub replicated_inputs: usize,
    /// Partitions per input topic (leader-failover target range).
    pub partitions: u32,
    /// Progress point of the first event.
    pub first_at: u64,
    /// Base gap (in processed messages) between consecutive events.
    pub gap: u64,
}

impl Default for ScenarioOptions {
    fn default() -> Self {
        ScenarioOptions {
            events: 6,
            containers: 1,
            replicated_inputs: 0,
            partitions: 1,
            first_at: 50,
            gap: 120,
        }
    }
}

/// A deterministic fault schedule: `generate(seed, opts)` is a pure
/// function, so two runs with the same seed inject identical faults at
/// identical progress points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosScenario {
    pub seed: u64,
    pub events: Vec<ChaosEvent>,
}

impl ChaosScenario {
    /// Build the schedule for `seed`. Fault kinds rotate (offset by the
    /// seed) so every scenario of six or more events exercises every kind
    /// available under `opts`.
    pub fn generate(seed: u64, opts: &ScenarioOptions) -> Self {
        let mut rng_i = 0u64;
        let mut rng = move || {
            rng_i += 1;
            splitmix64(seed ^ rng_i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        };
        let kinds = 6u64;
        let mut at = opts.first_at;
        let mut events = Vec::with_capacity(opts.events);
        for i in 0..opts.events {
            let r = rng();
            let container_id = if opts.containers > 0 {
                (r % opts.containers as u64) as u32
            } else {
                0
            };
            let kind = (seed.wrapping_add(i as u64)) % kinds;
            let fault = match kind {
                0 => ChaosFault::KillContainer { container_id },
                1 => ChaosFault::ExpireSession { container_id },
                2 => ChaosFault::DropHeartbeats { container_id },
                3 if opts.replicated_inputs > 0 => ChaosFault::KillLeader {
                    input_index: (r >> 8) as usize % opts.replicated_inputs,
                    partition: ((r >> 16) % opts.partitions.max(1) as u64) as u32,
                },
                3 => ChaosFault::KillContainer { container_id },
                4 => ChaosFault::TransientBrokerErrors {
                    seed: rng(),
                    // Strictly fewer consecutive faults than the default
                    // client's attempt budget, so retries ride them out.
                    window: 3 + (r >> 24) % 4,
                },
                _ => ChaosFault::IoThrottle {
                    sustained_bytes_per_sec: 64 * 1024,
                    burst_bytes: 256 * 1024 + (r >> 32) % (256 * 1024),
                },
            };
            events.push(ChaosEvent {
                after_messages: at,
                fault,
            });
            at += opts.gap + rng() % opts.gap.max(1);
        }
        ChaosScenario { seed, events }
    }

    /// Apply the `index`-th event's fault to a running job. `inputs` names
    /// the job's (replicated) input topics for leader-failover targeting.
    pub fn apply(
        &self,
        cluster: &ClusterSim,
        job: &str,
        inputs: &[String],
        index: usize,
    ) -> Result<()> {
        apply_fault(cluster, job, inputs, &self.events[index].fault)
    }
}

/// Inject one fault against a live cluster/job. Faults whose target has
/// already recovered past them (e.g. a session that a respawn replaced) are
/// skipped, not errors — chaos schedules race the recovery they provoke.
pub fn apply_fault(
    cluster: &ClusterSim,
    job: &str,
    inputs: &[String],
    fault: &ChaosFault,
) -> Result<()> {
    match fault {
        ChaosFault::KillContainer { container_id } => {
            cluster.kill_and_restart_container(job, *container_id)?;
        }
        ChaosFault::ExpireSession { container_id } => {
            if let Some(session) = cluster.container_session(job, *container_id) {
                // Expiry deletes the ephemeral liveness node; the AM's watch
                // fires synchronously and respawns the container.
                let _ = cluster.coord().force_expire(session);
            }
        }
        ChaosFault::DropHeartbeats { container_id } => {
            if let Some(session) = cluster.container_session(job, *container_id) {
                let _ = cluster.coord().set_drop_heartbeats(session, true);
                // Advance the manual clock past the session timeout in
                // steps, sleeping between them so healthy container threads
                // (which heartbeat every scheduling loop) keep their
                // sessions alive; only the muted one expires.
                for _ in 0..8 {
                    cluster.coord().advance(CONTAINER_SESSION_TIMEOUT_MS / 6);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
        }
        ChaosFault::KillLeader {
            input_index,
            partition,
        } => {
            if !inputs.is_empty() {
                let topic = &inputs[input_index % inputs.len()];
                // Refused elections (no in-sync follower) are a legitimate
                // outcome: the partition keeps serving from the old leader.
                let _ = cluster.broker().fail_leader(topic, *partition);
            }
        }
        ChaosFault::TransientBrokerErrors { seed, window } => {
            cluster
                .broker()
                .set_fault_injector(Some(FaultInjector::with_specs(
                    *seed,
                    vec![FaultSpec::any(
                        FaultKind::TransientError,
                        FaultSchedule::Window {
                            from: 0,
                            count: *window,
                        },
                    )],
                )));
        }
        ChaosFault::IoThrottle {
            sustained_bytes_per_sec,
            burst_bytes,
        } => {
            cluster.broker().set_throttle(Some(Arc::new(IoThrottle::new(
                *sustained_bytes_per_sec,
                *burst_bytes,
            ))));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let opts = ScenarioOptions {
            events: 12,
            containers: 3,
            replicated_inputs: 2,
            partitions: 4,
            ..ScenarioOptions::default()
        };
        let a = ChaosScenario::generate(42, &opts);
        let b = ChaosScenario::generate(42, &opts);
        assert_eq!(a, b, "same seed, same schedule");
        let c = ChaosScenario::generate(43, &opts);
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn schedules_are_monotone_and_cover_all_kinds() {
        let opts = ScenarioOptions {
            events: 6,
            containers: 2,
            replicated_inputs: 1,
            partitions: 2,
            ..ScenarioOptions::default()
        };
        let s = ChaosScenario::generate(7, &opts);
        assert_eq!(s.events.len(), 6);
        assert!(
            s.events
                .windows(2)
                .all(|w| w[0].after_messages < w[1].after_messages),
            "injection points strictly increase"
        );
        let kinds: std::collections::BTreeSet<u8> = s
            .events
            .iter()
            .map(|e| match e.fault {
                ChaosFault::KillContainer { .. } => 0,
                ChaosFault::ExpireSession { .. } => 1,
                ChaosFault::DropHeartbeats { .. } => 2,
                ChaosFault::KillLeader { .. } => 3,
                ChaosFault::TransientBrokerErrors { .. } => 4,
                ChaosFault::IoThrottle { .. } => 5,
            })
            .collect();
        assert_eq!(kinds.len(), 6, "six events cover all six fault kinds");
    }

    #[test]
    fn kill_leader_is_substituted_without_replicated_inputs() {
        let opts = ScenarioOptions {
            events: 12,
            containers: 2,
            replicated_inputs: 0,
            ..ScenarioOptions::default()
        };
        let s = ChaosScenario::generate(3, &opts);
        assert!(s
            .events
            .iter()
            .all(|e| !matches!(e.fault, ChaosFault::KillLeader { .. })));
    }

    #[test]
    fn transient_windows_stay_under_retry_budget() {
        for seed in 0..32u64 {
            let s = ChaosScenario::generate(seed, &ScenarioOptions::default());
            for e in &s.events {
                if let ChaosFault::TransientBrokerErrors { window, .. } = e.fault {
                    assert!(
                        window < 8,
                        "window {window} must stay below the default attempt cap"
                    );
                }
            }
        }
    }
}
