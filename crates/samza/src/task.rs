//! The task API: what user code (and SamzaSQL's generated operator tasks)
//! implements.

use crate::error::Result;
use crate::kv::KeyValueStore;
use crate::metrics::TaskMetrics;
use crate::system::{IncomingMessageEnvelope, MessageCollector};
use samzasql_kafka::TopicPartition;
use std::collections::BTreeMap;

/// Lets a task signal the container, like Samza's `TaskCoordinator`.
#[derive(Debug, Default)]
pub struct TaskCoordinator {
    commit_requested: bool,
    shutdown_requested: bool,
}

impl TaskCoordinator {
    /// Request an immediate checkpoint after this process call.
    pub fn commit(&mut self) {
        self.commit_requested = true;
    }

    /// Request that the whole container shut down cleanly.
    pub fn shutdown(&mut self) {
        self.shutdown_requested = true;
    }

    /// Take and clear the commit flag.
    pub(crate) fn take_commit(&mut self) -> bool {
        std::mem::take(&mut self.commit_requested)
    }

    /// Observe the shutdown flag.
    pub(crate) fn shutdown_requested(&self) -> bool {
        self.shutdown_requested
    }
}

/// Per-task runtime context: identity, assigned partitions, local stores.
pub struct TaskContext {
    /// Task name, e.g. `"Partition 3"` (Samza's default task naming).
    pub task_name: String,
    /// The partition id this task owns across all inputs.
    pub partition: u32,
    /// Input partitions assigned to this task.
    pub input_partitions: Vec<TopicPartition>,
    /// Local stores by configured name.
    stores: BTreeMap<String, KeyValueStore>,
    /// Task-level counters.
    pub metrics: TaskMetrics,
}

impl TaskContext {
    pub fn new(
        task_name: impl Into<String>,
        partition: u32,
        input_partitions: Vec<TopicPartition>,
    ) -> Self {
        TaskContext {
            task_name: task_name.into(),
            partition,
            input_partitions,
            stores: BTreeMap::new(),
            metrics: TaskMetrics::default(),
        }
    }

    /// Register a store under its configured name (done by the container
    /// during task initialization, after changelog restore).
    pub fn register_store(&mut self, store: KeyValueStore) {
        self.stores.insert(store.name().to_string(), store);
    }

    /// Borrow a store mutably by name.
    pub fn store_mut(&mut self, name: &str) -> Result<&mut KeyValueStore> {
        self.stores
            .get_mut(name)
            .ok_or_else(|| crate::error::SamzaError::UnknownStore(name.to_string()))
    }

    /// Borrow a store by name.
    pub fn store(&self, name: &str) -> Result<&KeyValueStore> {
        self.stores
            .get(name)
            .ok_or_else(|| crate::error::SamzaError::UnknownStore(name.to_string()))
    }

    /// Names of all registered stores, in order.
    pub fn store_names(&self) -> Vec<String> {
        self.stores.keys().cloned().collect()
    }

    /// Flush every store's buffered changelog entries (commit path).
    pub fn flush_changelogs(&mut self) -> Result<()> {
        for store in self.stores.values_mut() {
            store.flush_changelog()?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for TaskContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskContext")
            .field("task_name", &self.task_name)
            .field("partition", &self.partition)
            .field("stores", &self.store_names())
            .finish()
    }
}

/// The streaming task interface (Samza's `StreamTask` + `InitableTask` +
/// `WindowableTask` folded into one trait with default no-op hooks).
pub trait StreamTask: Send {
    /// Called once before any message is delivered, after store restore and
    /// after bootstrap inputs are identified. SamzaSQL performs its
    /// task-side query planning and operator generation here (§4.2).
    fn init(&mut self, _ctx: &mut TaskContext) -> Result<()> {
        Ok(())
    }

    /// Called for every delivered message.
    fn process(
        &mut self,
        envelope: &IncomingMessageEnvelope,
        ctx: &mut TaskContext,
        collector: &mut MessageCollector,
        coordinator: &mut TaskCoordinator,
    ) -> Result<()>;

    /// Called with a whole fetched batch for one partition; returns how many
    /// envelopes were consumed (the container advances its checkpoint
    /// position past exactly that many).
    ///
    /// The default loops [`StreamTask::process`], stopping early when the
    /// task requests a commit so per-message checkpoint semantics are
    /// preserved for third-party tasks. Batch-aware tasks (SamzaSQL's
    /// generated operator task) override this to run whole batches through
    /// their pipeline.
    fn process_batch(
        &mut self,
        envelopes: &[IncomingMessageEnvelope],
        ctx: &mut TaskContext,
        collector: &mut MessageCollector,
        coordinator: &mut TaskCoordinator,
    ) -> Result<usize> {
        for (i, envelope) in envelopes.iter().enumerate() {
            self.process(envelope, ctx, collector, coordinator)?;
            if coordinator.commit_requested {
                return Ok(i + 1);
            }
        }
        Ok(envelopes.len())
    }

    /// Called on the configured window interval (`WindowableTask`); hopping
    /// and tumbling aggregates emit here.
    fn window(
        &mut self,
        _ctx: &mut TaskContext,
        _collector: &mut MessageCollector,
        _coordinator: &mut TaskCoordinator,
    ) -> Result<()> {
        Ok(())
    }
}

/// Creates one task instance per partition; the factory is the runtime
/// analogue of the `task.class` configuration entry.
pub trait TaskFactory: Send + Sync {
    fn create(&self, partition: u32) -> Box<dyn StreamTask>;
}

impl<F> TaskFactory for F
where
    F: Fn(u32) -> Box<dyn StreamTask> + Send + Sync,
{
    fn create(&self, partition: u32) -> Box<dyn StreamTask> {
        self(partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinator_flags() {
        let mut c = TaskCoordinator::default();
        assert!(!c.take_commit());
        c.commit();
        assert!(c.take_commit());
        assert!(!c.take_commit(), "commit flag clears after take");
        assert!(!c.shutdown_requested());
        c.shutdown();
        assert!(c.shutdown_requested());
    }

    #[test]
    fn context_store_registry() {
        let mut ctx = TaskContext::new("Partition 0", 0, vec![]);
        assert!(ctx.store("s").is_err());
        ctx.register_store(KeyValueStore::ephemeral("s"));
        assert!(ctx.store("s").is_ok());
        assert!(ctx.store_mut("s").is_ok());
        assert_eq!(ctx.store_names(), vec!["s".to_string()]);
    }

    #[test]
    fn closure_task_factory() {
        struct Nop;
        impl StreamTask for Nop {
            fn process(
                &mut self,
                _: &IncomingMessageEnvelope,
                _: &mut TaskContext,
                _: &mut MessageCollector,
                _: &mut TaskCoordinator,
            ) -> Result<()> {
                Ok(())
            }
        }
        let factory = |_p: u32| -> Box<dyn StreamTask> { Box::new(Nop) };
        let _task = factory.create(7);
    }
}
