//! Checkpointing input positions to a checkpoint stream.
//!
//! §2: on failure "Samza … ensures streams will be replayed from the last
//! known checkpointed partition offset." Checkpoints are written to a
//! per-job checkpoint topic keyed by task name; recovery reads the topic and
//! keeps the newest checkpoint per task (Kafka's log-compaction read
//! semantics, done client-side).

use crate::error::Result;
use bytes::Bytes;
use samzasql_kafka::{Broker, Message, Retrier, TopicConfig, TopicPartition};
use std::collections::BTreeMap;

/// Header marking the length-prefixed v2 wire format.
const V2_HEADER: &[u8] = b"#v2\n";

/// Input positions of one task at one commit: topic-partition → next offset.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Checkpoint {
    pub offsets: BTreeMap<TopicPartition, u64>,
}

impl Checkpoint {
    /// Serialize to the v2 text form: a `#v2\n` header followed by one
    /// `<topic_byte_len>:<topic>,<partition>,<offset>\n` record per entry.
    /// The length prefix makes the encoding unambiguous for *any* topic name
    /// — the original `topic,partition,offset` lines silently lost the whole
    /// checkpoint when a topic contained a comma. (The paper's Samza stores
    /// checkpoints as JSON; a framed text format keeps this substrate
    /// dependency-free.)
    fn encode(&self) -> Bytes {
        let mut s = String::from_utf8(V2_HEADER.to_vec()).expect("ascii header");
        for (tp, off) in &self.offsets {
            s.push_str(&format!(
                "{}:{},{},{}\n",
                tp.topic.len(),
                tp.topic,
                tp.partition,
                off
            ));
        }
        Bytes::from(s)
    }

    fn decode(bytes: &[u8]) -> Option<Checkpoint> {
        match bytes.strip_prefix(V2_HEADER) {
            Some(body) => Checkpoint::decode_v2(body),
            None => Checkpoint::decode_legacy(bytes),
        }
    }

    /// Sequential scan of `<len>:<topic>,<partition>,<offset>\n` records.
    /// The topic is sliced by byte length, so commas and newlines inside it
    /// cannot confuse the field separators that follow.
    fn decode_v2(body: &[u8]) -> Option<Checkpoint> {
        let mut offsets = BTreeMap::new();
        let mut rest = body;
        while !rest.is_empty() {
            let colon = rest.iter().position(|&b| b == b':')?;
            let len: usize = std::str::from_utf8(&rest[..colon]).ok()?.parse().ok()?;
            rest = &rest[colon + 1..];
            if rest.len() < len {
                return None;
            }
            let topic = std::str::from_utf8(&rest[..len]).ok()?;
            rest = rest[len..].strip_prefix(b",")?;
            let comma = rest.iter().position(|&b| b == b',')?;
            let partition: u32 = std::str::from_utf8(&rest[..comma]).ok()?.parse().ok()?;
            rest = &rest[comma + 1..];
            let nl = rest.iter().position(|&b| b == b'\n')?;
            let offset: u64 = std::str::from_utf8(&rest[..nl]).ok()?.parse().ok()?;
            rest = &rest[nl + 1..];
            offsets.insert(TopicPartition::new(topic, partition), offset);
        }
        Some(Checkpoint { offsets })
    }

    /// Fallback for checkpoints written before the v2 header existed:
    /// `topic,partition,offset` lines (ambiguous when topics contain commas,
    /// which is exactly why v2 replaced it).
    fn decode_legacy(bytes: &[u8]) -> Option<Checkpoint> {
        let text = std::str::from_utf8(bytes).ok()?;
        let mut offsets = BTreeMap::new();
        for line in text.lines() {
            let mut parts = line.split(',');
            let topic = parts.next()?;
            let partition: u32 = parts.next()?.parse().ok()?;
            let offset: u64 = parts.next()?.parse().ok()?;
            offsets.insert(TopicPartition::new(topic, partition), offset);
        }
        Some(Checkpoint { offsets })
    }
}

/// Writes and reads checkpoints for one job. Broker calls route through a
/// retrier: a checkpoint write riding out a transient broker fault is the
/// difference between a clean commit and a spurious container crash.
#[derive(Debug, Clone)]
pub struct CheckpointManager {
    broker: Broker,
    topic: String,
    retrier: Retrier,
}

impl CheckpointManager {
    /// Create the manager, ensuring the single-partition checkpoint topic
    /// exists (Samza's `__samza_checkpoint_<job>` analogue).
    pub fn new(broker: Broker, job_name: &str) -> Result<Self> {
        let topic = format!("__checkpoint_{job_name}");
        broker.ensure_topic(&topic, TopicConfig::with_partitions(1))?;
        Ok(CheckpointManager {
            broker,
            topic,
            retrier: Retrier::default(),
        })
    }

    /// Override the retrier (builder style); containers share one metrics
    /// sink across their checkpoint, changelog, and output retriers.
    pub fn with_retrier(mut self, retrier: Retrier) -> Self {
        self.retrier = retrier;
        self
    }

    /// Append a checkpoint for `task_name`.
    pub fn write(&self, task_name: &str, checkpoint: &Checkpoint) -> Result<()> {
        let message = Message::keyed(task_name.to_string(), checkpoint.encode());
        self.retrier
            .run(|| self.broker.produce(&self.topic, 0, message.clone()))?;
        Ok(())
    }

    /// Read the newest checkpoint for `task_name`, scanning the topic.
    pub fn read_last(&self, task_name: &str) -> Result<Option<Checkpoint>> {
        let mut offset = self.broker.start_offset(&self.topic, 0)?;
        let mut latest = None;
        loop {
            let batch = self
                .retrier
                .run(|| self.broker.fetch(&self.topic, 0, offset, 1024))?;
            if batch.records.is_empty() {
                break;
            }
            for rec in &batch.records {
                offset = rec.offset + 1;
                if rec.message.key.as_deref() == Some(task_name.as_bytes()) {
                    latest = Checkpoint::decode(&rec.message.value);
                }
            }
        }
        Ok(latest)
    }

    /// Newest checkpoints for every task in the job.
    pub fn read_all(&self) -> Result<BTreeMap<String, Checkpoint>> {
        let mut offset = self.broker.start_offset(&self.topic, 0)?;
        let mut out = BTreeMap::new();
        loop {
            let batch = self
                .retrier
                .run(|| self.broker.fetch(&self.topic, 0, offset, 1024))?;
            if batch.records.is_empty() {
                break;
            }
            for rec in &batch.records {
                offset = rec.offset + 1;
                if let (Some(key), Some(cp)) = (
                    rec.message.key.as_ref(),
                    Checkpoint::decode(&rec.message.value),
                ) {
                    if let Ok(name) = std::str::from_utf8(key) {
                        out.insert(name.to_string(), cp);
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(pairs: &[(&str, u32, u64)]) -> Checkpoint {
        Checkpoint {
            offsets: pairs
                .iter()
                .map(|(t, p, o)| (TopicPartition::new(*t, *p), *o))
                .collect(),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let c = cp(&[("orders", 0, 42), ("products", 3, 7)]);
        assert_eq!(Checkpoint::decode(&c.encode()), Some(c));
    }

    #[test]
    fn topics_with_commas_and_newlines_survive() {
        // The legacy format lost this checkpoint entirely; v2 must not.
        let c = cp(&[
            ("orders,eu", 0, 42),
            ("a\nb", 1, 7),
            ("3:tricky", 2, 9),
            ("", 4, 11),
        ]);
        assert_eq!(Checkpoint::decode(&c.encode()), Some(c));
    }

    #[test]
    fn legacy_format_still_decodes() {
        let legacy = b"orders,0,42\nproducts,3,7\n";
        assert_eq!(
            Checkpoint::decode(legacy),
            Some(cp(&[("orders", 0, 42), ("products", 3, 7)]))
        );
    }

    #[test]
    fn garbage_decodes_to_none_not_panic() {
        for bad in [
            &b"#v2\n9999:t,0,1\n"[..],
            &b"#v2\nx:t,0,1\n"[..],
            &b"#v2\n1:t0,1\n"[..],
            &b"#v2\n1:t,zero,1\n"[..],
            &b"\xff\xfe"[..],
        ] {
            assert_eq!(Checkpoint::decode(bad), None, "input {bad:?}");
        }
    }

    proptest::proptest! {
        /// Round-trip over arbitrary topic names — the generator emits any
        /// printable ASCII, so commas, colons, and digits land inside topic
        /// names where the legacy format fell apart.
        #[test]
        fn roundtrips_arbitrary_topic_names(
            entries in proptest::collection::vec(
                (".{0,24}", 0u32..64, proptest::any::<u64>()),
                0..8,
            )
        ) {
            let c = Checkpoint {
                offsets: entries
                    .into_iter()
                    .map(|(t, p, o)| (TopicPartition::new(t, p), o))
                    .collect(),
            };
            proptest::prop_assert_eq!(Checkpoint::decode(&c.encode()), Some(c));
        }
    }

    #[test]
    fn last_write_wins() {
        let broker = Broker::new();
        let mgr = CheckpointManager::new(broker, "job").unwrap();
        mgr.write("Partition 0", &cp(&[("t", 0, 1)])).unwrap();
        mgr.write("Partition 0", &cp(&[("t", 0, 9)])).unwrap();
        mgr.write("Partition 1", &cp(&[("t", 1, 5)])).unwrap();
        assert_eq!(
            mgr.read_last("Partition 0").unwrap(),
            Some(cp(&[("t", 0, 9)]))
        );
        assert_eq!(
            mgr.read_last("Partition 1").unwrap(),
            Some(cp(&[("t", 1, 5)]))
        );
        assert_eq!(mgr.read_last("Partition 2").unwrap(), None);
    }

    #[test]
    fn read_all_collects_latest_per_task() {
        let broker = Broker::new();
        let mgr = CheckpointManager::new(broker, "job").unwrap();
        mgr.write("a", &cp(&[("t", 0, 1)])).unwrap();
        mgr.write("b", &cp(&[("t", 1, 2)])).unwrap();
        mgr.write("a", &cp(&[("t", 0, 3)])).unwrap();
        let all = mgr.read_all().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all["a"], cp(&[("t", 0, 3)]));
        assert_eq!(all["b"], cp(&[("t", 1, 2)]));
    }

    #[test]
    fn managers_for_different_jobs_are_isolated() {
        let broker = Broker::new();
        let m1 = CheckpointManager::new(broker.clone(), "j1").unwrap();
        let m2 = CheckpointManager::new(broker, "j2").unwrap();
        m1.write("t", &cp(&[("x", 0, 1)])).unwrap();
        assert_eq!(m2.read_last("t").unwrap(), None);
    }
}
