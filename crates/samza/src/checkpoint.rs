//! Checkpointing input positions to a checkpoint stream.
//!
//! §2: on failure "Samza … ensures streams will be replayed from the last
//! known checkpointed partition offset." Checkpoints are written to a
//! per-job checkpoint topic keyed by task name; recovery reads the topic and
//! keeps the newest checkpoint per task (Kafka's log-compaction read
//! semantics, done client-side).

use crate::error::Result;
use bytes::Bytes;
use samzasql_kafka::{Broker, Message, TopicConfig, TopicPartition};
use std::collections::BTreeMap;

/// Input positions of one task at one commit: topic-partition → next offset.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Checkpoint {
    pub offsets: BTreeMap<TopicPartition, u64>,
}

impl Checkpoint {
    /// Serialize to a compact text form: `topic,partition,offset` lines.
    /// (The paper's Samza stores checkpoints as JSON; a line format keeps
    /// this substrate dependency-free.)
    fn encode(&self) -> Bytes {
        let mut s = String::new();
        for (tp, off) in &self.offsets {
            s.push_str(&format!("{},{},{}\n", tp.topic, tp.partition, off));
        }
        Bytes::from(s)
    }

    fn decode(bytes: &[u8]) -> Option<Checkpoint> {
        let text = std::str::from_utf8(bytes).ok()?;
        let mut offsets = BTreeMap::new();
        for line in text.lines() {
            let mut parts = line.split(',');
            let topic = parts.next()?;
            let partition: u32 = parts.next()?.parse().ok()?;
            let offset: u64 = parts.next()?.parse().ok()?;
            offsets.insert(TopicPartition::new(topic, partition), offset);
        }
        Some(Checkpoint { offsets })
    }
}

/// Writes and reads checkpoints for one job.
#[derive(Debug, Clone)]
pub struct CheckpointManager {
    broker: Broker,
    topic: String,
}

impl CheckpointManager {
    /// Create the manager, ensuring the single-partition checkpoint topic
    /// exists (Samza's `__samza_checkpoint_<job>` analogue).
    pub fn new(broker: Broker, job_name: &str) -> Result<Self> {
        let topic = format!("__checkpoint_{job_name}");
        broker.ensure_topic(&topic, TopicConfig::with_partitions(1))?;
        Ok(CheckpointManager { broker, topic })
    }

    /// Append a checkpoint for `task_name`.
    pub fn write(&self, task_name: &str, checkpoint: &Checkpoint) -> Result<()> {
        self.broker.produce(
            &self.topic,
            0,
            Message::keyed(task_name.to_string(), checkpoint.encode()),
        )?;
        Ok(())
    }

    /// Read the newest checkpoint for `task_name`, scanning the topic.
    pub fn read_last(&self, task_name: &str) -> Result<Option<Checkpoint>> {
        let mut offset = self.broker.start_offset(&self.topic, 0)?;
        let mut latest = None;
        loop {
            let batch = self.broker.fetch(&self.topic, 0, offset, 1024)?;
            if batch.records.is_empty() {
                break;
            }
            for rec in &batch.records {
                offset = rec.offset + 1;
                if rec.message.key.as_deref() == Some(task_name.as_bytes()) {
                    latest = Checkpoint::decode(&rec.message.value);
                }
            }
        }
        Ok(latest)
    }

    /// Newest checkpoints for every task in the job.
    pub fn read_all(&self) -> Result<BTreeMap<String, Checkpoint>> {
        let mut offset = self.broker.start_offset(&self.topic, 0)?;
        let mut out = BTreeMap::new();
        loop {
            let batch = self.broker.fetch(&self.topic, 0, offset, 1024)?;
            if batch.records.is_empty() {
                break;
            }
            for rec in &batch.records {
                offset = rec.offset + 1;
                if let (Some(key), Some(cp)) = (
                    rec.message.key.as_ref(),
                    Checkpoint::decode(&rec.message.value),
                ) {
                    if let Ok(name) = std::str::from_utf8(key) {
                        out.insert(name.to_string(), cp);
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(pairs: &[(&str, u32, u64)]) -> Checkpoint {
        Checkpoint {
            offsets: pairs
                .iter()
                .map(|(t, p, o)| (TopicPartition::new(*t, *p), *o))
                .collect(),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let c = cp(&[("orders", 0, 42), ("products", 3, 7)]);
        assert_eq!(Checkpoint::decode(&c.encode()), Some(c));
    }

    #[test]
    fn last_write_wins() {
        let broker = Broker::new();
        let mgr = CheckpointManager::new(broker, "job").unwrap();
        mgr.write("Partition 0", &cp(&[("t", 0, 1)])).unwrap();
        mgr.write("Partition 0", &cp(&[("t", 0, 9)])).unwrap();
        mgr.write("Partition 1", &cp(&[("t", 1, 5)])).unwrap();
        assert_eq!(
            mgr.read_last("Partition 0").unwrap(),
            Some(cp(&[("t", 0, 9)]))
        );
        assert_eq!(
            mgr.read_last("Partition 1").unwrap(),
            Some(cp(&[("t", 1, 5)]))
        );
        assert_eq!(mgr.read_last("Partition 2").unwrap(), None);
    }

    #[test]
    fn read_all_collects_latest_per_task() {
        let broker = Broker::new();
        let mgr = CheckpointManager::new(broker, "job").unwrap();
        mgr.write("a", &cp(&[("t", 0, 1)])).unwrap();
        mgr.write("b", &cp(&[("t", 1, 2)])).unwrap();
        mgr.write("a", &cp(&[("t", 0, 3)])).unwrap();
        let all = mgr.read_all().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all["a"], cp(&[("t", 0, 3)]));
        assert_eq!(all["b"], cp(&[("t", 1, 2)]));
    }

    #[test]
    fn managers_for_different_jobs_are_isolated() {
        let broker = Broker::new();
        let m1 = CheckpointManager::new(broker.clone(), "j1").unwrap();
        let m2 = CheckpointManager::new(broker, "j2").unwrap();
        m1.write("t", &cp(&[("x", 0, 1)])).unwrap();
        assert_eq!(m2.read_last("t").unwrap(), None);
    }
}
