//! Deprecated metadata-store shim over the coordination service.
//!
//! §4.2: during job-configuration generation "some of the metadata such as
//! message schemas and the streaming query are stored in Zookeeper and
//! references to those configurations are added to the job configuration.
//! SamzaSQL tasks then read actual values for configurations from
//! Zookeeper." That handoff now lives in [`samzasql_coord::Coord`] — a full
//! znode tree with sessions, ephemeral nodes, and watches. [`MetadataStore`]
//! remains as a thin, deprecated adapter so existing call sites keep
//! compiling while they migrate; it delegates every operation to a `Coord`
//! and inherits its canonical path handling (the old standalone store failed
//! to collapse interior empty segments, so `/a//b` and `/a/b` addressed
//! different entries).

use samzasql_coord::{Coord, CoordError, CreateMode};

/// A stored entry: value plus a monotonically increasing version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetadataEntry {
    pub value: String,
    pub version: u64,
}

/// Shared, thread-safe, path-addressed metadata store.
#[deprecated(
    note = "use samzasql_coord::Coord directly — the metadata store is now a thin \
            adapter over the coordination service"
)]
#[derive(Clone, Default)]
pub struct MetadataStore {
    coord: Coord,
}

#[allow(deprecated)]
impl MetadataStore {
    pub fn new() -> Self {
        MetadataStore::default()
    }

    /// An adapter over an existing coordination service: reads and writes go
    /// to the same znode tree the rest of the stack uses.
    pub fn with_coord(coord: Coord) -> Self {
        MetadataStore { coord }
    }

    /// The backing coordination service.
    pub fn coord(&self) -> &Coord {
        &self.coord
    }

    /// Set a value at a path, creating or overwriting; returns new version.
    pub fn set(&self, path: &str, value: impl Into<String>) -> u64 {
        self.coord.upsert(path, value.into()).unwrap_or(0)
    }

    /// Get the value at a path.
    pub fn get(&self, path: &str) -> Option<String> {
        self.coord.get(path).ok().map(|(value, _)| value)
    }

    /// Get the full entry (value + version).
    pub fn get_entry(&self, path: &str) -> Option<MetadataEntry> {
        self.coord
            .get(path)
            .ok()
            .map(|(value, stat)| MetadataEntry {
                value,
                version: stat.version,
            })
    }

    /// Compare-and-set: succeeds only when the current version matches
    /// (`expected_version == 0` creates the path).
    pub fn compare_and_set(
        &self,
        path: &str,
        expected_version: u64,
        value: impl Into<String>,
    ) -> bool {
        if expected_version == 0 {
            self.coord
                .create(None, path, value.into(), CreateMode::Persistent)
                .is_ok()
        } else {
            self.coord
                .set(path, value.into(), Some(expected_version))
                .is_ok()
        }
    }

    /// Delete a path (and, unlike ZooKeeper, anything under it — the old
    /// store had no containment, so callers expect unconditional removal);
    /// returns whether it existed.
    pub fn delete(&self, path: &str) -> bool {
        if self.coord.exists(path).is_none() {
            return false;
        }
        !matches!(
            self.coord.delete_recursive(path),
            Err(CoordError::RootReadOnly)
        )
    }

    /// Immediate children of a path (one extra path segment), sorted.
    pub fn children(&self, path: &str) -> Vec<String> {
        self.coord.children(path).unwrap_or_default()
    }
}

#[allow(deprecated)]
impl std::fmt::Debug for MetadataStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetadataStore")
            .field("coord", &self.coord)
            .finish()
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn set_get_normalizes_paths() {
        let m = MetadataStore::new();
        m.set("jobs/q1/query", "SELECT 1");
        assert_eq!(m.get("/jobs/q1/query").as_deref(), Some("SELECT 1"));
        assert_eq!(m.get("jobs/q1/query/").as_deref(), Some("SELECT 1"));
        assert_eq!(m.get("missing"), None);
    }

    #[test]
    fn interior_empty_segments_collapse() {
        // The old standalone store only trimmed edge slashes, so "/a//b"
        // silently addressed a different entry than "/a/b".
        let m = MetadataStore::new();
        m.set("/a/b", "v");
        assert_eq!(m.get("/a//b").as_deref(), Some("v"));
        m.set("/x//y", "w");
        assert_eq!(m.get("/x/y").as_deref(), Some("w"));
        assert_eq!(m.children("//x"), vec!["y".to_string()]);
    }

    #[test]
    fn versions_increment() {
        let m = MetadataStore::new();
        assert_eq!(m.set("a", "1"), 1);
        assert_eq!(m.set("a", "2"), 2);
        assert_eq!(m.get_entry("a").unwrap().version, 2);
    }

    #[test]
    fn compare_and_set_enforces_version() {
        let m = MetadataStore::new();
        assert!(m.compare_and_set("a", 0, "init"), "create at version 0");
        assert!(!m.compare_and_set("a", 0, "stale"));
        assert!(m.compare_and_set("a", 1, "next"));
        assert_eq!(m.get("a").as_deref(), Some("next"));
    }

    #[test]
    fn children_lists_one_level() {
        let m = MetadataStore::new();
        m.set("/jobs/q1/query", "x");
        m.set("/jobs/q1/schema", "y");
        m.set("/jobs/q2/query", "z");
        m.set("/other", "w");
        assert_eq!(
            m.children("/jobs"),
            vec!["q1".to_string(), "q2".to_string()]
        );
        assert_eq!(
            m.children("/jobs/q1"),
            vec!["query".to_string(), "schema".to_string()]
        );
        assert_eq!(m.children("/jobs/q3"), Vec::<String>::new());
    }

    #[test]
    fn delete_removes_entry() {
        let m = MetadataStore::new();
        m.set("a", "1");
        assert!(m.delete("a"));
        assert!(!m.delete("a"));
        assert_eq!(m.get("a"), None);
    }

    #[test]
    fn shares_tree_with_coord() {
        let coord = Coord::new();
        let m = MetadataStore::with_coord(coord.clone());
        m.set("/shared/k", "v");
        assert_eq!(coord.get("/shared/k").unwrap().0, "v");
        coord.upsert("/shared/k", "v2").unwrap();
        assert_eq!(m.get("/shared/k").as_deref(), Some("v2"));
    }
}
