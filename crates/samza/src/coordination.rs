//! ZooKeeper-like hierarchical metadata store.
//!
//! §4.2: during job-configuration generation "some of the metadata such as
//! message schemas and the streaming query are stored in Zookeeper and
//! references to those configurations are added to the job configuration.
//! SamzaSQL tasks then read actual values for configurations from
//! Zookeeper." This store carries that handoff in-process: path-addressed
//! string values with children listing and version counters.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A stored entry: value plus a monotonically increasing version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetadataEntry {
    pub value: String,
    pub version: u64,
}

/// Shared, thread-safe, path-addressed metadata store.
#[derive(Clone, Default)]
pub struct MetadataStore {
    nodes: Arc<RwLock<BTreeMap<String, MetadataEntry>>>,
}

impl MetadataStore {
    pub fn new() -> Self {
        MetadataStore::default()
    }

    fn normalize(path: &str) -> String {
        let trimmed = path.trim_matches('/');
        format!("/{trimmed}")
    }

    /// Set a value at a path, creating or overwriting; returns new version.
    pub fn set(&self, path: &str, value: impl Into<String>) -> u64 {
        let path = Self::normalize(path);
        let mut nodes = self.nodes.write();
        let version = nodes.get(&path).map_or(1, |e| e.version + 1);
        nodes.insert(path, MetadataEntry { value: value.into(), version });
        version
    }

    /// Get the value at a path.
    pub fn get(&self, path: &str) -> Option<String> {
        self.nodes.read().get(&Self::normalize(path)).map(|e| e.value.clone())
    }

    /// Get the full entry (value + version).
    pub fn get_entry(&self, path: &str) -> Option<MetadataEntry> {
        self.nodes.read().get(&Self::normalize(path)).cloned()
    }

    /// Compare-and-set: succeeds only when the current version matches.
    pub fn compare_and_set(&self, path: &str, expected_version: u64, value: impl Into<String>) -> bool {
        let path = Self::normalize(path);
        let mut nodes = self.nodes.write();
        match nodes.get(&path) {
            Some(e) if e.version == expected_version => {
                let version = e.version + 1;
                nodes.insert(path, MetadataEntry { value: value.into(), version });
                true
            }
            None if expected_version == 0 => {
                nodes.insert(path, MetadataEntry { value: value.into(), version: 1 });
                true
            }
            _ => false,
        }
    }

    /// Delete a path; returns whether it existed.
    pub fn delete(&self, path: &str) -> bool {
        self.nodes.write().remove(&Self::normalize(path)).is_some()
    }

    /// Immediate children of a path (one extra path segment), sorted.
    pub fn children(&self, path: &str) -> Vec<String> {
        let prefix = {
            let p = Self::normalize(path);
            if p == "/" {
                "/".to_string()
            } else {
                format!("{p}/")
            }
        };
        let nodes = self.nodes.read();
        let mut kids: Vec<String> = nodes
            .keys()
            .filter_map(|k| {
                let rest = k.strip_prefix(&prefix)?;
                if rest.is_empty() {
                    None
                } else {
                    Some(rest.split('/').next().expect("nonempty").to_string())
                }
            })
            .collect();
        kids.dedup();
        kids
    }
}

impl std::fmt::Debug for MetadataStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetadataStore")
            .field("paths", &self.nodes.read().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_normalizes_paths() {
        let m = MetadataStore::new();
        m.set("jobs/q1/query", "SELECT 1");
        assert_eq!(m.get("/jobs/q1/query").as_deref(), Some("SELECT 1"));
        assert_eq!(m.get("jobs/q1/query/").as_deref(), Some("SELECT 1"));
        assert_eq!(m.get("missing"), None);
    }

    #[test]
    fn versions_increment() {
        let m = MetadataStore::new();
        assert_eq!(m.set("a", "1"), 1);
        assert_eq!(m.set("a", "2"), 2);
        assert_eq!(m.get_entry("a").unwrap().version, 2);
    }

    #[test]
    fn compare_and_set_enforces_version() {
        let m = MetadataStore::new();
        assert!(m.compare_and_set("a", 0, "init"), "create at version 0");
        assert!(!m.compare_and_set("a", 0, "stale"));
        assert!(m.compare_and_set("a", 1, "next"));
        assert_eq!(m.get("a").as_deref(), Some("next"));
    }

    #[test]
    fn children_lists_one_level() {
        let m = MetadataStore::new();
        m.set("/jobs/q1/query", "x");
        m.set("/jobs/q1/schema", "y");
        m.set("/jobs/q2/query", "z");
        m.set("/other", "w");
        assert_eq!(m.children("/jobs"), vec!["q1".to_string(), "q2".to_string()]);
        assert_eq!(m.children("/jobs/q1"), vec!["query".to_string(), "schema".to_string()]);
        assert_eq!(m.children("/jobs/q3"), Vec::<String>::new());
    }

    #[test]
    fn delete_removes_entry() {
        let m = MetadataStore::new();
        m.set("a", "1");
        assert!(m.delete("a"));
        assert!(!m.delete("a"));
        assert_eq!(m.get("a"), None);
    }
}
