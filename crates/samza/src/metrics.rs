//! Task-level throughput counters.
//!
//! Thin shim over [`samzasql_obs`] counters since the obs migration: the
//! accessor API is unchanged (cloneable, counters shared across clones so
//! the benchmark harness can sample while the container thread runs), and
//! [`TaskMetrics::register_into`] adopts the live counters into a shared
//! registry under `samza.task.*`.

use samzasql_obs::{Counter, MetricsRegistry};

/// Shared, monotonic counters for one task. Cloneable so the benchmark
/// harness can sample while the container thread runs.
#[derive(Debug, Clone, Default)]
pub struct TaskMetrics {
    messages_processed: Counter,
    messages_sent: Counter,
    process_errors: Counter,
    commits: Counter,
    window_calls: Counter,
}

impl TaskMetrics {
    /// Publish every counter into `registry` under `samza.task.*` with the
    /// given identity labels (conventionally `job`, `container`, `task`).
    pub fn register_into(&self, registry: &MetricsRegistry, labels: &[(&str, &str)]) {
        registry.adopt_counter(
            "samza.task.messages_processed",
            labels,
            &self.messages_processed,
        );
        registry.adopt_counter("samza.task.messages_sent", labels, &self.messages_sent);
        registry.adopt_counter("samza.task.process_errors", labels, &self.process_errors);
        registry.adopt_counter("samza.task.commits", labels, &self.commits);
        registry.adopt_counter("samza.task.window_calls", labels, &self.window_calls);
    }

    pub fn record_processed(&self, n: u64) {
        self.messages_processed.add(n);
    }

    pub fn record_sent(&self, n: u64) {
        self.messages_sent.add(n);
    }

    pub fn record_error(&self) {
        self.process_errors.inc();
    }

    pub fn record_commit(&self) {
        self.commits.inc();
    }

    pub fn record_window(&self) {
        self.window_calls.inc();
    }

    pub fn messages_processed(&self) -> u64 {
        self.messages_processed.get()
    }

    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.get()
    }

    pub fn process_errors(&self) -> u64 {
        self.process_errors.get()
    }

    pub fn commits(&self) -> u64 {
        self.commits.get()
    }

    pub fn window_calls(&self) -> u64 {
        self.window_calls.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_shared_across_clones() {
        let m = TaskMetrics::default();
        let m2 = m.clone();
        m.record_processed(3);
        m2.record_sent(2);
        assert_eq!(m2.messages_processed(), 3);
        assert_eq!(m.messages_sent(), 2);
    }

    #[test]
    fn registered_counters_publish_live_values() {
        let m = TaskMetrics::default();
        let registry = MetricsRegistry::new();
        m.register_into(&registry, &[("job", "q1"), ("task", "0")]);
        m.record_processed(5);
        m.record_commit();
        let snap = registry.snapshot_prefix("samza.task.");
        assert_eq!(
            snap.counter(
                "samza.task.messages_processed",
                &[("job", "q1"), ("task", "0")]
            ),
            Some(5)
        );
        assert_eq!(
            snap.counter("samza.task.commits", &[("job", "q1"), ("task", "0")]),
            Some(1)
        );
    }
}
