//! Task-level throughput counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, monotonic counters for one task. Cloneable so the benchmark
/// harness can sample while the container thread runs.
#[derive(Debug, Clone, Default)]
pub struct TaskMetrics {
    inner: Arc<TaskMetricsInner>,
}

#[derive(Debug, Default)]
struct TaskMetricsInner {
    messages_processed: AtomicU64,
    messages_sent: AtomicU64,
    process_errors: AtomicU64,
    commits: AtomicU64,
    window_calls: AtomicU64,
}

impl TaskMetrics {
    pub fn record_processed(&self, n: u64) {
        self.inner
            .messages_processed
            .fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_sent(&self, n: u64) {
        self.inner.messages_sent.fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_error(&self) {
        self.inner.process_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_commit(&self) {
        self.inner.commits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_window(&self) {
        self.inner.window_calls.fetch_add(1, Ordering::Relaxed);
    }

    pub fn messages_processed(&self) -> u64 {
        self.inner.messages_processed.load(Ordering::Relaxed)
    }

    pub fn messages_sent(&self) -> u64 {
        self.inner.messages_sent.load(Ordering::Relaxed)
    }

    pub fn process_errors(&self) -> u64 {
        self.inner.process_errors.load(Ordering::Relaxed)
    }

    pub fn commits(&self) -> u64 {
        self.inner.commits.load(Ordering::Relaxed)
    }

    pub fn window_calls(&self) -> u64 {
        self.inner.window_calls.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_shared_across_clones() {
        let m = TaskMetrics::default();
        let m2 = m.clone();
        m.record_processed(3);
        m2.record_sent(2);
        assert_eq!(m2.messages_processed(), 3);
        assert_eq!(m.messages_sent(), 2);
    }
}
