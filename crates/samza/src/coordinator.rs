//! Job coordination: partition→task grouping and task→container packing.
//!
//! Samza's default `GroupByPartition` grouper: partition *i* of **every**
//! input stream goes to the task named `"Partition i"`. This is what keeps
//! co-partitioned stream-to-relation joins aligned (§4.4: "We assume that
//! change log streams are partitioned in the same way as the other input
//! streams so that data from relations and streams belonging to matching
//! partitions will … end up in the same streaming task").
//!
//! Tasks are then packed round-robin into containers; containers are the
//! unit of placement and failure.

use crate::config::JobConfig;
use crate::error::{Result, SamzaError};
use samzasql_kafka::{Broker, TopicPartition};

/// One task: a name, its partition id, and the input partitions it owns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskModel {
    pub task_name: String,
    pub partition: u32,
    pub input_partitions: Vec<TopicPartition>,
}

/// One container: an id and the tasks packed into it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerModel {
    pub container_id: u32,
    pub tasks: Vec<TaskModel>,
}

/// The full placement of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobModel {
    pub job_name: String,
    pub containers: Vec<ContainerModel>,
}

impl JobModel {
    /// Compute the job model from the configuration and live topic metadata.
    pub fn plan(config: &JobConfig, broker: &Broker) -> Result<JobModel> {
        config.validate()?;
        // Task count = max partition count across inputs (GroupByPartition).
        let mut max_partitions = 0u32;
        let mut input_counts = Vec::with_capacity(config.inputs.len());
        for input in &config.inputs {
            let count = broker.partition_count(&input.topic)?;
            max_partitions = max_partitions.max(count);
            input_counts.push((input.topic.clone(), count));
        }
        if max_partitions == 0 {
            return Err(SamzaError::Config(format!(
                "job {}: inputs have no partitions",
                config.name
            )));
        }
        let mut tasks = Vec::with_capacity(max_partitions as usize);
        for p in 0..max_partitions {
            let input_partitions: Vec<TopicPartition> = input_counts
                .iter()
                .filter(|(_, count)| p < *count)
                .map(|(topic, _)| TopicPartition::new(topic.clone(), p))
                .collect();
            tasks.push(TaskModel {
                task_name: format!("Partition {p}"),
                partition: p,
                input_partitions,
            });
        }
        // Pack tasks round-robin into containers; cap container count at the
        // task count (extra containers would idle — Samza logs and drops
        // them).
        let container_count = config.container_count.min(max_partitions);
        let mut containers: Vec<ContainerModel> = (0..container_count)
            .map(|container_id| ContainerModel {
                container_id,
                tasks: Vec::new(),
            })
            .collect();
        for (i, task) in tasks.into_iter().enumerate() {
            containers[i % container_count as usize].tasks.push(task);
        }
        Ok(JobModel {
            job_name: config.name.clone(),
            containers,
        })
    }

    /// Total number of tasks.
    pub fn task_count(&self) -> usize {
        self.containers.iter().map(|c| c.tasks.len()).sum()
    }

    /// All task models, in partition order.
    pub fn all_tasks(&self) -> Vec<&TaskModel> {
        let mut tasks: Vec<&TaskModel> = self
            .containers
            .iter()
            .flat_map(|c| c.tasks.iter())
            .collect();
        tasks.sort_by_key(|t| t.partition);
        tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InputStreamConfig;
    use samzasql_kafka::TopicConfig;

    fn setup(orders_parts: u32, products_parts: u32) -> (Broker, JobConfig) {
        let b = Broker::new();
        b.create_topic("orders", TopicConfig::with_partitions(orders_parts))
            .unwrap();
        b.create_topic("products", TopicConfig::with_partitions(products_parts))
            .unwrap();
        let cfg = JobConfig::new("j")
            .input(InputStreamConfig::avro("orders"))
            .input(InputStreamConfig::avro("products").bootstrap());
        (b, cfg)
    }

    #[test]
    fn group_by_partition_aligns_inputs() {
        let (b, cfg) = setup(4, 4);
        let model = JobModel::plan(&cfg, &b).unwrap();
        assert_eq!(model.task_count(), 4);
        let tasks = model.all_tasks();
        for (p, task) in tasks.iter().enumerate() {
            assert_eq!(task.partition, p as u32);
            assert_eq!(
                task.input_partitions,
                vec![
                    TopicPartition::new("orders", p as u32),
                    TopicPartition::new("products", p as u32)
                ]
            );
        }
    }

    #[test]
    fn uneven_partition_counts_skip_missing() {
        let (b, cfg) = setup(4, 2);
        let model = JobModel::plan(&cfg, &b).unwrap();
        assert_eq!(model.task_count(), 4);
        let tasks = model.all_tasks();
        assert_eq!(
            tasks[3].input_partitions,
            vec![TopicPartition::new("orders", 3)]
        );
        assert_eq!(tasks[1].input_partitions.len(), 2);
    }

    #[test]
    fn round_robin_container_packing() {
        let (b, cfg) = setup(8, 8);
        let model = JobModel::plan(&cfg.containers(3), &b).unwrap();
        assert_eq!(model.containers.len(), 3);
        let sizes: Vec<usize> = model.containers.iter().map(|c| c.tasks.len()).collect();
        assert_eq!(sizes, vec![3, 3, 2]);
        // Every partition appears exactly once.
        let mut parts: Vec<u32> = model
            .containers
            .iter()
            .flat_map(|c| c.tasks.iter().map(|t| t.partition))
            .collect();
        parts.sort_unstable();
        assert_eq!(parts, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn container_count_capped_at_task_count() {
        let (b, cfg) = setup(2, 2);
        let model = JobModel::plan(&cfg.containers(10), &b).unwrap();
        assert_eq!(model.containers.len(), 2);
    }

    #[test]
    fn unknown_topic_fails_planning() {
        let b = Broker::new();
        let cfg = JobConfig::new("j").input(InputStreamConfig::avro("missing"));
        assert!(JobModel::plan(&cfg, &b).is_err());
    }
}
