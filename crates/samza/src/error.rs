//! Runtime error type.

use samzasql_kafka::KafkaError;
use samzasql_serde::SerdeError;
use std::fmt;

pub type Result<T> = std::result::Result<T, SamzaError>;

/// Errors surfaced by the stream-processing runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SamzaError {
    /// Underlying broker failure.
    Kafka(KafkaError),
    /// Message (de)serialization failure.
    Serde(SerdeError),
    /// Job configuration problems detected before execution.
    Config(String),
    /// A task referenced a store that was not configured.
    UnknownStore(String),
    /// Task-level processing failure (poison message, user-code error).
    Task { task: String, message: String },
    /// Cluster simulation errors (no capacity, unknown job, …).
    Cluster(String),
}

impl fmt::Display for SamzaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamzaError::Kafka(e) => write!(f, "kafka: {e}"),
            SamzaError::Serde(e) => write!(f, "serde: {e}"),
            SamzaError::Config(msg) => write!(f, "config: {msg}"),
            SamzaError::UnknownStore(name) => write!(f, "unknown store: {name}"),
            SamzaError::Task { task, message } => write!(f, "task {task}: {message}"),
            SamzaError::Cluster(msg) => write!(f, "cluster: {msg}"),
        }
    }
}

impl std::error::Error for SamzaError {}

impl From<KafkaError> for SamzaError {
    fn from(e: KafkaError) -> Self {
        SamzaError::Kafka(e)
    }
}

impl From<SerdeError> for SamzaError {
    fn from(e: SerdeError) -> Self {
        SamzaError::Serde(e)
    }
}
