//! Cluster simulation: nodes, per-job application masters, container
//! placement, and failure injection.
//!
//! The paper deploys Samza on YARN; each job gets an application master that
//! "makes scheduling and resource management decisions on behalf of its job"
//! (§2, *Masterless Design*). Here a [`ClusterSim`] holds a set of nodes with
//! container capacities. Submitting a job plans its [`JobModel`], places one
//! thread per container on a node with free capacity, and returns a
//! [`JobHandle`]. Killing a container drops its thread and all in-memory
//! state, then the job's AM reschedules it on another node — the replacement
//! container restores state from changelogs and resumes from the last
//! checkpoint, which is exactly the recovery path §4.3 describes.

use crate::config::JobConfig;
use crate::container::Container;
use crate::coordinator::JobModel;
use crate::error::{Result, SamzaError};
use crate::task::TaskFactory;
use parking_lot::Mutex;
use samzasql_kafka::Broker;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Capacity description of one simulated node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    pub name: String,
    /// Maximum containers this node can host.
    pub container_slots: u32,
}

impl NodeConfig {
    pub fn new(name: impl Into<String>, container_slots: u32) -> Self {
        NodeConfig { name: name.into(), container_slots }
    }
}

#[derive(Debug)]
struct Node {
    config: NodeConfig,
    used_slots: u32,
}

struct RunningContainer {
    node_index: usize,
    stop: Arc<AtomicBool>,
    /// Crash flag: exit immediately without the final commit.
    crash: Arc<AtomicBool>,
    thread: Option<JoinHandle<Result<()>>>,
    /// Messages processed by this container incarnation plus predecessors.
    processed: Arc<AtomicU64>,
    /// Incarnation counter (bumps on every restart).
    generation: u32,
}

struct JobState {
    config: JobConfig,
    model: JobModel,
    factory: Arc<dyn TaskFactory>,
    containers: HashMap<u32, RunningContainer>,
}

/// Handle to a submitted job: observe progress, inject failures, stop it.
#[derive(Clone)]
pub struct JobHandle {
    cluster: ClusterSim,
    job_name: String,
}

/// The simulated cluster (nodes + jobs). Cloneable shared handle.
#[derive(Clone)]
pub struct ClusterSim {
    inner: Arc<Mutex<ClusterState>>,
    broker: Broker,
}

struct ClusterState {
    nodes: Vec<Node>,
    jobs: HashMap<String, JobState>,
}

impl ClusterSim {
    /// Create a cluster over `broker` with the given nodes.
    pub fn new(broker: Broker, nodes: Vec<NodeConfig>) -> Self {
        ClusterSim {
            inner: Arc::new(Mutex::new(ClusterState {
                nodes: nodes.into_iter().map(|config| Node { config, used_slots: 0 }).collect(),
                jobs: HashMap::new(),
            })),
            broker,
        }
    }

    /// A single-node cluster with ample capacity — the common test setup.
    pub fn single_node(broker: Broker) -> Self {
        ClusterSim::new(broker, vec![NodeConfig::new("node-0", 1024)])
    }

    /// Submit a job: plan its model, place containers, start their threads.
    pub fn submit(&self, config: JobConfig, factory: Arc<dyn TaskFactory>) -> Result<JobHandle> {
        let model = JobModel::plan(&config, &self.broker)?;
        let mut st = self.inner.lock();
        if st.jobs.contains_key(&config.name) {
            return Err(SamzaError::Cluster(format!("job {} already running", config.name)));
        }
        let mut job = JobState {
            config: config.clone(),
            model: model.clone(),
            factory,
            containers: HashMap::new(),
        };
        for cm in &model.containers {
            let node_index = Self::find_slot(&mut st.nodes).ok_or_else(|| {
                SamzaError::Cluster(format!(
                    "no node capacity for container {} of job {}",
                    cm.container_id, config.name
                ))
            })?;
            let rc = Self::launch(
                &self.broker,
                &job.config,
                &job.model,
                cm.container_id,
                &*job.factory,
                node_index,
                0,
                Arc::new(AtomicU64::new(0)),
            )?;
            job.containers.insert(cm.container_id, rc);
        }
        let name = config.name.clone();
        st.jobs.insert(name.clone(), job);
        Ok(JobHandle { cluster: self.clone(), job_name: name })
    }

    fn find_slot(nodes: &mut [Node]) -> Option<usize> {
        let idx = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.used_slots < n.config.container_slots)
            .min_by_key(|(_, n)| n.used_slots)
            .map(|(i, _)| i)?;
        nodes[idx].used_slots += 1;
        Some(idx)
    }

    #[allow(clippy::too_many_arguments)]
    fn launch(
        broker: &Broker,
        config: &JobConfig,
        model: &JobModel,
        container_id: u32,
        factory: &dyn TaskFactory,
        node_index: usize,
        generation: u32,
        processed: Arc<AtomicU64>,
    ) -> Result<RunningContainer> {
        let cm = model
            .containers
            .iter()
            .find(|c| c.container_id == container_id)
            .expect("container id from model")
            .clone();
        let mut container = Container::new(broker.clone(), config.clone(), cm, factory)?;
        let stop = Arc::new(AtomicBool::new(false));
        let crash = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let crash2 = crash.clone();
        let processed2 = processed.clone();
        let thread = std::thread::Builder::new()
            .name(format!("{}-c{}-g{}", config.name, container_id, generation))
            .spawn(move || -> Result<()> {
                container.init()?;
                while !stop2.load(Ordering::Relaxed) && !crash2.load(Ordering::Relaxed) {
                    let n = container.step()?;
                    processed2.fetch_add(n, Ordering::Relaxed);
                    if n == 0 {
                        // Idle: yield instead of spinning hot.
                        std::thread::yield_now();
                    }
                }
                if !crash2.load(Ordering::Relaxed) {
                    container.commit_all()?;
                }
                Ok(())
            })
            .expect("spawn container thread");
        Ok(RunningContainer { node_index, stop, crash, thread: Some(thread), processed, generation })
    }

    /// Kill a container (simulated node/process failure): its thread is
    /// stopped *without* a final commit, its in-memory state discarded, and a
    /// replacement container is scheduled, restoring from changelog +
    /// checkpoint.
    pub fn kill_and_restart_container(&self, job_name: &str, container_id: u32) -> Result<()> {
        // Phase 1: take the dying container out under the lock.
        let (crash, thread, processed, node_index, generation) = {
            let mut st = self.inner.lock();
            let job = st
                .jobs
                .get_mut(job_name)
                .ok_or_else(|| SamzaError::Cluster(format!("unknown job {job_name}")))?;
            let rc = job.containers.remove(&container_id).ok_or_else(|| {
                SamzaError::Cluster(format!("unknown container {container_id} of {job_name}"))
            })?;
            st.nodes[rc.node_index].used_slots -= 1;
            (rc.crash, rc.thread, rc.processed, rc.node_index, rc.generation)
        };
        // Abrupt kill: the crash flag makes the thread exit WITHOUT its
        // final commit, so uncheckpointed progress is genuinely lost and
        // must be replayed by the replacement. Heap state drops with the
        // container.
        crash.store(true, Ordering::Relaxed);
        if let Some(t) = thread {
            let _ = t.join();
        }
        let _ = node_index;
        // Phase 2: reschedule on (possibly another) node.
        let mut st = self.inner.lock();
        let st_ref = &mut *st;
        let job = st_ref
            .jobs
            .get_mut(job_name)
            .ok_or_else(|| SamzaError::Cluster(format!("job {job_name} vanished")))?;
        let new_node = Self::find_slot(&mut st_ref.nodes)
            .ok_or_else(|| SamzaError::Cluster("no capacity for restart".into()))?;
        let rc = Self::launch(
            &self.broker,
            &job.config,
            &job.model,
            container_id,
            &*job.factory,
            new_node,
            generation + 1,
            processed,
        )?;
        job.containers.insert(container_id, rc);
        Ok(())
    }

    /// Stop a job cleanly: signal every container, join threads, free slots.
    pub fn stop_job(&self, job_name: &str) -> Result<()> {
        let containers = {
            let mut st = self.inner.lock();
            let job = st
                .jobs
                .remove(job_name)
                .ok_or_else(|| SamzaError::Cluster(format!("unknown job {job_name}")))?;
            for rc in job.containers.values() {
                st.nodes[rc.node_index].used_slots -= 1;
            }
            job.containers
        };
        for (_, mut rc) in containers {
            rc.stop.store(true, Ordering::Relaxed);
            if let Some(t) = rc.thread.take() {
                t.join()
                    .map_err(|_| SamzaError::Cluster("container thread panicked".into()))??;
            }
        }
        Ok(())
    }

    /// Total messages processed by a job so far (across restarts).
    pub fn job_processed(&self, job_name: &str) -> u64 {
        let st = self.inner.lock();
        st.jobs
            .get(job_name)
            .map(|j| j.containers.values().map(|c| c.processed.load(Ordering::Relaxed)).sum())
            .unwrap_or(0)
    }

    /// Names of running jobs, sorted.
    pub fn running_jobs(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.lock().jobs.keys().cloned().collect();
        names.sort();
        names
    }

    /// Used slots per node (diagnostics).
    pub fn node_usage(&self) -> Vec<(String, u32, u32)> {
        self.inner
            .lock()
            .nodes
            .iter()
            .map(|n| (n.config.name.clone(), n.used_slots, n.config.container_slots))
            .collect()
    }

    /// The broker this cluster executes against.
    pub fn broker(&self) -> &Broker {
        &self.broker
    }
}

impl JobHandle {
    /// Messages processed so far.
    pub fn processed(&self) -> u64 {
        self.cluster.job_processed(&self.job_name)
    }

    /// Kill + restart one container.
    pub fn kill_container(&self, container_id: u32) -> Result<()> {
        self.cluster.kill_and_restart_container(&self.job_name, container_id)
    }

    /// Stop the job and join its containers.
    pub fn stop(self) -> Result<()> {
        self.cluster.stop_job(&self.job_name)
    }

    /// Job name.
    pub fn name(&self) -> &str {
        &self.job_name
    }
}

impl std::fmt::Debug for ClusterSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSim")
            .field("jobs", &self.running_jobs())
            .field("nodes", &self.node_usage())
            .finish()
    }
}
