//! Cluster simulation: nodes, per-job application masters, container
//! placement, and failure injection.
//!
//! The paper deploys Samza on YARN with ZooKeeper; each job gets an
//! application master that "makes scheduling and resource management
//! decisions on behalf of its job" (§2, *Masterless Design*). Here a
//! [`ClusterSim`] holds a set of nodes with container capacities. Submitting
//! a job plans its [`JobModel`], publishes the model under
//! `/samza/jobs/<job>/model` in the coordination service, places one thread
//! per container on a node with free capacity, and returns a [`JobHandle`].
//!
//! **Liveness is coordination-driven.** Every container incarnation owns a
//! coordination session (heartbeated from the container thread) and an
//! ephemeral znode `/samza/jobs/<job>/containers/<id>`. The job's AM arms an
//! existence watch on that node; when the session expires — crash,
//! force-expiry, dropped heartbeats — the node vanishes, the watch fires,
//! and the AM reschedules the container on a node with capacity. The
//! replacement restores state from changelogs and resumes from the last
//! checkpoint, which is exactly the recovery path §4.3 describes.

use crate::config::JobConfig;
use crate::container::Container;
use crate::coordinator::JobModel;
use crate::error::{Result, SamzaError};
use crate::task::TaskFactory;
use parking_lot::Mutex;
use samzasql_coord::{Coord, CoordError, CreateMode, EventKind, SessionId};
use samzasql_kafka::Broker;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;

/// Session timeout for container liveness. The coordination clock is manual,
/// so sessions only expire when a test advances it or force-expires them;
/// the generous value keeps `advance`-driven consumer-group tests from
/// collaterally killing containers.
pub(crate) const CONTAINER_SESSION_TIMEOUT_MS: u64 = 60_000;

/// Capacity description of one simulated node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    pub name: String,
    /// Maximum containers this node can host.
    pub container_slots: u32,
}

impl NodeConfig {
    pub fn new(name: impl Into<String>, container_slots: u32) -> Self {
        NodeConfig {
            name: name.into(),
            container_slots,
        }
    }
}

#[derive(Debug)]
struct Node {
    config: NodeConfig,
    used_slots: u32,
}

struct RunningContainer {
    node_index: usize,
    stop: Arc<AtomicBool>,
    /// Crash flag: exit immediately without the final commit.
    crash: Arc<AtomicBool>,
    thread: Option<JoinHandle<Result<()>>>,
    /// Messages processed by this container incarnation plus predecessors.
    processed: Arc<AtomicU64>,
    /// Incarnation counter (bumps on every restart).
    generation: u32,
    /// Coordination session whose ephemeral node advertises liveness.
    session: SessionId,
}

struct JobState {
    config: JobConfig,
    model: JobModel,
    factory: Arc<dyn TaskFactory>,
    containers: HashMap<u32, RunningContainer>,
}

/// Handle to a submitted job: observe progress, inject failures, stop it.
#[derive(Clone)]
pub struct JobHandle {
    cluster: ClusterSim,
    job_name: String,
}

/// The simulated cluster (nodes + jobs). Cloneable shared handle.
#[derive(Clone)]
pub struct ClusterSim {
    inner: Arc<Mutex<ClusterState>>,
    broker: Broker,
    coord: Coord,
}

struct ClusterState {
    nodes: Vec<Node>,
    jobs: HashMap<String, JobState>,
    /// When set, every launched container (including respawns) publishes
    /// its task/retry counters into this registry.
    obs: Option<samzasql_obs::MetricsRegistry>,
}

fn coord_err(e: CoordError) -> SamzaError {
    SamzaError::Cluster(format!("coordination: {e}"))
}

/// Minimal JSON string escaping for names/topics embedded in znode payloads.
fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serialize a job model as JSON for `/samza/jobs/<job>/model`. Hand-rolled
/// so this crate does not grow a serializer dependency for one payload.
fn model_json(model: &JobModel) -> String {
    let containers: Vec<String> = model
        .containers
        .iter()
        .map(|c| {
            let tasks: Vec<String> = c
                .tasks
                .iter()
                .map(|t| {
                    format!(
                        "{{\"name\":\"{}\",\"partition\":{}}}",
                        escape_json(&t.task_name),
                        t.partition
                    )
                })
                .collect();
            format!(
                "{{\"id\":{},\"tasks\":[{}]}}",
                c.container_id,
                tasks.join(",")
            )
        })
        .collect();
    format!(
        "{{\"job\":\"{}\",\"containers\":[{}]}}",
        escape_json(&model.job_name),
        containers.join(",")
    )
}

impl ClusterSim {
    /// Create a cluster over `broker` with the given nodes and a fresh
    /// coordination service.
    pub fn new(broker: Broker, nodes: Vec<NodeConfig>) -> Self {
        ClusterSim::with_coord(broker, nodes, Coord::new())
    }

    /// Create a cluster sharing an existing coordination service (so tests
    /// can drive expiry and watch the same znode tree the AM uses).
    pub fn with_coord(broker: Broker, nodes: Vec<NodeConfig>, coord: Coord) -> Self {
        ClusterSim {
            inner: Arc::new(Mutex::new(ClusterState {
                nodes: nodes
                    .into_iter()
                    .map(|config| Node {
                        config,
                        used_slots: 0,
                    })
                    .collect(),
                jobs: HashMap::new(),
                obs: None,
            })),
            broker,
            coord,
        }
    }

    /// Route all container metrics (current and future launches, including
    /// crash-recovery respawns) into `registry`.
    pub fn set_metrics_registry(&self, registry: samzasql_obs::MetricsRegistry) {
        self.inner.lock().obs = Some(registry);
    }

    /// A single-node cluster with ample capacity — the common test setup.
    pub fn single_node(broker: Broker) -> Self {
        ClusterSim::new(broker, vec![NodeConfig::new("node-0", 1024)])
    }

    /// The coordination service backing job metadata and liveness.
    pub fn coord(&self) -> &Coord {
        &self.coord
    }

    /// Znode path advertising a container's liveness.
    fn container_path(job_name: &str, container_id: u32) -> String {
        format!("/samza/jobs/{job_name}/containers/{container_id}")
    }

    /// Submit a job: plan its model, publish it to the coordination service,
    /// place containers, start their threads, and arm liveness watches.
    pub fn submit(&self, config: JobConfig, factory: Arc<dyn TaskFactory>) -> Result<JobHandle> {
        let model = JobModel::plan(&config, &self.broker)?;
        // Publish the model and configuration where any container (or an
        // operator poking at the tree) can read them.
        let base = format!("/samza/jobs/{}", config.name);
        self.coord
            .upsert(format!("{base}/model"), model_json(&model))
            .map_err(coord_err)?;
        self.coord
            .upsert(
                format!("{base}/config"),
                format!(
                    "{{\"name\":\"{}\",\"containers\":{}}}",
                    escape_json(&config.name),
                    model.containers.len()
                ),
            )
            .map_err(coord_err)?;

        let mut registrations = Vec::new();
        {
            let mut st = self.inner.lock();
            if st.jobs.contains_key(&config.name) {
                return Err(SamzaError::Cluster(format!(
                    "job {} already running",
                    config.name
                )));
            }
            let obs = st.obs.clone();
            let mut job = JobState {
                config: config.clone(),
                model: model.clone(),
                factory,
                containers: HashMap::new(),
            };
            for cm in &model.containers {
                let node_index = Self::find_slot(&mut st.nodes).ok_or_else(|| {
                    SamzaError::Cluster(format!(
                        "no node capacity for container {} of job {}",
                        cm.container_id, config.name
                    ))
                })?;
                let session = self.coord.create_session(CONTAINER_SESSION_TIMEOUT_MS);
                let rc = Self::launch(
                    &self.broker,
                    &self.coord,
                    session,
                    &job.config,
                    &job.model,
                    cm.container_id,
                    &*job.factory,
                    node_index,
                    0,
                    Arc::new(AtomicU64::new(0)),
                    obs.as_ref(),
                )?;
                job.containers.insert(cm.container_id, rc);
                registrations.push((cm.container_id, session, 0u32));
            }
            st.jobs.insert(config.name.clone(), job);
        }
        // Outside the cluster lock: creating znodes delivers watch events,
        // and their callbacks may need that lock.
        for (container_id, session, generation) in registrations {
            self.register_liveness(&config.name, container_id, session, generation);
        }
        Ok(JobHandle {
            cluster: self.clone(),
            job_name: config.name,
        })
    }

    fn find_slot(nodes: &mut [Node]) -> Option<usize> {
        let idx = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.used_slots < n.config.container_slots)
            .min_by_key(|(_, n)| n.used_slots)
            .map(|(i, _)| i)?;
        nodes[idx].used_slots += 1;
        Some(idx)
    }

    #[allow(clippy::too_many_arguments)]
    fn launch(
        broker: &Broker,
        coord: &Coord,
        session: SessionId,
        config: &JobConfig,
        model: &JobModel,
        container_id: u32,
        factory: &dyn TaskFactory,
        node_index: usize,
        generation: u32,
        processed: Arc<AtomicU64>,
        obs: Option<&samzasql_obs::MetricsRegistry>,
    ) -> Result<RunningContainer> {
        let cm = model
            .containers
            .iter()
            .find(|c| c.container_id == container_id)
            .expect("container id from model")
            .clone();
        let mut container = Container::new(broker.clone(), config.clone(), cm, factory)?;
        if let Some(registry) = obs {
            container.bind_obs(registry);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let crash = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let crash2 = crash.clone();
        let processed2 = processed.clone();
        let coord2 = coord.clone();
        let thread = std::thread::Builder::new()
            .name(format!("{}-c{}-g{}", config.name, container_id, generation))
            .spawn(move || -> Result<()> {
                container.init()?;
                while !stop2.load(Ordering::Relaxed) && !crash2.load(Ordering::Relaxed) {
                    // Advertise liveness. A failed heartbeat means the
                    // session already expired — the AM is (or will be)
                    // replacing this incarnation; keep draining until the
                    // crash flag lands rather than racing it.
                    let _ = coord2.heartbeat(session);
                    let n = match container.step() {
                        Ok(n) => n,
                        Err(e) => {
                            // A step error IS a container crash. Retire the
                            // session from a helper thread so the ephemeral
                            // node vanishes and the AM's liveness watch
                            // respawns a replacement; closing it from this
                            // thread would self-deadlock (the watch handler
                            // joins this very thread).
                            let coord3 = coord2.clone();
                            std::thread::spawn(move || {
                                let _ = coord3.close_session(session);
                            });
                            return Err(e);
                        }
                    };
                    processed2.fetch_add(n, Ordering::Relaxed);
                    if n == 0 {
                        // Idle: yield instead of spinning hot.
                        std::thread::yield_now();
                    }
                }
                if !crash2.load(Ordering::Relaxed) {
                    container.commit_all()?;
                }
                Ok(())
            })
            .expect("spawn container thread");
        Ok(RunningContainer {
            node_index,
            stop,
            crash,
            thread: Some(thread),
            processed,
            generation,
            session,
        })
    }

    /// Create the container's ephemeral liveness node and arm the AM's
    /// existence watch on it. Must be called WITHOUT the cluster lock held.
    fn register_liveness(
        &self,
        job_name: &str,
        container_id: u32,
        session: SessionId,
        generation: u32,
    ) {
        let path = Self::container_path(job_name, container_id);
        // The session may already be dead (e.g. force-expired immediately
        // after launch); the watch below still catches the absent node.
        let _ = self.coord.create(
            Some(session),
            path.as_str(),
            generation.to_string(),
            CreateMode::Ephemeral,
        );
        self.arm_liveness_watch(job_name, container_id);
    }

    /// Arm (or re-arm) the one-shot existence watch that turns an ephemeral
    /// node's disappearance into a reschedule.
    fn arm_liveness_watch(&self, job_name: &str, container_id: u32) {
        let path = Self::container_path(job_name, container_id);
        // The callback holds only a weak reference to the cluster state so a
        // dropped cluster does not live on inside the coordination service.
        let weak: Weak<Mutex<ClusterState>> = Arc::downgrade(&self.inner);
        let broker = self.broker.clone();
        let coord = self.coord.clone();
        let job = job_name.to_string();
        let (watch_id, stat) = self.coord.watch_exists_cb(path, move |event| {
            if event.kind != EventKind::NodeDeleted {
                return;
            }
            let Some(inner) = weak.upgrade() else { return };
            let cluster = ClusterSim {
                inner,
                broker: broker.clone(),
                coord: coord.clone(),
            };
            cluster.on_container_node_deleted(&job, container_id);
        });
        if stat.is_none() {
            // The node vanished before the watch was armed (session expired
            // in the creation window). The armed watch would only fire on a
            // future re-creation; cancel it and handle the loss directly.
            self.coord.cancel_watch(watch_id);
            self.on_container_node_deleted(job_name, container_id);
        }
    }

    /// AM reaction to a container's liveness node disappearing: if the
    /// registered incarnation's session is really gone, tear the incarnation
    /// down and reschedule a successor.
    fn on_container_node_deleted(&self, job_name: &str, container_id: u32) {
        // Phase 1: detach the dead incarnation under the lock.
        let mut rc = {
            let mut st = self.inner.lock();
            let Some(job) = st.jobs.get_mut(job_name) else {
                return;
            };
            let Some(rc) = job.containers.get(&container_id) else {
                // Deliberate kill/stop already detached it; nothing to do.
                return;
            };
            if self.coord.session_alive(rc.session) {
                // Stale watch: a newer incarnation already owns the slot.
                return;
            }
            let rc = job.containers.remove(&container_id).expect("present above");
            st.nodes[rc.node_index].used_slots -= 1;
            rc
        };
        // The session died, so the incarnation never commits: crash it.
        rc.crash.store(true, Ordering::Relaxed);
        if let Some(t) = rc.thread.take() {
            let _ = t.join();
        }
        let _ = self.respawn(job_name, container_id, rc.generation + 1, rc.processed);
    }

    /// Schedule a fresh incarnation of a container (new session, new node
    /// placement), then advertise and watch its liveness.
    fn respawn(
        &self,
        job_name: &str,
        container_id: u32,
        generation: u32,
        processed: Arc<AtomicU64>,
    ) -> Result<()> {
        let session = self.coord.create_session(CONTAINER_SESSION_TIMEOUT_MS);
        {
            let mut st = self.inner.lock();
            let st_ref = &mut *st;
            let obs = st_ref.obs.clone();
            let job = st_ref
                .jobs
                .get_mut(job_name)
                .ok_or_else(|| SamzaError::Cluster(format!("job {job_name} vanished")))?;
            let new_node = Self::find_slot(&mut st_ref.nodes)
                .ok_or_else(|| SamzaError::Cluster("no capacity for restart".into()))?;
            let rc = Self::launch(
                &self.broker,
                &self.coord,
                session,
                &job.config,
                &job.model,
                container_id,
                &*job.factory,
                new_node,
                generation,
                processed,
                obs.as_ref(),
            )?;
            job.containers.insert(container_id, rc);
        }
        self.register_liveness(job_name, container_id, session, generation);
        Ok(())
    }

    /// Kill a container (simulated node/process failure): its thread is
    /// stopped *without* a final commit, its in-memory state discarded, and a
    /// replacement container is scheduled, restoring from changelog +
    /// checkpoint.
    pub fn kill_and_restart_container(&self, job_name: &str, container_id: u32) -> Result<()> {
        // Phase 1: take the dying container out under the lock.
        let mut rc = {
            let mut st = self.inner.lock();
            let job = st
                .jobs
                .get_mut(job_name)
                .ok_or_else(|| SamzaError::Cluster(format!("unknown job {job_name}")))?;
            let rc = job.containers.remove(&container_id).ok_or_else(|| {
                SamzaError::Cluster(format!("unknown container {container_id} of {job_name}"))
            })?;
            st.nodes[rc.node_index].used_slots -= 1;
            rc
        };
        // Abrupt kill: the crash flag makes the thread exit WITHOUT its
        // final commit, so uncheckpointed progress is genuinely lost and
        // must be replayed by the replacement. Heap state drops with the
        // container.
        rc.crash.store(true, Ordering::Relaxed);
        if let Some(t) = rc.thread.take() {
            let _ = t.join();
        }
        // Retire the incarnation's session: its ephemeral node disappears
        // and the armed watch fires, but the handler sees the container
        // already detached (removed above) and stands down — this deliberate
        // restart owns the reschedule.
        let _ = self.coord.close_session(rc.session);
        // Phase 2: reschedule on (possibly another) node.
        self.respawn(job_name, container_id, rc.generation + 1, rc.processed)
    }

    /// Stop a job cleanly: signal every container, join threads, retire
    /// their sessions, and drop the job's znode subtree.
    pub fn stop_job(&self, job_name: &str) -> Result<()> {
        let containers = {
            let mut st = self.inner.lock();
            let job = st
                .jobs
                .remove(job_name)
                .ok_or_else(|| SamzaError::Cluster(format!("unknown job {job_name}")))?;
            for rc in job.containers.values() {
                st.nodes[rc.node_index].used_slots -= 1;
            }
            job.containers
        };
        for (_, mut rc) in containers {
            rc.stop.store(true, Ordering::Relaxed);
            if let Some(t) = rc.thread.take() {
                t.join()
                    .map_err(|_| SamzaError::Cluster("container thread panicked".into()))??;
            }
            let _ = self.coord.close_session(rc.session);
        }
        self.coord
            .delete_recursive(format!("/samza/jobs/{job_name}"))
            .map_err(coord_err)?;
        Ok(())
    }

    /// Total messages processed by a job so far (across restarts).
    pub fn job_processed(&self, job_name: &str) -> u64 {
        let st = self.inner.lock();
        st.jobs
            .get(job_name)
            .map(|j| {
                j.containers
                    .values()
                    .map(|c| c.processed.load(Ordering::Relaxed))
                    .sum()
            })
            .unwrap_or(0)
    }

    /// The coordination session of a container's current incarnation.
    pub fn container_session(&self, job_name: &str, container_id: u32) -> Option<SessionId> {
        let st = self.inner.lock();
        st.jobs
            .get(job_name)?
            .containers
            .get(&container_id)
            .map(|rc| rc.session)
    }

    /// The generation (incarnation count) of a container.
    pub fn container_generation(&self, job_name: &str, container_id: u32) -> Option<u32> {
        let st = self.inner.lock();
        st.jobs
            .get(job_name)?
            .containers
            .get(&container_id)
            .map(|rc| rc.generation)
    }

    /// Names of running jobs, sorted.
    pub fn running_jobs(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.lock().jobs.keys().cloned().collect();
        names.sort();
        names
    }

    /// Used slots per node (diagnostics).
    pub fn node_usage(&self) -> Vec<(String, u32, u32)> {
        self.inner
            .lock()
            .nodes
            .iter()
            .map(|n| {
                (
                    n.config.name.clone(),
                    n.used_slots,
                    n.config.container_slots,
                )
            })
            .collect()
    }

    /// The broker this cluster executes against.
    pub fn broker(&self) -> &Broker {
        &self.broker
    }
}

impl JobHandle {
    /// Messages processed so far.
    pub fn processed(&self) -> u64 {
        self.cluster.job_processed(&self.job_name)
    }

    /// Kill + restart one container.
    pub fn kill_container(&self, container_id: u32) -> Result<()> {
        self.cluster
            .kill_and_restart_container(&self.job_name, container_id)
    }

    /// Stop the job and join its containers.
    pub fn stop(self) -> Result<()> {
        self.cluster.stop_job(&self.job_name)
    }

    /// Job name.
    pub fn name(&self) -> &str {
        &self.job_name
    }
}

impl std::fmt::Debug for ClusterSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSim")
            .field("jobs", &self.running_jobs())
            .field("nodes", &self.node_usage())
            .finish()
    }
}
