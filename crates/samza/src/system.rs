//! Message envelopes and the collector handed to tasks.
//!
//! Envelopes carry raw bytes; (de)serialization is the task's concern via
//! configured serdes. This matches the benchmark-relevant reality that the
//! paper profiles: a native filter job can forward the incoming Avro payload
//! *unchanged*, while SamzaSQL's generated operators must decode and
//! re-encode (Figure 4).

use bytes::Bytes;
use samzasql_kafka::TopicPartition;

/// A message delivered to a task, like Samza's `IncomingMessageEnvelope`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncomingMessageEnvelope {
    pub tp: TopicPartition,
    pub offset: u64,
    /// Broker-level event timestamp.
    pub timestamp: i64,
    pub key: Option<Bytes>,
    pub payload: Bytes,
}

/// A message a task wants to send, like Samza's `OutgoingMessageEnvelope`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutgoingMessageEnvelope {
    pub topic: String,
    /// Explicit partition; `None` lets the producer's partitioner decide
    /// (hash of key when present).
    pub partition: Option<u32>,
    pub key: Option<Bytes>,
    pub payload: Bytes,
    pub timestamp: i64,
}

impl OutgoingMessageEnvelope {
    pub fn new(topic: impl Into<String>, payload: impl Into<Bytes>) -> Self {
        OutgoingMessageEnvelope {
            topic: topic.into(),
            partition: None,
            key: None,
            payload: payload.into(),
            timestamp: 0,
        }
    }

    pub fn keyed(mut self, key: impl Into<Bytes>) -> Self {
        self.key = Some(key.into());
        self
    }

    pub fn to_partition(mut self, partition: u32) -> Self {
        self.partition = Some(partition);
        self
    }

    pub fn at(mut self, timestamp: i64) -> Self {
        self.timestamp = timestamp;
        self
    }
}

/// Buffers a task's outgoing messages; the container flushes it to the
/// producer after each process call.
#[derive(Debug, Default)]
pub struct MessageCollector {
    buffered: Vec<OutgoingMessageEnvelope>,
}

impl MessageCollector {
    pub fn new() -> Self {
        MessageCollector::default()
    }

    /// Queue a message for sending.
    pub fn send(&mut self, envelope: OutgoingMessageEnvelope) {
        self.buffered.push(envelope);
    }

    /// Drain everything queued so far.
    pub fn drain(&mut self) -> Vec<OutgoingMessageEnvelope> {
        std::mem::take(&mut self.buffered)
    }

    /// Drain everything queued so far into a caller-owned buffer, reusing
    /// its capacity (the container's flush path).
    pub fn drain_into(&mut self, buf: &mut Vec<OutgoingMessageEnvelope>) {
        buf.append(&mut self.buffered);
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.buffered.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.buffered.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_buffers_and_drains() {
        let mut c = MessageCollector::new();
        assert!(c.is_empty());
        c.send(OutgoingMessageEnvelope::new("out", "a"));
        c.send(
            OutgoingMessageEnvelope::new("out", "b")
                .keyed("k")
                .to_partition(3)
                .at(9),
        );
        assert_eq!(c.len(), 2);
        let drained = c.drain();
        assert_eq!(drained.len(), 2);
        assert!(c.is_empty());
        assert_eq!(drained[1].partition, Some(3));
        assert_eq!(drained[1].timestamp, 9);
        assert_eq!(drained[1].key.as_deref(), Some(b"k".as_ref()));
    }
}
