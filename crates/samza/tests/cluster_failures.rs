//! Cluster-simulation tests: job submission, parallel containers, failure
//! injection with state restore, and job isolation.

use samzasql_kafka::{Broker, Message, TopicConfig};
use samzasql_samza::{
    ClusterSim, IncomingMessageEnvelope, InputStreamConfig, JobConfig, MessageCollector,
    NodeConfig, OutgoingMessageEnvelope, OutputStreamConfig, Result, StoreConfig, StreamTask,
    TaskContext, TaskCoordinator, TaskFactory,
};
use samzasql_serde::SerdeFormat;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Echo;
impl StreamTask for Echo {
    fn process(
        &mut self,
        envelope: &IncomingMessageEnvelope,
        _ctx: &mut TaskContext,
        collector: &mut MessageCollector,
        _coordinator: &mut TaskCoordinator,
    ) -> Result<()> {
        collector.send(OutgoingMessageEnvelope::new(
            "out",
            envelope.payload.clone(),
        ));
        Ok(())
    }
}

struct EchoFactory;
impl TaskFactory for EchoFactory {
    fn create(&self, _partition: u32) -> Box<dyn StreamTask> {
        Box::new(Echo)
    }
}

fn wait_for<F: Fn() -> bool>(cond: F, timeout: Duration, what: &str) {
    let start = Instant::now();
    while !cond() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn count_topic(broker: &Broker, topic: &str) -> u64 {
    let parts = broker.partition_count(topic).unwrap();
    (0..parts)
        .map(|p| broker.end_offset(topic, p).unwrap())
        .sum()
}

#[test]
fn submitted_job_processes_live_traffic() {
    let broker = Broker::new();
    broker
        .create_topic("in", TopicConfig::with_partitions(4))
        .unwrap();
    broker
        .create_topic("out", TopicConfig::with_partitions(4))
        .unwrap();
    let cluster = ClusterSim::single_node(broker.clone());
    let cfg = JobConfig::new("echo")
        .input(InputStreamConfig::avro("in"))
        .output(OutputStreamConfig::avro("out"))
        .containers(2);
    let handle = cluster.submit(cfg, Arc::new(EchoFactory)).unwrap();

    for i in 0..200u32 {
        broker
            .produce("in", i % 4, Message::new(format!("{i}")))
            .unwrap();
    }
    wait_for(
        || handle.processed() >= 200,
        Duration::from_secs(10),
        "200 messages processed",
    );
    handle.stop().unwrap();
    assert_eq!(count_topic(&broker, "out"), 200);
}

#[test]
fn duplicate_job_submission_rejected() {
    let broker = Broker::new();
    broker
        .create_topic("in", TopicConfig::with_partitions(1))
        .unwrap();
    let cluster = ClusterSim::single_node(broker);
    let cfg = JobConfig::new("dup").input(InputStreamConfig::avro("in"));
    let h = cluster.submit(cfg.clone(), Arc::new(EchoFactory)).unwrap();
    assert!(cluster.submit(cfg, Arc::new(EchoFactory)).is_err());
    h.stop().unwrap();
}

#[test]
fn capacity_limits_are_enforced() {
    let broker = Broker::new();
    broker
        .create_topic("in", TopicConfig::with_partitions(4))
        .unwrap();
    let cluster = ClusterSim::new(broker, vec![NodeConfig::new("tiny", 1)]);
    let cfg = JobConfig::new("big")
        .input(InputStreamConfig::avro("in"))
        .containers(4);
    assert!(cluster.submit(cfg, Arc::new(EchoFactory)).is_err());
}

#[test]
fn jobs_are_isolated() {
    // Two jobs; stopping one leaves the other running (masterless design).
    let broker = Broker::new();
    broker
        .create_topic("in1", TopicConfig::with_partitions(1))
        .unwrap();
    broker
        .create_topic("in2", TopicConfig::with_partitions(1))
        .unwrap();
    broker
        .create_topic("out", TopicConfig::with_partitions(1))
        .unwrap();
    let cluster = ClusterSim::single_node(broker.clone());
    let h1 = cluster
        .submit(
            JobConfig::new("j1")
                .input(InputStreamConfig::avro("in1"))
                .output(OutputStreamConfig::avro("out")),
            Arc::new(EchoFactory),
        )
        .unwrap();
    let h2 = cluster
        .submit(
            JobConfig::new("j2")
                .input(InputStreamConfig::avro("in2"))
                .output(OutputStreamConfig::avro("out")),
            Arc::new(EchoFactory),
        )
        .unwrap();
    h1.stop().unwrap();
    broker
        .produce("in2", 0, Message::new("still alive"))
        .unwrap();
    wait_for(
        || h2.processed() >= 1,
        Duration::from_secs(10),
        "j2 processes after j1 stops",
    );
    assert_eq!(cluster.running_jobs(), vec!["j2".to_string()]);
    h2.stop().unwrap();
}

/// Stateful counter task used to verify state restoration across a kill.
struct Counter;
impl StreamTask for Counter {
    fn process(
        &mut self,
        envelope: &IncomingMessageEnvelope,
        ctx: &mut TaskContext,
        collector: &mut MessageCollector,
        _coordinator: &mut TaskCoordinator,
    ) -> Result<()> {
        let key = envelope.key.clone().expect("keyed input");
        let store = ctx.store_mut("c")?;
        let n = store
            .get(&key)
            .map(|b| u64::from_le_bytes(b.as_ref().try_into().expect("8")))
            .unwrap_or(0)
            + 1;
        store.put(&key, bytes::Bytes::copy_from_slice(&n.to_le_bytes()))?;
        collector.send(OutgoingMessageEnvelope::new("out", format!("{n}")).keyed(key));
        Ok(())
    }
}

struct CounterFactory;
impl TaskFactory for CounterFactory {
    fn create(&self, _partition: u32) -> Box<dyn StreamTask> {
        Box::new(Counter)
    }
}

#[test]
fn kill_and_restart_restores_state_and_resumes() {
    let broker = Broker::new();
    broker
        .create_topic("in", TopicConfig::with_partitions(1))
        .unwrap();
    broker
        .create_topic("out", TopicConfig::with_partitions(1))
        .unwrap();
    let cluster = ClusterSim::new(
        broker.clone(),
        vec![NodeConfig::new("n0", 4), NodeConfig::new("n1", 4)],
    );
    let mut cfg = JobConfig::new("counter")
        .input(InputStreamConfig::avro("in"))
        .output(OutputStreamConfig::avro("out"))
        .store(StoreConfig::with_changelog(
            "c",
            "counter",
            SerdeFormat::Object,
        ));
    // Commit often so the kill loses little (but possibly some) progress.
    cfg.commit_interval_messages = 1;
    let handle = cluster.submit(cfg, Arc::new(CounterFactory)).unwrap();

    for _ in 0..50 {
        broker.produce("in", 0, Message::keyed("k", "x")).unwrap();
    }
    wait_for(
        || handle.processed() >= 50,
        Duration::from_secs(10),
        "first 50 processed",
    );

    handle.kill_container(0).unwrap();

    for _ in 0..50 {
        broker.produce("in", 0, Message::keyed("k", "x")).unwrap();
    }
    wait_for(
        || handle.processed() >= 100,
        Duration::from_secs(10),
        "remaining 50 processed",
    );
    handle.stop().unwrap();

    // The final count must be exactly 100: the restored store continued from
    // the changelog; replayed messages (if the kill lost a commit) re-derive
    // the same per-message counts because state and input replay from the
    // same consistent point (§4.3's determinism claim).
    let mut last = None;
    let mut off = 0;
    loop {
        let batch = broker.fetch("out", 0, off, 1024).unwrap();
        if batch.records.is_empty() {
            break;
        }
        for r in batch.records {
            off = r.offset + 1;
            last = Some(String::from_utf8(r.message.value.to_vec()).unwrap());
        }
    }
    assert_eq!(last.as_deref(), Some("100"));
}

#[test]
fn killed_container_moves_to_least_loaded_node() {
    let broker = Broker::new();
    broker
        .create_topic("in", TopicConfig::with_partitions(1))
        .unwrap();
    let cluster = ClusterSim::new(
        broker.clone(),
        vec![NodeConfig::new("n0", 2), NodeConfig::new("n1", 2)],
    );
    let handle = cluster
        .submit(
            JobConfig::new("mover").input(InputStreamConfig::avro("in")),
            Arc::new(EchoFactory),
        )
        .unwrap();
    let before: u32 = cluster.node_usage().iter().map(|(_, used, _)| used).sum();
    handle.kill_container(0).unwrap();
    let after: u32 = cluster.node_usage().iter().map(|(_, used, _)| used).sum();
    assert_eq!(before, after, "restart keeps total slot usage constant");
    handle.stop().unwrap();
    let freed: u32 = cluster.node_usage().iter().map(|(_, used, _)| used).sum();
    assert_eq!(freed, 0, "stop frees all slots");
}
