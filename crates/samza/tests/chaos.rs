//! Seeded chaos harness over the paper's four query shapes (ISSUE 4).
//!
//! Each scenario runs a job twice over identical input: once fault-free
//! (the baseline) and once under a seeded fault schedule composing container
//! kills, session expiry, dropped heartbeats, input-leader failover,
//! transient broker errors, and I/O throttling. The chaos run must converge
//! to output equivalent to the baseline after at-least-once dedup — outputs
//! are keyed by the input record's identity (`partition-offset`), so dedup
//! is exact and any replayed emission must carry the identical value
//! (the determinism §4.3 claims).
//!
//! Reproduce a failing schedule with `CHAOS_SEED=<seed> cargo test -p
//! samzasql-samza --test chaos`.

use samzasql_kafka::{Broker, Message, Producer, ReplicationConfig, TopicConfig};
use samzasql_samza::{
    apply_fault, ChaosFault, ChaosScenario, ClusterSim, CommitPoint, Container,
    IncomingMessageEnvelope, InputStreamConfig, JobConfig, JobModel, MessageCollector, NodeConfig,
    OutgoingMessageEnvelope, OutputStreamConfig, Result, ScenarioOptions, StoreConfig, StreamTask,
    TaskContext, TaskCoordinator, TaskFactory,
};
use samzasql_serde::SerdeFormat;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const OUT: &str = "out";
const PARTITIONS: u32 = 2;
/// Stream records produced per partition.
const PER_PART: u64 = 300;
/// Distinct keys in the join relation (broadcast to every partition).
const REL_KEYS: u64 = 20;
/// Ring length of the sliding-window shape.
const WINDOW: usize = 10;

/// Pinned seeds for the CI chaos pass; `CHAOS_SEED` overrides with one seed.
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("CHAOS_SEED must be an unsigned integer")],
        Err(_) => vec![11, 23, 37, 41, 53, 67],
    }
}

/// Deterministic input value stream, shared by baseline and chaos runs.
fn val(p: u32, i: u64) -> i64 {
    ((i * 7 + p as u64 * 13) % 90) as i64
}

/// Output key tying an emission to the input record that produced it.
fn input_id(env: &IncomingMessageEnvelope) -> String {
    format!("{}-{}", env.tp.partition, env.offset)
}

fn parse_i64(bytes: &[u8]) -> i64 {
    std::str::from_utf8(bytes).unwrap().trim().parse().unwrap()
}

fn emit(collector: &mut MessageCollector, env: &IncomingMessageEnvelope, value: String) {
    collector.send(
        OutgoingMessageEnvelope::new(OUT, value)
            .keyed(input_id(env))
            .to_partition(env.tp.partition),
    );
}

// ---------------------------------------------------------------------------
// The four query shapes as stream tasks.
// ---------------------------------------------------------------------------

/// `SELECT * FROM in WHERE v % 3 = 0`
struct FilterTask;
impl StreamTask for FilterTask {
    fn process(
        &mut self,
        env: &IncomingMessageEnvelope,
        _ctx: &mut TaskContext,
        collector: &mut MessageCollector,
        _coordinator: &mut TaskCoordinator,
    ) -> Result<()> {
        let v = parse_i64(&env.payload);
        if v % 3 == 0 {
            emit(collector, env, v.to_string());
        }
        Ok(())
    }
}

/// `SELECT v * 2 + 1 FROM in`
struct ProjectTask;
impl StreamTask for ProjectTask {
    fn process(
        &mut self,
        env: &IncomingMessageEnvelope,
        _ctx: &mut TaskContext,
        collector: &mut MessageCollector,
        _coordinator: &mut TaskCoordinator,
    ) -> Result<()> {
        let v = parse_i64(&env.payload);
        emit(collector, env, (v * 2 + 1).to_string());
        Ok(())
    }
}

/// Sliding sum over the last [`WINDOW`] rows per partition, with the ring
/// held in a changelog-backed store — the shape whose recovery exercises
/// state restore plus input replay.
struct WindowTask;
impl StreamTask for WindowTask {
    fn process(
        &mut self,
        env: &IncomingMessageEnvelope,
        ctx: &mut TaskContext,
        collector: &mut MessageCollector,
        _coordinator: &mut TaskCoordinator,
    ) -> Result<()> {
        let v = parse_i64(&env.payload);
        let store = ctx.store_mut("win")?;
        let mut ring: Vec<i64> = match store.get(b"ring") {
            Some(bytes) => std::str::from_utf8(&bytes)
                .unwrap()
                .split(',')
                .map(|s| s.parse().unwrap())
                .collect(),
            None => Vec::new(),
        };
        ring.push(v);
        if ring.len() > WINDOW {
            ring.remove(0);
        }
        let sum: i64 = ring.iter().sum();
        let encoded = ring
            .iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",");
        store.put(b"ring", encoded.into())?;
        emit(collector, env, sum.to_string());
        Ok(())
    }
}

/// Stream-to-relation join: the `rel` bootstrap input (re-read in full on
/// every restart) builds an in-memory relation; `orders` rows join on it.
#[derive(Default)]
struct JoinTask {
    relation: BTreeMap<String, String>,
}
impl StreamTask for JoinTask {
    fn process(
        &mut self,
        env: &IncomingMessageEnvelope,
        _ctx: &mut TaskContext,
        collector: &mut MessageCollector,
        _coordinator: &mut TaskCoordinator,
    ) -> Result<()> {
        let text = std::str::from_utf8(&env.payload).unwrap().to_string();
        let (left, right) = text.split_once(',').unwrap();
        if env.tp.topic == "rel" {
            self.relation.insert(left.to_string(), right.to_string());
        } else {
            let name = self.relation.get(left).cloned().unwrap_or("?".into());
            emit(collector, env, format!("{name}:{right}"));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    Filter,
    Project,
    Window,
    Join,
}

impl Shape {
    fn factory(self) -> Arc<dyn TaskFactory> {
        match self {
            Shape::Filter => Arc::new(|_p: u32| -> Box<dyn StreamTask> { Box::new(FilterTask) }),
            Shape::Project => Arc::new(|_p: u32| -> Box<dyn StreamTask> { Box::new(ProjectTask) }),
            Shape::Window => Arc::new(|_p: u32| -> Box<dyn StreamTask> { Box::new(WindowTask) }),
            Shape::Join => {
                Arc::new(|_p: u32| -> Box<dyn StreamTask> { Box::new(JoinTask::default()) })
            }
        }
    }

    /// The non-bootstrap input the driver streams records into.
    fn stream_topic(self) -> &'static str {
        match self {
            Shape::Join => "orders",
            _ => "in",
        }
    }

    /// All input topics (leader-failover targets).
    fn inputs(self) -> Vec<String> {
        match self {
            Shape::Join => vec!["orders".into(), "rel".into()],
            _ => vec!["in".into()],
        }
    }

    fn config(self, job: &str) -> JobConfig {
        let mut cfg = JobConfig::new(job)
            .output(OutputStreamConfig::avro(OUT))
            .containers(PARTITIONS);
        cfg.commit_interval_messages = 16;
        match self {
            Shape::Join => cfg
                .input(InputStreamConfig::avro("rel").bootstrap())
                .input(InputStreamConfig::avro("orders")),
            Shape::Window => cfg
                .input(InputStreamConfig::avro("in"))
                .store(StoreConfig::with_changelog("win", job, SerdeFormat::Object)),
            _ => cfg.input(InputStreamConfig::avro("in")),
        }
    }

    /// Payload of the `i`-th stream record on partition `p`.
    fn payload(self, p: u32, i: u64) -> String {
        match self {
            Shape::Join => format!("{},{}", (i + p as u64) % REL_KEYS, val(p, i)),
            _ => val(p, i).to_string(),
        }
    }

    /// How many distinct output keys a complete run must produce.
    fn expected_keys(self) -> usize {
        match self {
            Shape::Filter => (0..PARTITIONS)
                .map(|p| (0..PER_PART).filter(|&i| val(p, i) % 3 == 0).count())
                .sum(),
            _ => (PARTITIONS as u64 * PER_PART) as usize,
        }
    }
}

// ---------------------------------------------------------------------------
// Harness plumbing.
// ---------------------------------------------------------------------------

fn replicated(partitions: u32) -> TopicConfig {
    TopicConfig::with_partitions(partitions).replication(ReplicationConfig {
        replication_factor: 3,
        min_insync_replicas: 2,
        records_per_tick: 4096,
        max_lag_records: 1_000_000,
        election_ticks: 2,
    })
}

/// Fresh broker + two-node cluster with the shape's topics created; the
/// join relation is produced (broadcast) up front, like a bounded table.
fn setup(shape: Shape) -> (Broker, ClusterSim) {
    let broker = Broker::new();
    broker
        .create_topic(shape.stream_topic(), replicated(PARTITIONS))
        .unwrap();
    broker
        .create_topic(OUT, TopicConfig::with_partitions(PARTITIONS))
        .unwrap();
    if shape == Shape::Join {
        broker.create_topic("rel", replicated(PARTITIONS)).unwrap();
        for p in 0..PARTITIONS {
            for k in 0..REL_KEYS {
                broker
                    .produce("rel", p, Message::new(format!("{k},n{k}")))
                    .unwrap();
            }
        }
        broker.replication_tick();
    }
    let cluster = ClusterSim::new(
        broker.clone(),
        vec![NodeConfig::new("n0", 8), NodeConfig::new("n1", 8)],
    );
    (broker, cluster)
}

/// Read the whole output topic, deduping at-least-once replays by keeping
/// the FIRST emission per input id (what a deduping downstream consumer
/// sees). With `strict`, any replayed emission must carry a value identical
/// to the first — true whenever crash recovery restores a state/checkpoint
/// pair from the same commit, i.e. for every fault except a surgical crash
/// between changelog flush and checkpoint write.
fn read_output(broker: &Broker, strict: bool) -> BTreeMap<String, String> {
    // The reader rides out injected broker faults like any other client.
    let retrier = samzasql_kafka::Retrier::default();
    let mut seen: BTreeMap<String, String> = BTreeMap::new();
    for p in 0..broker.partition_count(OUT).unwrap() {
        let end = broker.end_offset(OUT, p).unwrap();
        let mut offset = broker.start_offset(OUT, p).unwrap();
        while offset < end {
            let batch = retrier.run(|| broker.fetch(OUT, p, offset, 1024)).unwrap();
            if batch.records.is_empty() {
                break;
            }
            for rec in &batch.records {
                offset = rec.offset + 1;
                let key = String::from_utf8(rec.message.key.clone().unwrap().to_vec()).unwrap();
                let value = String::from_utf8(rec.message.value.to_vec()).unwrap();
                if let Some(prior) = seen.get(&key) {
                    if strict {
                        assert_eq!(
                            prior, &value,
                            "replayed emission for input {key} diverged — recovery is not \
                             deterministic"
                        );
                    }
                } else {
                    seen.insert(key, value);
                }
            }
        }
    }
    seen
}

fn dedup_output(broker: &Broker) -> BTreeMap<String, String> {
    read_output(broker, true)
}

/// Run one shape to completion, optionally under a chaos schedule, and
/// return the deduped output. Input is streamed in chunks so fault events
/// (keyed to messages processed) genuinely interleave with processing.
fn run_shape(
    shape: Shape,
    seed: u64,
    scenario: Option<&ChaosScenario>,
) -> BTreeMap<String, String> {
    let (broker, cluster) = setup(shape);
    let mode = if scenario.is_some() { "chaos" } else { "base" };
    let job = format!("{shape:?}-{seed}-{mode}").to_lowercase();
    let handle = cluster.submit(shape.config(&job), shape.factory()).unwrap();

    let producer = Producer::key_hash(broker.clone());
    let inputs = shape.inputs();
    let no_events = [];
    let events = scenario.map_or(&no_events[..], |s| &s.events[..]);
    let expected = shape.expected_keys();

    let deadline = Instant::now() + Duration::from_secs(120);
    let mut produced = 0u64;
    let mut next_event = 0usize;
    let mut last_processed = 0u64;
    let mut stalled_rounds = 0u32;
    const CHUNK: u64 = 25;
    loop {
        assert!(
            Instant::now() < deadline,
            "seed {seed} shape {shape:?}: no convergence \
             (produced {produced}/{PER_PART}, events {next_event}/{}, \
             output {}/{expected})",
            events.len(),
            dedup_output(&broker).len(),
        );
        if produced < PER_PART {
            for i in produced..(produced + CHUNK).min(PER_PART) {
                for p in 0..PARTITIONS {
                    producer
                        .send_to(shape.stream_topic(), p, Message::new(shape.payload(p, i)))
                        .unwrap();
                }
            }
            produced = (produced + CHUNK).min(PER_PART);
        }
        // Replication must keep pace or consumers stall at the high
        // watermark; the tick also drives pending leader elections.
        broker.replication_tick();

        let processed = handle.processed();
        stalled_rounds = if processed == last_processed {
            stalled_rounds + 1
        } else {
            0
        };
        last_processed = processed;
        while next_event < events.len()
            && (processed >= events[next_event].after_messages
                // The job drained ahead of the schedule: fire the remaining
                // faults anyway so every scenario applies its full schedule.
                || (produced >= PER_PART && stalled_rounds > 30))
        {
            let fault = &events[next_event].fault;
            if matches!(fault, ChaosFault::KillLeader { .. }) {
                // Let replication catch up first, so failover truncation
                // (acked-but-unreplicated loss) cannot eat input the
                // baseline processed — the equivalence target is recovery,
                // not the broker's (intended) acks=1 loss window.
                for _ in 0..3 {
                    broker.replication_tick();
                }
            }
            apply_fault(&cluster, &job, &inputs, fault).unwrap();
            stalled_rounds = 0;
            next_event += 1;
        }

        if produced >= PER_PART
            && next_event >= events.len()
            && dedup_output(&broker).len() >= expected
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    // Quiesce: heal every standing fault, then stop (final commits).
    broker.set_fault_injector(None);
    broker.set_throttle(None);
    std::thread::sleep(Duration::from_millis(20));
    handle.stop().unwrap();
    dedup_output(&broker)
}

// ---------------------------------------------------------------------------
// The chaos matrix: every shape × every pinned seed.
// ---------------------------------------------------------------------------

fn scenario_for(shape: Shape, seed: u64) -> ChaosScenario {
    ChaosScenario::generate(
        seed,
        &ScenarioOptions {
            events: 6,
            containers: PARTITIONS,
            replicated_inputs: shape.inputs().len(),
            partitions: PARTITIONS,
            first_at: 60,
            gap: 90,
        },
    )
}

fn chaos_matrix(shape: Shape) {
    let baseline = run_shape(shape, 0, None);
    assert_eq!(
        baseline.len(),
        shape.expected_keys(),
        "fault-free baseline must be complete"
    );
    for seed in chaos_seeds() {
        let scenario = scenario_for(shape, seed);
        assert_eq!(
            scenario,
            scenario_for(shape, seed),
            "fault schedule must be identical per seed"
        );
        let chaotic = run_shape(shape, seed, Some(&scenario));
        assert_eq!(
            chaotic, baseline,
            "seed {seed}: recovered output must equal the fault-free baseline \
             after dedup (schedule: {:?})",
            scenario.events
        );
    }
}

#[test]
fn filter_converges_under_chaos() {
    chaos_matrix(Shape::Filter);
}

#[test]
fn project_converges_under_chaos() {
    chaos_matrix(Shape::Project);
}

#[test]
fn sliding_window_converges_under_chaos() {
    chaos_matrix(Shape::Window);
}

#[test]
fn stream_to_relation_join_converges_under_chaos() {
    chaos_matrix(Shape::Join);
}

// ---------------------------------------------------------------------------
// Commit-ordering audit: crash at every boundary of the commit sequence.
// ---------------------------------------------------------------------------

fn crash_cfg(shape: Shape) -> JobConfig {
    let mut cfg = JobConfig::new("commit-crash")
        .input(InputStreamConfig::avro("in"))
        .output(OutputStreamConfig::avro(OUT))
        .containers(1);
    if shape == Shape::Window {
        cfg = cfg.store(StoreConfig::with_changelog(
            "win",
            "commit-crash",
            SerdeFormat::Object,
        ));
    }
    cfg.commit_interval_messages = 16;
    cfg
}

/// Run `shape` in a bare container, crash it at `point` during a commit,
/// restart a fresh incarnation (changelog restore + checkpoint resume), and
/// return (baseline, recovered-first-wins-dedup) output maps. `strict`
/// additionally requires every replayed emission to match the original.
fn crash_at_commit_point(
    shape: Shape,
    point: CommitPoint,
    strict: bool,
) -> (BTreeMap<String, String>, BTreeMap<String, String>) {
    let mk_broker = || {
        let broker = Broker::new();
        broker
            .create_topic("in", TopicConfig::with_partitions(1))
            .unwrap();
        broker
            .create_topic(OUT, TopicConfig::with_partitions(1))
            .unwrap();
        for i in 0..100u64 {
            broker
                .produce("in", 0, Message::new(val(0, i).to_string()))
                .unwrap();
        }
        broker
    };
    let cfg = crash_cfg(shape);
    let factory = shape.factory();

    // Fault-free baseline.
    let clean = mk_broker();
    let model = JobModel::plan(&cfg, &clean).unwrap();
    let mut c = Container::new(
        clean.clone(),
        cfg.clone(),
        model.containers[0].clone(),
        &*factory,
    )
    .unwrap();
    c.run_until_caught_up().unwrap();
    let baseline = dedup_output(&clean);
    assert_eq!(baseline.len(), 100);

    // Crash-at-boundary run.
    let broker = mk_broker();
    let model = JobModel::plan(&cfg, &broker).unwrap();
    let mut doomed = Container::new(
        broker.clone(),
        cfg.clone(),
        model.containers[0].clone(),
        &*factory,
    )
    .unwrap();
    doomed.arm_commit_crash(point);
    let err = doomed
        .run_until_caught_up()
        .expect_err("armed crash must fire");
    assert!(
        err.to_string().contains("injected crash"),
        "unexpected failure: {err}"
    );
    drop(doomed); // heap state dies with the incarnation

    let mut recovered =
        Container::new(broker.clone(), cfg, model.containers[0].clone(), &*factory).unwrap();
    recovered.run_until_caught_up().unwrap();
    (baseline, read_output(&broker, strict))
}

const ALL_POINTS: [CommitPoint; 4] = [
    CommitPoint::BeforeOutputFlush,
    CommitPoint::AfterOutputFlush,
    CommitPoint::AfterChangelogFlush,
    CommitPoint::AfterCheckpoint,
];

/// A stateless task replays identically, so recovery from a crash at EVERY
/// commit boundary is strictly baseline-equivalent — no loss, no divergence.
#[test]
fn stateless_crash_recovery_is_exact_at_every_boundary() {
    for point in ALL_POINTS {
        let (baseline, recovered) = crash_at_commit_point(Shape::Project, point, true);
        assert_eq!(
            recovered, baseline,
            "stateless crash at {point:?} must recover exactly"
        );
    }
}

/// A stateful task recovers a consistent (state, checkpoint) pair — and
/// hence replays identically — at every boundary where the two were written
/// by the same commit.
#[test]
fn stateful_crash_recovery_is_exact_at_consistent_boundaries() {
    for point in [
        CommitPoint::BeforeOutputFlush,
        CommitPoint::AfterOutputFlush,
        CommitPoint::AfterCheckpoint,
    ] {
        let (baseline, recovered) = crash_at_commit_point(Shape::Window, point, true);
        assert_eq!(
            recovered, baseline,
            "stateful crash at {point:?} must recover exactly"
        );
    }
}

/// The one boundary with at-least-once STATE semantics: a crash after the
/// changelog flush but before the checkpoint write leaves durable state
/// *ahead* of the checkpointed positions, so replay double-applies the
/// replayed input to the store (exactly Samza's semantics — changelog-first
/// ordering trades duplicate application for never LOSING state). A
/// deduping consumer keeping the first emission per input id still sees
/// baseline-equivalent output, because the pre-crash emissions were flushed
/// before the changelog.
#[test]
fn stateful_crash_between_changelog_and_checkpoint_is_at_least_once() {
    let (baseline, recovered) =
        crash_at_commit_point(Shape::Window, CommitPoint::AfterChangelogFlush, false);
    assert_eq!(
        recovered, baseline,
        "first-emission dedup must still match the baseline"
    );
}

// ---------------------------------------------------------------------------
// Cluster bookkeeping under repeated chaos.
// ---------------------------------------------------------------------------

/// Repeated kill/respawn cycles must never leak or double-count node slots:
/// after every round the job holds exactly `containers` slots across nodes,
/// each within capacity, and stopping releases them all.
#[test]
fn slot_accounting_survives_repeated_kill_and_respawn() {
    let (broker, cluster) = setup(Shape::Project);
    let handle = cluster
        .submit(Shape::Project.config("slots"), Shape::Project.factory())
        .unwrap();
    for i in 0..60u64 {
        for p in 0..PARTITIONS {
            broker
                .produce("in", p, Message::new(val(p, i).to_string()))
                .unwrap();
        }
    }
    broker.replication_tick();

    let assert_slots = |round: &str| {
        let usage = cluster.node_usage();
        let used: u32 = usage.iter().map(|(_, used, _)| used).sum();
        assert_eq!(
            used, PARTITIONS,
            "round {round}: job must hold exactly {PARTITIONS} slots, usage {usage:?}"
        );
        for (name, used, cap) in &usage {
            assert!(used <= cap, "round {round}: node {name} over capacity");
        }
    };
    assert_slots("initial");
    for round in 0..4 {
        for id in 0..PARTITIONS {
            cluster.kill_and_restart_container("slots", id).unwrap();
            assert_slots(&format!("kill {round}/{id}"));
        }
        let session = cluster
            .container_session("slots", round % PARTITIONS)
            .unwrap();
        cluster.coord().force_expire(session).unwrap();
        assert_slots(&format!("expire {round}"));
        broker.replication_tick();
    }
    handle.stop().unwrap();
    let usage = cluster.node_usage();
    assert!(
        usage.iter().all(|(_, used, _)| *used == 0),
        "stop must release every slot: {usage:?}"
    );
}

/// A task error crashes its container; the AM's liveness watch must respawn
/// a replacement that finishes the job (the step-error recovery path).
#[test]
fn task_error_crashes_container_and_am_respawns_it() {
    use std::sync::atomic::{AtomicBool, Ordering};

    struct FailOnce {
        tripped: Arc<AtomicBool>,
    }
    impl StreamTask for FailOnce {
        fn process(
            &mut self,
            env: &IncomingMessageEnvelope,
            _ctx: &mut TaskContext,
            collector: &mut MessageCollector,
            _coordinator: &mut TaskCoordinator,
        ) -> Result<()> {
            if env.offset == 20 && !self.tripped.swap(true, Ordering::SeqCst) {
                return Err(samzasql_samza::SamzaError::Task {
                    task: "failonce".into(),
                    message: "simulated poison-pill handler bug".into(),
                });
            }
            emit(collector, env, parse_i64(&env.payload).to_string());
            Ok(())
        }
    }

    let broker = Broker::new();
    broker
        .create_topic("in", TopicConfig::with_partitions(1))
        .unwrap();
    broker
        .create_topic(OUT, TopicConfig::with_partitions(1))
        .unwrap();
    let cluster = ClusterSim::single_node(broker.clone());
    let tripped = Arc::new(AtomicBool::new(false));
    let t2 = tripped.clone();
    let factory = move |_p: u32| -> Box<dyn StreamTask> {
        Box::new(FailOnce {
            tripped: t2.clone(),
        })
    };
    let mut cfg = JobConfig::new("failonce")
        .input(InputStreamConfig::avro("in"))
        .output(OutputStreamConfig::avro(OUT));
    cfg.commit_interval_messages = 8;
    let handle = cluster.submit(cfg, Arc::new(factory)).unwrap();

    for i in 0..50u64 {
        broker
            .produce("in", 0, Message::new(i.to_string()))
            .unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while dedup_output(&broker).len() < 50 {
        assert!(
            Instant::now() < deadline,
            "respawned container must finish the job; generation {:?}, output {}",
            cluster.container_generation("failonce", 0),
            dedup_output(&broker).len()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(tripped.load(Ordering::SeqCst));
    assert!(
        cluster.container_generation("failonce", 0).unwrap() >= 1,
        "the failing incarnation must have been replaced"
    );
    handle.stop().unwrap();
}
