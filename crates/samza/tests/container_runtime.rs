//! Integration tests for the container runtime: processing, output routing,
//! bootstrap-stream priority, window triggers, checkpoint/commit behaviour.

use bytes::Bytes;
use samzasql_kafka::{Broker, Message, TopicConfig};
use samzasql_samza::{
    Container, IncomingMessageEnvelope, InputStreamConfig, JobConfig, JobModel, MessageCollector,
    OutgoingMessageEnvelope, OutputStreamConfig, Result, StreamTask, TaskContext, TaskCoordinator,
    TaskFactory,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Forwards every payload to `out`, uppercased, preserving keys.
struct ForwardTask;

impl StreamTask for ForwardTask {
    fn process(
        &mut self,
        envelope: &IncomingMessageEnvelope,
        _ctx: &mut TaskContext,
        collector: &mut MessageCollector,
        _coordinator: &mut TaskCoordinator,
    ) -> Result<()> {
        let text = String::from_utf8(envelope.payload.to_vec()).expect("utf8 payload");
        let mut out = OutgoingMessageEnvelope::new("out", text.to_uppercase());
        if let Some(k) = &envelope.key {
            out = out.keyed(k.clone());
        }
        collector.send(out.at(envelope.timestamp));
        Ok(())
    }
}

struct ForwardFactory;
impl TaskFactory for ForwardFactory {
    fn create(&self, _partition: u32) -> Box<dyn StreamTask> {
        Box::new(ForwardTask)
    }
}

fn drain_topic(broker: &Broker, topic: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let parts = broker.partition_count(topic).unwrap();
    for p in 0..parts {
        let mut off = 0;
        loop {
            let batch = broker.fetch(topic, p, off, 1024).unwrap();
            if batch.records.is_empty() {
                break;
            }
            for r in batch.records {
                off = r.offset + 1;
                out.push((p, String::from_utf8(r.message.value.to_vec()).unwrap()));
            }
        }
    }
    out
}

#[test]
fn container_processes_and_routes_output() {
    let broker = Broker::new();
    broker
        .create_topic("in", TopicConfig::with_partitions(2))
        .unwrap();
    broker
        .create_topic("out", TopicConfig::with_partitions(2))
        .unwrap();
    broker.produce("in", 0, Message::new("a")).unwrap();
    broker.produce("in", 1, Message::new("b")).unwrap();
    broker.produce("in", 0, Message::new("c")).unwrap();

    let cfg = JobConfig::new("fwd")
        .input(InputStreamConfig::avro("in"))
        .output(OutputStreamConfig::avro("out"))
        .containers(1);
    let model = JobModel::plan(&cfg, &broker).unwrap();
    let mut container = Container::new(
        broker.clone(),
        cfg,
        model.containers[0].clone(),
        &ForwardFactory,
    )
    .unwrap();
    let processed = container.run_until_caught_up().unwrap();
    assert_eq!(processed, 3);

    let out = drain_topic(&broker, "out");
    assert_eq!(out.len(), 3);
    // Keyless outputs follow the task partition: partition preserved.
    assert!(out.contains(&(0, "A".to_string())));
    assert!(out.contains(&(1, "B".to_string())));
    assert!(out.contains(&(0, "C".to_string())));
}

#[test]
fn keyed_output_routes_by_key_hash() {
    let broker = Broker::new();
    broker
        .create_topic("in", TopicConfig::with_partitions(1))
        .unwrap();
    broker
        .create_topic("out", TopicConfig::with_partitions(8))
        .unwrap();
    for i in 0..20 {
        broker
            .produce(
                "in",
                0,
                Message::keyed(format!("key-{}", i % 2), format!("m{i}")),
            )
            .unwrap();
    }
    let cfg = JobConfig::new("fwd")
        .input(InputStreamConfig::avro("in"))
        .output(OutputStreamConfig::avro("out"));
    let model = JobModel::plan(&cfg, &broker).unwrap();
    let mut container = Container::new(
        broker.clone(),
        cfg,
        model.containers[0].clone(),
        &ForwardFactory,
    )
    .unwrap();
    container.run_until_caught_up().unwrap();
    // Same key ⇒ same output partition: exactly ≤2 partitions used.
    let parts: std::collections::HashSet<u32> = drain_topic(&broker, "out")
        .into_iter()
        .map(|(p, _)| p)
        .collect();
    assert!(
        parts.len() <= 2,
        "two keys may map to at most two partitions: {parts:?}"
    );
}

/// Records the topic order in which messages arrive, to verify bootstrap
/// priority.
struct OrderRecordingTask {
    seen: Arc<parking_lot::Mutex<Vec<String>>>,
}

impl StreamTask for OrderRecordingTask {
    fn process(
        &mut self,
        envelope: &IncomingMessageEnvelope,
        _ctx: &mut TaskContext,
        _collector: &mut MessageCollector,
        _coordinator: &mut TaskCoordinator,
    ) -> Result<()> {
        self.seen.lock().push(envelope.tp.topic.clone());
        Ok(())
    }
}

#[test]
fn bootstrap_stream_fully_drains_before_other_inputs() {
    let broker = Broker::new();
    broker
        .create_topic("orders", TopicConfig::with_partitions(1))
        .unwrap();
    broker
        .create_topic("products", TopicConfig::with_partitions(1))
        .unwrap();
    for i in 0..50 {
        broker
            .produce("orders", 0, Message::new(format!("o{i}")))
            .unwrap();
        broker
            .produce("products", 0, Message::new(format!("p{i}")))
            .unwrap();
    }
    let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let seen2 = seen.clone();
    let factory = move |_p: u32| -> Box<dyn StreamTask> {
        Box::new(OrderRecordingTask {
            seen: seen2.clone(),
        })
    };
    let cfg = JobConfig::new("join")
        .input(InputStreamConfig::avro("orders"))
        .input(InputStreamConfig::avro("products").bootstrap());
    let model = JobModel::plan(&cfg, &broker).unwrap();
    let mut container =
        Container::new(broker.clone(), cfg, model.containers[0].clone(), &factory).unwrap();
    container.run_until_caught_up().unwrap();

    let order = seen.lock();
    assert_eq!(order.len(), 100);
    let first_orders = order.iter().position(|t| t == "orders").unwrap();
    let last_products_before = order[..first_orders]
        .iter()
        .filter(|t| *t == "products")
        .count();
    assert_eq!(
        last_products_before, 50,
        "all 50 products (bootstrap) must be delivered before the first order"
    );
}

#[test]
fn late_bootstrap_records_still_delivered_after_catchup() {
    // Records appended to a bootstrap stream *after* init flow normally.
    let broker = Broker::new();
    broker
        .create_topic("orders", TopicConfig::with_partitions(1))
        .unwrap();
    broker
        .create_topic("products", TopicConfig::with_partitions(1))
        .unwrap();
    broker.produce("products", 0, Message::new("p0")).unwrap();
    broker.produce("orders", 0, Message::new("o0")).unwrap();

    let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let seen2 = seen.clone();
    let factory = move |_p: u32| -> Box<dyn StreamTask> {
        Box::new(OrderRecordingTask {
            seen: seen2.clone(),
        })
    };
    let cfg = JobConfig::new("join2")
        .input(InputStreamConfig::avro("orders"))
        .input(InputStreamConfig::avro("products").bootstrap());
    let model = JobModel::plan(&cfg, &broker).unwrap();
    let mut container =
        Container::new(broker.clone(), cfg, model.containers[0].clone(), &factory).unwrap();
    container.run_until_caught_up().unwrap();
    // A product update arriving later is consumed like a normal input.
    broker.produce("products", 0, Message::new("p1")).unwrap();
    container.run_until_caught_up().unwrap();
    assert_eq!(seen.lock().len(), 3);
}

/// Counts window() invocations.
struct WindowCountTask {
    windows: Arc<AtomicU64>,
}

impl StreamTask for WindowCountTask {
    fn process(
        &mut self,
        _envelope: &IncomingMessageEnvelope,
        _ctx: &mut TaskContext,
        _collector: &mut MessageCollector,
        _coordinator: &mut TaskCoordinator,
    ) -> Result<()> {
        Ok(())
    }

    fn window(
        &mut self,
        _ctx: &mut TaskContext,
        _collector: &mut MessageCollector,
        _coordinator: &mut TaskCoordinator,
    ) -> Result<()> {
        self.windows.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

#[test]
fn window_fires_on_message_interval() {
    let broker = Broker::new();
    broker
        .create_topic("in", TopicConfig::with_partitions(1))
        .unwrap();
    for i in 0..25 {
        broker
            .produce("in", 0, Message::new(format!("{i}")))
            .unwrap();
    }
    let windows = Arc::new(AtomicU64::new(0));
    let w2 = windows.clone();
    let factory = move |_p: u32| -> Box<dyn StreamTask> {
        Box::new(WindowCountTask {
            windows: w2.clone(),
        })
    };
    let mut cfg = JobConfig::new("win").input(InputStreamConfig::avro("in"));
    cfg.window_interval_messages = 10;
    let model = JobModel::plan(&cfg, &broker).unwrap();
    let mut container =
        Container::new(broker.clone(), cfg, model.containers[0].clone(), &factory).unwrap();
    container.run_until_caught_up().unwrap();
    assert_eq!(
        windows.load(Ordering::Relaxed),
        2,
        "25 messages / interval 10 = 2 windows"
    );
}

#[test]
fn restart_resumes_from_checkpoint_not_from_start() {
    let broker = Broker::new();
    broker
        .create_topic("in", TopicConfig::with_partitions(1))
        .unwrap();
    broker
        .create_topic("out", TopicConfig::with_partitions(1))
        .unwrap();
    for i in 0..10 {
        broker
            .produce("in", 0, Message::new(format!("m{i}")))
            .unwrap();
    }
    let cfg = JobConfig::new("resume")
        .input(InputStreamConfig::avro("in"))
        .output(OutputStreamConfig::avro("out"));
    let model = JobModel::plan(&cfg, &broker).unwrap();

    // First incarnation: process everything and commit.
    let mut c1 = Container::new(
        broker.clone(),
        cfg.clone(),
        model.containers[0].clone(),
        &ForwardFactory,
    )
    .unwrap();
    assert_eq!(c1.run_until_caught_up().unwrap(), 10);
    drop(c1);

    // More input arrives, then a fresh container (simulating restart).
    for i in 10..13 {
        broker
            .produce("in", 0, Message::new(format!("m{i}")))
            .unwrap();
    }
    let mut c2 = Container::new(
        broker.clone(),
        cfg,
        model.containers[0].clone(),
        &ForwardFactory,
    )
    .unwrap();
    let reprocessed = c2.run_until_caught_up().unwrap();
    assert_eq!(reprocessed, 3, "only messages after the checkpoint replay");
    assert_eq!(
        drain_topic(&broker, "out").len(),
        13,
        "no duplicated output"
    );
}

#[test]
fn commit_interval_produces_periodic_checkpoints() {
    let broker = Broker::new();
    broker
        .create_topic("in", TopicConfig::with_partitions(1))
        .unwrap();
    for i in 0..100 {
        broker
            .produce("in", 0, Message::new(format!("{i}")))
            .unwrap();
    }
    let mut cfg = JobConfig::new("commits").input(InputStreamConfig::avro("in"));
    cfg.commit_interval_messages = 25;
    let model = JobModel::plan(&cfg, &broker).unwrap();
    let factory = |_p: u32| -> Box<dyn StreamTask> {
        struct Nop;
        impl StreamTask for Nop {
            fn process(
                &mut self,
                _: &IncomingMessageEnvelope,
                _: &mut TaskContext,
                _: &mut MessageCollector,
                _: &mut TaskCoordinator,
            ) -> Result<()> {
                Ok(())
            }
        }
        Box::new(Nop)
    };
    let mut container =
        Container::new(broker.clone(), cfg, model.containers[0].clone(), &factory).unwrap();
    container.run_until_caught_up().unwrap();
    let m = container.metrics();
    assert!(
        m.commits >= 4,
        "100 msgs / interval 25 → at least 4 commits, got {}",
        m.commits
    );
}

/// Task that uses a changelog-backed store to count per-key occurrences.
struct CountTask;

impl StreamTask for CountTask {
    fn process(
        &mut self,
        envelope: &IncomingMessageEnvelope,
        ctx: &mut TaskContext,
        collector: &mut MessageCollector,
        _coordinator: &mut TaskCoordinator,
    ) -> Result<()> {
        let key = envelope
            .key
            .clone()
            .unwrap_or_else(|| Bytes::from_static(b"_"));
        let store = ctx.store_mut("counts")?;
        let current = store
            .get(&key)
            .map(|b| u64::from_le_bytes(b.as_ref().try_into().expect("8 bytes")))
            .unwrap_or(0);
        let next = current + 1;
        store.put(&key, Bytes::copy_from_slice(&next.to_le_bytes()))?;
        collector.send(OutgoingMessageEnvelope::new("out", format!("{next}")).keyed(key));
        Ok(())
    }
}

#[test]
fn store_state_survives_container_replacement() {
    use samzasql_samza::StoreConfig;
    use samzasql_serde::SerdeFormat;

    let broker = Broker::new();
    broker
        .create_topic("in", TopicConfig::with_partitions(1))
        .unwrap();
    broker
        .create_topic("out", TopicConfig::with_partitions(1))
        .unwrap();
    let cfg = JobConfig::new("counting")
        .input(InputStreamConfig::avro("in"))
        .output(OutputStreamConfig::avro("out"))
        .store(StoreConfig::with_changelog(
            "counts",
            "counting",
            SerdeFormat::Object,
        ));
    let factory = |_p: u32| -> Box<dyn StreamTask> { Box::new(CountTask) };
    let model = JobModel::plan(&cfg, &broker).unwrap();

    for _ in 0..5 {
        broker.produce("in", 0, Message::keyed("k", "x")).unwrap();
    }
    let mut c1 = Container::new(
        broker.clone(),
        cfg.clone(),
        model.containers[0].clone(),
        &factory,
    )
    .unwrap();
    c1.run_until_caught_up().unwrap();
    drop(c1); // container dies; in-memory store gone

    for _ in 0..3 {
        broker.produce("in", 0, Message::keyed("k", "x")).unwrap();
    }
    let mut c2 =
        Container::new(broker.clone(), cfg, model.containers[0].clone(), &factory).unwrap();
    c2.run_until_caught_up().unwrap();

    // The count continued from 5 → final message says 8.
    let out = drain_topic(&broker, "out");
    assert_eq!(
        out.last().unwrap().1,
        "8",
        "restored store continues the count: {out:?}"
    );
}
