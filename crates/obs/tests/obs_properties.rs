//! Property and stress tests for the obs instruments (ISSUE 5 satellite):
//! histogram quantile correctness within the bucket error bound, counter
//! contention from 8 threads, and snapshot determinism under the virtual
//! clock. No test here touches `std::time`.

use std::sync::Arc;
use std::thread;

use proptest::prelude::*;

use samzasql_obs::{
    bucket_index, bucket_upper_bound, render_json_lines, render_prometheus, render_text, Histogram,
    ManualTime, MetricsRegistry, Obs, Stopwatch,
};

/// Exact quantile with the same rank convention the estimator uses:
/// the rank-`ceil(q*n)` order statistic (1-based), clamped to `[1, n]`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    /// For any recorded sample and any quantile, the estimate lands in the
    /// same log bucket as the exact order statistic and never undershoots
    /// it: `exact <= estimate <= bucket_upper_bound(bucket(exact))`.
    #[test]
    fn quantile_estimates_stay_within_bucket_error(
        values in prop::collection::vec(0u64..=1_000_000_000, 1..400),
        qs in prop::collection::vec((0u32..=1000).prop_map(|x| x as f64 / 1000.0), 1..8),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();

        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());

        for &q in &qs {
            let exact = exact_quantile(&sorted, q);
            let est = snap.quantile(q);
            prop_assert!(est >= exact,
                "estimate {} undershoots exact {} at q={}", est, exact, q);
            prop_assert!(est <= bucket_upper_bound(bucket_index(exact)),
                "estimate {} beyond bucket bound of exact {} at q={}", est, exact, q);
            prop_assert_eq!(bucket_index(est), bucket_index(exact));
        }
    }

    /// Bucket arithmetic round-trips: every value falls in the bucket whose
    /// bounds contain it.
    #[test]
    fn bucket_bounds_contain_their_values(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(v <= bucket_upper_bound(i));
        if i > 0 {
            prop_assert!(v > bucket_upper_bound(i - 1));
        }
    }
}

#[test]
fn counter_contention_8_threads() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 100_000;
    let registry = MetricsRegistry::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let c = registry.counter("contended.total", &[]);
            thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        registry.snapshot().counter("contended.total", &[]),
        Some(THREADS as u64 * PER_THREAD)
    );
}

#[test]
fn histogram_contention_preserves_count_and_sum() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 50_000;
    let h = Histogram::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = h.clone();
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t * PER_THREAD + i);
                }
            })
        })
        .collect();
    for j in handles {
        j.join().unwrap();
    }
    let snap = h.snapshot();
    let n = THREADS * PER_THREAD;
    assert_eq!(snap.count, n);
    assert_eq!(snap.sum, n * (n - 1) / 2);
    assert_eq!(snap.max, n - 1);
}

/// The same workload replayed against a fresh registry under the virtual
/// clock yields byte-identical snapshots in all three exporter formats.
#[test]
fn snapshots_are_deterministic_under_virtual_clock() {
    fn run_workload() -> (String, String, String) {
        let clock = Arc::new(ManualTime::new());
        let obs = Obs::with_clock(clock.clone());
        let r = &obs.registry;

        r.counter("kafka.broker.messages_in", &[("broker", "0")])
            .add(128);
        r.gauge("kafka.throttle.credits", &[]).set(4096);
        let lat = r.histogram("samza.task.process_ns", &[("task", "orders-0")]);
        let mut sw = Stopwatch::start(clock.clone());
        for step in [5u64, 50, 500, 5000, 50_000] {
            clock.advance_nanos(step);
            lat.record(sw.lap_nanos());
        }

        let mut span = obs.tracer.span("job");
        clock.advance_nanos(1_000);
        span.event("caught up");
        span.finish();

        let snap = r.snapshot();
        (
            render_text(&snap),
            render_json_lines(&snap),
            render_prometheus(&snap) + &obs.tracer.dump_json_lines(),
        )
    }

    let (t1, j1, p1) = run_workload();
    let (t2, j2, p2) = run_workload();
    assert_eq!(t1, t2);
    assert_eq!(j1, j2);
    assert_eq!(p1, p2);
    // And the rendered prometheus output is structurally valid.
    samzasql_obs::validate_prometheus(p1.split("{\"id\"").next().unwrap()).unwrap();
}
