//! The shared metrics registry.
//!
//! A registry is a cheap cloneable handle to a process-wide table of named,
//! labeled instruments. Call sites either ask the registry to mint an
//! instrument (`counter`/`gauge`/`histogram` are get-or-create) or *adopt*
//! an instrument they already own into the table — the path the legacy
//! `BrokerMetrics`/`TaskMetrics` shims take so their accessors and the
//! registry observe the same atomics.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::instruments::{Counter, Gauge, Histogram, HistogramSnapshot};

/// Sorted `(key, value)` label pairs identifying one instrument series.
pub type Labels = Vec<(String, String)>;

fn normalize(labels: &[(&str, &str)]) -> Labels {
    let mut l: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    l
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// Thread-safe, cloneable registry of instruments keyed by name + labels.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    table: Arc<Mutex<BTreeMap<(String, Labels), Instrument>>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(&self, name: &str, labels: &[(&str, &str)], make: Instrument) -> Instrument {
        let key = (name.to_string(), normalize(labels));
        let mut table = self.table.lock();
        table.entry(key).or_insert(make).clone()
    }

    /// Get or create a counter series.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, labels, Instrument::Counter(Counter::new())) {
            Instrument::Counter(c) => c,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Get or create a gauge series.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, labels, Instrument::Gauge(Gauge::new())) {
            Instrument::Gauge(g) => g,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Get or create a histogram series.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.get_or_insert(name, labels, Instrument::Histogram(Histogram::new())) {
            Instrument::Histogram(h) => h,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Publish an existing counter handle under `name`+`labels`, replacing
    /// any prior series with that identity.
    pub fn adopt_counter(&self, name: &str, labels: &[(&str, &str)], counter: &Counter) {
        self.table.lock().insert(
            (name.to_string(), normalize(labels)),
            Instrument::Counter(counter.clone()),
        );
    }

    /// Publish an existing gauge handle under `name`+`labels`.
    pub fn adopt_gauge(&self, name: &str, labels: &[(&str, &str)], gauge: &Gauge) {
        self.table.lock().insert(
            (name.to_string(), normalize(labels)),
            Instrument::Gauge(gauge.clone()),
        );
    }

    /// Publish an existing histogram handle under `name`+`labels`.
    pub fn adopt_histogram(&self, name: &str, labels: &[(&str, &str)], histogram: &Histogram) {
        self.table.lock().insert(
            (name.to_string(), normalize(labels)),
            Instrument::Histogram(histogram.clone()),
        );
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.table.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.table.lock().is_empty()
    }

    /// Snapshot every series, sorted by (name, labels).
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.snapshot_prefix("")
    }

    /// Snapshot the series whose name starts with `prefix`.
    pub fn snapshot_prefix(&self, prefix: &str) -> RegistrySnapshot {
        let table = self.table.lock();
        let entries = table
            .iter()
            .filter(|((name, _), _)| name.starts_with(prefix))
            .map(|((name, labels), inst)| MetricSnapshot {
                name: name.clone(),
                labels: labels.clone(),
                value: match inst {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                },
            })
            .collect();
        RegistrySnapshot { entries }
    }
}

/// One series' point-in-time value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    // Boxed: a histogram snapshot carries its bucket array and would bloat
    // every counter/gauge entry in a registry snapshot otherwise.
    Histogram(Box<HistogramSnapshot>),
}

/// One series in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    pub name: String,
    pub labels: Labels,
    pub value: MetricValue,
}

/// Ordered snapshot of a registry (or a prefix of it).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    pub entries: Vec<MetricSnapshot>,
}

impl RegistrySnapshot {
    /// Counter value for an exact (name, labels) series, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let want = normalize(labels);
        self.entries.iter().find_map(|e| {
            if e.name == name && e.labels == want {
                match e.value {
                    MetricValue::Counter(v) => Some(v),
                    _ => None,
                }
            } else {
                None
            }
        })
    }

    /// Sum of all counter series sharing `name` regardless of labels.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name == name)
            .map(|e| match e.value {
                MetricValue::Counter(v) => v,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_shared_handles() {
        let r = MetricsRegistry::new();
        let a = r.counter("x.count", &[("task", "0")]);
        let b = r.counter("x.count", &[("task", "0")]);
        a.add(2);
        b.inc();
        assert_eq!(r.snapshot().counter("x.count", &[("task", "0")]), Some(3));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn label_order_is_irrelevant() {
        let r = MetricsRegistry::new();
        r.counter("y", &[("a", "1"), ("b", "2")]).inc();
        r.counter("y", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(r.len(), 1);
        assert_eq!(r.snapshot().counter_sum("y"), 2);
    }

    #[test]
    fn adopted_instruments_publish_live_values() {
        let r = MetricsRegistry::new();
        let c = Counter::new();
        c.add(7);
        r.adopt_counter("adopted", &[], &c);
        c.add(1);
        assert_eq!(r.snapshot().counter("adopted", &[]), Some(8));
    }

    #[test]
    fn prefix_snapshot_filters() {
        let r = MetricsRegistry::new();
        r.counter("kafka.broker.in", &[]).inc();
        r.counter("samza.task.processed", &[]).inc();
        let s = r.snapshot_prefix("kafka.");
        assert_eq!(s.entries.len(), 1);
        assert_eq!(s.entries[0].name, "kafka.broker.in");
    }
}
