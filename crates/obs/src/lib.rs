//! `samzasql-obs`: unified observability for the SamzaSQL workspace.
//!
//! One registry, three instrument kinds, one tracer:
//!
//! - [`MetricsRegistry`] — thread-safe table of named, labeled
//!   [`Counter`]/[`Gauge`]/[`Histogram`] instruments. Instruments are `Arc`
//!   handles: the hot path updates relaxed atomics, the registry snapshots
//!   them on demand. Legacy metric structs (`BrokerMetrics`, `TaskMetrics`,
//!   `RetryMetrics`) *adopt* their counters into a registry so both their
//!   original accessors and `METRICS` see the same values.
//! - [`Tracer`] — hierarchical spans (`job → container → task → operator`)
//!   with structured events, buffered in a bounded ring, dumpable as
//!   line-JSON.
//! - [`TimeSource`] — injected clock ([`MonotonicTime`] in production,
//!   [`ManualTime`] in tests) so no obs test touches `std::time`.
//!
//! Exporters ([`render_text`], [`render_json_lines`], [`render_prometheus`])
//! are deterministic functions of a sorted snapshot. Naming convention:
//! dotted lowercase paths, `<crate>.<component>.<metric>`, e.g.
//! `kafka.broker.messages_in`; identity labels (`job`, `container`, `task`,
//! `op`) go in labels, never in names. See `docs/OBSERVABILITY.md`.

pub mod export;
pub mod instruments;
pub mod registry;
pub mod time;
pub mod trace;

pub use export::{
    json_escape, render_json_lines, render_prometheus, render_text, validate_prometheus,
};
pub use instruments::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot,
    HISTOGRAM_BUCKETS,
};
pub use registry::{Labels, MetricSnapshot, MetricValue, MetricsRegistry, RegistrySnapshot};
pub use time::{ManualTime, MonotonicTime, Stopwatch, TimeSource};
pub use trace::{Span, SpanRecord, Tracer, DEFAULT_RING_CAPACITY};

use std::sync::Arc;

/// Bundle of the observability facilities one process shares: a registry,
/// a tracer, and the clock both draw time from.
#[derive(Debug, Clone)]
pub struct Obs {
    pub registry: MetricsRegistry,
    pub tracer: Tracer,
    pub clock: Arc<dyn TimeSource>,
}

impl Obs {
    /// Production bundle over a monotonic wall clock.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(MonotonicTime::new()))
    }

    /// Bundle over an injected clock (virtual in tests).
    pub fn with_clock(clock: Arc<dyn TimeSource>) -> Self {
        Obs {
            registry: MetricsRegistry::new(),
            tracer: Tracer::new(clock.clone()),
            clock,
        }
    }
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}
