//! Hierarchical tracing spans with a bounded in-memory ring.
//!
//! Spans form a `job → container → task → operator` hierarchy: a handle
//! spawns children, records structured events, and on finish (explicit or
//! on drop) appends a [`SpanRecord`] to the tracer's ring buffer. The ring
//! is bounded — old records fall off — and dumpable as line-JSON for
//! offline inspection. Timing comes from the tracer's [`TimeSource`], so
//! traces are deterministic under [`crate::ManualTime`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::export::json_escape;
use crate::time::TimeSource;

/// Default ring capacity (completed spans retained).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// A completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub id: u64,
    pub parent: Option<u64>,
    /// `/`-joined path from the root span, e.g. `job/container-0/task-2`.
    pub path: String,
    pub start_ns: u64,
    pub dur_ns: u64,
    /// `(offset_ns_from_start, message)` structured events.
    pub events: Vec<(u64, String)>,
}

#[derive(Debug)]
struct TracerInner {
    clock: Arc<dyn TimeSource>,
    next_id: AtomicU64,
    ring: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
}

/// Cloneable handle to a span ring buffer.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    pub fn new(clock: Arc<dyn TimeSource>) -> Self {
        Self::with_capacity(clock, DEFAULT_RING_CAPACITY)
    }

    pub fn with_capacity(clock: Arc<dyn TimeSource>, capacity: usize) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                clock,
                next_id: AtomicU64::new(1),
                ring: Mutex::new(VecDeque::new()),
                capacity: capacity.max(1),
            }),
        }
    }

    /// Open a root span.
    pub fn span(&self, name: &str) -> Span {
        self.open(name.to_string(), None)
    }

    fn open(&self, path: String, parent: Option<u64>) -> Span {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        Span {
            tracer: self.clone(),
            id,
            parent,
            path,
            start_ns: self.inner.clock.now_nanos(),
            events: Vec::new(),
            finished: false,
        }
    }

    fn commit(&self, record: SpanRecord) {
        let mut ring = self.inner.ring.lock();
        if ring.len() == self.inner.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Completed spans currently retained, oldest first.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner.ring.lock().iter().cloned().collect()
    }

    /// Number of completed spans retained.
    pub fn len(&self) -> usize {
        self.inner.ring.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.ring.lock().is_empty()
    }

    /// Drop all retained spans.
    pub fn clear(&self) {
        self.inner.ring.lock().clear();
    }

    /// Dump retained spans as line-JSON, oldest first.
    pub fn dump_json_lines(&self) -> String {
        let mut out = String::new();
        for r in self.inner.ring.lock().iter() {
            let events: Vec<String> = r
                .events
                .iter()
                .map(|(at, msg)| format!("{{\"at_ns\":{at},\"msg\":\"{}\"}}", json_escape(msg)))
                .collect();
            let parent = match r.parent {
                Some(p) => p.to_string(),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "{{\"id\":{},\"parent\":{},\"path\":\"{}\",\"start_ns\":{},\"dur_ns\":{},\"events\":[{}]}}\n",
                r.id,
                parent,
                json_escape(&r.path),
                r.start_ns,
                r.dur_ns,
                events.join(",")
            ));
        }
        out
    }
}

/// An open span. Finishes (and commits to the ring) on [`Span::finish`] or
/// when dropped.
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    id: u64,
    parent: Option<u64>,
    path: String,
    start_ns: u64,
    events: Vec<(u64, String)>,
    finished: bool,
}

impl Span {
    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn path(&self) -> &str {
        &self.path
    }

    /// Open a child span whose path extends this span's.
    pub fn child(&self, name: &str) -> Span {
        self.tracer
            .open(format!("{}/{}", self.path, name), Some(self.id))
    }

    /// Record a structured event at the current clock offset.
    pub fn event(&mut self, msg: &str) {
        let at = self
            .tracer
            .inner
            .clock
            .now_nanos()
            .saturating_sub(self.start_ns);
        self.events.push((at, msg.to_string()));
    }

    /// Close the span and commit it to the ring.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let dur_ns = self
            .tracer
            .inner
            .clock
            .now_nanos()
            .saturating_sub(self.start_ns);
        self.tracer.commit(SpanRecord {
            id: self.id,
            parent: self.parent,
            path: std::mem::take(&mut self.path),
            start_ns: self.start_ns,
            dur_ns,
            events: std::mem::take(&mut self.events),
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::ManualTime;

    #[test]
    fn spans_nest_and_time_under_virtual_clock() {
        let clock = Arc::new(ManualTime::new());
        let tracer = Tracer::new(clock.clone());
        let mut job = tracer.span("job");
        clock.advance_nanos(10);
        let task = job.child("task-0");
        clock.advance_nanos(5);
        task.finish();
        job.event("all tasks done");
        clock.advance_nanos(1);
        job.finish();

        let records = tracer.records();
        assert_eq!(records.len(), 2);
        // Child committed first (finished first).
        assert_eq!(records[0].path, "job/task-0");
        assert_eq!(records[0].dur_ns, 5);
        assert_eq!(records[0].parent, Some(records[1].id));
        assert_eq!(records[1].path, "job");
        assert_eq!(records[1].dur_ns, 16);
        assert_eq!(records[1].events, vec![(15, "all tasks done".to_string())]);
    }

    #[test]
    fn ring_is_bounded() {
        let clock = Arc::new(ManualTime::new());
        let tracer = Tracer::with_capacity(clock, 2);
        for i in 0..5 {
            tracer.span(&format!("s{i}")).finish();
        }
        let records = tracer.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].path, "s3");
        assert_eq!(records[1].path, "s4");
    }

    #[test]
    fn drop_commits_unfinished_spans() {
        let clock = Arc::new(ManualTime::new());
        let tracer = Tracer::new(clock.clone());
        {
            let _s = tracer.span("dropped");
            clock.advance_nanos(7);
        }
        assert_eq!(tracer.records()[0].dur_ns, 7);
    }

    #[test]
    fn dump_is_line_json() {
        let clock = Arc::new(ManualTime::new());
        let tracer = Tracer::new(clock);
        let mut s = tracer.span("a");
        s.event("ev \"quoted\"");
        s.finish();
        let dump = tracer.dump_json_lines();
        assert_eq!(dump.lines().count(), 1);
        assert!(dump.contains("\\\"quoted\\\""));
        assert!(dump.starts_with("{\"id\":"));
    }
}
