//! Atomic instruments: counters, gauges, and log-bucketed histograms.
//!
//! Instruments are cheap `Arc` handles — clone freely, hand them to hot
//! loops, and let the registry keep a shared reference for snapshotting.
//! All updates are relaxed atomics; instruments carry statistics, never
//! synchronization.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets: one for the value 0 plus one per power of
/// two up to `2^63..=u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Monotonic counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Log-bucketed histogram of `u64` observations.
///
/// Bucket 0 holds exact zeros; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i - 1]`. Quantile estimates therefore carry at most a 2×
/// relative error (one bucket), which the property suite pins down.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Bucket index for an observed value.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of a bucket.
pub fn bucket_upper_bound(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&self, v: u64) {
        let i = &self.inner;
        i.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        i.count.fetch_add(1, Ordering::Relaxed);
        i.sum.fetch_add(v, Ordering::Relaxed);
        i.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Consistent point-in-time view of the bucket array and summary stats.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let i = &self.inner;
        HistogramSnapshot {
            buckets: std::array::from_fn(|b| i.buckets[b].load(Ordering::Relaxed)),
            count: i.count.load(Ordering::Relaxed),
            sum: i.sum.load(Ordering::Relaxed),
            max: i.max.load(Ordering::Relaxed),
        }
    }
}

/// Immutable histogram snapshot with quantile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0..=1.0`). The estimate is the upper
    /// bound of the bucket holding the rank-`ceil(q*count)` observation,
    /// clamped to the observed maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn counter_and_gauge_share_state_across_clones() {
        let c = Counter::new();
        let c2 = c.clone();
        c.add(5);
        c2.inc();
        assert_eq!(c.get(), 6);

        let g = Gauge::new();
        let g2 = g.clone();
        g.set(10);
        g2.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn quantiles_track_recorded_values() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 100);
        // Exact p50 is 50 (bucket [32,63]); estimate must land in the same
        // bucket and never exceed the observed max.
        let p50 = s.p50();
        assert_eq!(bucket_index(p50), bucket_index(50));
        assert!(s.p99() <= 100);
        assert_eq!(s.quantile(1.0), 100);
    }

    #[test]
    fn zero_only_histogram() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
    }
}
