//! Time sources for instrumentation.
//!
//! Every obs component that measures durations takes its time from a
//! [`TimeSource`] rather than calling `std::time` directly, mirroring the
//! `Clock` injection used by the kafka retrier. Production code binds
//! [`MonotonicTime`]; tests bind [`ManualTime`] and advance it explicitly so
//! snapshots are a pure function of the recorded workload.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond clock.
pub trait TimeSource: Send + Sync + std::fmt::Debug {
    fn now_nanos(&self) -> u64;
}

/// Wall-clock-backed time source (monotonic, anchored at construction).
#[derive(Debug)]
pub struct MonotonicTime {
    origin: Instant,
}

impl MonotonicTime {
    pub fn new() -> Self {
        MonotonicTime {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicTime {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeSource for MonotonicTime {
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Virtual clock: time moves only when a test advances it.
#[derive(Debug, Default)]
pub struct ManualTime {
    now_ns: AtomicU64,
}

impl ManualTime {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn advance_nanos(&self, ns: u64) {
        self.now_ns.fetch_add(ns, Ordering::SeqCst);
    }

    pub fn advance_millis(&self, ms: u64) {
        self.advance_nanos(ms * 1_000_000);
    }

    pub fn set_nanos(&self, ns: u64) {
        self.now_ns.store(ns, Ordering::SeqCst);
    }
}

impl TimeSource for ManualTime {
    fn now_nanos(&self) -> u64 {
        self.now_ns.load(Ordering::SeqCst)
    }
}

/// A restartable stopwatch over an injected [`TimeSource`].
#[derive(Debug, Clone)]
pub struct Stopwatch {
    clock: Arc<dyn TimeSource>,
    started_ns: u64,
}

impl Stopwatch {
    /// Start a stopwatch at the clock's current instant.
    pub fn start(clock: Arc<dyn TimeSource>) -> Self {
        let started_ns = clock.now_nanos();
        Stopwatch { clock, started_ns }
    }

    /// Nanoseconds since the last (re)start.
    pub fn elapsed_nanos(&self) -> u64 {
        self.clock.now_nanos().saturating_sub(self.started_ns)
    }

    /// Restart and return the elapsed nanoseconds of the lap that just ended.
    pub fn lap_nanos(&mut self) -> u64 {
        let now = self.clock.now_nanos();
        let lap = now.saturating_sub(self.started_ns);
        self.started_ns = now;
        lap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_time_advances_only_on_demand() {
        let t = ManualTime::new();
        assert_eq!(t.now_nanos(), 0);
        t.advance_millis(3);
        assert_eq!(t.now_nanos(), 3_000_000);
    }

    #[test]
    fn stopwatch_laps_under_virtual_clock() {
        let clock = Arc::new(ManualTime::new());
        let mut sw = Stopwatch::start(clock.clone());
        clock.advance_nanos(500);
        assert_eq!(sw.elapsed_nanos(), 500);
        assert_eq!(sw.lap_nanos(), 500);
        clock.advance_nanos(250);
        assert_eq!(sw.lap_nanos(), 250);
    }
}
