//! Snapshot exporters: pretty text, line-JSON, and Prometheus text format.
//!
//! JSON is hand-rolled (matching the cluster/bench idiom elsewhere in the
//! workspace) so the crate stays dependency-light. All three renderers are
//! deterministic functions of the snapshot — the snapshot itself is sorted
//! by (name, labels) — which the determinism tests rely on.

use crate::instruments::{bucket_upper_bound, HistogramSnapshot};
use crate::registry::{Labels, MetricValue, RegistrySnapshot};

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn label_suffix(labels: &Labels) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        let parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{{{}}}", parts.join(","))
    }
}

fn histogram_summary(h: &HistogramSnapshot) -> String {
    format!(
        "count={} sum={} mean={:.1} p50={} p95={} p99={} max={}",
        h.count,
        h.sum,
        h.mean(),
        h.p50(),
        h.p95(),
        h.p99(),
        h.max
    )
}

/// Human-oriented rendering, one series per line, aligned name column.
pub fn render_text(snapshot: &RegistrySnapshot) -> String {
    let width = snapshot
        .entries
        .iter()
        .map(|e| e.name.len() + label_suffix(&e.labels).len())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for e in &snapshot.entries {
        let series = format!("{}{}", e.name, label_suffix(&e.labels));
        let value = match &e.value {
            MetricValue::Counter(v) => v.to_string(),
            MetricValue::Gauge(v) => v.to_string(),
            MetricValue::Histogram(h) => histogram_summary(h),
        };
        out.push_str(&format!("{series:width$}  {value}\n"));
    }
    out
}

/// One JSON object per line per series.
pub fn render_json_lines(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for e in &snapshot.entries {
        let labels: Vec<String> = e
            .labels
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
            .collect();
        let value = match &e.value {
            MetricValue::Counter(v) => format!("\"type\":\"counter\",\"value\":{v}"),
            MetricValue::Gauge(v) => format!("\"type\":\"gauge\",\"value\":{v}"),
            MetricValue::Histogram(h) => format!(
                "\"type\":\"histogram\",\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}",
                h.count,
                h.sum,
                h.p50(),
                h.p95(),
                h.p99(),
                h.max
            ),
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"labels\":{{{}}},{}}}\n",
            json_escape(&e.name),
            labels.join(","),
            value
        ));
    }
    out
}

/// Sanitize a dotted metric name into a Prometheus identifier.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn prom_labels(labels: &Labels, extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", prom_name(k), json_escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Prometheus text exposition format. Histograms expand into cumulative
/// `_bucket{le=...}` series plus `_sum` and `_count`.
pub fn render_prometheus(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut last_name = String::new();
    for e in &snapshot.entries {
        let name = prom_name(&e.name);
        let (kind, _) = match &e.value {
            MetricValue::Counter(_) => ("counter", 0),
            MetricValue::Gauge(_) => ("gauge", 0),
            MetricValue::Histogram(_) => ("histogram", 0),
        };
        if name != last_name {
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            last_name = name.clone();
        }
        match &e.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("{name}{} {v}\n", prom_labels(&e.labels, None)));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("{name}{} {v}\n", prom_labels(&e.labels, None)));
            }
            MetricValue::Histogram(h) => {
                let mut cum = 0u64;
                for (i, &n) in h.buckets.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    cum += n;
                    let le = bucket_upper_bound(i).to_string();
                    out.push_str(&format!(
                        "{name}_bucket{} {cum}\n",
                        prom_labels(&e.labels, Some(("le", le)))
                    ));
                }
                out.push_str(&format!(
                    "{name}_bucket{} {}\n",
                    prom_labels(&e.labels, Some(("le", "+Inf".to_string()))),
                    h.count
                ));
                out.push_str(&format!(
                    "{name}_sum{} {}\n",
                    prom_labels(&e.labels, None),
                    h.sum
                ));
                out.push_str(&format!(
                    "{name}_count{} {}\n",
                    prom_labels(&e.labels, None),
                    h.count
                ));
            }
        }
    }
    out
}

/// Structural validation of Prometheus exposition text: unique series,
/// `le` buckets cumulative/monotone, `+Inf` bucket equal to `_count`, and
/// parseable sample lines. Returns the first problem found.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    use std::collections::{HashMap, HashSet};
    let mut seen: HashSet<String> = HashSet::new();
    // series base name -> (last cumulative bucket count, last le upper bound)
    let mut bucket_state: HashMap<String, (u64, f64)> = HashMap::new();
    let mut inf_counts: HashMap<String, u64> = HashMap::new();
    let mut count_samples: HashMap<String, u64> = HashMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: no sample value: {line:?}"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {lineno}: unparseable value: {line:?}"))?;
        {
            // Histogram series are counts/sums of u64s: never negative.
            let base = series.split('{').next().unwrap_or(series);
            if value < 0.0
                && (base.ends_with("_bucket") || base.ends_with("_count") || base.ends_with("_sum"))
            {
                return Err(format!("line {lineno}: negative histogram sample"));
            }
        }
        if !seen.insert(series.to_string()) {
            return Err(format!("line {lineno}: duplicate series {series:?}"));
        }
        let base = series.split('{').next().unwrap_or(series).to_string();
        if let Some(le) = extract_le(series) {
            let key = strip_le(series);
            if le == "+Inf" {
                inf_counts.insert(key, value as u64);
            } else {
                let le: f64 = le
                    .parse()
                    .map_err(|_| format!("line {lineno}: bad le bound {le:?}"))?;
                let entry = bucket_state.entry(key).or_insert((0, f64::NEG_INFINITY));
                if le <= entry.1 {
                    return Err(format!("line {lineno}: le bounds not increasing"));
                }
                if (value as u64) < entry.0 {
                    return Err(format!("line {lineno}: bucket counts not cumulative"));
                }
                *entry = (value as u64, le);
            }
        } else if base.ends_with("_count") {
            count_samples.insert(series.replace("_count", "_bucket"), value as u64);
        }
    }
    for (key, inf) in &inf_counts {
        if let Some((last_cum, _)) = bucket_state.get(key) {
            if inf < last_cum {
                return Err(format!(
                    "series {key:?}: +Inf bucket below cumulative count"
                ));
            }
        }
        if let Some(count) = count_samples.get(key) {
            if count != inf {
                return Err(format!("series {key:?}: +Inf bucket != _count sample"));
            }
        }
    }
    Ok(())
}

fn extract_le(series: &str) -> Option<String> {
    let start = series.find("le=\"")? + 4;
    let end = series[start..].find('"')? + start;
    Some(series[start..end].to_string())
}

/// Remove the `le="..."` label so all buckets of one histogram share a key.
fn strip_le(series: &str) -> String {
    match (series.find("le=\""), series.find('{')) {
        (Some(le_start), Some(_)) => {
            let end = series[le_start + 4..]
                .find('"')
                .map(|i| le_start + 4 + i + 1)
                .unwrap_or(series.len());
            let mut s = String::new();
            // Also strip a leading/trailing comma left behind.
            let before = series[..le_start].trim_end_matches(',');
            let after = series[end..].trim_start_matches(',');
            s.push_str(before);
            if !before.ends_with('{') && !after.starts_with('}') && !after.is_empty() {
                s.push(',');
            }
            s.push_str(after);
            s.replace("{}", "")
        }
        _ => series.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let r = MetricsRegistry::new();
        r.counter("kafka.broker.messages_in", &[("broker", "0")])
            .add(42);
        r.gauge("kafka.throttle.credits", &[]).set(1000);
        let h = r.histogram("samza.task.batch_ns", &[("task", "orders-0")]);
        for v in [10u64, 100, 1000, 1000, 5000] {
            h.record(v);
        }
        r
    }

    #[test]
    fn text_renders_every_series() {
        let text = render_text(&sample_registry().snapshot());
        assert!(text.contains("kafka.broker.messages_in{broker=0}"));
        assert!(text.contains("42"));
        assert!(text.contains("p95="));
    }

    #[test]
    fn json_lines_are_one_object_per_series() {
        let out = render_json_lines(&sample_registry().snapshot());
        assert_eq!(out.lines().count(), 3);
        for line in out.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        assert!(out.contains("\"type\":\"histogram\""));
    }

    #[test]
    fn prometheus_output_validates() {
        let out = render_prometheus(&sample_registry().snapshot());
        assert!(out.contains("# TYPE kafka_broker_messages_in counter"));
        assert!(out.contains("le=\"+Inf\""));
        validate_prometheus(&out).expect("generated output must self-validate");
    }

    #[test]
    fn validator_rejects_duplicates_and_non_monotone_buckets() {
        let dup = "a_total 1\na_total 2\n";
        assert!(validate_prometheus(dup).is_err());
        let bad = "h_bucket{le=\"1\"} 5\nh_bucket{le=\"3\"} 2\n";
        assert!(validate_prometheus(bad).is_err());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }
}
