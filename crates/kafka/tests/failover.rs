//! Leader-failover and bounded-retry acceptance tests (ISSUE 4).
//!
//! * After `fail_leader()` mid-stream, no consumer ever observes a record
//!   beyond the pre-failover committed offset, and producers resume after
//!   the epoch bump via retries alone — no job restart, no reassignment.
//! * A permanently failing partition surfaces a non-retriable error within
//!   the configured attempt/budget limits instead of hanging.

use samzasql_kafka::{
    AckMode, Broker, Consumer, FaultInjector, FaultKind, FaultOp, FaultSchedule, FaultSpec,
    KafkaError, Message, Producer, ReplicationConfig, Retrier, RetryPolicy, TopicConfig,
};

fn replicated_topic(broker: &Broker, name: &str) {
    broker
        .create_topic(
            name,
            TopicConfig::with_partitions(1).replication(ReplicationConfig {
                replication_factor: 3,
                min_insync_replicas: 2,
                records_per_tick: 4,
                max_lag_records: 1_000,
                election_ticks: 3,
            }),
        )
        .unwrap();
}

#[test]
fn fetch_visibility_is_capped_at_high_watermark() {
    let b = Broker::new();
    replicated_topic(&b, "t");
    let p = Producer::key_hash(b.clone());
    for i in 0..10u8 {
        p.send_to("t", 0, Message::new(vec![i])).unwrap();
    }
    // No ticks yet: nothing is replicated, nothing is visible.
    assert_eq!(b.high_watermark("t", 0).unwrap(), 0);
    let mut c = Consumer::new(b.clone());
    c.assign("t", 0..1);
    assert!(c.poll(100).is_empty(), "unreplicated records are invisible");
    // Two ticks replicate 8 records; exactly those become visible.
    b.replication_tick();
    b.replication_tick();
    assert_eq!(b.high_watermark("t", 0).unwrap(), 8);
    let offsets: Vec<u64> = c.poll(100).iter().map(|r| r.offset).collect();
    assert_eq!(offsets, (0..8).collect::<Vec<u64>>());
}

#[test]
fn leader_failover_loses_only_unreplicated_records_and_producers_resume() {
    let b = Broker::new();
    replicated_topic(&b, "t");
    let p = Producer::key_hash(b.clone());
    let mut c = Consumer::new(b.clone());
    c.assign("t", 0..1);

    let mut observed: Vec<u64> = Vec::new();
    for i in 0..20u8 {
        p.send_to("t", 0, Message::new(vec![i])).unwrap();
    }
    b.replication_tick();
    b.replication_tick(); // followers at 8 of 20
    observed.extend(c.poll(100).iter().map(|r| r.offset));

    let pre_committed = b.high_watermark("t", 0).unwrap();
    assert_eq!(pre_committed, 8);
    assert!(
        observed.iter().all(|&o| o < pre_committed),
        "no consumer may see past the committed offset: {observed:?}"
    );

    // Kill the leader. Offsets 8..20 were acknowledged with acks=1 but never
    // replicated — they die with the leader, as in Kafka.
    let epoch = b.fail_leader("t", 0).unwrap();
    assert_eq!(epoch, 1);
    assert_eq!(b.leader_epoch("t", 0).unwrap(), 1);
    assert_eq!(
        b.end_offset("t", 0).unwrap(),
        pre_committed,
        "log truncates to the committed offset"
    );

    // While the election is pending, a non-retrying producer sees the
    // retriable LeaderNotAvailable carrying the new epoch.
    let bare = Producer::key_hash(b.clone()).retry(Retrier::disabled());
    match bare.send_to("t", 0, Message::new("x")) {
        Err(KafkaError::LeaderNotAvailable {
            topic,
            partition,
            epoch,
        }) => {
            assert_eq!((topic.as_str(), partition, epoch), ("t", 0, 1));
        }
        other => panic!("expected LeaderNotAvailable, got {other:?}"),
    }

    // The default producer rides the election out via retries alone.
    let md = p.send_to("t", 0, Message::new("resumed")).unwrap();
    assert_eq!(
        md.offset, pre_committed,
        "new writes continue from the truncation point"
    );
    assert!(p.retrier().metrics().retries() > 0);

    // The consumer (positioned at the old high watermark) keeps polling
    // through the failover and sees the new record once it replicates.
    b.replication_tick();
    let after: Vec<(u64, Vec<u8>)> = c
        .poll(100)
        .into_iter()
        .map(|r| (r.offset, r.message.value.to_vec()))
        .collect();
    assert_eq!(after, vec![(pre_committed, b"resumed".to_vec())]);
    observed.extend(after.iter().map(|(o, _)| *o));
    assert!(
        observed.windows(2).all(|w| w[1] == w[0] + 1),
        "offsets stay dense across failover: {observed:?}"
    );
    assert_eq!(b.metrics().leader_epoch_bumps(), 1);
}

#[test]
fn failover_without_in_sync_follower_is_refused() {
    let b = Broker::new();
    b.create_topic(
        "t",
        TopicConfig::with_partitions(1).replication(ReplicationConfig {
            replication_factor: 2,
            min_insync_replicas: 1,
            records_per_tick: 1,
            max_lag_records: 2,
            election_ticks: 3,
        }),
    )
    .unwrap();
    let p = Producer::key_hash(b.clone());
    for i in 0..10u8 {
        p.send_to("t", 0, Message::new(vec![i])).unwrap();
    }
    b.replication_tick(); // follower at 1, lag 9 > 2: ejected from ISR
    assert!(matches!(
        b.fail_leader("t", 0),
        Err(KafkaError::NotEnoughReplicas { .. })
    ));
    assert_eq!(b.leader_epoch("t", 0).unwrap(), 0);
    // The partition still serves traffic from the surviving leader.
    assert!(p.send_to("t", 0, Message::new("still-up")).is_ok());
}

#[test]
fn acks_all_respects_min_isr_after_follower_failure() {
    let b = Broker::new();
    replicated_topic(&b, "t");
    let p = Producer::key_hash(b.clone())
        .acks(AckMode::All)
        .retry(Retrier::disabled());
    p.send_to("t", 0, Message::new("a")).unwrap();
    // Kill both followers: ISR falls to the leader alone, below min 2.
    b.fail_follower("t", 0, 0).unwrap();
    b.fail_follower("t", 0, 1).unwrap();
    match p.send_to("t", 0, Message::new("b")) {
        Err(KafkaError::NotEnoughReplicas { topic, partition }) => {
            assert_eq!((topic.as_str(), partition), ("t", 0));
        }
        other => panic!("expected NotEnoughReplicas, got {other:?}"),
    }
    assert!(b.metrics().isr_shrinks() >= 2);
    // Restore one follower; after catching up, acks=all works again.
    b.restore_follower("t", 0, 0).unwrap();
    b.replication_tick();
    assert!(b.metrics().isr_expands() >= 1);
    p.send_to("t", 0, Message::new("c")).unwrap();
}

#[test]
fn permanently_failing_partition_surfaces_bounded_error() {
    let b = Broker::new();
    b.create_topic("t", TopicConfig::with_partitions(1))
        .unwrap();
    b.set_fault_injector(Some(FaultInjector::with_specs(
        11,
        vec![FaultSpec::any(FaultKind::Unavailable, FaultSchedule::Always).on_topic("t")],
    )));

    let started = std::time::Instant::now();
    let p = Producer::key_hash(b.clone());
    match p.send_to("t", 0, Message::new("doomed")) {
        Err(KafkaError::RetriesExhausted { attempts, last }) => {
            assert!(attempts <= p.retrier().policy().max_attempts);
            assert!(last.is_retriable(), "wrapped cause is the transient error");
            assert_eq!(last.topic_partition(), Some(("t", 0)));
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    assert_eq!(p.retrier().metrics().giveups(), 1);

    // Fetch side: the consumer's retrier gives up too and poll returns
    // empty rather than hanging.
    let mut c = Consumer::new(b.clone());
    c.assign("t", 0..1);
    assert!(c.poll(10).is_empty());
    assert_eq!(c.retrier().metrics().giveups(), 1);

    // The virtual clock means "within budget" costs no wall time.
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "bounded retries must not wall-sleep through the budget"
    );
    assert_eq!(b.end_offset("t", 0).unwrap(), 0, "nothing ever appended");
}

#[test]
fn injected_fetch_window_heals_and_consumption_catches_up() {
    let b = Broker::new();
    b.create_topic("t", TopicConfig::with_partitions(1))
        .unwrap();
    let p = Producer::key_hash(b.clone());
    for i in 0..50u8 {
        p.send_to("t", 0, Message::new(vec![i])).unwrap();
    }
    // Fetches 0..5 on the partition fail; everything after succeeds.
    b.set_fault_injector(Some(FaultInjector::with_specs(
        3,
        vec![FaultSpec::any(
            FaultKind::Unavailable,
            FaultSchedule::Window { from: 0, count: 5 },
        )
        .on_op(FaultOp::Fetch)],
    )));
    let mut c = Consumer::new(b.clone()).retry(Retrier::new(
        RetryPolicy::default_client().attempts(3), // too few for the window at first
    ));
    c.assign("t", 0..1);
    let mut got = Vec::new();
    for _ in 0..10 {
        got.extend(c.poll(16).into_iter().map(|r| r.offset));
    }
    assert_eq!(got, (0..50).collect::<Vec<u64>>(), "no loss, no duplicates");
}
