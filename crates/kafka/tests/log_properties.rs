//! Property tests over the commit log's core invariants under arbitrary
//! append/retention interleavings.

use proptest::prelude::*;
use samzasql_kafka::log::{PartitionLog, SegmentConfig};
use samzasql_kafka::Message;

/// Random log configurations: small segments, optional byte retention.
fn config_strategy() -> impl Strategy<Value = SegmentConfig> {
    (1usize..16, prop_oneof![Just(0u64), 16u64..512]).prop_map(|(seg, bytes)| SegmentConfig {
        segment_max_records: seg,
        retention_bytes: bytes,
        retention_ms: 0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Offsets are dense and monotonically increasing regardless of
    /// segmentation and retention; the retained window is always a suffix.
    #[test]
    fn offsets_dense_and_retention_keeps_suffix(
        config in config_strategy(),
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 1..200),
    ) {
        let mut log = PartitionLog::new("t", 0, config);
        for (i, p) in payloads.iter().enumerate() {
            let off = log.append(Message::new(p.clone()));
            prop_assert_eq!(off, i as u64, "dense offsets");
        }
        let (start, end) = (log.start_offset(), log.end_offset());
        prop_assert_eq!(end, payloads.len() as u64);
        prop_assert!(start <= end);
        // Everything retained fetches back in order with original payloads.
        let fetched = log.fetch(start, payloads.len() + 1).unwrap();
        let mut expect = start;
        for rec in &fetched.records {
            prop_assert_eq!(rec.offset, expect);
            prop_assert_eq!(rec.message.value.as_ref(), payloads[rec.offset as usize].as_slice());
            expect += 1;
        }
        prop_assert_eq!(expect, end, "fetch returns the whole retained suffix");
    }

    /// Fetching from any retained offset returns records starting exactly
    /// there; fetching below the start errors.
    #[test]
    fn fetch_window_is_exact(
        config in config_strategy(),
        n in 1usize..150,
        probe in any::<prop::sample::Index>(),
    ) {
        let mut log = PartitionLog::new("t", 0, config);
        for i in 0..n {
            log.append(Message::new(vec![i as u8]));
        }
        let start = log.start_offset();
        let end = log.end_offset();
        let from = start + (probe.index((end - start) as usize + 1)) as u64;
        let out = log.fetch(from, 10_000).unwrap();
        prop_assert_eq!(out.records.len() as u64, end - from);
        if let Some(first) = out.records.first() {
            prop_assert_eq!(first.offset, from);
        }
        if start > 0 {
            prop_assert!(log.fetch(start - 1, 1).is_err(), "below start errors");
        }
        prop_assert!(log.fetch(end + 1, 1).is_err(), "beyond end errors");
    }

    /// offset_for_timestamp returns the first record at-or-after the probe
    /// timestamp, given monotone timestamps.
    #[test]
    fn offset_for_timestamp_is_lower_bound(
        gaps in prop::collection::vec(0i64..10, 1..100),
        probe in 0i64..1_000,
    ) {
        let mut log = PartitionLog::new("t", 0, SegmentConfig::default());
        let mut ts = 0;
        let mut stamps = Vec::new();
        for g in &gaps {
            ts += g;
            stamps.push(ts);
            log.append(Message::new("x").at(ts));
        }
        let off = log.offset_for_timestamp(probe);
        let expected = stamps.iter().position(|t| *t >= probe).map(|i| i as u64)
            .unwrap_or(stamps.len() as u64);
        prop_assert_eq!(off, expected);
    }
}
